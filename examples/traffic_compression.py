"""Traffic compression on top of track join (Section 2.4).

Track join imposes no message order within a phase, which unlocks
compression of its metadata streams: sorted-delta coding of tracking
keys, node-grouped location messages, and radix-prefix packing of key
columns.  This example measures each technique on a real join — both
with the byte-accounted simulator and with the actual codecs.

Run:  python examples/traffic_compression.py
"""

from __future__ import annotations

import numpy as np

from repro import Cluster, JoinSpec, Schema, TrackJoin4, random_uniform
from repro.cluster import MessageClass
from repro.encoding import (
    DeltaEncoding,
    PrefixCodec,
    delta_encoded_size,
    prefix_partitioned_size,
)


def main() -> None:
    cluster = Cluster(8)
    rng = np.random.default_rng(0)
    keys_r = rng.integers(0, 300_000, 250_000)
    keys_s = rng.integers(0, 300_000, 250_000)
    schema = Schema.with_widths(32, 128)
    table_r = cluster.table_from_assignment(
        "R", schema, keys_r, random_uniform(len(keys_r), 8, 1)
    )
    table_s = cluster.table_from_assignment(
        "S", schema, keys_s, random_uniform(len(keys_s), 8, 2)
    )

    variants = [
        ("plain", JoinSpec(materialize=False)),
        ("delta-coded tracking keys", JoinSpec(materialize=False, delta_keys=True)),
        ("node-grouped locations", JoinSpec(materialize=False, group_locations=True)),
        (
            "both",
            JoinSpec(materialize=False, delta_keys=True, group_locations=True),
        ),
    ]
    print("4-phase track join, 8 nodes, 250k x 250k tuples\n")
    header = f"{'variant':<28} {'tracking MB':>12} {'locations MB':>13} {'total MB':>9}"
    print(header)
    print("-" * len(header))
    for name, spec in variants:
        result = TrackJoin4().run(cluster, table_r, table_s, spec)
        print(
            f"{name:<28} "
            f"{result.class_bytes(MessageClass.KEYS_COUNTS) / 1e6:>12.3f} "
            f"{result.class_bytes(MessageClass.KEYS_NODES) / 1e6:>13.3f} "
            f"{result.network_bytes / 1e6:>9.3f}"
        )

    # The codecs are real, not just accounting: show actual byte strings.
    sample = np.unique(rng.integers(0, 2**30, 50_000))
    plain_bytes = len(sample) * 4
    delta_bytes = delta_encoded_size(sample)
    codec = DeltaEncoding()
    encoded = codec.encode(sample)
    assert np.array_equal(codec.decode(encoded, len(sample)), np.sort(sample))
    print(
        f"\ndelta codec on {len(sample):,} sorted 30-bit keys: "
        f"{plain_bytes:,} B plain -> {len(encoded):,} B encoded "
        f"(accounting model: {delta_bytes:,} B)"
    )

    prefix = PrefixCodec(value_bits=30, prefix_bits=12)
    packed = prefix.encode(sample)
    assert np.array_equal(np.sort(prefix.decode(packed)), np.sort(sample))
    modeled = prefix_partitioned_size(sample, 30, 12)
    print(
        f"radix-prefix (p=12) on the same keys: {len(packed):,} B encoded "
        f"(accounting model: {modeled:,.0f} B)"
    )


if __name__ == "__main__":
    main()
