"""Star-schema analytics on TPC-H-shaped data.

Builds the customer/orders/lineitem schema, then answers a Q3-style
question — revenue per customer for a market segment and date window —
three ways:

1. hash joins in the given order,
2. hash joins with the smallest-first heuristic,
3. cost-model-chosen algorithms (``auto``) with the same heuristic.

The point: join *order* shrinks intermediate results, join *algorithm*
shrinks each join's transfers, and the two compose.

Run:  python examples/star_schema.py
"""

from __future__ import annotations

from repro import Cluster, JoinSpec
from repro.query import (
    Aggregate,
    AggregateSpec,
    ColumnPredicate,
    Scan,
    execute,
    star_plan,
)
from repro.workloads import tpch_tables


def main() -> None:
    cluster = Cluster(8)
    tables = tpch_tables(cluster, scale_factor=0.02, seed=11)
    lineitem, orders, customer = (
        tables["lineitem"],
        tables["orders"],
        tables["customer"],
    )
    print(
        f"TPC-H SF 0.02 on 8 nodes: lineitem={lineitem.total_rows:,}, "
        f"orders={orders.total_rows:,}, customer={customer.total_rows:,}\n"
    )

    def build(algorithm: str, order: str):
        # Fact = orders (carries both foreign keys after the first join
        # flattens lineitem in); we model the fact side as orders joined
        # with its dimensions: customers (via o_custkey) and the
        # lineitem "dimension" keyed by orderkey.
        fact = Scan(orders, ColumnPredicate("o_orderdate", "<", 1200))
        dimensions = {
            "o_custkey": Scan(customer, ColumnPredicate("c_mktsegment", "==", 2)),
        }
        plan = star_plan(fact, dimensions, algorithm=algorithm, order=order)
        # Join the lineitems onto the running result via the preserved
        # order key, then aggregate revenue per customer.
        from repro.query import Join, Rekey

        plan = Join(
            Rekey(plan, "r.o_orderkey"),
            Scan(lineitem, ColumnPredicate("l_shipdate", ">", 1200)),
            algorithm=algorithm,
        )
        return Aggregate(
            plan, aggregates=(AggregateSpec("revenue", "sum", "s.l_extendedprice"),)
        )

    for label, algorithm, order in (
        ("hash joins, given order", "HJ", "given"),
        ("hash joins, smallest-first", "HJ", "smallest-first"),
        ("cost-model choice", "auto", "smallest-first"),
    ):
        result = execute(build(algorithm, order), cluster, JoinSpec())
        print(f"== {label} ==")
        for op in result.operators:
            if op.operator.startswith(("join", "aggregate")):
                note = f"  [{op.note}]" if op.note else ""
                print(
                    f"  {op.operator:<12} rows={op.output_rows:>9,} "
                    f"network={op.network_bytes / 1e6:8.3f} MB{note}"
                )
        print(
            f"  total network: {result.network_bytes / 1e6:.3f} MB, "
            f"groups: {result.output_rows:,}\n"
        )


if __name__ == "__main__":
    main()
