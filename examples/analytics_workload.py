"""End-to-end analytics scenario: the workload X surrogate.

Runs the slowest distributed join shared by the five most expensive
queries of the paper's commercial workload X (synthesized from the
published Table 1 statistics), compares hash join against track join
per query, and projects wall-clock time on the paper's 4-node 1 GbE
cluster and on a 10x faster network using the calibrated hardware
model.

Run:  python examples/analytics_workload.py
"""

from __future__ import annotations

from repro import GraceHashJoin, JoinSpec, TrackJoin2, paper_cluster_2014, scaled_network
from repro.workloads import workload_x


def main() -> None:
    spec = JoinSpec(materialize=False, group_locations=True)
    print("Workload X: slowest join of queries Q1-Q5 (dictionary codes, 16 nodes)\n")
    header = (
        f"{'query':<6} {'HJ GiB':>8} {'TJ GiB':>8} {'reduction':>10}"
    )
    print(header)
    print("-" * len(header))
    for query in range(1, 6):
        workload = workload_x(query=query, scale_denominator=1024)
        hash_join = GraceHashJoin().run(
            workload.cluster, workload.table_r, workload.table_s, spec
        )
        track = TrackJoin2("RS").run(
            workload.cluster, workload.table_r, workload.table_s, spec
        )
        hj_gib = hash_join.network_bytes * workload.scale / 2**30
        tj_gib = track.network_bytes * workload.scale / 2**30
        print(
            f"Q{query:<5} {hj_gib:>8.2f} {tj_gib:>8.2f} "
            f"{1 - tj_gib / hj_gib:>9.1%}"
        )

    print("\nProjected wall-clock on the paper's 4-node implementation cluster:")
    workload = workload_x(
        query=1, num_nodes=4, scale_denominator=1024, implementation_widths=True
    )
    model = paper_cluster_2014(num_nodes=4)
    fast = scaled_network(model, 10.0)
    impl_spec = JoinSpec(materialize=False)
    for label, algorithm in (("hash join", GraceHashJoin()), ("track join", TrackJoin2("RS"))):
        result = algorithm.run(workload.cluster, workload.table_r, workload.table_s, impl_spec)
        cpu = model.cpu_seconds(result.profile) * workload.scale
        net = model.network_seconds(result.profile) * workload.scale
        net_fast = fast.network_seconds(result.profile) * workload.scale
        print(
            f"  {label:<11} CPU {cpu:6.2f} s + network {net:6.2f} s "
            f"(1 GbE)  |  {net_fast:5.2f} s (10x network)"
        )


if __name__ == "__main__":
    main()
