"""Quickstart: run every distributed join on one dataset and compare.

Builds a 8-node simulated cluster, scatters two tables with partially
overlapping keys across it, executes all seven algorithms from the
paper plus the rid-based baselines, and prints network traffic per
message class.  Every algorithm produces the identical join output —
they differ only in what crosses the wire.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BroadcastJoin,
    Cluster,
    GraceHashJoin,
    JoinSpec,
    Schema,
    TrackJoin2,
    TrackJoin3,
    TrackJoin4,
    random_uniform,
)
from repro.joins import LateMaterializationHashJoin, TrackingAwareHashJoin


def main() -> None:
    num_nodes = 8
    cluster = Cluster(num_nodes)
    rng = np.random.default_rng(42)

    # R: 200k tuples with a 4-byte key and 8-byte payload.
    # S: 300k tuples with a 4-byte key and 24-byte payload.
    # Keys overlap on [100k, 200k) and repeat up to a few times.
    schema_r = Schema.with_widths(key_bits=32, payload_bits=64)
    schema_s = Schema.with_widths(key_bits=32, payload_bits=192)
    keys_r = rng.integers(0, 200_000, 200_000)
    keys_s = rng.integers(100_000, 300_000, 300_000)
    table_r = cluster.table_from_assignment(
        "R", schema_r, keys_r, random_uniform(len(keys_r), num_nodes, seed=1)
    )
    table_s = cluster.table_from_assignment(
        "S", schema_s, keys_s, random_uniform(len(keys_s), num_nodes, seed=2)
    )

    algorithms = [
        BroadcastJoin("R"),
        BroadcastJoin("S"),
        GraceHashJoin(),
        LateMaterializationHashJoin(),
        TrackingAwareHashJoin(),
        TrackJoin2("RS"),
        TrackJoin2("SR"),
        TrackJoin3(),
        TrackJoin4(),
    ]

    print(f"{num_nodes}-node cluster, R = {table_r.total_rows:,} x "
          f"{schema_r.tuple_width(JoinSpec().encoding):.0f} B, "
          f"S = {table_s.total_rows:,} x "
          f"{schema_s.tuple_width(JoinSpec().encoding):.0f} B\n")
    header = f"{'algorithm':<10} {'output rows':>12} {'network MB':>11}  breakdown"
    print(header)
    print("-" * len(header))
    for algorithm in algorithms:
        result = algorithm.run(cluster, table_r, table_s)
        parts = ", ".join(
            f"{name}={nbytes / 1e6:.2f}"
            for name, nbytes in result.breakdown().items()
            if nbytes
        )
        print(
            f"{result.algorithm:<10} {result.output_rows:>12,} "
            f"{result.network_bytes / 1e6:>11.2f}  {parts}"
        )

    print(
        "\nAll algorithms compute the same join; track join (4TJ) minimizes\n"
        "payload transfers by scheduling each distinct key independently."
    )


if __name__ == "__main__":
    main()
