"""A multi-join analytical query, like the paper's expensive queries.

The paper's five slowest queries each run 4-6 joins after selections
and finish with an aggregation; their single most expensive operator is
one distributed join.  This example builds such a query over a small
star schema — selections, three joins (re-keying between them), final
group-by — and executes it twice: once with hash joins everywhere, once
letting the Section 3 cost model pick per join.

Run:  python examples/multi_join_query.py
"""

from __future__ import annotations

import numpy as np

from repro import Cluster, JoinSpec, Schema, random_uniform
from repro.query import (
    Aggregate,
    AggregateSpec,
    ColumnPredicate,
    Join,
    Scan,
    execute,
)
from repro.storage import Column


def build_tables(cluster):
    rng = np.random.default_rng(7)
    num_nodes = cluster.num_nodes

    def scatter(name, schema, keys, columns, seed):
        return cluster.table_from_assignment(
            name, schema, keys, random_uniform(len(keys), num_nodes, seed), columns=columns
        )

    # Fact: 200k line items keyed by order id, wide payload.
    lineitem_keys = rng.integers(0, 60_000, 200_000)
    lineitem = scatter(
        "lineitem",
        Schema(
            (Column("order_id", bits=32),),
            (Column("qty", bits=16), Column("price", bits=32), Column("comment", bits=96)),
        ),
        lineitem_keys,
        {
            "qty": rng.integers(1, 50, 200_000),
            "price": rng.integers(1, 10_000, 200_000),
            "comment": rng.integers(0, 1 << 20, 200_000),
        },
        seed=1,
    )
    # Orders: one row per order id, carries the customer id.
    orders = scatter(
        "orders",
        Schema(
            (Column("order_id", bits=32),),
            (Column("cust_id", bits=24), Column("status", bits=4)),
        ),
        np.arange(60_000, dtype=np.int64),
        {
            "cust_id": rng.integers(0, 8_000, 60_000),
            "status": rng.integers(0, 4, 60_000),
        },
        seed=2,
    )
    # Customers: small dimension with a region code.
    customers = scatter(
        "customer",
        Schema((Column("cust_id", bits=24),), (Column("region", bits=8),)),
        np.arange(8_000, dtype=np.int64),
        {"region": rng.integers(0, 10, 8_000)},
        seed=3,
    )
    return lineitem, orders, customers


def run_query(cluster, lineitem, orders, customers, algorithm):
    plan = Aggregate(
        Join(
            Join(
                Scan(lineitem, ColumnPredicate("qty", "<", 40)),
                Scan(orders, ColumnPredicate("status", "==", 1)),
                algorithm=algorithm,
                rekey_on="s.cust_id",
            ),
            Scan(customers),
            algorithm=algorithm,
        ),
        aggregates=(
            AggregateSpec("revenue", "sum", "r.r.price"),
            AggregateSpec("items", "count", "r.r.qty"),
        ),
    )
    return execute(plan, cluster, JoinSpec())


def main() -> None:
    cluster = Cluster(8)
    lineitem, orders, customers = build_tables(cluster)
    print(
        "Query: lineitem ⋈ orders (status = 1, qty < 40) ⋈ customer, "
        "group by customer\n"
    )
    for label, algorithm in (("hash join everywhere", "HJ"), ("cost-model choice", "auto")):
        result = run_query(cluster, lineitem, orders, customers, algorithm)
        print(f"== {label} ==")
        for op in result.operators:
            note = f"  [{op.note}]" if op.note else ""
            print(
                f"  {op.operator:<14} rows={op.output_rows:>8,} "
                f"network={op.network_bytes / 1e6:8.3f} MB{note}"
            )
        print(
            f"  total network: {result.network_bytes / 1e6:.3f} MB, "
            f"final groups: {result.output_rows:,}\n"
        )


if __name__ == "__main__":
    main()
