"""Locality study: how pre-existing tuple placement shapes join traffic.

Reproduces the spirit of Figures 4-6: both tables repeat every join key
five times, and we sweep how those repeats are placed — fully
collocated on one node, split 2/2/1, or spread across five nodes — with
and without cross-table alignment.  Track join exploits every degree of
collocation; hash join is oblivious to all of them.

Also prints per-node send/receive balance, the Section 5 "locality
skew" concern: schedules that minimize total traffic can concentrate it
on few links.

Run:  python examples/locality_patterns.py
"""

from __future__ import annotations

from repro import GraceHashJoin, JoinSpec, TrackJoin2, TrackJoin4
from repro.workloads import (
    PATTERN_COLLOCATED,
    PATTERN_PARTIAL,
    PATTERN_SPREAD,
    both_sides_pattern_workload,
)


def main() -> None:
    spec = JoinSpec(materialize=False, group_locations=True)
    print("Both tables: 40k distinct keys x 5 repeats, 16 nodes, 30/60-byte rows\n")
    header = (
        f"{'placement':<34} {'HJ MB':>8} {'2TJ-R MB':>9} {'4TJ MB':>8} "
        f"{'4TJ/HJ':>7} {'4TJ send skew':>13}"
    )
    print(header)
    print("-" * len(header))
    for inter in (False, True):
        for pattern in (PATTERN_COLLOCATED, PATTERN_PARTIAL, PATTERN_SPREAD):
            workload = both_sides_pattern_workload(
                pattern, inter_collocated=inter, scaled_keys=40_000
            )
            hash_join = GraceHashJoin().run(
                workload.cluster, workload.table_r, workload.table_s, spec
            )
            two = TrackJoin2("RS").run(
                workload.cluster, workload.table_r, workload.table_s, spec
            )
            four = TrackJoin4().run(
                workload.cluster, workload.table_r, workload.table_s, spec
            )
            label = (
                f"{','.join(map(str, pattern))} "
                f"({'inter+intra' if inter else 'intra only'})"
            )
            print(
                f"{label:<34} {hash_join.network_bytes / 1e6:>8.2f} "
                f"{two.network_bytes / 1e6:>9.2f} "
                f"{four.network_bytes / 1e6:>8.2f} "
                f"{four.network_bytes / hash_join.network_bytes:>7.2f} "
                f"{four.node_balance()['send_skew']:>13.2f}"
            )
    print(
        "\nFully collocated matches (5,0,... inter+intra) leave track join\n"
        "nothing to ship but tracking metadata; hash join never notices."
    )


if __name__ == "__main__":
    main()
