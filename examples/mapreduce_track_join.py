"""Track join on MapReduce: fine-grained scheduling on a generic engine.

Section 6 of the paper observes that generic distributed frameworks
optimize network use at the granularity of map/reduce placement, and
that track join "can be re-implemented for MapReduce" to get per-key
collocation on top.  This example runs the same join three ways —
native hash join, MapReduce hash join, and MapReduce track join — and
shows the MR track join's traffic equals the native track join's, byte
for byte and per message class.

Run:  python examples/mapreduce_track_join.py
"""

from __future__ import annotations

import numpy as np

from repro import Cluster, GraceHashJoin, JoinSpec, Schema, TrackJoin2, random_uniform
from repro.mapreduce import mr_hash_join, mr_track_join


def main() -> None:
    cluster = Cluster(8)
    rng = np.random.default_rng(3)
    schema_r = Schema.with_widths(32, 64)     # 4 B key + 8 B payload
    schema_s = Schema.with_widths(32, 448)    # 4 B key + 56 B payload
    keys = np.arange(150_000, dtype=np.int64)
    table_r = cluster.table_from_assignment(
        "R", schema_r, keys, random_uniform(len(keys), 8, seed=1)
    )
    table_s = cluster.table_from_assignment(
        "S", schema_s, keys, random_uniform(len(keys), 8, seed=2)
    )
    spec = JoinSpec()

    native_hash = GraceHashJoin().run(cluster, table_r, table_s, spec)
    native_track = TrackJoin2("RS").run(cluster, table_r, table_s, spec)
    mr_hash = mr_hash_join(cluster, table_r, table_s, spec)
    tracking, joined = mr_track_join(cluster, table_r, table_s, spec)
    mr_track_bytes = tracking.network_bytes + joined.network_bytes

    print("150k x 150k unique-key join, 8 nodes, 12/60-byte tuples\n")
    print(f"{'implementation':<26} {'network MB':>11}")
    print("-" * 40)
    print(f"{'native hash join':<26} {native_hash.network_bytes / 1e6:>11.3f}")
    print(f"{'MapReduce hash join':<26} {mr_hash.network_bytes / 1e6:>11.3f}")
    print(f"{'native 2-phase track join':<26} {native_track.network_bytes / 1e6:>11.3f}")
    print(f"{'MapReduce track join':<26} {mr_track_bytes / 1e6:>11.3f}")

    combined = tracking.traffic.merged_with(joined.traffic)
    print("\nper message class (MR track join vs native):")
    for name, nbytes in combined.breakdown().items():
        native = native_track.breakdown()[name]
        if nbytes or native:
            print(f"  {name:<12} MR={nbytes / 1e6:8.3f} MB   native={native / 1e6:8.3f} MB")
    print(
        "\nThe custom partitioner (location records from the tracking job)\n"
        "reproduces the native operator's transfers exactly — fine-grained\n"
        "collocation is expressible on a coarse-grained framework."
    )


if __name__ == "__main__":
    main()
