"""Query optimization: pick the join algorithm from the cost model.

Section 3 of the paper gives closed-form traffic formulas so a query
optimizer can choose between broadcast join, hash join, and the track
join variants before execution.  This example:

1. builds three joins with very different shapes (tiny dimension table,
   narrow-payload fact join, wide-payload join),
2. asks the analytic optimizer to rank the algorithms,
3. optionally refines the estimate with correlated sampling, and
4. validates the choice by actually running the top candidates.

Run:  python examples/query_optimizer.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BroadcastJoin,
    Cluster,
    GraceHashJoin,
    JoinSpec,
    Schema,
    TrackJoin2,
    TrackJoin3,
    TrackJoin4,
    random_uniform,
)
from repro.costmodel import (
    JoinStats,
    choose_algorithm,
    correlated_sample,
    estimate_classes,
    rank_algorithms,
)

ALGORITHMS = {
    "BJ-R": lambda: BroadcastJoin("R"),
    "BJ-S": lambda: BroadcastJoin("S"),
    "HJ": GraceHashJoin,
    "2TJ-R": lambda: TrackJoin2("RS"),
    "2TJ-S": lambda: TrackJoin2("SR"),
    "3TJ": TrackJoin3,
    "4TJ": TrackJoin4,
}


def build_join(name, cluster, tuples_r, tuples_s, distinct, payload_bits_r, payload_bits_s, seed):
    rng = np.random.default_rng(seed)
    keys_r = rng.integers(0, distinct, tuples_r)
    keys_s = rng.integers(0, distinct, tuples_s)
    schema_r = Schema.with_widths(32, payload_bits_r)
    schema_s = Schema.with_widths(32, payload_bits_s)
    table_r = cluster.table_from_assignment(
        "R", schema_r, keys_r, random_uniform(tuples_r, cluster.num_nodes, seed + 1)
    )
    table_s = cluster.table_from_assignment(
        "S", schema_s, keys_s, random_uniform(tuples_s, cluster.num_nodes, seed + 2)
    )
    stats = JoinStats(
        num_nodes=cluster.num_nodes,
        tuples_r=tuples_r,
        tuples_s=tuples_s,
        distinct_r=min(distinct, tuples_r),
        distinct_s=min(distinct, tuples_s),
        key_width=4,
        payload_r=payload_bits_r / 8,
        payload_s=payload_bits_s / 8,
    )
    return name, table_r, table_s, stats


def main() -> None:
    cluster = Cluster(8)
    spec = JoinSpec(materialize=False)
    scenarios = [
        build_join("tiny dimension x big fact", cluster, 2_000, 400_000, 2_000, 64, 64, 1),
        build_join("narrow payloads, unique keys", cluster, 150_000, 150_000, 150_000, 16, 16, 2),
        build_join("wide payloads, repeated keys", cluster, 120_000, 240_000, 40_000, 64, 320, 3),
    ]
    for name, table_r, table_s, stats in scenarios:
        print(f"== {name} ==")
        choice = choose_algorithm(stats)
        note = f"  ({choice.note})" if choice.note else ""
        print(f"optimizer picks: {choice.algorithm}{note}")

        sample = correlated_sample(table_r, table_s, rate=0.1, encoding=spec.encoding)
        classes, estimated = estimate_classes(sample)
        print(
            f"correlated sample (10%): classes rs={classes.rs:.2f} "
            f"sr={classes.sr:.2f} hash-like={classes.hashlike:.2f}, "
            f"estimated schedule cost {estimated / 1e6:.2f} MB"
        )

        print(f"{'algorithm':<8} {'predicted MB':>13} {'measured MB':>12}")
        for estimate in rank_algorithms(stats)[:4]:
            result = ALGORITHMS[estimate.algorithm]().run(cluster, table_r, table_s, spec)
            print(
                f"{estimate.algorithm:<8} {estimate.cost_bytes / 1e6:>13.2f} "
                f"{result.network_bytes / 1e6:>12.2f}"
            )
        print()


if __name__ == "__main__":
    main()
