"""Table 4: 4-phase track join per-step seconds.

The dominant network steps (tracking transfer for X, tuple transfers
for shuffled runs) must land close to the paper; CPU steps follow the
calibrated linear model and are reported for shape.
"""

from repro.experiments.tables import run_table4


def test_table4(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_table4(scale_x=1024, scale_y=256), rounds=1, iterations=1
    )
    record_report(result)
    # X's tracking transfer dominates its track join cost (26.8 s).
    for label in ("X original", "X shuffled"):
        row = result.row(label, "Transfer key, count")
        assert abs(row.measured - row.paper) / row.paper < 0.15, label
    # Shuffled-Y tuple transfers: the consolidation schedules at work.
    for step in ("Transfer R → S tuples", "Transfer S → R tuples"):
        row = result.row("Y shuffled", step)
        assert abs(row.measured - row.paper) / row.paper < 0.35, step
