"""Ablation: Section 2.4 traffic compression on workload X Q1.

Track join's metadata (tracking keys, location messages) is the price
it pays for optimal payload schedules; delta-coded key streams and
node-grouped location messages shrink exactly that metadata.
"""

from repro import JoinSpec, TrackJoin4
from repro.cluster import MessageClass
from repro.experiments.report import ExperimentResult, Group, Row
from repro.workloads import workload_x

GIB = 2.0**30


def run_ablation(scale_denominator: int = 2048) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ablation-compression",
        title="Section 2.4 metadata compression (workload X Q1, 4TJ)",
        unit="GiB (paper scale)",
    )
    workload = workload_x(query=1, scale_denominator=scale_denominator)
    group = Group(label="X Q1 original ordering")
    variants = [
        ("plain", JoinSpec(materialize=False)),
        ("delta tracking keys", JoinSpec(materialize=False, delta_keys=True)),
        ("grouped locations", JoinSpec(materialize=False, group_locations=True)),
        ("delta + grouped", JoinSpec(materialize=False, delta_keys=True, group_locations=True)),
    ]
    for name, spec in variants:
        run = TrackJoin4().run(workload.cluster, workload.table_r, workload.table_s, spec)
        group.rows.append(
            Row(
                name,
                run.network_bytes * workload.scale / GIB,
                breakdown={
                    "Keys & Counts": run.class_bytes(MessageClass.KEYS_COUNTS)
                    * workload.scale
                    / GIB,
                    "Keys & Nodes": run.class_bytes(MessageClass.KEYS_NODES)
                    * workload.scale
                    / GIB,
                },
            )
        )
    result.groups.append(group)
    return result


def test_ablation_compression(benchmark, record_report):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    record_report(result)
    rows = {row.label: row.measured for row in result.groups[0].rows}
    assert rows["delta tracking keys"] < rows["plain"]
    assert rows["grouped locations"] < rows["plain"]
    assert rows["delta + grouped"] <= min(
        rows["delta tracking keys"], rows["grouped locations"]
    )
