"""Ablation: key-frequency skew (extension beyond the paper's figures).

Zipf-distributed keys stress the algorithms differently: hash join
funnels every copy of a hot key to one hash node (a balance problem,
not a traffic one), while track join's per-key schedules consolidate
hot keys at their largest pre-existing holder.  This sweep measures
traffic and receive-balance across skew levels, including the
balance-aware Section 5 extension.
"""

from repro import GraceHashJoin, JoinSpec, TrackJoin4
from repro.core.balance import BalanceAwareTrackJoin
from repro.experiments.report import ExperimentResult, Group, Row
from repro.workloads import zipf_workload


def run_ablation(tuples: int = 100_000) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ablation-skew",
        title="Traffic and receive balance under key-frequency skew (16 nodes)",
        unit="MB (and receive skew, max/mean)",
    )
    spec = JoinSpec(materialize=False, group_locations=True)
    for skew in (0.0, 0.6, 1.0):
        workload = zipf_workload(
            tuples_per_table=tuples, distinct_keys=tuples // 10, skew=skew
        )
        group = Group(label=f"zipf skew = {skew}")
        for algorithm in (GraceHashJoin(), TrackJoin4(), BalanceAwareTrackJoin()):
            run = algorithm.run(workload.cluster, workload.table_r, workload.table_s, spec)
            balance = run.node_balance()
            group.rows.append(
                Row(
                    run.algorithm,
                    run.network_bytes / 1e6,
                    breakdown={"receive skew": balance["receive_skew"]},
                )
            )
        result.groups.append(group)
    return result


def test_ablation_skew(benchmark, record_report):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    record_report(result)
    for group in result.groups:
        # Balance-aware scheduling never increases traffic beyond 4TJ
        # (tolerance 0) ...
        four = result.row(group.label, "4TJ")
        balanced = result.row(group.label, "4TJ-bal")
        assert balanced.measured <= four.measured * 1.001
        # ... and never worsens receive balance.
        assert (
            balanced.breakdown["receive skew"]
            <= four.breakdown["receive skew"] + 1e-9
        )
