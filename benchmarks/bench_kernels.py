"""Microbenchmarks of the scatter fast-path kernels (loop vs fused).

Unlike the ``bench_fig*`` files these do not reproduce a paper figure;
they time the storage primitives behind every distributed operator —
bounded-dtype stable argsort, key-index build, ``split_by``,
``hash_split``, and indexed ``join_indices`` — and assert the fused
implementations actually beat (or at worst match) the loop reference
they replaced.  Run with ``pytest benchmarks/bench_kernels.py``.
"""

from __future__ import annotations

import pytest

from repro.perf.bench import _kernel_cases

SCALE = 200_000
NUM_NODES = 16

_CASES = {name: (loop_fn, fused_fn) for name, loop_fn, fused_fn in _kernel_cases(SCALE, NUM_NODES, seed=0)}

#: Kernels where the fused variant must not lose to the loop reference.
#: (index_build/distinct pay a one-off cache-build cost on purpose, so
#: only the pure-kernel rewrites carry a hard never-slower assertion.)
_MUST_WIN = {"stable_argsort", "split_by", "hash_split"}


@pytest.mark.parametrize("mode", ["loop", "fused"])
@pytest.mark.parametrize("name", sorted(_CASES))
def test_kernel(benchmark, name, mode):
    loop_fn, fused_fn = _CASES[name]
    fn = loop_fn if mode == "loop" else fused_fn
    benchmark.group = f"kernel: {name}"
    benchmark(fn)


@pytest.mark.parametrize("name", sorted(_MUST_WIN))
def test_fused_not_slower(name):
    from repro.perf.bench import best_time

    loop_fn, fused_fn = _CASES[name]
    loop_s = best_time(loop_fn, repeats=3, warmup=1)
    fused_s = best_time(fused_fn, repeats=3, warmup=1)
    # 1.5x slack: the box is shared and timing is noisy.
    assert fused_s <= loop_s * 1.5, f"{name}: fused {fused_s:.6f}s vs loop {loop_s:.6f}s"
