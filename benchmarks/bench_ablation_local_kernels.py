"""Ablation: local join kernels — sort-merge vs hash, radix vs introsort.

The distributed algorithms sit on node-local kernels: the paper uses
MSB-radix sort-merge-joins.  This bench compares the library's three
kernels on the same inputs (correctness is asserted; throughput is the
pytest-benchmark measurement of the whole comparison run).
"""

import time

import numpy as np

from repro.experiments.report import ExperimentResult, Group, Row
from repro.joins.local import join_indices
from repro.joins.local_hash import hash_join_indices
from repro.joins.radix import radix_sort


def run_comparison(size: int = 200_000) -> ExperimentResult:
    rng = np.random.default_rng(0)
    left = rng.integers(0, size // 2, size)
    right = rng.integers(0, size // 2, size)
    result = ExperimentResult(
        experiment_id="ablation-local-kernels",
        title=f"Local kernels on {size} x {size} tuples",
        unit="seconds (wall clock, this machine)",
    )
    group = Group(label="equi-join kernels")
    timings = {}
    for name, kernel in (("sort-merge join", join_indices), ("hash join", hash_join_indices)):
        start = time.perf_counter()
        li, ri = kernel(left, right)
        timings[name] = (time.perf_counter() - start, len(li))
        group.rows.append(Row(name, timings[name][0]))
    assert timings["sort-merge join"][1] == timings["hash join"][1]
    result.groups.append(group)

    sort_group = Group(label="key sorting")
    keys = rng.integers(0, 2**40, size)
    start = time.perf_counter()
    ours = radix_sort(keys)
    sort_group.rows.append(Row("MSB radix sort", time.perf_counter() - start))
    start = time.perf_counter()
    reference = np.sort(keys)
    sort_group.rows.append(Row("numpy introsort", time.perf_counter() - start))
    assert np.array_equal(ours, reference)
    result.groups.append(sort_group)
    return result


def test_local_kernels(benchmark, record_report):
    result = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    record_report(result)
    for group in result.groups:
        for row in group.rows:
            assert row.measured > 0
