"""Figure 9: HJ vs TJ on X's five slowest queries, optimal dictionary.

Expected shape (paper): track join reduces traffic by 53/45/46/48/52%
on Q1-Q5 respectively.
"""

from repro.experiments.figures import run_fig9


def test_fig9(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_fig9(scale_denominator=1024), rounds=1, iterations=1
    )
    record_report(result)
    for group in result.groups:
        row = result.row(group.label, "traffic reduction (%)")
        assert abs(row.measured - row.paper) < 10.0, f"{group.label}: {row.measured}"
