"""Figure 8: workload X Q1, shuffled ordering (locality removed).

Expected shape (paper): hash join is unchanged vs Figure 7 while track
join loses its locality advantage yet still undercuts hash join because
X's payloads are wide relative to its 30-bit keys.
"""

from repro.experiments.figures import run_fig7, run_fig8


def test_fig8(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_fig8(scale_denominator=1024), rounds=1, iterations=1
    )
    record_report(result)
    original = run_fig7(scale_denominator=1024)
    for group in result.groups:
        # Hash join is blind to the shuffle.
        assert abs(
            result.measured(group.label, "HJ") - original.measured(group.label, "HJ")
        ) < 0.02 * result.measured(group.label, "HJ")
        # Track join pays more than with the original ordering.
        assert result.measured(group.label, "2TJ-R") > original.measured(
            group.label, "2TJ-R"
        )
        # ... but still beats hash join (wide payloads, Section 3.1 rule).
        assert result.measured(group.label, "2TJ-R") < result.measured(group.label, "HJ")
