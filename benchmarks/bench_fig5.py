"""Figure 5: both sides repeat 5x, intra-table collocation only."""

from repro.experiments.figures import run_fig5


def test_fig5(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_fig5(scaled_keys=40_000), rounds=1, iterations=1
    )
    record_report(result)
    four_phase = [result.measured(g.label, "4TJ") for g in result.groups]
    assert four_phase[0] < four_phase[1] < four_phase[2]
