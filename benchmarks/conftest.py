"""Benchmark harness support.

Every benchmark reproduces one paper table/figure, records its runtime
with pytest-benchmark, and registers the rendered paper-vs-measured
report here; the reports are printed in the terminal summary so
``pytest benchmarks/ --benchmark-only`` regenerates the paper's
evaluation as readable output.
"""

from __future__ import annotations

import pytest

from repro.experiments import render

_collected_reports: list[str] = []


@pytest.fixture
def record_report():
    """Register an ExperimentResult for the end-of-run summary."""

    def _record(result):
        _collected_reports.append(render(result))
        return result

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _collected_reports:
        return
    terminalreporter.write_sep("=", "paper reproduction reports")
    for text in _collected_reports:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)
