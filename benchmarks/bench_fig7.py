"""Figure 7: workload X Q1 under three encodings, original ordering.

Expected shape (paper): variable-byte is the most expensive encoding,
dictionary the cheapest; track join beats hash join under every
encoding thanks to pre-existing locality, and compressing the key
columns (dictionary) benefits track join disproportionately because
the tracking phase is pure keys.
"""

from repro.experiments.figures import run_fig7


def test_fig7(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_fig7(scale_denominator=1024), rounds=1, iterations=1
    )
    record_report(result)
    for group in result.groups:
        assert result.measured(group.label, "2TJ-R") < result.measured(group.label, "HJ")
    hj = {g.label: result.measured(g.label, "HJ") for g in result.groups}
    assert hj["dictionary encoding"] < hj["fixed encoding"] < hj["varbyte encoding"]
