"""Table 3: distributed hash join per-step seconds."""

from repro.experiments.tables import run_table3


def test_table3(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_table3(scale_x=1024, scale_y=256), rounds=1, iterations=1
    )
    record_report(result)
    for group in result.groups:
        # The dominant steps — the tuple transfers — must match closely.
        for step in ("Transfer R tuples", "Transfer S tuples"):
            row = result.row(group.label, step)
            assert abs(row.measured - row.paper) / row.paper < 0.1, (
                f"{group.label}/{step}"
            )
