"""Table 2: CPU & network seconds per algorithm on X and Y (4 nodes).

Expected shape (paper): hash join network time dwarfs CPU everywhere;
track join cuts X's network time by ~56% (original) / ~29% (shuffled)
and Y's by ~64% (original), while only 4-phase helps on shuffled Y
(~40% reduction at ~9% extra CPU).
"""

from repro.experiments.tables import run_table2


def test_table2(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_table2(scale_x=1024, scale_y=256), rounds=1, iterations=1
    )
    record_report(result)
    for group in result.groups:
        if "projection" in group.label:
            continue
        for row in group.rows:
            assert row.ratio is not None and 0.5 < row.ratio < 2.0, (
                f"{group.label}/{row.label}: ratio {row.ratio}"
            )
    # Headline claims.
    assert result.measured("X original", "2TJ Network") < 0.55 * result.measured(
        "X original", "HJ Network"
    )
    assert result.measured("Y shuffled", "4TJ Network") < 0.75 * result.measured(
        "Y shuffled", "HJ Network"
    )
