"""Ablation: location-message width M (Section 2.2 cost terms).

Track join's schedules charge ``Rnodes * Snodes * M`` per key for
location messages; the paper uses 1-byte node ids.  This sweep shows
how wider ids (larger clusters, richer metadata) erode — but do not
eliminate — track join's advantage, and that the Section 2.4 grouped
form flattens the dependence.
"""

from repro import JoinSpec, TrackJoin4
from repro.cluster import MessageClass
from repro.experiments.report import ExperimentResult, Group, Row
from repro.workloads import unique_keys_workload

GIB = 2.0**30


def run_ablation(scaled_tuples: int = 100_000) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ablation-M",
        title="4TJ traffic vs location message width M (Fig 3 workload, 20/60 B)",
        unit="GiB (paper scale)",
    )
    workload = unique_keys_workload(scaled_tuples=scaled_tuples)
    for grouped in (False, True):
        group = Group(label="grouped locations" if grouped else "plain locations")
        for width in (1.0, 2.0, 4.0, 8.0):
            spec = JoinSpec(
                materialize=False, location_width=width, group_locations=grouped
            )
            run = TrackJoin4().run(workload.cluster, workload.table_r, workload.table_s, spec)
            group.rows.append(
                Row(
                    f"M = {width:.0f} B",
                    run.network_bytes * workload.scale / GIB,
                    breakdown={
                        "Keys & Nodes": run.class_bytes(MessageClass.KEYS_NODES)
                        * workload.scale
                        / GIB
                    },
                )
            )
        result.groups.append(group)
    return result


def test_ablation_message_size(benchmark, record_report):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    record_report(result)
    plain = [row.measured for row in result.groups[0].rows]
    grouped = [row.measured for row in result.groups[1].rows]
    assert plain == sorted(plain)  # traffic grows with M
    # Grouping amortizes node labels, so it is never worse.
    for p, g in zip(plain, grouped):
        assert g <= p
