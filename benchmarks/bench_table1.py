"""Table 1: the workload X Q1 surrogate's column statistics."""

from repro.experiments.tables import run_table1


def test_table1(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_table1(scale_denominator=512), rounds=1, iterations=1
    )
    record_report(result)
    for group in result.groups:
        for row in group.rows:
            assert abs(row.measured - row.paper) / max(row.paper, 1) < 0.05, (
                f"{group.label}/{row.label}"
            )
