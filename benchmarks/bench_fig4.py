"""Figure 4: single-side repeated keys across placement patterns.

Expected shape (paper): with all five repeats collocated (5,0,0,...)
track join ships each R tuple to exactly one node; traffic grows as the
repeats spread, and at 1,1,1,1,1 the naive selective broadcast pays per
holder while 4-phase consolidates first.
"""

from repro.experiments.figures import run_fig4


def test_fig4(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_fig4(scaled_keys=100_000), rounds=1, iterations=1
    )
    record_report(result)
    four_phase = [result.measured(g.label, "4TJ") for g in result.groups]
    assert four_phase[0] < four_phase[1] < four_phase[2]
    # Fully collocated repeats: 4TJ well below hash join.
    assert four_phase[0] < 0.7 * result.measured(result.groups[0].label, "HJ")
