"""Ablation: pipelined (overlapped) execution bound (Section 5).

The paper's implementation is de-pipelined (CPU and network times add
up); Section 5 notes a pipelined implementation could overlap them.
This bench computes both bounds from the same execution profiles on
the Table 2 configurations: on the network-bound 1 GbE cluster overlap
barely helps (transfers dominate), but on a 10x faster network the CPU
of track join starts to matter and overlap recovers most of it.
"""

from repro import JoinSpec, TrackJoin2, paper_cluster_2014, scaled_network
from repro.experiments.report import ExperimentResult, Group, Row
from repro.joins.grace_hash import GraceHashJoin
from repro.workloads import workload_x


def run_ablation(scale_x: int = 2048) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ablation-pipelining",
        title="De-pipelined vs fully-overlapped execution bounds (X original)",
        unit="seconds (modeled, paper scale)",
    )
    workload = workload_x(
        query=1,
        num_nodes=4,
        scale_denominator=scale_x,
        ordering="original",
        implementation_widths=True,
    )
    spec = JoinSpec(materialize=False)
    base = paper_cluster_2014(4)
    fast = scaled_network(base, 10.0)
    for label, model in (("1 GbE", base), ("10x network", fast)):
        group = Group(label=label)
        for algorithm in (GraceHashJoin(), TrackJoin2("RS")):
            run = algorithm.run(workload.cluster, workload.table_r, workload.table_s, spec)
            sequential = model.total_seconds(run.profile) * workload.scale
            overlapped = model.total_seconds(run.profile, overlap=True) * workload.scale
            group.rows.append(Row(f"{run.algorithm} de-pipelined", sequential))
            group.rows.append(Row(f"{run.algorithm} overlapped", overlapped))
        result.groups.append(group)
    return result


def test_ablation_pipelining(benchmark, record_report):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    record_report(result)
    for group in result.groups:
        for algorithm in ("HJ", "2TJ-R"):
            sequential = result.measured(group.label, f"{algorithm} de-pipelined")
            overlapped = result.measured(group.label, f"{algorithm} overlapped")
            assert overlapped <= sequential
            assert overlapped >= sequential / 2  # max(a,b) >= (a+b)/2
    # Overlap matters more when the network is no longer the bottleneck.
    slow_gain = 1 - result.measured("1 GbE", "2TJ-R overlapped") / result.measured(
        "1 GbE", "2TJ-R de-pipelined"
    )
    fast_gain = 1 - result.measured(
        "10x network", "2TJ-R overlapped"
    ) / result.measured("10x network", "2TJ-R de-pipelined")
    assert fast_gain > slow_gain
