"""Figure 6: both sides repeat 5x, inter & intra collocation.

Expected shape (paper): with all ten matching tuples collocated track
join eliminates all payload transfers — only tracking traffic remains.
"""

from repro.experiments.figures import run_fig6


def test_fig6(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_fig6(scaled_keys=40_000), rounds=1, iterations=1
    )
    record_report(result)
    collocated = result.row(result.groups[0].label, "4TJ")
    assert collocated.breakdown["R Tuples"] == 0.0
    assert collocated.breakdown["S Tuples"] == 0.0
