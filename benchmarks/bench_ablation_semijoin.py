"""Ablation: semi-join Bloom filtering vs track join (Section 3.3).

On a selective join (10% of keys match), Bloom filtering rescues hash
join from shipping non-matching tuples — but track join's tracking
phase already performs perfect semi-join filtering, so adding Bloom
filters to it only pays the filter broadcast.
"""

import numpy as np

from repro import Cluster, GraceHashJoin, JoinSpec, Schema, TrackJoin2, random_uniform
from repro.experiments.report import ExperimentResult, Group, Row
from repro.joins import SemiJoinFilteredJoin


def run_ablation(tuples: int = 200_000) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ablation-semijoin",
        title="Semi-join filtering on a 10%-selective join (8 nodes)",
        unit="MB",
    )
    cluster = Cluster(8)
    schema_r = Schema.with_widths(32, 64)
    schema_s = Schema.with_widths(32, 192)
    keys_r = np.arange(tuples, dtype=np.int64)
    keys_s = np.arange(int(tuples * 0.9), int(tuples * 1.9), dtype=np.int64)
    table_r = cluster.table_from_assignment(
        "R", schema_r, keys_r, random_uniform(len(keys_r), 8, 1)
    )
    table_s = cluster.table_from_assignment(
        "S", schema_s, keys_s, random_uniform(len(keys_s), 8, 2)
    )
    spec = JoinSpec(materialize=False)
    group = Group(label="10% input selectivity")
    for algorithm in (
        GraceHashJoin(),
        SemiJoinFilteredJoin(GraceHashJoin()),
        TrackJoin2("RS"),
        SemiJoinFilteredJoin(TrackJoin2("RS")),
    ):
        run = algorithm.run(cluster, table_r, table_s, spec)
        group.rows.append(Row(run.algorithm, run.network_bytes / 1e6))
    result.groups.append(group)
    return result


def test_ablation_semijoin(benchmark, record_report):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    record_report(result)
    rows = {row.label: row.measured for row in result.groups[0].rows}
    # Filtering pays off for hash join on selective inputs...
    assert rows["BF+HJ"] < rows["HJ"]
    # ...but plain track join already beats even the filtered hash join,
    assert rows["2TJ-R"] < rows["BF+HJ"]
    # and adding filters to track join only adds the broadcast cost.
    assert rows["BF+2TJ-R"] >= rows["2TJ-R"]
