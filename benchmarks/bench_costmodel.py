"""Validation: Section 3.1 analytic formulas vs the simulator.

The query optimizer relies on the closed-form costs; this bench checks
them against measured traffic on uniform-random placements (the regime
the formulas model) across several width configurations.
"""

import numpy as np

from repro import Cluster, GraceHashJoin, JoinSpec, Schema, TrackJoin2, random_uniform
from repro.costmodel import JoinStats, hash_join_cost, track2_cost
from repro.experiments.report import ExperimentResult, Group, Row


def run_validation(tuples: int = 100_000) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="costmodel-validation",
        title="Analytic traffic formulas vs simulation (uniform placement)",
        unit="MB",
        notes="'paper' column holds the closed-form prediction.",
    )
    for payload_r, payload_s in ((16, 56), (8, 8), (36, 56)):
        cluster = Cluster(16)
        keys = np.arange(tuples, dtype=np.int64)
        schema_r = Schema.with_widths(32, payload_r * 8)
        schema_s = Schema.with_widths(32, payload_s * 8)
        table_r = cluster.table_from_assignment(
            "R", schema_r, keys, random_uniform(tuples, 16, 1)
        )
        table_s = cluster.table_from_assignment(
            "S", schema_s, keys, random_uniform(tuples, 16, 2)
        )
        stats = JoinStats(
            num_nodes=16,
            tuples_r=tuples,
            tuples_s=tuples,
            distinct_r=tuples,
            distinct_s=tuples,
            key_width=4,
            payload_r=payload_r,
            payload_s=payload_s,
        )
        spec = JoinSpec(materialize=False)
        group = Group(label=f"wR={payload_r} B, wS={payload_s} B")
        measured_hj = GraceHashJoin().run(cluster, table_r, table_s, spec).network_bytes
        group.rows.append(
            Row(
                "HJ",
                measured_hj / 1e6,
                paper=hash_join_cost(stats, include_local_discount=True) / 1e6,
            )
        )
        measured_tj = TrackJoin2("RS").run(cluster, table_r, table_s, spec).network_bytes
        group.rows.append(
            Row("2TJ-R", measured_tj / 1e6, paper=track2_cost(stats, "RS") / 1e6)
        )
        result.groups.append(group)
    return result


def test_costmodel_validation(benchmark, record_report):
    result = benchmark.pedantic(run_validation, rounds=1, iterations=1)
    record_report(result)
    for group in result.groups:
        for row in group.rows:
            assert row.ratio is not None and 0.8 < row.ratio < 1.2, (
                f"{group.label}/{row.label}: {row.ratio}"
            )
