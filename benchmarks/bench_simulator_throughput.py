"""Simulator throughput: how fast the library itself runs.

Not a paper reproduction — this measures the Python simulator's own
processing rate (tuples joined per second of wall clock) so users can
size their experiments.  pytest-benchmark measures the joins directly,
with multiple rounds, which is the one place in the suite where its
statistics are the point.
"""

import numpy as np
import pytest

from repro import Cluster, GraceHashJoin, JoinSpec, TrackJoin4
from repro.testing import scatter_tables

_TUPLES = 300_000


@pytest.fixture(scope="module")
def tables():
    cluster = Cluster(8)
    rng = np.random.default_rng(0)
    table_r, table_s = scatter_tables(
        cluster,
        rng.integers(0, _TUPLES // 2, _TUPLES),
        rng.integers(0, _TUPLES // 2, _TUPLES),
    )
    return cluster, table_r, table_s


def test_hash_join_throughput(benchmark, tables):
    cluster, table_r, table_s = tables
    spec = JoinSpec(materialize=False)
    result = benchmark.pedantic(
        lambda: GraceHashJoin().run(cluster, table_r, table_s, spec),
        rounds=3,
        iterations=1,
    )
    assert result.output_rows > 0
    benchmark.extra_info["tuples_per_second"] = (
        2 * _TUPLES / benchmark.stats["mean"] if benchmark.stats else None
    )


def test_track_join_throughput(benchmark, tables):
    cluster, table_r, table_s = tables
    spec = JoinSpec(materialize=False)
    result = benchmark.pedantic(
        lambda: TrackJoin4().run(cluster, table_r, table_s, spec),
        rounds=3,
        iterations=1,
    )
    assert result.output_rows > 0
