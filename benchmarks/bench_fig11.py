"""Figure 11: workload Y, shuffled (all locality removed).

Expected shape (paper): 2-phase track join is prohibitive broadcasting
S to R locations, ~3x hash join in the opposite direction, 3-phase
similar; only 4-phase adapts, transferring ~28% less than hash join.
"""

from repro.experiments.figures import run_fig11


def test_fig11(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_fig11(scale_denominator=256), rounds=1, iterations=1
    )
    record_report(result)
    group = result.groups[0].label
    hj = result.measured(group, "HJ")
    assert result.measured(group, "2TJ-S") > 3 * hj
    assert 1.5 * hj < result.measured(group, "2TJ-R") < 4 * hj
    assert result.measured(group, "3TJ") > 1.5 * hj
    four = result.measured(group, "4TJ")
    assert 0.5 * hj < four < hj  # paper: 28% less than hash join
