"""Concurrent query-service throughput: warm pool + plan cache vs cold.

Drives the mixed query workload of :mod:`repro.serve.bench` through the
one-at-a-time cold baseline and the admission-controlled
:class:`~repro.serve.QueryService`, and merges the ``"serve"`` section
(queries/sec, p50/p99 latency, plan-cache hit rate, core-gated 3x
speedup gate) into ``BENCH_joins.json``.

Run directly (``python benchmarks/bench_serve.py``) or via
``make bench-serve`` / ``python -m repro serve-bench``.
"""

import sys

from repro.serve import bench_serve_report

if __name__ == "__main__":
    kwargs = {}
    for pair in sys.argv[1:]:
        key, _, value = pair.partition("=")
        kwargs[key] = value if not value.lstrip("-").isdigit() else int(value)
    raise SystemExit(bench_serve_report(**kwargs))
