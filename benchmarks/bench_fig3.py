"""Figure 3: synthetic 1e9 x 1e9 unique-key joins, three width ratios.

Expected shape (paper): with 20/60-byte rows track join moves only the
narrow R tuples to the single matching S location, roughly halving hash
join's traffic; the margin narrows as R widens to 60 bytes.  Broadcast
joins are off the chart (printed values 279.4/558.8/838.2 GiB).
"""

from repro.experiments.figures import run_fig3


def test_fig3(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_fig3(scaled_tuples=250_000), rounds=1, iterations=1
    )
    record_report(result)
    for group in result.groups:
        # Broadcast totals are analytic; the simulation must match them.
        for label in ("BJ-R", "BJ-S"):
            row = result.row(group.label, label)
            assert abs(row.measured - row.paper) / row.paper < 0.02
        # Track join beats hash join whenever 2*wk <= max(wR, wS).
        assert result.measured(group.label, "4TJ") < result.measured(group.label, "HJ")
