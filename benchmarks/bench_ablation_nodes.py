"""Ablation: cluster size N.

Hash join's in-place probability is 1/N, so its traffic saturates as N
grows; track join's tracking cost is N-insensitive for unique keys
(nR = 1) while its payload advantage persists.  The paper argues this
in Section 3.1; here we measure it.
"""

from repro import GraceHashJoin, JoinSpec, TrackJoin2
from repro.experiments.report import ExperimentResult, Group, Row
from repro.workloads import unique_keys_workload

GIB = 2.0**30


def run_ablation(scaled_tuples: int = 100_000) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ablation-N",
        title="HJ vs 2TJ-R traffic vs cluster size (Fig 3 workload, 20/60 B)",
        unit="GiB (paper scale)",
    )
    spec = JoinSpec(materialize=False, group_locations=True)
    for num_nodes in (4, 8, 16, 32):
        workload = unique_keys_workload(num_nodes=num_nodes, scaled_tuples=scaled_tuples)
        group = Group(label=f"N = {num_nodes}")
        for algorithm in (GraceHashJoin(), TrackJoin2("RS")):
            run = algorithm.run(workload.cluster, workload.table_r, workload.table_s, spec)
            group.rows.append(Row(run.algorithm, run.network_bytes * workload.scale / GIB))
        result.groups.append(group)
    return result


def test_ablation_nodes(benchmark, record_report):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    record_report(result)
    for group in result.groups:
        hj = result.measured(group.label, "HJ")
        tj = result.measured(group.label, "2TJ-R")
        assert tj < hj, group.label
    # Hash join saturates with N; the advantage never inverts.
    hj_series = [result.measured(g.label, "HJ") for g in result.groups]
    assert hj_series == sorted(hj_series)
