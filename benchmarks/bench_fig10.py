"""Figure 10: workload Y slowest join, original ordering (varbyte).

Expected shape (paper): heavy pre-existing collocation lets every track
join variant move a small fraction of hash join's bytes; broadcast
joins are far off the chart.
"""

from repro.experiments.figures import run_fig10


def test_fig10(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_fig10(scale_denominator=256), rounds=1, iterations=1
    )
    record_report(result)
    group = result.groups[0].label
    hj = result.measured(group, "HJ")
    for variant in ("2TJ-R", "3TJ", "4TJ"):
        assert result.measured(group, variant) < 0.5 * hj, variant
