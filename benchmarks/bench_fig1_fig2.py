"""Figures 1-2: the worked per-key scheduling examples (exact match)."""

from repro.experiments.figures import run_fig1_fig2


def test_fig1_fig2(benchmark, record_report):
    result = benchmark.pedantic(run_fig1_fig2, rounds=3, iterations=1)
    record_report(result)
    for group in result.groups:
        for row in group.rows:
            assert row.measured == row.paper, f"{group.label}/{row.label}"
