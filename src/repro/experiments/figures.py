"""Experiment definitions for every figure of the paper's evaluation.

Each ``run_figN`` function generates the workload, executes the seven
compared algorithms (BJ-R, BJ-S, HJ, 2TJ-R, 2TJ-S, 3TJ, 4TJ — or the
figure's subset), and returns an
:class:`~repro.experiments.report.ExperimentResult` with measured
traffic in GiB at paper scale, the published anchor values where the
paper prints them, and stacked-bar breakdowns by message class.

All runs execute at reduced cardinality; traffic is linear in table
size, so the reported values are scaled by the workload's factor.
``scale`` arguments let callers trade accuracy for speed.
"""

from __future__ import annotations

from ..cluster.network import MessageClass
from ..core.track_join import TrackJoin2, TrackJoin3, TrackJoin4
from ..encoding import DictionaryEncoding, FixedByteEncoding, VarByteEncoding
from ..joins.base import DistributedJoin, JoinSpec
from ..joins.broadcast import BroadcastJoin
from ..joins.grace_hash import GraceHashJoin
from ..workloads.base import Workload
from ..workloads.real import workload_x, workload_y
from ..workloads.synthetic import (
    PATTERN_COLLOCATED,
    PATTERN_PARTIAL,
    PATTERN_SPREAD,
    both_sides_pattern_workload,
    single_side_pattern_workload,
    unique_keys_workload,
)
from . import paperdata
from .report import ExperimentResult, Group, Row

__all__ = [
    "seven_algorithms",
    "run_algorithms",
    "run_fig1_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
]

_GIB = paperdata.GIB

#: Breakdown keys in figure legend order.
_BREAKDOWN = [
    ("Keys & Counts", MessageClass.KEYS_COUNTS),
    ("Keys & Nodes", MessageClass.KEYS_NODES),
    ("R Tuples", MessageClass.R_TUPLES),
    ("S Tuples", MessageClass.S_TUPLES),
]


def seven_algorithms() -> list[DistributedJoin]:
    """The seven algorithms every traffic figure compares."""
    return [
        BroadcastJoin("R"),
        BroadcastJoin("S"),
        GraceHashJoin(),
        TrackJoin2("RS"),
        TrackJoin2("SR"),
        TrackJoin3(),
        TrackJoin4(),
    ]


def run_algorithms(
    workload: Workload,
    spec: JoinSpec,
    algorithms: list[DistributedJoin] | None = None,
    paper: dict[str, float] | None = None,
) -> Group:
    """Run a set of algorithms on one workload; rows in paper-scale GiB."""
    algorithms = algorithms if algorithms is not None else seven_algorithms()
    paper = paper or {}
    group = Group(label=workload.name)
    for algorithm in algorithms:
        result = algorithm.run(workload.cluster, workload.table_r, workload.table_s, spec)
        if workload.expected_output_rows is not None:
            assert result.output_rows == workload.expected_output_rows, (
                f"{algorithm.name} on {workload.name}: {result.output_rows} rows, "
                f"expected {workload.expected_output_rows}"
            )
        breakdown = {
            label: result.class_bytes(category) * workload.scale / _GIB
            for label, category in _BREAKDOWN
        }
        group.rows.append(
            Row(
                label=result.algorithm,
                measured=result.network_bytes * workload.scale / _GIB,
                paper=paper.get(result.algorithm),
                breakdown=breakdown,
            )
        )
    return group


def _figure_spec(**overrides) -> JoinSpec:
    """Simulation defaults: dictionary codes, grouped location messages.

    The paper's simulations apply the Section 2.4 message optimization
    of sending many keys under a single node label, so grouped location
    accounting is the default for figure reproductions.
    """
    defaults = dict(
        encoding=DictionaryEncoding(),
        materialize=False,
        group_locations=True,
    )
    defaults.update(overrides)
    return JoinSpec(**defaults)


def run_fig1_fig2() -> ExperimentResult:
    """Figures 1-2: the worked single-key scheduling examples."""
    from ..core.schedule import (
        migrate_and_broadcast,
        optimal_schedule,
        selective_broadcast_cost,
    )

    result = ExperimentResult(
        experiment_id="fig1-fig2",
        title="Single-key schedule examples",
        unit="cost units",
        notes="Exact worked examples from Figures 1 and 2 (M = 0).",
    )
    sizes_r = {0: 2.0, 2: 4.0}
    sizes_s = {1: 3.0, 3: 1.0}
    fig1 = Group(label="Figure 1 (R=[2,0,4,0,0], S=[0,3,0,1,0])")
    fig1.rows.append(Row("HJ (all to hash node)", 2 + 4 + 3 + 1, paper=10))
    fig1.rows.append(
        Row("2TJ R→S", selective_broadcast_cost(sizes_r, sizes_s, 4), paper=12)
    )
    fig1.rows.append(
        Row("3TJ (S→R)", selective_broadcast_cost(sizes_s, sizes_r, 4), paper=8)
    )
    fig1.rows.append(Row("4TJ", optimal_schedule(sizes_r, sizes_s, 4).plan.cost, paper=6))
    result.groups.append(fig1)

    sizes_r2 = {1: 4.0, 2: 8.0, 3: 9.0, 4: 6.0}
    sizes_s2 = {1: 2.0, 2: 5.0, 3: 3.0, 4: 1.0}
    fig2 = Group(label="Figure 2 (R=[0,4,8,9,6], S=[0,2,5,3,1])")
    fig2.rows.append(
        Row("Selective broadcast S→R", selective_broadcast_cost(sizes_s2, sizes_r2, 0), paper=33)
    )
    plan = migrate_and_broadcast(sizes_s2, sizes_r2, 0)
    fig2.rows.append(Row("After migrations (4 and 6)", plan.cost, paper=24))
    fig2.rows.append(Row("Migration cost", plan.migration_cost, paper=10))
    result.groups.append(fig2)
    return result


def run_fig3(scaled_tuples: int = 250_000, num_nodes: int = 16, seed: int = 0) -> ExperimentResult:
    """Figure 3: 1e9 x 1e9 tuples, unique keys, three width ratios."""
    result = ExperimentResult(
        experiment_id="fig3",
        title="Synthetic 1e9 vs 1e9 tuples with ~1e9 unique join keys",
        unit="GiB (paper scale)",
        notes=f"Simulated at {scaled_tuples} tuples per table, {num_nodes} nodes.",
    )
    for width_r in (20, 40, 60):
        workload = unique_keys_workload(
            num_nodes=num_nodes,
            row_bytes_r=width_r,
            row_bytes_s=60,
            scaled_tuples=scaled_tuples,
            seed=seed,
        )
        group = run_algorithms(
            workload,
            _figure_spec(),
            paper=paperdata.FIG3_BROADCAST_GIB[(width_r, 60)],
        )
        group.label = f"R width = {width_r} B, S width = 60 B"
        result.groups.append(group)
    return result


def run_fig4(scaled_keys: int = 100_000, num_nodes: int = 16, seed: int = 0) -> ExperimentResult:
    """Figure 4: single-side repeated keys across placement patterns."""
    result = ExperimentResult(
        experiment_id="fig4",
        title="2e8 unique R vs 1e9 S (single side intra-table collocated)",
        unit="GiB (paper scale)",
        notes=f"Simulated at {scaled_keys} distinct keys, {num_nodes} nodes.",
    )
    for pattern in (PATTERN_COLLOCATED, PATTERN_PARTIAL, PATTERN_SPREAD):
        workload = single_side_pattern_workload(
            pattern, num_nodes=num_nodes, scaled_keys=scaled_keys, seed=seed
        )
        group = run_algorithms(workload, _figure_spec(), paper=paperdata.FIG4_BROADCAST_GIB)
        group.label = f"Pattern: {','.join(map(str, pattern))},0,..."
        result.groups.append(group)
    return result


def _run_fig5_or_6(
    inter: bool, scaled_keys: int, num_nodes: int, seed: int
) -> ExperimentResult:
    figure = "fig6" if inter else "fig5"
    result = ExperimentResult(
        experiment_id=figure,
        title=(
            "2e8 tuples per table, 4e7 unique keys "
            f"({'inter & intra' if inter else 'intra'} collocated)"
        ),
        unit="GiB (paper scale)",
        notes=f"Simulated at {scaled_keys} distinct keys, {num_nodes} nodes.",
    )
    for pattern in (PATTERN_COLLOCATED, PATTERN_PARTIAL, PATTERN_SPREAD):
        workload = both_sides_pattern_workload(
            pattern,
            inter_collocated=inter,
            num_nodes=num_nodes,
            scaled_keys=scaled_keys,
            seed=seed,
        )
        group = run_algorithms(workload, _figure_spec(), paper=paperdata.FIG5_BROADCAST_GIB)
        group.label = f"Pattern: {','.join(map(str, pattern))},0,..."
        result.groups.append(group)
    return result


def run_fig5(scaled_keys: int = 40_000, num_nodes: int = 16, seed: int = 0) -> ExperimentResult:
    """Figure 5: both sides repeat 5x, intra-table collocation only."""
    return _run_fig5_or_6(False, scaled_keys, num_nodes, seed)


def run_fig6(scaled_keys: int = 40_000, num_nodes: int = 16, seed: int = 0) -> ExperimentResult:
    """Figure 6: both sides repeat 5x, inter & intra-table collocation."""
    return _run_fig5_or_6(True, scaled_keys, num_nodes, seed)


_ENCODINGS = {
    "fixed": FixedByteEncoding,
    "varbyte": VarByteEncoding,
    "dictionary": DictionaryEncoding,
}


def _run_fig7_or_8(
    ordering: str, scale_denominator: int, num_nodes: int, seed: int
) -> ExperimentResult:
    figure = "fig7" if ordering == "original" else "fig8"
    result = ExperimentResult(
        experiment_id=figure,
        title=f"Workload X Q1 slowest join, {ordering} tuple ordering",
        unit="GiB (paper scale)",
        notes=f"Surrogate at 1/{scale_denominator} scale, {num_nodes} nodes.",
    )
    workload = workload_x(
        query=1,
        num_nodes=num_nodes,
        scale_denominator=scale_denominator,
        ordering=ordering,
        seed=seed,
    )
    for name, encoding_cls in _ENCODINGS.items():
        group = run_algorithms(
            workload,
            _figure_spec(encoding=encoding_cls()),
            paper=paperdata.FIG7_OFFCHART_GIB[name],
        )
        group.label = f"{name} encoding"
        result.groups.append(group)
    return result


def run_fig7(scale_denominator: int = 1024, num_nodes: int = 16, seed: int = 0) -> ExperimentResult:
    """Figure 7: X Q1 traffic under three encodings, original ordering."""
    return _run_fig7_or_8("original", scale_denominator, num_nodes, seed)


def run_fig8(scale_denominator: int = 1024, num_nodes: int = 16, seed: int = 0) -> ExperimentResult:
    """Figure 8: same as Figure 7 with locality shuffled away."""
    return _run_fig7_or_8("shuffled", scale_denominator, num_nodes, seed)


def run_fig9(scale_denominator: int = 1024, num_nodes: int = 16, seed: int = 0) -> ExperimentResult:
    """Figure 9: HJ vs TJ on queries Q1-Q5, optimal dictionary codes.

    The paper value attached to the track join row is the traffic hash
    join would have to beat given the published reduction percentage.
    """
    result = ExperimentResult(
        experiment_id="fig9",
        title="Common slowest join of queries Q1-Q5, workload X",
        unit="GiB (paper scale)",
        notes=f"Surrogates at 1/{scale_denominator} scale; dictionary codes.",
    )
    for query in range(1, 6):
        workload = workload_x(
            query=query,
            num_nodes=num_nodes,
            scale_denominator=scale_denominator,
            ordering="original",
            seed=seed,
        )
        spec = _figure_spec()
        group = Group(label=f"Q{query}")
        hash_result = GraceHashJoin().run(
            workload.cluster, workload.table_r, workload.table_s, spec
        )
        # Both inputs have almost entirely unique keys, so the paper notes
        # all track join versions perform alike and the 2-phase variant
        # (broadcasting the shorter R tuples) suffices.
        track_result = TrackJoin2("RS").run(
            workload.cluster, workload.table_r, workload.table_s, spec
        )
        hash_gib = hash_result.network_bytes * workload.scale / _GIB
        track_gib = track_result.network_bytes * workload.scale / _GIB
        group.rows.append(Row("Hash Join", hash_gib))
        group.rows.append(
            Row(
                "Track Join",
                track_gib,
                paper=hash_gib * (1 - paperdata.FIG9_REDUCTION[query]),
            )
        )
        group.rows.append(
            Row(
                "traffic reduction (%)",
                100 * (1 - track_gib / hash_gib),
                paper=100 * paperdata.FIG9_REDUCTION[query],
            )
        )
        result.groups.append(group)
    return result


def _run_fig10_or_11(
    ordering: str, scale_denominator: int, num_nodes: int, seed: int
) -> ExperimentResult:
    figure = "fig10" if ordering == "original" else "fig11"
    result = ExperimentResult(
        experiment_id=figure,
        title=f"Workload Y slowest join, {ordering} tuple ordering (varbyte)",
        unit="GiB (paper scale)",
        notes=f"Surrogate at 1/{scale_denominator} scale, {num_nodes} nodes.",
    )
    workload = workload_y(
        num_nodes=num_nodes,
        scale_denominator=scale_denominator,
        ordering=ordering,
        seed=seed,
    )
    spec = _figure_spec(
        encoding=VarByteEncoding(), count_width_r=2.0, count_width_s=2.0
    )
    group = run_algorithms(workload, spec, paper=paperdata.FIG10_OFFCHART_GIB)
    result.groups.append(group)
    return result


def run_fig10(scale_denominator: int = 256, num_nodes: int = 16, seed: int = 0) -> ExperimentResult:
    """Figure 10: workload Y, original tuple ordering."""
    return _run_fig10_or_11("original", scale_denominator, num_nodes, seed)


def run_fig11(scale_denominator: int = 256, num_nodes: int = 16, seed: int = 0) -> ExperimentResult:
    """Figure 11: workload Y, shuffled (all locality removed)."""
    return _run_fig10_or_11("shuffled", scale_denominator, num_nodes, seed)
