"""Experiment registry: every paper table and figure by id.

``EXPERIMENTS`` maps an experiment id ("fig3", "table2", ...) to the
callable that reproduces it.  :func:`run_experiment` executes one and
:func:`run_all` sweeps the registry — which is exactly what
``EXPERIMENTS.md`` is generated from.
"""

from __future__ import annotations

from typing import Callable
from ..errors import UnknownKeyError

from .figures import (
    run_fig1_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
)
from .report import ExperimentResult, render
from .tables import run_table1, run_table2, run_table3, run_table4

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig1-fig2": run_fig1_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
}


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one registered experiment by id."""
    if experiment_id not in EXPERIMENTS:
        raise UnknownKeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id](**kwargs)


def run_all(verbose: bool = True) -> dict[str, ExperimentResult]:
    """Run every registered experiment; print reports when verbose."""
    results = {}
    for experiment_id in EXPERIMENTS:
        result = run_experiment(experiment_id)
        results[experiment_id] = result
        if verbose:
            print(render(result))
            print()
    return results
