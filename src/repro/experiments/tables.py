"""Experiment definitions for Tables 1-4 of the paper.

Table 1 checks the workload-X surrogate against the published column
statistics.  Tables 2-4 reproduce the implementation study (Section
4.2): joins run on a 4-node cluster with the C++ implementation's fixed
tuple widths, their execution profiles are converted to seconds by the
calibrated :func:`~repro.timing.hardware.paper_cluster_2014` model, and
the resulting step timings are compared with the published ones.
"""

from __future__ import annotations

import numpy as np

from ..joins.base import JoinSpec
from ..joins.registry import ALGORITHMS, create
from ..timing.hardware import HardwareModel, paper_cluster_2014, scaled_network
from ..workloads.base import Workload
from ..workloads.real import workload_x, workload_y
from . import paperdata
from .report import ExperimentResult, Group, Row

__all__ = ["run_table1", "run_table2", "run_table3", "run_table4"]

_ORDER_COLUMNS = {"X": {"original": 0, "shuffled": 1}, "Y": {"original": 2, "shuffled": 3}}


def run_table1(scale_denominator: int = 512, seed: int = 0) -> ExperimentResult:
    """Table 1: column statistics of the workload X Q1 surrogate."""
    workload = workload_x(
        query=1, scale_denominator=scale_denominator, ordering="original", seed=seed
    )
    result = ExperimentResult(
        experiment_id="table1",
        title="Workload X Q1 column statistics (surrogate vs paper)",
        unit=f"distinct values at 1/{scale_denominator} scale",
        notes="Paper values are the published counts scaled to the run size; "
        "dimension columns (<= 1000 distinct) keep their full cardinality.",
    )
    for side, table in (("R", workload.table_r), ("S", workload.table_s)):
        group = Group(label=f"{side} ({paperdata.TABLE1[side]['tuples']:,} paper tuples)")
        gathered = table.gathered()
        group.rows.append(
            Row(
                "tuples",
                float(table.total_rows),
                paper=paperdata.TABLE1[side]["tuples"] / scale_denominator,
            )
        )
        for name, paper_distinct, _bits in paperdata.TABLE1[side]["columns"]:
            if name.endswith("(key)"):
                measured = float(len(np.unique(gathered.keys)))
            else:
                measured = float(len(np.unique(gathered.columns[name])))
            if paper_distinct <= 1000:
                target = float(paper_distinct)
            else:
                target = max(1000.0, paper_distinct / scale_denominator)
            group.rows.append(Row(name, measured, paper=target))
        result.groups.append(group)
    out_group = Group(label="join output")
    spec = JoinSpec(materialize=False)
    joined = create("HJ").run(workload.cluster, workload.table_r, workload.table_s, spec)
    out_group.rows.append(
        Row(
            "output tuples",
            float(joined.output_rows),
            paper=paperdata.TABLE1["output"] / scale_denominator,
        )
    )
    result.groups.append(out_group)
    return result


def _timing_workloads(
    scale_x: int, scale_y: int, seed: int
) -> list[tuple[str, str, Workload, JoinSpec]]:
    """The four implementation configurations of Tables 2-4 (4 nodes)."""
    configs = []
    for ordering in ("original", "shuffled"):
        wl = workload_x(
            query=1,
            num_nodes=4,
            scale_denominator=scale_x,
            ordering=ordering,
            seed=seed,
            implementation_widths=True,
        )
        configs.append(("X", ordering, wl, JoinSpec(materialize=False)))
    for ordering in ("original", "shuffled"):
        wl = workload_y(
            num_nodes=4,
            scale_denominator=scale_y,
            ordering=ordering,
            seed=seed,
            implementation_widths=True,
        )
        spec = JoinSpec(materialize=False, count_width_r=2.0, count_width_s=2.0)
        configs.append(("Y", ordering, wl, spec))
    return configs


def run_table2(
    scale_x: int = 1024,
    scale_y: int = 256,
    seed: int = 0,
    model: HardwareModel | None = None,
) -> ExperimentResult:
    """Table 2: CPU and network seconds per algorithm and workload."""
    model = model or paper_cluster_2014(num_nodes=4)
    result = ExperimentResult(
        experiment_id="table2",
        title="CPU & network time on the slowest join of X and Y (4 nodes)",
        unit="seconds (modeled)",
        notes="Profiles from scaled runs, converted by the calibrated hardware "
        "model and scaled to paper cardinality.",
    )
    # The implementation study measures the registry entries carrying a
    # paper table label, under that label, in registry order.
    algorithms = {
        info.paper_label: info.factory
        for info in ALGORITHMS
        if info.paper_label is not None
    }
    for workload_name, ordering, workload, spec in _timing_workloads(scale_x, scale_y, seed):
        group = Group(label=f"{workload_name} {ordering}")
        for label, factory in algorithms.items():
            run = factory().run(workload.cluster, workload.table_r, workload.table_s, spec)
            cpu = model.cpu_seconds(run.profile) * workload.scale
            net = model.network_seconds(run.profile) * workload.scale
            paper_cpu, paper_net = paperdata.TABLE2[(workload_name, ordering, label)]
            group.rows.append(Row(f"{label} CPU", cpu, paper=paper_cpu))
            group.rows.append(Row(f"{label} Network", net, paper=paper_net))
        result.groups.append(group)

    # Section 4.2 projection: total time on a 10x faster network, best
    # track join variant vs hash join, original ordering.
    projection = Group(label="10x faster network projection (original ordering)")
    fast = scaled_network(model, 10.0)
    for workload_name, best in (("X", "2TJ"), ("Y", "4TJ")):
        hj_row_cpu = result.row(f"{workload_name} original", "HJ CPU").measured
        hj_row_net = result.row(f"{workload_name} original", "HJ Network").measured
        tj_row_cpu = result.row(f"{workload_name} original", f"{best} CPU").measured
        tj_row_net = result.row(f"{workload_name} original", f"{best} Network").measured
        hj_total = hj_row_cpu + hj_row_net / 10
        tj_total = tj_row_cpu + tj_row_net / 10
        projection.rows.append(
            Row(
                f"{workload_name}: track join speedup (%)",
                100 * (1 - tj_total / hj_total),
                paper=100 * paperdata.PROJECTION_10X[workload_name],
            )
        )
    result.groups.append(projection)
    return result


def _step_table(
    experiment_id: str,
    title: str,
    algorithm_factory,
    paper_steps: dict[str, tuple[float, float, float, float]],
    merge_steps: dict[str, tuple[str, ...]],
    scale_x: int,
    scale_y: int,
    seed: int,
    model: HardwareModel | None,
) -> ExperimentResult:
    """Shared driver for the per-step timing tables (3 and 4)."""
    model = model or paper_cluster_2014(num_nodes=4)
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        unit="seconds (modeled)",
        notes="Step names follow the paper; zeros mean the step had no work "
        "in this configuration.",
    )
    for workload_name, ordering, workload, spec in _timing_workloads(scale_x, scale_y, seed):
        run = algorithm_factory().run(
            workload.cluster, workload.table_r, workload.table_s, spec
        )
        timings: dict[str, float] = {}
        for step in run.profile.steps:
            timings[step.name] = timings.get(step.name, 0.0) + (
                model.step_seconds(step) * workload.scale
            )
        column = _ORDER_COLUMNS[workload_name][ordering]
        group = Group(label=f"{workload_name} {ordering}")
        for paper_name, paper_values in paper_steps.items():
            sources = merge_steps.get(paper_name, (paper_name,))
            measured = sum(timings.pop(name, 0.0) for name in sources)
            group.rows.append(Row(paper_name, measured, paper=paper_values[column]))
        for leftover, seconds in timings.items():
            group.rows.append(Row(f"(extra) {leftover}", seconds))
        result.groups.append(group)
    return result


def run_table3(
    scale_x: int = 1024,
    scale_y: int = 256,
    seed: int = 0,
    model: HardwareModel | None = None,
) -> ExperimentResult:
    """Table 3: distributed hash join per-step seconds."""
    return _step_table(
        "table3",
        "Distributed hash join steps",
        lambda: create("HJ"),
        paperdata.TABLE3,
        {"Local copy tuples": ("Local copy R tuples", "Local copy S tuples")},
        scale_x,
        scale_y,
        seed,
        model,
    )


def run_table4(
    scale_x: int = 1024,
    scale_y: int = 256,
    seed: int = 0,
    model: HardwareModel | None = None,
) -> ExperimentResult:
    """Table 4: 4-phase track join per-step seconds."""
    return _step_table(
        "table4",
        "Track join (4-phase) steps",
        lambda: create("4TJ"),
        paperdata.TABLE4,
        {},
        scale_x,
        scale_y,
        seed,
        model,
    )
