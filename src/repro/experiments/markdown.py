"""Generate the paper-vs-measured section of ``EXPERIMENTS.md``.

``EXPERIMENTS.md`` embeds the full text reports of every registered
experiment.  This module regenerates that block so the document stays
reproducible::

    python -c "from repro.experiments.markdown import write_reports; write_reports('reports.txt')"

The benchmark-scale parameters used for the committed document are
recorded here as :data:`DOCUMENT_PARAMS`.
"""

from __future__ import annotations

from .report import render
from .runner import EXPERIMENTS

__all__ = ["DOCUMENT_PARAMS", "generate_reports", "write_reports"]

#: Per-experiment parameters used for the committed EXPERIMENTS.md
#: (matching the benchmark defaults).
DOCUMENT_PARAMS: dict[str, dict] = {
    "fig3": {"scaled_tuples": 250_000},
    "fig4": {"scaled_keys": 100_000},
    "fig5": {"scaled_keys": 40_000},
    "fig6": {"scaled_keys": 40_000},
    "fig7": {"scale_denominator": 1024},
    "fig8": {"scale_denominator": 1024},
    "fig9": {"scale_denominator": 1024},
    "fig10": {"scale_denominator": 256},
    "fig11": {"scale_denominator": 256},
    "table1": {"scale_denominator": 512},
    "table2": {"scale_x": 1024, "scale_y": 256},
    "table3": {"scale_x": 1024, "scale_y": 256},
    "table4": {"scale_x": 1024, "scale_y": 256},
}


def generate_reports(params: dict[str, dict] | None = None) -> str:
    """Run every experiment and concatenate the rendered reports."""
    params = DOCUMENT_PARAMS if params is None else params
    blocks = []
    for experiment_id, runner in EXPERIMENTS.items():
        result = runner(**params.get(experiment_id, {}))
        blocks.append(render(result))
    return "\n\n".join(blocks) + "\n"


def write_reports(path: str, params: dict[str, dict] | None = None) -> None:
    """Write the concatenated reports to ``path``."""
    with open(path, "w") as handle:
        handle.write(generate_reports(params))
