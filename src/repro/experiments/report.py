"""Result containers and plain-text rendering for experiment runs.

Every experiment produces an :class:`ExperimentResult`: groups of rows,
each row holding a measured value and (when the paper prints one) the
published value.  :func:`render` turns it into an aligned text table the
benchmarks print, so ``pytest benchmarks/ --benchmark-only`` regenerates
the paper's tables and figures as readable output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from ..errors import UnknownKeyError

__all__ = ["Row", "Group", "ExperimentResult", "render", "render_bars", "to_dict"]


@dataclass
class Row:
    """One measured series entry (one bar of a figure, one table cell)."""

    label: str
    measured: float
    paper: float | None = None
    #: Optional stacked-bar breakdown (message class -> value).
    breakdown: dict[str, float] | None = None

    @property
    def ratio(self) -> float | None:
        """measured / paper, when the paper value exists and is nonzero."""
        if self.paper is None or self.paper == 0:
            return None
        return self.measured / self.paper


@dataclass
class Group:
    """A labelled group of rows (one panel of a figure, one table block)."""

    label: str
    rows: list[Row] = field(default_factory=list)


@dataclass
class ExperimentResult:
    """Everything one experiment reproduced."""

    experiment_id: str
    title: str
    unit: str
    groups: list[Group] = field(default_factory=list)
    notes: str = ""

    def row(self, group_label: str, row_label: str) -> Row:
        """Look up one row (test helper)."""
        for group in self.groups:
            if group.label == group_label:
                for row in group.rows:
                    if row.label == row_label:
                        return row
        raise UnknownKeyError(f"{self.experiment_id}: no row {group_label!r}/{row_label!r}")

    def measured(self, group_label: str, row_label: str) -> float:
        """Measured value of one row (test helper)."""
        return self.row(group_label, row_label).measured


def _format_value(value: float | None) -> str:
    if value is None:
        return "-"
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    return f"{value:.3f}"


def render(result: ExperimentResult) -> str:
    """Render an experiment result as an aligned text report."""
    lines = [
        f"== {result.experiment_id}: {result.title} (unit: {result.unit}) ==",
    ]
    if result.notes:
        lines.append(result.notes)
    label_width = max(
        [len(row.label) for group in result.groups for row in group.rows] + [8]
    )
    for group in result.groups:
        lines.append(f"-- {group.label} --")
        header = f"  {'series':<{label_width}} {'measured':>12} {'paper':>12} {'ratio':>7}"
        lines.append(header)
        for row in group.rows:
            ratio = row.ratio
            lines.append(
                f"  {row.label:<{label_width}} "
                f"{_format_value(row.measured):>12} "
                f"{_format_value(row.paper):>12} "
                f"{(f'{ratio:.2f}' if ratio is not None else '-'):>7}"
            )
            if row.breakdown:
                parts = ", ".join(
                    f"{k}={_format_value(v)}" for k, v in row.breakdown.items() if v
                )
                lines.append(f"  {'':<{label_width}}   [{parts}]")
    return "\n".join(lines)


_BAR_GLYPHS = ("#", "=", ":", ".", "+", "~")


def render_bars(result: ExperimentResult, width: int = 60) -> str:
    """Render an experiment as ASCII stacked bars (one per row).

    Each row becomes a horizontal bar scaled to the largest on-chart
    measurement in its group; breakdown components get distinct glyphs
    in legend order, mirroring the paper's stacked bar charts.
    """
    lines = [f"== {result.experiment_id}: {result.title} (unit: {result.unit}) =="]
    for group in result.groups:
        lines.append(f"-- {group.label} --")
        measured = [row.measured for row in group.rows if row.measured > 0]
        if not measured:
            continue
        scale = width / max(measured)
        label_width = max(len(row.label) for row in group.rows)
        legend: dict[str, str] = {}
        for row in group.rows:
            if row.breakdown:
                segments = []
                for index, (name, value) in enumerate(row.breakdown.items()):
                    glyph = _BAR_GLYPHS[index % len(_BAR_GLYPHS)]
                    legend.setdefault(name, glyph)
                    segments.append(glyph * int(round(value * scale)))
                bar = "".join(segments)[: width * 2]
            else:
                bar = "#" * int(round(row.measured * scale))
            lines.append(
                f"  {row.label:<{label_width}} |{bar} {_format_value(row.measured)}"
            )
        if legend:
            lines.append(
                "  legend: " + ", ".join(f"{g}={n}" for n, g in legend.items())
            )
    return "\n".join(lines)


def to_dict(result: ExperimentResult) -> dict:
    """JSON-serializable form of an experiment result.

    Useful for exporting measurements to external plotting tools; the
    inverse of nothing — reports are write-only artifacts.
    """
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "unit": result.unit,
        "notes": result.notes,
        "groups": [
            {
                "label": group.label,
                "rows": [
                    {
                        "label": row.label,
                        "measured": row.measured,
                        "paper": row.paper,
                        "ratio": row.ratio,
                        "breakdown": row.breakdown,
                    }
                    for row in group.rows
                ],
            }
            for group in result.groups
        ],
    }
