"""One registered experiment per table and figure of the paper."""

from .report import ExperimentResult, Group, Row, render, render_bars, to_dict
from .runner import EXPERIMENTS, run_all, run_experiment

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "run_all",
    "ExperimentResult",
    "Group",
    "Row",
    "render",
    "render_bars",
    "to_dict",
]
