"""Published numbers from the paper, for paper-vs-measured reporting.

The evaluation figures are bar charts without printed values, so only
the quantities the paper states numerically are encoded: the off-chart
broadcast-join totals, the Figure 9 traffic reductions, Table 1's
column statistics, and Tables 2-4's second-by-second timings.

Note on units: the figures' "GB" axis is actually GiB — the printed
off-chart values match the analytic totals only at 2^30 bytes per unit
(e.g. Figure 3's ``BJ-S = 838.2`` equals 10^9 tuples x 60 bytes x 15
copies = 900e9 bytes = 838.2 GiB).  All traffic comparisons in this
package therefore use GiB.
"""

from __future__ import annotations

GIB = 2.0**30

#: Figure 3 off-chart broadcast totals (GiB), by width configuration.
FIG3_BROADCAST_GIB = {
    (20, 60): {"BJ-R": 279.4, "BJ-S": 838.2},
    (40, 60): {"BJ-R": 558.8, "BJ-S": 838.2},
    (60, 60): {"BJ-R": 838.2, "BJ-S": 838.2},
}

#: Figure 4 off-chart broadcast total (GiB): S = 1e9 x 60 B x 15 copies.
FIG4_BROADCAST_GIB = {"BJ-S": 838.2}

#: Figures 5-6 off-chart broadcast total (GiB): 2e8 x 60 B x 15.
FIG5_BROADCAST_GIB = {"BJ-S": 167.64}

#: Figure 7/8 off-chart values (GiB) per encoding, workload X Q1.
FIG7_OFFCHART_GIB = {
    "fixed": {"BJ-R": 129.1, "BJ-S": 254.1},
    "varbyte": {"BJ-R": 235.7, "BJ-S": 424.9},
    "dictionary": {"BJ-R": 106.2, "BJ-S": 200.3},
}

#: Figure 9: total dictionary bits per tuple (R, S) and the published
#: track join traffic reduction vs hash join, per query.
FIG9_QUERY_BITS = {1: (79, 145), 2: (67, 120), 3: (60, 126), 4: (67, 131), 5: (69, 145)}
FIG9_REDUCTION = {1: 0.53, 2: 0.45, 3: 0.46, 4: 0.48, 5: 0.52}

#: Figure 10/11 off-chart value (GiB).
FIG10_OFFCHART_GIB = {"BJ-S": 118.3}

#: Table 1: workload X Q1 column statistics (paper scale).
TABLE1 = {
    "R": {
        "tuples": 769_845_120,
        "columns": [
            ("J.ID (key)", 769_785_856, 30),
            ("T.ID", 53, 6),
            ("J.T.AMT", 9_824_256, 24),
            ("T.C.ID", 297_952, 19),
        ],
    },
    "S": {
        "tuples": 790_963_741,
        "columns": [
            ("J.ID (key)", 788_463_616, 30),
            ("T.ID", 53, 6),
            ("S.B.ID", 95, 7),
            ("O.U.AMT", 26_308_608, 25),
            ("C.ID", 359, 9),
            ("T.B.C.ID", 233_040, 18),
            ("S.C.AMT", 11_278_336, 24),
            ("M.U.AMT", 54_407_160, 26),
        ],
    },
    "output": 730_073_001,
}

#: Table 2: CPU and network seconds on the 4-node implementation.
#: Keyed by (workload, ordering, algorithm) -> (cpu_s, network_s).
TABLE2 = {
    ("X", "original", "HJ"): (4.308, 87.754),
    ("X", "original", "2TJ"): (5.396, 38.857),
    ("X", "original", "3TJ"): (6.842, 44.432),
    ("X", "original", "4TJ"): (7.500, 44.389),
    ("X", "shuffled", "HJ"): (4.598, 87.828),
    ("X", "shuffled", "2TJ"): (6.457, 61.961),
    ("X", "shuffled", "3TJ"): (7.601, 67.117),
    ("X", "shuffled", "4TJ"): (8.290, 67.518),
    ("Y", "original", "HJ"): (2.301, 30.097),
    ("Y", "original", "2TJ"): (2.279, 10.800),
    ("Y", "original", "3TJ"): (3.355, 11.145),
    ("Y", "original", "4TJ"): (2.400, 10.476),
    ("Y", "shuffled", "HJ"): (2.331, 30.191),
    ("Y", "shuffled", "2TJ"): (2.635, 28.674),
    ("Y", "shuffled", "3TJ"): (3.536, 29.520),
    ("Y", "shuffled", "4TJ"): (2.541, 18.230),
}

#: Table 3: hash join step seconds, (X orig, X shuf, Y orig, Y shuf).
TABLE3 = {
    "Hash partition R tuples": (0.347, 0.350, 0.054, 0.054),
    "Hash partition S tuples": (0.478, 0.477, 0.167, 0.167),
    "Transfer R tuples": (29.464, 29.925, 7.197, 7.392),
    "Transfer S tuples": (57.199, 57.142, 22.550, 22.945),
    "Local copy tuples": (0.115, 0.115, 0.039, 0.039),
    "Sort received R tuples": (1.145, 1.288, 0.176, 0.179),
    "Sort received S tuples": (1.627, 1.777, 0.535, 0.572),
    "Final merge-join": (0.601, 0.602, 1.322, 1.321),
}

#: Table 4: 4-phase track join step seconds, same column order.
TABLE4 = {
    "Sort local R tuples": (0.979, 1.300, 0.182, 0.182),
    "Sort local S tuples": (1.401, 1.792, 0.534, 0.565),
    "Aggregate keys": (0.229, 0.227, 0.022, 0.025),
    "Hash part. keys, counts": (0.373, 0.372, 0.011, 0.018),
    "Transfer key, count": (26.800, 27.339, 0.977, 1.378),
    "Local copy key, count": (0.034, 0.034, 0.093, 0.001),
    "Merge recv. key, count": (0.506, 0.507, 0.015, 0.022),
    "Generate schedules and partition by node": (1.627, 1.650, 0.035, 0.047),
    "Tran. R → S keys, nodes": (7.277, 10.913, 0.346, 0.532),
    "Tran. S → R keys, nodes": (6.046, 1.562, 0.135, 0.247),
    "Local copy keys, nodes": (0.016, 0.016, 0.000, 0.000),
    "Merge rec. keys, nodes": (0.237, 0.235, 0.007, 0.012),
    "Merge-join R → S keys, nodes ⇒ payloads and partition by node": (
        0.315,
        0.456,
        0.068,
        0.098,
    ),
    "Merge-join S → R keys, nodes ⇒ payloads and partition by node": (
        0.355,
        0.204,
        0.067,
        0.082,
    ),
    "Transfer R → S tuples": (2.664, 27.532, 6.086, 9.600),
    "Transfer S → R tuples": (0.001, 0.001, 3.235, 6.462),
    "Local copy R → S tuples": (0.067, 0.017, 0.007, 0.009),
    "Local copy S → R tuples": (0.138, 0.037, 0.021, 0.008),
    "Merge rec. R → S tuples": (0.161, 0.531, 0.045, 0.067),
    "Merge rec. S → R tuples": (0.141, 0.066, 0.043, 0.045),
    "Final merge-join R → S": (0.419, 0.555, 0.822, 0.793),
    "Final merge-join S → R": (0.342, 0.161, 0.518, 0.556),
}

#: Section 4.2 projection: track join vs hash join on a 10x faster network.
PROJECTION_10X = {"X": 0.29, "Y": 0.37}
