"""Saving and loading distributed tables.

Workload generation can dominate iteration time for large experiments;
this module persists a :class:`~repro.storage.table.DistributedTable`
(including its schema and per-node partitioning) to a single ``.npz``
file and restores it losslessly, so generated inputs can be reused
across processes and shared between machines.
"""

from __future__ import annotations

import json

import numpy as np

from ..errors import SchemaError
from .schema import Column, Schema
from .table import DistributedTable, LocalPartition

__all__ = ["save_table", "load_table"]

_FORMAT_VERSION = 1


def _column_to_dict(column: Column) -> dict:
    return {
        "name": column.name,
        "bits": column.bits,
        "decimal_digits": column.decimal_digits,
        "char_length": column.char_length,
    }


def _column_from_dict(payload: dict) -> Column:
    return Column(
        payload["name"],
        bits=payload["bits"],
        decimal_digits=payload["decimal_digits"],
        char_length=payload["char_length"],
    )


def save_table(table: DistributedTable, path: str) -> None:
    """Serialize ``table`` (schema + all partitions) to ``path``.

    The on-disk format is a numpy ``.npz`` archive holding each
    partition's key and payload arrays plus a JSON metadata record.
    """
    metadata = {
        "version": _FORMAT_VERSION,
        "name": table.name,
        "num_nodes": table.num_nodes,
        "payload_names": list(table.payload_names),
        "schema": {
            "key_columns": [_column_to_dict(c) for c in table.schema.key_columns],
            "payload_columns": [
                _column_to_dict(c) for c in table.schema.payload_columns
            ],
        },
    }
    arrays: dict[str, np.ndarray] = {
        "__meta__": np.frombuffer(json.dumps(metadata).encode(), dtype=np.uint8)
    }
    for node, partition in enumerate(table.partitions):
        arrays[f"keys_{node}"] = partition.keys
        for name, values in partition.columns.items():
            arrays[f"col_{node}_{name}"] = values
    np.savez_compressed(path, **arrays)


def load_table(path: str) -> DistributedTable:
    """Restore a table previously written by :func:`save_table`."""
    with np.load(path) as archive:
        if "__meta__" not in archive:
            raise SchemaError(f"{path} is not a saved DistributedTable")
        metadata = json.loads(bytes(archive["__meta__"].tobytes()).decode())
        if metadata.get("version") != _FORMAT_VERSION:
            raise SchemaError(
                f"unsupported table format version {metadata.get('version')}"
            )
        schema = Schema(
            key_columns=tuple(
                _column_from_dict(c) for c in metadata["schema"]["key_columns"]
            ),
            payload_columns=tuple(
                _column_from_dict(c) for c in metadata["schema"]["payload_columns"]
            ),
        )
        partitions = []
        for node in range(metadata["num_nodes"]):
            columns = {
                name: archive[f"col_{node}_{name}"]
                for name in metadata["payload_names"]
            }
            partitions.append(
                LocalPartition(keys=archive[f"keys_{node}"], columns=columns)
            )
    return DistributedTable(metadata["name"], schema, partitions)
