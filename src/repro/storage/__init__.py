"""Storage layer: schemas, distributed tables, and placement policies."""

from .placement import (
    by_key_hash,
    collocated_fraction,
    pattern_nodes,
    random_uniform,
    round_robin,
    shuffled,
)
from .schema import Column, Schema
from .table import DistributedTable, KeyIndex, LocalPartition, ScatterPlan

__all__ = [
    "Column",
    "Schema",
    "DistributedTable",
    "KeyIndex",
    "ScatterPlan",
    "LocalPartition",
    "round_robin",
    "random_uniform",
    "by_key_hash",
    "shuffled",
    "pattern_nodes",
    "collocated_fraction",
]
