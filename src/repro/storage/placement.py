"""Tuple placement policies.

The degree of pre-existing locality is the main experimental knob of the
paper's synthetic evaluation (Figures 4-6 sweep placement patterns like
``5,0,0,...`` and ``1,1,1,1,1,0,0,...``; Figures 8 and 11 shuffle the
real workloads to destroy locality).  These helpers produce per-row node
assignments for :meth:`DistributedTable.from_assignment`.
"""

from __future__ import annotations

import numpy as np

from ..errors import PlacementError
from ..util import hash_partition

__all__ = [
    "round_robin",
    "random_uniform",
    "by_key_hash",
    "pattern_nodes",
    "shuffled",
    "collocated_fraction",
]


def round_robin(num_rows: int, num_nodes: int) -> np.ndarray:
    """Deal rows to nodes in rotation: row ``i`` goes to ``i mod N``."""
    return (np.arange(num_rows, dtype=np.int64) % num_nodes).astype(np.int64)


def random_uniform(num_rows: int, num_nodes: int, seed: int = 0) -> np.ndarray:
    """Place every row on an independently uniform random node."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, num_nodes, size=num_rows, dtype=np.int64)


def by_key_hash(keys: np.ndarray, num_nodes: int, seed: int = 0) -> np.ndarray:
    """Place rows on their key's hash node (perfect hash-join locality)."""
    return hash_partition(np.asarray(keys, dtype=np.int64), num_nodes, seed)


def shuffled(assignment: np.ndarray, num_nodes: int, seed: int = 0) -> np.ndarray:
    """Destroy locality: replace an assignment with fresh uniform nodes.

    This reproduces the paper's "shuffled tuple ordering" runs, where the
    input is redistributed randomly before the join.
    """
    return random_uniform(len(assignment), num_nodes, seed=seed)


def pattern_nodes(
    num_keys: int,
    pattern: tuple[int, ...],
    num_nodes: int,
    seed: int = 0,
    node_pool: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Node assignments for repeated keys following a placement pattern.

    The pattern lists how a key's repeats split across nodes: ``(5,)``
    collocates all five repeats on one node, ``(2, 2, 1)`` spreads them
    over three nodes, ``(1, 1, 1, 1, 1)`` puts every repeat on its own
    node (Figure 4's captions).  The nodes hosting each key's groups are
    drawn uniformly without replacement, independently per key.

    Parameters
    ----------
    node_pool:
        Optional ``(num_keys, >= len(pattern))`` matrix of node choices
        per key.  Passing the pool returned by a previous call places a
        second table's groups on the *same* nodes, producing the
        inter-table collocation of Figure 6.

    Returns
    -------
    (key_index, node, node_pool)
        ``key_index`` and ``node`` have length ``num_keys *
        sum(pattern)``: the distinct key index of each generated row and
        the node it lands on.  ``node_pool`` is the per-key node choice
        matrix, reusable for collocating another table.
    """
    groups = len(pattern)
    if groups > num_nodes:
        raise PlacementError(
            f"pattern {pattern} needs {groups} nodes, cluster has {num_nodes}"
        )
    if any(g <= 0 for g in pattern):
        raise PlacementError(f"pattern entries must be positive: {pattern}")
    if node_pool is None:
        rng = np.random.default_rng(seed)
        # Draw distinct nodes per key via argpartition of random draws.
        scores = rng.random((num_keys, num_nodes))
        node_pool = np.argpartition(scores, groups - 1, axis=1)[:, :groups]
    elif node_pool.shape[0] != num_keys or node_pool.shape[1] < groups:
        raise PlacementError(
            f"node pool shape {node_pool.shape} cannot host {num_keys} keys "
            f"x {groups} groups"
        )
    chosen = node_pool[:, :groups]
    repeats = np.array(pattern, dtype=np.int64)
    node = np.repeat(chosen.reshape(-1), np.tile(repeats, num_keys))
    key_index = np.repeat(np.arange(num_keys, dtype=np.int64), int(repeats.sum()))
    return key_index, node.astype(np.int64), node_pool


def collocated_fraction(
    keys: np.ndarray,
    anchor_node_of_key: dict[int, int] | np.ndarray,
    fraction: float,
    num_nodes: int,
    seed: int = 0,
) -> np.ndarray:
    """Mix locality into a placement: a ``fraction`` of rows join their key's
    anchor node, the rest are uniform random.

    This models the "original tuple ordering" of the real workloads,
    where matching tuples exhibit partial pre-existing collocation.

    Parameters
    ----------
    anchor_node_of_key:
        Either a dense array indexed by key value, or a mapping from key
        to its anchor node (where that key's matches live).
    """
    if not 0.0 <= fraction <= 1.0:
        raise PlacementError(f"collocation fraction must be in [0, 1], got {fraction}")
    keys = np.asarray(keys, dtype=np.int64)
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, num_nodes, size=len(keys), dtype=np.int64)
    collocate = rng.random(len(keys)) < fraction
    if isinstance(anchor_node_of_key, np.ndarray):
        anchors = anchor_node_of_key[keys[collocate]]
    else:
        anchors = np.array(
            [anchor_node_of_key[int(k)] for k in keys[collocate]], dtype=np.int64
        )
    assignment[collocate] = anchors
    return assignment
