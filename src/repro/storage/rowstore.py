"""Row-store organization of table fragments.

Track join "is compatible with both row-store and column-store
organization" (Section 1, property iv): nothing in the algorithm
depends on how tuples are laid out locally.  The simulator's native
fragments are columnar (:class:`~repro.storage.table.LocalPartition`
holds one numpy array per column); this module provides the row-major
counterpart — a numpy structured array with one record per tuple — and
lossless conversions between the two, so tables can be built from
row-store data and joined unchanged.
"""

from __future__ import annotations

import numpy as np

from ..errors import SchemaError
from .table import DistributedTable, LocalPartition

__all__ = ["to_row_store", "from_row_store", "row_store_table"]

#: Field name the join key occupies inside a row-store record.
KEY_FIELD = "__key__"


def to_row_store(partition: LocalPartition) -> np.ndarray:
    """Pack a columnar fragment into a row-major structured array."""
    dtype = [(KEY_FIELD, np.int64)] + [
        (name, values.dtype) for name, values in partition.columns.items()
    ]
    rows = np.empty(partition.num_rows, dtype=dtype)
    rows[KEY_FIELD] = partition.keys
    for name, values in partition.columns.items():
        rows[name] = values
    return rows


def from_row_store(rows: np.ndarray) -> LocalPartition:
    """Unpack a row-major structured array back into a columnar fragment."""
    if rows.dtype.names is None or KEY_FIELD not in rows.dtype.names:
        raise SchemaError(
            f"row-store records need a {KEY_FIELD!r} field; got dtype {rows.dtype}"
        )
    columns = {
        name: np.ascontiguousarray(rows[name])
        for name in rows.dtype.names
        if name != KEY_FIELD
    }
    return LocalPartition(keys=np.ascontiguousarray(rows[KEY_FIELD]), columns=columns)


def row_store_table(name: str, schema, row_partitions: list[np.ndarray]) -> DistributedTable:
    """Build a distributed table from per-node row-store fragments."""
    return DistributedTable(
        name, schema, [from_row_store(rows) for rows in row_partitions]
    )
