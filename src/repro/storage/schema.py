"""Relational schemas with encoding-aware wire widths.

Traffic in the paper depends on the *encoded* width of the columns that
cross the network, not on their in-memory representation (Section 4.1
evaluates fixed-byte, variable-byte, and minimum-bit dictionary codes for
the same logical data).  A :class:`Schema` therefore describes columns by
their logical properties — minimum dictionary bits, decimal digit count,
or character length — and defers byte widths to an encoding object from
:mod:`repro.encoding`.

Inside the simulator all columns are carried as numpy arrays; the schema
is the authority on how many bytes each value would occupy on the wire.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import SchemaError

__all__ = ["Column", "Schema"]


@dataclass(frozen=True)
class Column:
    """One column of a relation.

    Parameters
    ----------
    name:
        Column name; unique within a schema.
    bits:
        Width of the minimum-bit dictionary code, i.e. ``ceil(log2 d)``
        for ``d`` distinct values (this is how Table 1 of the paper
        reports column widths).  ``None`` for raw character columns.
    decimal_digits:
        Number of decimal digits of the stored values, used by the
        base-100 variable-byte encoding (two digits per byte).  Derived
        from ``bits`` when omitted.
    char_length:
        Byte length for fixed-length character data (e.g. the 23-byte
        character column of workload Y).
    """

    name: str
    bits: int | None = None
    decimal_digits: int | None = None
    char_length: int | None = None

    def __post_init__(self) -> None:
        if self.bits is None and self.char_length is None:
            raise SchemaError(
                f"column {self.name!r} needs either dictionary bits or a char length"
            )
        if self.bits is not None and self.bits <= 0:
            raise SchemaError(f"column {self.name!r}: bits must be positive")
        if self.char_length is not None and self.char_length <= 0:
            raise SchemaError(f"column {self.name!r}: char_length must be positive")

    @property
    def is_char(self) -> bool:
        """Whether this is a raw character column (no dictionary code)."""
        return self.bits is None

    def effective_decimal_digits(self) -> int:
        """Decimal digits of the value domain, derived from bits if needed."""
        if self.decimal_digits is not None:
            return self.decimal_digits
        if self.bits is None:
            raise SchemaError(f"char column {self.name!r} has no decimal representation")
        return max(1, math.ceil(self.bits * math.log10(2)))


@dataclass(frozen=True)
class Schema:
    """Key and payload columns of one join input.

    The join key may span several columns (conjunctive equality
    conditions); their widths are summed, matching the ``wk`` term of
    the paper's cost model.
    """

    key_columns: tuple[Column, ...]
    payload_columns: tuple[Column, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.key_columns:
            raise SchemaError("a join schema needs at least one key column")
        names = [c.name for c in self.key_columns + self.payload_columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate column names in schema: {names}")

    @classmethod
    def with_widths(
        cls, key_bits: int, payload_bits: int, payload_name: str = "payload"
    ) -> "Schema":
        """Convenience constructor: one key column and one payload column.

        Most synthetic experiments only need total widths; e.g.
        ``Schema.with_widths(32, 16 * 8)`` is a 4-byte key with a 16-byte
        payload under dictionary encoding.
        """
        payload: tuple[Column, ...] = ()
        if payload_bits > 0:
            payload = (Column(payload_name, bits=payload_bits),)
        return cls(key_columns=(Column("key", bits=key_bits),), payload_columns=payload)

    @property
    def columns(self) -> tuple[Column, ...]:
        """All columns, key first."""
        return self.key_columns + self.payload_columns

    def key_width(self, encoding) -> float:
        """Wire width in bytes of the join key under ``encoding``."""
        return float(sum(encoding.column_width_bytes(c) for c in self.key_columns))

    def payload_width(self, encoding) -> float:
        """Wire width in bytes of all payload columns under ``encoding``."""
        return float(sum(encoding.column_width_bytes(c) for c in self.payload_columns))

    def tuple_width(self, encoding) -> float:
        """Wire width in bytes of a full tuple (key + payload)."""
        return self.key_width(encoding) + self.payload_width(encoding)
