"""Distributed tables: per-node numpy partitions of keys and payloads.

A :class:`DistributedTable` is the input format of every join in the
library: the rows of a relation split arbitrarily across ``N`` nodes
(the paper makes no assumption about favorable pre-existing placement).
Each node's fragment is a :class:`LocalPartition` holding the join key
as an ``int64`` array plus any number of named payload columns.

Payload columns are carried as real numpy arrays so joins physically
move and materialize data; the *wire width* of those columns is defined
by the table's :class:`~repro.storage.schema.Schema` together with an
encoding, which is what the traffic ledger accounts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PlacementError, SchemaError
from ..fastpath import fused_enabled
from ..parallel.chunks import (
    chunked_argsort_bounded,
    chunked_build,
    chunked_gather,
)
from ..util import (
    hash_partition,
    segment_boundaries,
    segment_count,
    stable_argsort_bounded,
    stable_sort_with_order,
)
from .schema import Schema

__all__ = ["KeyIndex", "ScatterPlan", "LocalPartition", "DistributedTable"]

#: ``distinct_with_counts`` switches to a sort-free bincount when the key
#: span is at most this many times the row count (bounds the counts table).
_DISTINCT_DENSE_FACTOR = 4


class KeyIndex:
    """Cached sort order of one partition's join keys.

    Built lazily by :meth:`LocalPartition.key_index` and reused by every
    phase that would otherwise re-sort the same keys (tracking dedup,
    broadcast matching, final merge-joins).
    """

    __slots__ = ("order", "sorted_keys", "_unique")

    def __init__(self, order: np.ndarray, sorted_keys: np.ndarray, unique: bool | None = None):
        #: Stable argsort of the partition's keys.
        self.order = order
        #: ``keys[order]`` — the keys in non-decreasing order.
        self.sorted_keys = sorted_keys
        self._unique = unique

    @property
    def unique(self) -> bool:
        """True when no key occurs twice (enables single-probe join lookups).

        Computed lazily on first use so building an index never pays for
        a duplicate scan the consumer may not need.
        """
        if self._unique is None:
            sorted_keys = self.sorted_keys
            self._unique = len(sorted_keys) <= 1 or bool(
                (sorted_keys[1:] != sorted_keys[:-1]).all()
            )
        return self._unique


@dataclass(frozen=True)
class ScatterPlan:
    """Cached routing of one partition's rows to destination buckets."""

    #: Destination bucket of every row.
    destinations: np.ndarray
    #: Row order grouping rows by destination (stable within a bucket).
    order: np.ndarray
    #: ``num_buckets + 1`` offsets into ``order`` delimiting each bucket.
    bounds: np.ndarray


@dataclass
class LocalPartition:
    """One node's fragment of a distributed table."""

    keys: np.ndarray
    columns: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.keys = np.asarray(self.keys, dtype=np.int64)
        for name, values in self.columns.items():
            values = np.asarray(values)
            if len(values) != len(self.keys):
                raise SchemaError(
                    f"column {name!r} has {len(values)} rows, keys have {len(self.keys)}"
                )
            self.columns[name] = values
        self._cache_keys: np.ndarray | None = None
        self._key_index: KeyIndex | None = None
        self._distinct: tuple[np.ndarray, np.ndarray] | None = None
        self._scatter_plans: dict[tuple, ScatterPlan] = {}

    @property
    def num_rows(self) -> int:
        """Number of tuples stored on this node."""
        return len(self.keys)

    def take(self, indices: np.ndarray) -> "LocalPartition":
        """Row subset (or permutation/expansion) selected by ``indices``.

        Gathers run through :func:`~repro.parallel.chunks.chunked_gather`
        — chunked over the index array when kernel parallelism is on,
        a plain ``values[indices]`` otherwise; the output is
        bit-identical either way.
        """
        return LocalPartition(
            keys=chunked_gather(self.keys, indices),
            columns={
                name: chunked_gather(values, indices)
                for name, values in self.columns.items()
            },
        )

    def copy(self) -> "LocalPartition":
        """Deep copy with freshly owned arrays.

        Used by :meth:`repro.cluster.network.Network.send_batches` with
        ``copy=True`` to snapshot a payload whose backing buffers the
        sender intends to mutate after the send (the copy-on-conflict
        rule of the zero-copy transport).
        """
        return LocalPartition(
            keys=self.keys.copy(),
            columns={name: values.copy() for name, values in self.columns.items()},
        )

    # -- cached key index and scatter plans -----------------------------

    def invalidate_caches(self) -> None:
        """Drop the cached key index, distinct keys, and scatter plans.

        Caches self-invalidate when ``keys`` is rebound to a new array;
        call this only after mutating the key array in place.
        """
        self._cache_keys = None
        self._key_index = None
        self._distinct = None
        self._scatter_plans = {}

    def _fresh_caches(self) -> None:
        if self._cache_keys is not self.keys:
            self.invalidate_caches()
            self._cache_keys = self.keys

    def key_index(self) -> KeyIndex:
        """The partition's sorted-key index, built once and cached.

        Sorting goes through :func:`~repro.util.stable_sort_with_order`
        (value/index pack-sort when the key span permits): the resulting
        permutation is identical to a plain stable argsort but avoids
        its indirect gather passes.  The uniqueness flag is lazy.
        """
        self._fresh_caches()
        if self._key_index is None:
            order, sorted_keys = stable_sort_with_order(self.keys)
            self._key_index = KeyIndex(order=order, sorted_keys=sorted_keys)
        return self._key_index

    def distinct_with_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Distinct keys and their repeat counts (cached; == ``np.unique``).

        Picks the cheapest algorithm for the key distribution at hand:

        * an already-built :meth:`key_index` is reused (one boundary scan);
        * dense key domains (span ≤ ``_DISTINCT_DENSE_FACTOR`` × rows)
          count occurrences with one sort-free ``bincount`` pass;
        * otherwise ``np.unique``'s value-only sort runs — several times
          faster than an index sort plus gather, which is why this does
          NOT build the key index as a side effect.
        """
        self._fresh_caches()
        if self._distinct is None:
            if self._key_index is not None:
                sorted_keys = self._key_index.sorted_keys
                starts = segment_boundaries(sorted_keys)
                self._distinct = (
                    sorted_keys[starts],
                    segment_count(starts, len(sorted_keys)),
                )
            else:
                self._distinct = self._distinct_uncached()
        return self._distinct

    def _distinct_uncached(self) -> tuple[np.ndarray, np.ndarray]:
        """Distinct keys + counts without (building) the key index."""
        n = len(self.keys)
        if n == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.intp)
        base = int(self.keys.min())
        span = int(self.keys.max()) - base + 1
        if span <= _DISTINCT_DENSE_FACTOR * n + 1024:
            counts = np.bincount(self.keys - base, minlength=span)
            present = np.flatnonzero(counts)
            return (present + base).astype(np.int64), counts[present]
        distinct, counts = np.unique(self.keys, return_counts=True)
        return distinct, counts

    def hash_scatter_plan(self, num_buckets: int, seed: int = 0) -> ScatterPlan:
        """Cached hash-routing of rows to ``num_buckets`` destinations.

        The plan's row order is composed with the key index, so each
        destination's batch arrives key-sorted — receivers then sort
        concatenations of sorted runs, which numpy's mergesort detects.
        """
        self._fresh_caches()
        plan = self._scatter_plans.get((num_buckets, seed))
        if plan is None:
            # Every stage is chunk-parallel when kernel workers are on
            # (elementwise hash, gathers, counting-merged argsort) and
            # bit-identical to the serial composition either way; the
            # bucket bounds fall out of the destination counts, which
            # equal the searchsorted offsets over the sorted
            # destinations.
            destinations = chunked_build(
                lambda start, stop: hash_partition(
                    self.keys[start:stop], num_buckets, seed
                ),
                len(self.keys),
                np.int64,
            )
            key_order = self.key_index().order
            routed = chunked_gather(destinations, key_order)
            inner, counts = chunked_argsort_bounded(
                routed, num_buckets, stable_argsort_bounded
            )
            order = chunked_gather(key_order, inner)
            bounds = np.concatenate(([0], np.cumsum(counts))).astype(np.intp)
            plan = ScatterPlan(destinations=destinations, order=order, bounds=bounds)
            self._scatter_plans[(num_buckets, seed)] = plan
        return plan

    def distinct_scatter_plan(self, num_buckets: int, seed: int = 0) -> ScatterPlan:
        """Cached hash-routing of the partition's *distinct* keys.

        This is the tracking-phase scatter: deduplicated keys go to their
        scheduling node ``hash(k) mod N``.  Cached alongside the key
        index so repeated tracking runs skip the hash and the sort.
        """
        self._fresh_caches()
        plan = self._scatter_plans.get(("distinct", num_buckets, seed))
        if plan is None:
            distinct, _ = self.distinct_with_counts()
            destinations = hash_partition(distinct, num_buckets, seed)
            order = stable_argsort_bounded(destinations, num_buckets)
            bounds = np.searchsorted(destinations[order], np.arange(num_buckets + 1))
            plan = ScatterPlan(destinations=destinations, order=order, bounds=bounds)
            self._scatter_plans[("distinct", num_buckets, seed)] = plan
        return plan

    def _slice(self, start: int, stop: int) -> "LocalPartition":
        """Contiguous row range as views (no copy) of this partition."""
        return LocalPartition(
            keys=self.keys[start:stop],
            columns={name: values[start:stop] for name, values in self.columns.items()},
        )

    def split_by(
        self,
        destinations: np.ndarray,
        num_buckets: int,
        rows: np.ndarray | None = None,
    ) -> list["LocalPartition | None"]:
        """Scatter rows to ``num_buckets`` groups; ``None`` marks empty ones.

        ``destinations[i]`` routes row ``rows[i]`` (or row ``i`` when
        ``rows`` is omitted).  The fused path performs one bounded-dtype
        stable argsort (chunk-parallel when kernel workers are on) and a
        single gather, then slices the result per bucket; the loop path
        materializes one ``take()`` copy per bucket (the reference the
        equivalence suite compares against).  Each bucket holds the same
        rows in the same order either way.
        """
        if not fused_enabled():
            base = self if rows is None else self.take(rows)
            order = np.argsort(destinations, kind="stable")
            bounds = np.searchsorted(destinations[order], np.arange(num_buckets + 1))
            return [
                base.take(order[bounds[dst] : bounds[dst + 1]])
                if bounds[dst + 1] > bounds[dst]
                else None
                for dst in range(num_buckets)
            ]
        order, counts = chunked_argsort_bounded(
            destinations, num_buckets, stable_argsort_bounded
        )
        bounds = np.concatenate(([0], np.cumsum(counts))).astype(np.intp)
        gathered = self.take(order if rows is None else chunked_gather(rows, order))
        return [
            gathered._slice(bounds[dst], bounds[dst + 1])
            if bounds[dst + 1] > bounds[dst]
            else None
            for dst in range(num_buckets)
        ]

    def hash_split(self, num_buckets: int, seed: int = 0) -> list["LocalPartition | None"]:
        """Scatter rows by key hash (the Grace repartitioning primitive).

        The fused path reuses the cached :meth:`hash_scatter_plan`, so
        repeated runs over the same partition skip both the hash and the
        sort and pay only the gather.
        """
        if not fused_enabled():
            destinations = hash_partition(self.keys, num_buckets, seed)
            return self.split_by(destinations, num_buckets)
        plan = self.hash_scatter_plan(num_buckets, seed)
        gathered = self.take(plan.order)
        return [
            gathered._slice(plan.bounds[dst], plan.bounds[dst + 1])
            if plan.bounds[dst + 1] > plan.bounds[dst]
            else None
            for dst in range(num_buckets)
        ]

    @staticmethod
    def empty(column_names: tuple[str, ...] = ()) -> "LocalPartition":
        """A zero-row partition with the given payload column names."""
        return LocalPartition(
            keys=np.empty(0, dtype=np.int64),
            columns={name: np.empty(0, dtype=np.int64) for name in column_names},
        )

    @staticmethod
    def concat(parts: list["LocalPartition"]) -> "LocalPartition":
        """Concatenate several partitions with identical column sets."""
        parts = [p for p in parts if p is not None]
        if not parts:
            return LocalPartition.empty()
        names = tuple(parts[0].columns)
        for part in parts[1:]:
            if set(part.columns) != set(names):
                raise SchemaError("cannot concatenate partitions with different columns")
        return LocalPartition(
            keys=np.concatenate([p.keys for p in parts]),
            columns={
                name: np.concatenate([p.columns[name] for p in parts]) for name in names
            },
        )


class DistributedTable:
    """A relation split across the nodes of a simulated cluster."""

    def __init__(self, name: str, schema: Schema, partitions: list[LocalPartition]):
        if not partitions:
            raise PlacementError(f"table {name!r} needs at least one partition")
        self.name = name
        self.schema = schema
        self.partitions = partitions

    @property
    def num_nodes(self) -> int:
        """Number of nodes the table is spread over."""
        return len(self.partitions)

    @property
    def total_rows(self) -> int:
        """Total tuple count across all nodes."""
        return sum(p.num_rows for p in self.partitions)

    @property
    def payload_names(self) -> tuple[str, ...]:
        """Payload column names carried by every partition."""
        return tuple(self.partitions[0].columns)

    def all_keys(self) -> np.ndarray:
        """All join keys of the table, concatenated in node order."""
        return np.concatenate([p.keys for p in self.partitions])

    def gathered(self) -> LocalPartition:
        """The whole table as a single partition (test/verification aid)."""
        return LocalPartition.concat(list(self.partitions))

    def node_sizes(self) -> np.ndarray:
        """Per-node tuple counts (useful for balance diagnostics)."""
        return np.array([p.num_rows for p in self.partitions], dtype=np.int64)

    @classmethod
    def from_assignment(
        cls,
        name: str,
        schema: Schema,
        keys: np.ndarray,
        node_of_row: np.ndarray,
        num_nodes: int,
        columns: dict[str, np.ndarray] | None = None,
    ) -> "DistributedTable":
        """Build a table by scattering rows according to ``node_of_row``.

        Parameters
        ----------
        keys:
            Join key of every row.
        node_of_row:
            Destination node of every row; values in ``[0, num_nodes)``.
        columns:
            Optional payload columns, same length as ``keys``.  When
            omitted a single ``rid`` column is synthesized so the join
            output remains verifiable row-by-row.
        """
        keys = np.asarray(keys, dtype=np.int64)
        node_of_row = np.asarray(node_of_row, dtype=np.int64)
        if len(keys) != len(node_of_row):
            raise PlacementError(
                f"{len(keys)} keys but {len(node_of_row)} node assignments"
            )
        if len(node_of_row) and (node_of_row.min() < 0 or node_of_row.max() >= num_nodes):
            raise PlacementError(
                f"node assignment outside [0, {num_nodes}) for table {name!r}"
            )
        if columns is None:
            columns = {"rid": np.arange(len(keys), dtype=np.int64)}
        order = np.argsort(node_of_row, kind="stable")
        sorted_nodes = node_of_row[order]
        boundaries = np.searchsorted(sorted_nodes, np.arange(num_nodes + 1))
        partitions = []
        for node in range(num_nodes):
            rows = order[boundaries[node] : boundaries[node + 1]]
            partitions.append(
                LocalPartition(
                    keys=keys[rows],
                    columns={cname: cvals[rows] for cname, cvals in columns.items()},
                )
            )
        return cls(name, schema, partitions)
