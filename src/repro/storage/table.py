"""Distributed tables: per-node numpy partitions of keys and payloads.

A :class:`DistributedTable` is the input format of every join in the
library: the rows of a relation split arbitrarily across ``N`` nodes
(the paper makes no assumption about favorable pre-existing placement).
Each node's fragment is a :class:`LocalPartition` holding the join key
as an ``int64`` array plus any number of named payload columns.

Payload columns are carried as real numpy arrays so joins physically
move and materialize data; the *wire width* of those columns is defined
by the table's :class:`~repro.storage.schema.Schema` together with an
encoding, which is what the traffic ledger accounts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PlacementError, SchemaError
from .schema import Schema

__all__ = ["LocalPartition", "DistributedTable"]


@dataclass
class LocalPartition:
    """One node's fragment of a distributed table."""

    keys: np.ndarray
    columns: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.keys = np.asarray(self.keys, dtype=np.int64)
        for name, values in self.columns.items():
            values = np.asarray(values)
            if len(values) != len(self.keys):
                raise SchemaError(
                    f"column {name!r} has {len(values)} rows, keys have {len(self.keys)}"
                )
            self.columns[name] = values

    @property
    def num_rows(self) -> int:
        """Number of tuples stored on this node."""
        return len(self.keys)

    def take(self, indices: np.ndarray) -> "LocalPartition":
        """Row subset (or permutation/expansion) selected by ``indices``."""
        return LocalPartition(
            keys=self.keys[indices],
            columns={name: values[indices] for name, values in self.columns.items()},
        )

    @staticmethod
    def empty(column_names: tuple[str, ...] = ()) -> "LocalPartition":
        """A zero-row partition with the given payload column names."""
        return LocalPartition(
            keys=np.empty(0, dtype=np.int64),
            columns={name: np.empty(0, dtype=np.int64) for name in column_names},
        )

    @staticmethod
    def concat(parts: list["LocalPartition"]) -> "LocalPartition":
        """Concatenate several partitions with identical column sets."""
        parts = [p for p in parts if p is not None]
        if not parts:
            return LocalPartition.empty()
        names = tuple(parts[0].columns)
        for part in parts[1:]:
            if set(part.columns) != set(names):
                raise SchemaError("cannot concatenate partitions with different columns")
        return LocalPartition(
            keys=np.concatenate([p.keys for p in parts]),
            columns={
                name: np.concatenate([p.columns[name] for p in parts]) for name in names
            },
        )


class DistributedTable:
    """A relation split across the nodes of a simulated cluster."""

    def __init__(self, name: str, schema: Schema, partitions: list[LocalPartition]):
        if not partitions:
            raise PlacementError(f"table {name!r} needs at least one partition")
        self.name = name
        self.schema = schema
        self.partitions = partitions

    @property
    def num_nodes(self) -> int:
        """Number of nodes the table is spread over."""
        return len(self.partitions)

    @property
    def total_rows(self) -> int:
        """Total tuple count across all nodes."""
        return sum(p.num_rows for p in self.partitions)

    @property
    def payload_names(self) -> tuple[str, ...]:
        """Payload column names carried by every partition."""
        return tuple(self.partitions[0].columns)

    def all_keys(self) -> np.ndarray:
        """All join keys of the table, concatenated in node order."""
        return np.concatenate([p.keys for p in self.partitions])

    def gathered(self) -> LocalPartition:
        """The whole table as a single partition (test/verification aid)."""
        return LocalPartition.concat(list(self.partitions))

    def node_sizes(self) -> np.ndarray:
        """Per-node tuple counts (useful for balance diagnostics)."""
        return np.array([p.num_rows for p in self.partitions], dtype=np.int64)

    @classmethod
    def from_assignment(
        cls,
        name: str,
        schema: Schema,
        keys: np.ndarray,
        node_of_row: np.ndarray,
        num_nodes: int,
        columns: dict[str, np.ndarray] | None = None,
    ) -> "DistributedTable":
        """Build a table by scattering rows according to ``node_of_row``.

        Parameters
        ----------
        keys:
            Join key of every row.
        node_of_row:
            Destination node of every row; values in ``[0, num_nodes)``.
        columns:
            Optional payload columns, same length as ``keys``.  When
            omitted a single ``rid`` column is synthesized so the join
            output remains verifiable row-by-row.
        """
        keys = np.asarray(keys, dtype=np.int64)
        node_of_row = np.asarray(node_of_row, dtype=np.int64)
        if len(keys) != len(node_of_row):
            raise PlacementError(
                f"{len(keys)} keys but {len(node_of_row)} node assignments"
            )
        if len(node_of_row) and (node_of_row.min() < 0 or node_of_row.max() >= num_nodes):
            raise PlacementError(
                f"node assignment outside [0, {num_nodes}) for table {name!r}"
            )
        if columns is None:
            columns = {"rid": np.arange(len(keys), dtype=np.int64)}
        order = np.argsort(node_of_row, kind="stable")
        sorted_nodes = node_of_row[order]
        boundaries = np.searchsorted(sorted_nodes, np.arange(num_nodes + 1))
        partitions = []
        for node in range(num_nodes):
            rows = order[boundaries[node] : boundaries[node + 1]]
            partitions.append(
                LocalPartition(
                    keys=keys[rows],
                    columns={cname: cvals[rows] for cname, cvals in columns.items()},
                )
            )
        return cls(name, schema, partitions)
