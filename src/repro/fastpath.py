"""Scatter-path selection: the fused fast path vs. the reference loop path.

Every operator that scatters tuples to destination nodes (track join
broadcasts and migrations, Grace hash repartitioning, rid scatters,
MapReduce shuffles) can run in one of two modes:

``fused`` (default)
    The vectorized fast path: partitions build a cached sorted-key
    index once, scatters run as one bounded-dtype stable argsort plus a
    single gather sliced per destination, and grouped reductions replace
    per-group Python loops.

``loop``
    The reference path: per-destination boolean ``take()`` copies, a
    fresh ``np.argsort``/``np.unique`` per call, and no caching.  It is
    kept verbatim so the equivalence suite can assert the fast path is
    byte-identical, and so benchmarks can measure the speedup honestly.

Both modes produce the same output multiset, the same per-link byte
ledger, and the same execution profile; only wall-clock differs.
"""

from __future__ import annotations

from contextlib import contextmanager
from .errors import ValidationError

__all__ = ["LOOP", "FUSED", "scatter_mode", "set_scatter_mode", "use_scatter_mode", "fused_enabled"]

LOOP = "loop"
FUSED = "fused"

_mode = FUSED


def scatter_mode() -> str:
    """The currently active scatter mode (``"fused"`` or ``"loop"``)."""
    return _mode


def fused_enabled() -> bool:
    """True when the fused fast path is active."""
    return _mode == FUSED


def set_scatter_mode(mode: str) -> str:
    """Select the scatter mode; returns the previous mode."""
    global _mode
    if mode not in (LOOP, FUSED):
        raise ValidationError(f"scatter mode must be {LOOP!r} or {FUSED!r}, got {mode!r}")
    previous = _mode
    _mode = mode
    return previous


@contextmanager
def use_scatter_mode(mode: str):
    """Context manager scoping a scatter-mode change."""
    previous = set_scatter_mode(mode)
    try:
        yield
    finally:
        set_scatter_mode(previous)
