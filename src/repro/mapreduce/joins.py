"""Distributed joins re-implemented on the MapReduce engine (Section 6).

Two algorithms demonstrate the paper's point that the framework level
and the algorithm level optimize at different granularities:

* :func:`mr_hash_join` — the classic repartition join: both tables
  shuffle by key hash and reducers join their partitions.  Its shuffle
  bytes equal the native Grace hash join's transfers.

* :func:`mr_track_join` — 2-phase track join as two chained jobs.
  Job 1 shuffles map-side-deduplicated keys to scheduling reducers,
  which emit (key, destination) location records routed back to the R
  holders.  Job 2 uses those records as a *custom partitioner* (side
  data steering the shuffle, as real frameworks allow): R tuples ship
  only to tracked S locations while S stays in place.  Its traffic
  matches the native :class:`~repro.core.track_join.TrackJoin2` byte
  for byte, showing fine-grained "tracking" is expressible on a
  MapReduce substrate.
"""

from __future__ import annotations

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.network import MessageClass
from ..joins.base import JoinSpec
from ..joins.local import join_indices, local_join
from ..storage.table import DistributedTable, LocalPartition
from ..util import segmented_cartesian
from .engine import Channel, MapReduceJob, MapReduceResult

__all__ = ["mr_hash_join", "mr_track_join"]


def _identity_with_destination(destination_of_node: bool = False):
    """Mapper factory: emit input records unchanged."""

    def mapper(node: int, partition: LocalPartition) -> LocalPartition:
        if not destination_of_node:
            return partition
        columns = dict(partition.columns)
        columns["dest"] = np.full(partition.num_rows, node, dtype=np.int64)
        return LocalPartition(keys=partition.keys, columns=columns)

    return mapper


def _normalized(partition: LocalPartition, column_names: tuple[str, ...]) -> LocalPartition:
    """Give zero-row groups the channel's column set (dropping 'dest')."""
    columns = {c: v for c, v in partition.columns.items() if c != "dest"}
    if partition.num_rows == 0 and set(columns) != set(column_names):
        return LocalPartition.empty(column_names)
    return LocalPartition(keys=partition.keys, columns=columns)


def mr_hash_join(
    cluster: Cluster,
    table_r: DistributedTable,
    table_s: DistributedTable,
    spec: JoinSpec | None = None,
) -> MapReduceResult:
    """Repartition (hash) join as a single MapReduce job."""
    spec = spec or JoinSpec()
    width_r = table_r.schema.tuple_width(spec.encoding)
    width_s = table_s.schema.tuple_width(spec.encoding)

    def reducer(node: int, groups: dict[str, LocalPartition]) -> LocalPartition:
        return local_join(
            _normalized(groups["R"], table_r.payload_names),
            _normalized(groups["S"], table_s.payload_names),
            "r.",
            "s.",
        )

    job = MapReduceJob(
        channels=[
            Channel("R", list(table_r.partitions), _identity_with_destination(), width_r,
                    category=MessageClass.R_TUPLES),
            Channel("S", list(table_s.partitions), _identity_with_destination(), width_s,
                    category=MessageClass.S_TUPLES),
        ],
        reducer=reducer,
        hash_seed=spec.hash_seed,
    )
    return job.run(cluster)


def _tracking_job(
    cluster: Cluster,
    table_r: DistributedTable,
    table_s: DistributedTable,
    spec: JoinSpec,
) -> MapReduceResult:
    """Job 1: track key locations, emit (key, S-dest) records to R holders."""
    key_width = table_r.schema.key_width(spec.encoding)

    def distinct_keys_mapper(node: int, partition: LocalPartition) -> LocalPartition:
        keys = np.unique(partition.keys)
        return LocalPartition(
            keys=keys, columns={"holder": np.full(len(keys), node, dtype=np.int64)}
        )

    def scheduling_reducer(node: int, groups: dict[str, LocalPartition]) -> LocalPartition:
        r_entries = groups["R-keys"]
        s_entries = groups["S-keys"]
        if r_entries.num_rows == 0 or s_entries.num_rows == 0:
            return LocalPartition.empty(("dest", "route_to"))
        # Per key, pair every R holder with every S holder.
        all_keys = np.union1d(r_entries.keys, s_entries.keys)
        seg_r = np.searchsorted(all_keys, r_entries.keys)
        seg_s = np.searchsorted(all_keys, s_entries.keys)
        ia, ib = segmented_cartesian(seg_r, seg_s)
        return LocalPartition(
            keys=r_entries.keys[ia],
            columns={
                "dest": s_entries.columns["holder"][ib],
                "route_to": r_entries.columns["holder"][ia],
            },
        )

    def location_router(node: int, outputs: LocalPartition):
        return np.arange(outputs.num_rows, dtype=np.int64), outputs.columns["route_to"]

    job = MapReduceJob(
        channels=[
            Channel(
                "R-keys",
                list(table_r.partitions),
                distinct_keys_mapper,
                key_width,
                category=MessageClass.KEYS_COUNTS,
            ),
            Channel(
                "S-keys",
                list(table_s.partitions),
                distinct_keys_mapper,
                key_width,
                category=MessageClass.KEYS_COUNTS,
            ),
        ],
        reducer=scheduling_reducer,
        output_router=location_router,
        output_width=key_width + spec.location_width,
        output_category=MessageClass.KEYS_NODES,
        hash_seed=spec.hash_seed,
    )
    return job.run(cluster)


def mr_track_join(
    cluster: Cluster,
    table_r: DistributedTable,
    table_s: DistributedTable,
    spec: JoinSpec | None = None,
) -> tuple[MapReduceResult, MapReduceResult]:
    """2-phase track join (R -> S) as two chained MapReduce jobs.

    Returns the results of both jobs; the second holds the joined
    output and the combined traffic is the sum of both ledgers.
    """
    spec = spec or JoinSpec()
    tracking = _tracking_job(cluster, table_r, table_s, spec)
    locations = tracking.outputs  # per R-holder: (key, dest) records
    width_r = table_r.schema.tuple_width(spec.encoding)
    width_s = table_s.schema.tuple_width(spec.encoding)

    def broadcast_mapper(node: int, partition: LocalPartition) -> LocalPartition:
        """Emit one copy of each matching R tuple per tracked S location."""
        pairs = locations[node]
        if pairs.num_rows == 0 or partition.num_rows == 0:
            return LocalPartition(
                keys=np.empty(0, dtype=np.int64),
                columns={
                    **{c: np.empty(0, dtype=v.dtype) for c, v in partition.columns.items()},
                    "dest": np.empty(0, dtype=np.int64),
                },
            )
        pair_pos, rows = join_indices(pairs.keys, partition.keys)
        expanded = partition.take(rows)
        columns = dict(expanded.columns)
        columns["dest"] = pairs.columns["dest"][pair_pos]
        return LocalPartition(keys=expanded.keys, columns=columns)

    def join_reducer(node: int, groups: dict[str, LocalPartition]) -> LocalPartition:
        received_r = _normalized(groups["R-tuples"], table_r.payload_names)
        local_s = _normalized(groups["S-tuples"], table_s.payload_names)
        return local_join(received_r, local_s, "r.", "s.")

    job = MapReduceJob(
        channels=[
            Channel(
                "R-tuples",
                list(table_r.partitions),
                broadcast_mapper,
                width_r,
                partition_column="dest",
                category=MessageClass.R_TUPLES,
            ),
            Channel(
                "S-tuples",
                list(table_s.partitions),
                _identity_with_destination(destination_of_node=True),
                width_s,
                partition_column="dest",
                category=MessageClass.S_TUPLES,
            ),
        ],
        reducer=join_reducer,
        hash_seed=spec.hash_seed,
    )
    joined = job.run(cluster)
    return tracking, joined
