"""A minimal MapReduce engine over the simulated cluster (Section 6).

The paper notes that generic distributed systems perform joins with
map/reduce operators, that network optimization there happens at coarse
granularity, and that "based on our non-pipelined implementation, track
join can be re-implemented for MapReduce" — fine-grained collocation
"tracking" on top of the framework's shuffles.  This engine exists to
make that claim executable.

It is a real (if small) MapReduce: per-node mappers emit keyed records,
a shuffle routes them by a partitioner (hash by default, custom for
track-join-style directed transfers), reducers see their partition
sorted by key, and reduce outputs can optionally be routed onward.
Shuffle traffic is accounted on the same ledger as the native
operators, so MapReduce and native implementations of the same
algorithm can be compared byte for byte.

Channels: one logical job may shuffle several record types (e.g. the R
and S sides of a join) with different wire widths; each channel has its
own mapper and accounting, and reducers receive all channels together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.network import MessageClass, TrafficLedger
from ..errors import ValidationError
from ..exchange.base import send_split
from ..exchange.gather import drain_payloads
from ..storage.table import LocalPartition
from ..timing.profile import ExecutionProfile
from ..util import hash_partition

__all__ = ["Channel", "MapReduceJob", "MapReduceResult"]

#: A mapper: (node, input partition) -> keyed records.
Mapper = Callable[[int, LocalPartition], LocalPartition]
#: A partitioner: record keys -> destination node per record, or an
#: expanding (record_index, destination) pair of arrays for one-to-many
#: routing (selective broadcast).
Partitioner = Callable[[np.ndarray], "np.ndarray | tuple[np.ndarray, np.ndarray]"]
#: A reducer: (node, {channel: sorted records}) -> output records.
Reducer = Callable[[int, dict[str, LocalPartition]], LocalPartition]
#: A router for reduce outputs: (node, outputs) -> (record_idx, dest).
OutputRouter = Callable[[int, LocalPartition], tuple[np.ndarray, np.ndarray]]


@dataclass
class Channel:
    """One record stream of a MapReduce job.

    Parameters
    ----------
    name:
        Channel label; reducers receive records grouped under it.
    inputs:
        Per-node input partitions (length = cluster size).
    mapper:
        Emits keyed records from one node's input.
    record_width:
        Wire bytes per shuffled record.
    partitioner:
        Destination choice; defaults to hash-of-key.
    partition_column:
        Alternative to ``partitioner``: route each record to the node
        stored in this mapped column (how custom partitioners receive
        side data in real frameworks).
    category:
        Message class the shuffle bytes are accounted under.
    """

    name: str
    inputs: list[LocalPartition]
    mapper: Mapper
    record_width: float
    partitioner: Partitioner | None = None
    partition_column: str | None = None
    category: MessageClass = MessageClass.RIDS


@dataclass
class MapReduceResult:
    """Reduce outputs per node plus the job's accounting."""

    outputs: list[LocalPartition]
    traffic: TrafficLedger
    profile: ExecutionProfile

    @property
    def network_bytes(self) -> float:
        """Bytes the job's shuffles moved."""
        return self.traffic.total_bytes

    def gathered(self) -> LocalPartition:
        """All outputs as one partition."""
        return LocalPartition.concat(self.outputs)


class MapReduceJob:
    """One map -> shuffle -> sort -> reduce round over the cluster."""

    def __init__(
        self,
        channels: list[Channel],
        reducer: Reducer,
        output_router: OutputRouter | None = None,
        output_width: float = 0.0,
        output_category: MessageClass = MessageClass.RIDS,
        hash_seed: int = 0,
    ):
        self.channels = channels
        self.reducer = reducer
        self.output_router = output_router
        self.output_width = output_width
        self.output_category = output_category
        self.hash_seed = hash_seed

    # -- phases ----------------------------------------------------------

    def _shuffle_channel(
        self,
        cluster: Cluster,
        profile: ExecutionProfile,
        channel: Channel,
    ) -> None:
        """Run map + shuffle for one channel (one task per mapper node)."""

        def map_node(node: int) -> None:
            mapped = channel.mapper(node, channel.inputs[node])
            profile.add_cpu_at(
                f"Map {channel.name}",
                "partition",
                node,
                mapped.num_rows * channel.record_width,
            )
            if mapped.num_rows == 0:
                return
            if channel.partition_column is not None:
                routed = mapped.columns[channel.partition_column].astype(np.int64)
            elif channel.partitioner is None:
                routed = hash_partition(mapped.keys, cluster.num_nodes, self.hash_seed)
            else:
                routed = channel.partitioner(mapped.keys)
            if isinstance(routed, tuple):
                record_idx, destinations = routed
                mapped = mapped.take(np.asarray(record_idx, dtype=np.int64))
                destinations = np.asarray(destinations, dtype=np.int64)
            else:
                destinations = np.asarray(routed, dtype=np.int64)
                if len(destinations) != mapped.num_rows:
                    raise ValidationError(
                        f"partitioner of channel {channel.name!r} returned "
                        f"{len(destinations)} destinations for {mapped.num_rows} records"
                    )
            batches = mapped.split_by(destinations, cluster.num_nodes)
            send_split(
                cluster, profile, channel.category, node, batches,
                channel.record_width,
                f"Shuffle {channel.name}", f"Local copy {channel.name}",
                payload_of=lambda batch: (channel.name, batch),
            )

        cluster.run_phase(map_node, profile=profile)

    def run(self, cluster: Cluster) -> MapReduceResult:
        """Execute the job; resets the cluster's ledger first."""
        cluster.reset()
        profile = ExecutionProfile(cluster.num_nodes)
        for channel in self.channels:
            self._shuffle_channel(cluster, profile, channel)

        # Barrier: collect shuffled records per node and channel, then
        # sort + reduce — one task per reducer node.
        widths = {channel.name: channel.record_width for channel in self.channels}
        channel_names = [channel.name for channel in self.channels]

        def reduce_node(node: int) -> LocalPartition:
            received: dict[str, list[LocalPartition]] = {
                name: [] for name in channel_names
            }
            for message in cluster.network.deliver(node):
                channel_name, batch = message.payload
                received[channel_name].append(batch)
            groups: dict[str, LocalPartition] = {}
            for name, batches in received.items():
                merged = LocalPartition.concat(batches) if batches else LocalPartition.empty()
                if merged.num_rows:
                    order = np.argsort(merged.keys, kind="stable")
                    merged = merged.take(order)
                profile.add_cpu_at(
                    f"Sort {name}", "sort", node, merged.num_rows * widths[name]
                )
                groups[name] = merged
            output = self.reducer(node, groups)
            profile.add_cpu_at(
                "Reduce", "merge", node, output.num_rows * max(self.output_width, 1.0)
            )
            return output

        outputs = cluster.run_phase(reduce_node, profile=profile)

        if self.output_router is not None:
            outputs = self._route_outputs(cluster, profile, outputs)

        return MapReduceResult(
            outputs=outputs,
            traffic=cluster.network.reset_ledger(),
            profile=profile,
        )

    def _route_outputs(
        self,
        cluster: Cluster,
        profile: ExecutionProfile,
        outputs: list[LocalPartition],
    ) -> list[LocalPartition]:
        """Optionally forward reduce outputs to chosen nodes."""

        def route_node(node: int) -> None:
            record_idx, destinations = self.output_router(node, outputs[node])
            record_idx = np.asarray(record_idx, dtype=np.int64)
            destinations = np.asarray(destinations, dtype=np.int64)
            # The routed expansion and the per-destination selection fuse
            # into one gather on the fast path.
            batches = outputs[node].split_by(
                destinations, cluster.num_nodes, rows=record_idx
            )
            send_split(
                cluster, profile, self.output_category, node, batches,
                self.output_width,
                "Route reduce output", "Local copy routed output",
                payload_of=lambda batch: ("__out__", batch),
            )

        cluster.run_phase(route_node, profile=profile)

        def collect_node(node: int) -> LocalPartition:
            batches = [payload[1] for payload in drain_payloads(cluster, node)]
            return LocalPartition.concat(batches) if batches else LocalPartition.empty()

        return cluster.run_phase(collect_node, profile=profile)
