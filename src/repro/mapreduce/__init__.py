"""MapReduce substrate and joins re-implemented on it (Section 6)."""

from .engine import Channel, MapReduceJob, MapReduceResult
from .joins import mr_hash_join, mr_track_join

__all__ = ["Channel", "MapReduceJob", "MapReduceResult", "mr_hash_join", "mr_track_join"]
