"""Shared-memory numpy buffers for the process-pool backend.

A :class:`SharedArray` owns one :class:`multiprocessing.shared_memory`
block holding a numpy array.  Pickling the handle transfers only the
block name, shape, and dtype — workers in a
:class:`~repro.parallel.executor.ProcessExecutor` attach to the same
physical pages, so large payloads cross the process boundary with zero
copies instead of being serialized.

Lifecycle: the creating process calls :meth:`SharedArray.copy_from`
(one copy into shared pages), hands the handle to workers, and calls
:meth:`close` + :meth:`unlink` when every consumer is done.  Attached
views in workers stay valid for the lifetime of their handle.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArray"]


class SharedArray:
    """A numpy array backed by a named shared-memory block."""

    def __init__(self, name: str, shape: tuple[int, ...], dtype: str, *, _shm=None):
        self.name = name
        self.shape = tuple(int(dim) for dim in shape)
        self.dtype = np.dtype(dtype)
        self._shm = _shm

    @classmethod
    def copy_from(cls, array: np.ndarray) -> "SharedArray":
        """Allocate a shared block and copy ``array`` into it."""
        array = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        return cls(shm.name, array.shape, array.dtype.str, _shm=shm)

    def _attach(self) -> shared_memory.SharedMemory:
        if self._shm is None:
            self._shm = shared_memory.SharedMemory(name=self.name)
        return self._shm

    def array(self) -> np.ndarray:
        """The shared block viewed as a numpy array (no copy)."""
        return np.ndarray(self.shape, dtype=self.dtype, buffer=self._attach().buf)

    def close(self) -> None:
        """Detach this handle's mapping (the block itself survives)."""
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def unlink(self) -> None:
        """Destroy the underlying block (owner-side, after all closes)."""
        self._attach().unlink()

    # Only the addressing triple is pickled; workers re-attach by name.
    def __reduce__(self):
        return (SharedArray, (self.name, self.shape, self.dtype.str))
