"""Parallel execution engine: worker pools, phase barriers, shared memory."""

from .chunks import (
    kernel_chunk_rows,
    kernel_config,
    kernel_workers,
    set_kernel_chunk_rows,
    set_kernel_workers,
)
from .executor import (
    PhaseExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_workers,
    resolve_executor,
    run_fused_phases,
    run_phase,
    set_default_workers,
)
from .shm import SharedArray

__all__ = [
    "PhaseExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SharedArray",
    "default_workers",
    "set_default_workers",
    "resolve_executor",
    "run_phase",
    "run_fused_phases",
    "kernel_workers",
    "set_kernel_workers",
    "kernel_chunk_rows",
    "set_kernel_chunk_rows",
    "kernel_config",
]
