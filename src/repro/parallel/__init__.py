"""Parallel execution engine: worker pools, phase barriers, shared memory."""

from .executor import (
    PhaseExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_workers,
    resolve_executor,
    run_phase,
    set_default_workers,
)
from .shm import SharedArray

__all__ = [
    "PhaseExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SharedArray",
    "default_workers",
    "set_default_workers",
    "resolve_executor",
    "run_phase",
]
