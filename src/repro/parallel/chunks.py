"""Chunked kernel parallelism: per-chunk subtasks with deterministic gathers.

The phase engine (:func:`repro.parallel.run_phase`) parallelizes *across*
nodes, but each node's kernel — the scatter sort behind ``split_by`` and
``hash_split``, the pack-sort behind the key index, the probe behind
``join_indices`` — still ran single-threaded.  This module splits those
kernels into per-chunk subtasks and recombines the results in chunk
order, with two invariants that keep every output bit-identical to the
serial kernel:

1. **Chunk boundaries are a function of data size only.**
   :func:`chunk_bounds` derives the boundaries from the row count and
   the ``REPRO_KERNEL_CHUNK_ROWS`` knob — never from the worker count —
   so the same input always decomposes into the same chunks no matter
   how many threads execute them.

2. **Results commit in chunk order.**  :func:`run_chunks` returns chunk
   results in chunk order regardless of completion order, and every
   recombination below (gather scatters into disjoint output slices,
   counting merges, pairwise sorted merges) is a pure function of the
   per-chunk results.

Worker resolution: :func:`set_kernel_workers`, then the
``REPRO_KERNEL_WORKERS`` environment variable, then the phase engine's
:func:`~repro.parallel.executor.default_workers` — so ``REPRO_WORKERS=4``
lifts kernel parallelism together with phase parallelism.  Chunk
subtasks run on a dedicated thread pool (numpy sorts, gathers, and
bincounts release the GIL); a thread already executing a chunk subtask
runs nested chunk work inline, so kernels composed of kernels can never
deadlock the pool.
"""

from __future__ import annotations

import os
import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, Iterable

import numpy as np

from ..errors import ValidationError
from .executor import _check_workers, default_workers

__all__ = [
    "chunk_bounds",
    "chunked_slices",
    "chunked_build",
    "chunked_gather",
    "chunked_argsort_bounded",
    "chunked_sort_unique",
    "kernel_chunk_rows",
    "set_kernel_chunk_rows",
    "kernel_workers",
    "set_kernel_workers",
    "kernel_config",
    "run_chunks",
]

#: Environment variable fixing the rows per kernel chunk.
CHUNK_ROWS_ENV = "REPRO_KERNEL_CHUNK_ROWS"
#: Environment variable overriding the kernel worker count.
KERNEL_WORKERS_ENV = "REPRO_KERNEL_WORKERS"
#: Default rows per chunk: large enough that per-chunk numpy calls
#: amortize dispatch, small enough that typical bench partitions split
#: into several chunks per worker for load balancing.
DEFAULT_CHUNK_ROWS = 1 << 16

_kernel_workers: int | None = None
_chunk_rows: int | None = None

_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None
_pool_size = 0

#: Nested-execution guard: a thread already running a chunk subtask must
#: not submit to (and then block on) the pool it occupies.
_tls = threading.local()


def kernel_chunk_rows() -> int:
    """Rows per kernel chunk (override, then env, then the default).

    A malformed or non-positive ``REPRO_KERNEL_CHUNK_ROWS`` falls back
    to the default with a warning, mirroring ``REPRO_WORKERS`` handling.
    """
    if _chunk_rows is not None:
        return _chunk_rows
    env = os.environ.get(CHUNK_ROWS_ENV, "").strip()
    if env:
        try:
            rows = int(env)
        except ValueError:
            warnings.warn(
                f"{CHUNK_ROWS_ENV}={env!r} is not an integer; "
                f"using the default of {DEFAULT_CHUNK_ROWS}",
                RuntimeWarning,
                stacklevel=2,
            )
            return DEFAULT_CHUNK_ROWS
        if rows < 1:
            warnings.warn(
                f"{CHUNK_ROWS_ENV} must be >= 1, got {rows}; "
                f"using the default of {DEFAULT_CHUNK_ROWS}",
                RuntimeWarning,
                stacklevel=2,
            )
            return DEFAULT_CHUNK_ROWS
        return rows
    return DEFAULT_CHUNK_ROWS


def set_kernel_chunk_rows(rows: int | None) -> int | None:
    """Set the process-wide chunk size; returns the previous override.

    ``None`` restores environment/default resolution.  Chunk size
    affects only how work is decomposed, never the results.
    """
    global _chunk_rows
    if rows is not None:
        if not isinstance(rows, int) or isinstance(rows, bool) or rows < 1:
            raise ValidationError(f"chunk rows must be an integer >= 1, got {rows!r}")
    previous = _chunk_rows
    _chunk_rows = rows
    return previous


def kernel_workers() -> int:
    """Worker count for chunked kernels.

    Resolution: :func:`set_kernel_workers`, the ``REPRO_KERNEL_WORKERS``
    environment variable, then the phase engine's default
    (:func:`~repro.parallel.executor.default_workers`).
    """
    if _kernel_workers is not None:
        return _kernel_workers
    env = os.environ.get(KERNEL_WORKERS_ENV, "").strip()
    if env:
        try:
            workers = int(env)
        except ValueError:
            warnings.warn(
                f"{KERNEL_WORKERS_ENV}={env!r} is not an integer; "
                "falling back to serial kernels",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1
        if workers < 1:
            warnings.warn(
                f"{KERNEL_WORKERS_ENV} must be >= 1, got {workers}; "
                "falling back to serial kernels",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1
        return workers
    return default_workers()


def set_kernel_workers(workers: int | None) -> int | None:
    """Set the process-wide kernel worker count; returns the previous value.

    ``None`` restores environment/default resolution.
    """
    global _kernel_workers
    if workers is not None:
        workers = _check_workers(workers)
    previous = _kernel_workers
    _kernel_workers = workers
    return previous


@contextmanager
def kernel_config(workers: int | None = None, chunk_rows: int | None = None):
    """Scoped kernel-parallelism configuration (tests and benches)."""
    previous_workers = set_kernel_workers(workers) if workers is not None else None
    previous_rows = set_kernel_chunk_rows(chunk_rows) if chunk_rows is not None else None
    try:
        yield
    finally:
        if workers is not None:
            set_kernel_workers(previous_workers)
        if chunk_rows is not None:
            set_kernel_chunk_rows(previous_rows)


def _kernel_pool(workers: int) -> ThreadPoolExecutor:
    global _pool, _pool_size
    with _pool_lock:
        if _pool is None or _pool_size != workers:
            if _pool is not None:
                _pool.shutdown(wait=True)
            _pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-kernel"
            )
            _pool_size = workers
        return _pool


def run_chunks(fn: Callable, items: Iterable) -> list:
    """Run ``fn`` over chunk descriptors; results are in chunk order.

    Dispatches to the kernel thread pool when parallelism is enabled
    and runs inline (still in order) otherwise — including when the
    calling thread is itself a chunk subtask (nested guard).  ``fn``
    must be a pure function of its item (plus read-only shared state):
    subtasks run concurrently and may not send messages, record profile
    steps, or mutate overlapping arrays.
    """
    items = list(items)
    workers = kernel_workers()
    if len(items) <= 1 or workers <= 1 or getattr(_tls, "in_kernel", False):
        return [fn(item) for item in items]

    def subtask(item):
        _tls.in_kernel = True
        try:
            return fn(item)
        finally:
            _tls.in_kernel = False

    return list(_kernel_pool(workers).map(subtask, items))


def chunk_bounds(n: int, chunk_rows: int | None = None) -> np.ndarray:
    """Chunk boundary offsets ``[0, c, 2c, ..., n]`` for ``n`` rows.

    A pure function of the data size and the chunk-size knob — worker
    count never influences the decomposition, which is what makes
    chunked results reproducible across hosts and worker counts.
    """
    rows = chunk_rows if chunk_rows is not None else kernel_chunk_rows()
    if n <= 0:
        return np.zeros(1, dtype=np.int64)
    edges = np.arange(0, n, rows, dtype=np.int64)
    return np.append(edges, np.int64(n))


def chunked_slices(n: int) -> list[tuple[int, int]] | None:
    """``(start, stop)`` chunk slices, or ``None`` when chunking is off.

    ``None`` means the caller should take its serial path: kernel
    workers resolve to 1, the input fits in one chunk, or the calling
    thread is already a chunk subtask.
    """
    if kernel_workers() <= 1 or getattr(_tls, "in_kernel", False):
        return None
    bounds = chunk_bounds(n)
    if len(bounds) <= 2:
        return None
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(len(bounds) - 1)]


def chunked_build(fn: Callable[[int, int], np.ndarray], n: int, dtype) -> np.ndarray:
    """Assemble ``out[start:stop] = fn(start, stop)`` per chunk.

    For elementwise producers (hash partitioning, value packing) the
    per-chunk results land in disjoint slices of one preallocated
    array, so the assembled output is bit-identical to ``fn(0, n)``.
    """
    slices = chunked_slices(n)
    if slices is None:
        return fn(0, n)
    out = np.empty(n, dtype=dtype)

    def fill(bounds: tuple[int, int]):
        start, stop = bounds
        out[start:stop] = fn(start, stop)

    run_chunks(fill, slices)
    return out


def chunked_gather(values: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """``values[indices]`` with the index array processed in chunks.

    Only integer index arrays over 1-D values chunk (a boolean mask's
    output length is data-dependent, so masks take the plain path).
    """
    if (
        getattr(values, "ndim", 1) != 1
        or not isinstance(indices, np.ndarray)
        or indices.ndim != 1
        or indices.dtype == np.bool_
    ):
        return values[indices]
    slices = chunked_slices(len(indices))
    if slices is None:
        return values[indices]
    out = np.empty(len(indices), dtype=values.dtype)

    def fill(bounds: tuple[int, int]):
        start, stop = bounds
        out[start:stop] = values[indices[start:stop]]

    run_chunks(fill, slices)
    return out


def chunked_argsort_bounded(
    values: np.ndarray, upper: int, argsort_fn: Callable[[np.ndarray, int], np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Stable argsort of ints in ``[0, upper)`` via per-chunk sorts.

    Returns ``(order, counts)`` where ``order`` is bit-identical to
    ``argsort_fn(values, upper)`` over the whole array and ``counts`` is
    ``np.bincount(values, minlength=upper)``.

    Why the merge is exact: the global stable order groups rows by value
    with original positions ascending inside each value; rows of value
    ``v`` therefore appear chunk by chunk, each chunk's run in its local
    stable order.  A counting merge places chunk ``c``'s run of ``v`` at
    ``bucket_start[v] + sum(counts[<c, v])`` — exactly the global
    position of that run.
    """
    n = len(values)
    slices = chunked_slices(n)
    if slices is None:
        return argsort_fn(values, upper), np.bincount(values, minlength=upper)

    def analyze(bounds: tuple[int, int]):
        start, stop = bounds
        chunk = values[start:stop]
        return argsort_fn(chunk, upper), np.bincount(chunk, minlength=upper)

    parts = run_chunks(analyze, slices)
    counts_per_chunk = np.stack([counts for _, counts in parts])
    totals = counts_per_chunk.sum(axis=0)
    bucket_start = np.concatenate(([0], np.cumsum(totals)[:-1]))
    run_start = bucket_start + np.concatenate(
        (
            np.zeros((1, upper), dtype=np.int64),
            np.cumsum(counts_per_chunk, axis=0)[:-1],
        )
    )
    out = np.empty(n, dtype=parts[0][0].dtype)

    def scatter(chunk_id: int):
        start = slices[chunk_id][0]
        order_c, counts_c = parts[chunk_id]
        local_start = np.concatenate(([0], np.cumsum(counts_c)[:-1]))
        for value in np.flatnonzero(counts_c):
            dst = int(run_start[chunk_id, value])
            lo = int(local_start[value])
            width = int(counts_c[value])
            out[dst : dst + width] = order_c[lo : lo + width] + start

    run_chunks(scatter, range(len(slices)))
    return out, totals


def _merge_sorted(pair: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
    """Merge two sorted arrays of pairwise-distinct values."""
    a, b = pair
    out = np.empty(len(a) + len(b), dtype=a.dtype)
    positions_b = np.searchsorted(a, b, side="left") + np.arange(
        len(b), dtype=np.int64
    )
    keep_a = np.ones(len(out), dtype=bool)
    keep_a[positions_b] = False
    out[positions_b] = b
    out[keep_a] = a
    return out


def chunked_sort_unique(values: np.ndarray) -> np.ndarray:
    """Sort an array of pairwise-distinct values via chunk sorts + merges.

    Chunks are disjoint slice views sorted in place concurrently, then
    sorted runs merge pairwise (vectorized ``searchsorted`` placement)
    until one remains.  With all values distinct there is exactly one
    ascending arrangement, so the result is bit-identical to
    ``values.sort()`` — this is what makes the pack-sort of
    :func:`repro.util.stable_sort_with_order` (value in the high bits,
    unique row index in the low bits) chunkable without a stability
    argument about the merge order.

    Returns the sorted array; the input may or may not be sorted in
    place depending on whether chunking engaged.
    """
    slices = chunked_slices(len(values))
    if slices is None:
        values.sort()
        return values
    pieces = [values[start:stop] for start, stop in slices]

    def sort_piece(piece: np.ndarray):
        piece.sort()

    run_chunks(sort_piece, pieces)
    runs = pieces
    while len(runs) > 1:
        pairs = [(runs[i], runs[i + 1]) for i in range(0, len(runs) - 1, 2)]
        merged = run_chunks(_merge_sorted, pairs)
        if len(runs) % 2:
            merged.append(runs[-1])
        runs = merged
    return runs[0]
