"""Worker-pool executors for the parallel cluster engine.

The simulated cluster runs each node's per-phase work (partition
scatters, merge-joins, tracking dedup) as one *task*; a
:class:`PhaseExecutor` decides where those tasks run:

:class:`SerialExecutor`
    Tasks run inline on the calling thread, in task order.  The
    default, and the reference every parallel run must match
    byte-for-byte.

:class:`ThreadExecutor`
    Tasks run on a shared :class:`~concurrent.futures.ThreadPoolExecutor`.
    The hot kernels are GIL-releasing numpy (sorts, gathers, bincounts),
    so threads give real parallelism without pickling any state.

:class:`ProcessExecutor`
    Opt-in process pool for large payloads.  Task callables and
    arguments must be picklable (module-level functions); numpy arrays
    should cross the process boundary through
    :mod:`repro.parallel.shm` shared-memory blocks instead of pickled
    copies.  The join operators use closures over cluster state and
    therefore always run on the serial or thread backend; the process
    backend serves embarrassingly-parallel kernel work (workload
    generation, batch scoring) where payload copies would dominate.

Determinism does not depend on the executor: :func:`run_phase` gives
every task its own network send lane and profile lane, and commits
them in task order at the phase barrier, so ledgers, inbox ordering,
and profiles are bit-identical for any worker count or interleaving.
"""

from __future__ import annotations

import abc
import os
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence

from ..errors import FaultExhaustedError, NodeCrashError, ParallelError, ValidationError
from ..timing.clock import wall_clock

__all__ = [
    "PhaseExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "default_workers",
    "set_default_workers",
    "resolve_executor",
    "run_phase",
    "run_fused_phases",
]

#: Environment variable consulted for the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

_default_workers: int | None = None


def _check_workers(workers) -> int:
    """Validate an explicit worker count; raises :class:`ValidationError`.

    Accepts integers (and integer-valued floats a CLI parser may
    produce); anything malformed or non-positive raises a clear,
    typed error instead of a bare ``ValueError`` escaping a parser.
    """
    if isinstance(workers, bool) or not isinstance(workers, (int, float)):
        raise ValidationError(
            f"worker count must be an integer, got {workers!r}"
        )
    if isinstance(workers, float):
        if not workers.is_integer():
            raise ValidationError(f"worker count must be an integer, got {workers!r}")
        workers = int(workers)
    if workers < 1:
        raise ValidationError(f"worker count must be >= 1, got {workers}")
    return workers


def default_workers() -> int:
    """The worker count new clusters use when none is given.

    Resolution order: :func:`set_default_workers`, the ``REPRO_WORKERS``
    environment variable, then 1 (serial).  A malformed or non-positive
    ``REPRO_WORKERS`` never aborts the process: it falls back to serial
    with a warning (the environment is ambient configuration, unlike an
    explicit ``workers=`` argument, which raises
    :class:`~repro.errors.ValidationError`).
    """
    if _default_workers is not None:
        return _default_workers
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        try:
            workers = int(env)
        except ValueError:
            warnings.warn(
                f"{WORKERS_ENV}={env!r} is not an integer; "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1
        if workers < 1:
            warnings.warn(
                f"{WORKERS_ENV} must be >= 1, got {workers}; "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1
        return workers
    return 1


def set_default_workers(workers: int | None) -> int | None:
    """Set the process-wide default worker count; returns the previous value.

    ``None`` restores environment/serial resolution.
    """
    global _default_workers
    if workers is not None:
        workers = _check_workers(workers)
    previous = _default_workers
    _default_workers = workers
    return previous


class PhaseExecutor(abc.ABC):
    """Runs the tasks of one phase and collects their results in order."""

    #: Number of workers tasks may occupy concurrently.
    workers: int = 1

    @abc.abstractmethod
    def map(self, fn: Callable, items: Iterable) -> list:
        """Apply ``fn`` to every item; results are in item order.

        The first task exception propagates to the caller (remaining
        tasks may or may not have run).
        """

    def close(self) -> None:
        """Release pooled workers (no-op for inline executors)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} workers={self.workers}>"


class SerialExecutor(PhaseExecutor):
    """Inline execution on the calling thread, in task order."""

    workers = 1

    def map(self, fn: Callable, items: Iterable) -> list:
        return [fn(item) for item in items]


class ThreadExecutor(PhaseExecutor):
    """Thread-pool execution for GIL-releasing numpy task bodies."""

    def __init__(self, workers: int):
        self.workers = _check_workers(workers)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-worker"
            )
        return self._pool

    def map(self, fn: Callable, items: Iterable) -> list:
        return list(self._ensure_pool().map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _run_batch(fn: Callable, items: list) -> list:
    """Worker-side body of one :class:`ProcessExecutor` batch.

    Module-level so it pickles; applies ``fn`` to each item inline and
    ships all results back in one IPC round trip.
    """
    return [fn(item) for item in items]


class ProcessExecutor(PhaseExecutor):
    """Process-pool execution for picklable, payload-heavy task functions.

    Arrays should be passed as :class:`repro.parallel.shm.SharedArray`
    handles so workers attach to the same memory instead of receiving
    pickled copies.

    Tasks are submitted in contiguous *batches* — one future per worker
    rather than one per item — so a phase pays one pickle/IPC round trip
    per worker instead of per task.  ``batch_size`` overrides the batch
    length (default: items split evenly across workers).  Results are
    still returned in item order.

    A supervisor watches for dead workers: when the pool breaks (a
    worker process died mid-task), the pool is respawned and only the
    batches that never produced results are resubmitted, up to
    ``max_respawns`` times before a
    :class:`~repro.errors.FaultExhaustedError` propagates.  Task
    functions must therefore be safe to re-execute (the phase tasks
    are: they produce results, they don't mutate shared state before
    the barrier).
    """

    def __init__(
        self, workers: int, max_respawns: int = 2, batch_size: int | None = None
    ):
        self.workers = _check_workers(workers)
        if max_respawns < 0:
            raise ValidationError(f"max_respawns must be >= 0, got {max_respawns}")
        self.max_respawns = max_respawns
        self.batch_size = None if batch_size is None else _check_workers(batch_size)
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _batches(self, indices: list[int]) -> list[list[int]]:
        """Contiguous index batches, at most one per worker by default."""
        if not indices:
            return []
        if self.batch_size is not None:
            size = self.batch_size
        else:
            size = -(-len(indices) // self.workers)
        return [indices[i : i + size] for i in range(0, len(indices), size)]

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        results: list = [None] * len(items)
        pending = list(range(len(items)))
        respawns = 0
        while pending:
            pool = self._ensure_pool()
            batches = self._batches(pending)
            futures = [
                (batch, pool.submit(_run_batch, fn, [items[i] for i in batch]))
                for batch in batches
            ]
            failed: list[int] = []
            for batch, future in futures:
                try:
                    for index, value in zip(batch, future.result()):
                        results[index] = value
                except BrokenProcessPool:
                    failed.extend(batch)
            if not failed:
                break
            # A worker died: discard the broken pool, respawn, and
            # resubmit only the batches that never produced results.
            self.close()
            respawns += 1
            if respawns > self.max_respawns:
                raise FaultExhaustedError(
                    f"process pool broke {respawns} times "
                    f"({len(failed)} tasks unfinished); "
                    f"respawn budget of {self.max_respawns} exhausted",
                    attempts=respawns,
                )
            pending = failed
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def resolve_executor(
    workers: int | None = None, backend: str = "thread"
) -> PhaseExecutor:
    """Build the executor for ``workers`` (default: :func:`default_workers`).

    One worker always resolves to :class:`SerialExecutor`; more workers
    resolve to the requested ``backend`` (``"thread"`` or ``"process"``).
    A malformed or non-positive explicit ``workers`` raises
    :class:`~repro.errors.ValidationError`; an unknown backend raises
    :class:`~repro.errors.ParallelError`.
    """
    if workers is None:
        workers = default_workers()
    workers = _check_workers(workers)
    if workers == 1:
        return SerialExecutor()
    if backend == "thread":
        return ThreadExecutor(workers)
    if backend == "process":
        return ProcessExecutor(workers)
    raise ParallelError(f"backend must be 'thread' or 'process', got {backend!r}")


class _CrashedTask:
    """Sentinel result marking a task whose node crashed at phase entry.

    Crashes must not abort the whole phase inside ``executor.map`` (the
    supervisor restarts crashed nodes afterwards), so the guarded task
    wrapper converts :class:`~repro.errors.NodeCrashError` into this
    sentinel instead of letting it propagate.
    """

    __slots__ = ("error",)

    def __init__(self, error: NodeCrashError):
        self.error = error


def _stage_indices(cluster, tasks) -> Sequence[int]:
    """Resolve one stage's ``tasks`` argument to an index sequence."""
    if tasks is None:
        return range(cluster.num_nodes)
    if isinstance(tasks, int):
        return range(tasks)
    return list(tasks)


def run_phase(
    cluster,
    fn: Callable[[int], object],
    tasks: Sequence[int] | int | None = None,
    profile=None,
    executor: PhaseExecutor | None = None,
    task_nodes: Sequence[int] | None = None,
) -> list:
    """Run one phase's tasks with barrier semantics and deterministic state.

    ``fn(i)`` is invoked once per task index.  ``tasks`` is either a task
    count, an explicit index sequence, or ``None`` for one task per
    cluster node.  Every task is bound to its own network
    :class:`~repro.cluster.network.SendLane` (and, when ``profile`` is
    given, its own profile lane); lanes are committed in task order at
    the closing barrier, so traffic ledgers, inbox ordering, and
    profiles never depend on the worker count or thread interleaving.
    Messages sent inside the phase become visible to ``deliver`` only
    after the barrier, matching the paper's non-pipelined phase model.

    Crash supervision
        When the cluster network has a fault plan installed, each task
        asks the injector whether its node fail-stops entering this
        phase — *before* the task body runs or its lane binds, so a
        crashed task has no partial side effects.  The supervisor then
        re-executes crashed tasks inline (same lane position, preserving
        barrier commit order) until they succeed or the plan's
        ``max_node_restarts`` budget is spent, at which point
        :class:`~repro.errors.FaultExhaustedError` propagates and the
        phase aborts.  Crash injection needs a task-to-node mapping:
        one-task-per-node phases provide it implicitly, other phases
        pass ``task_nodes``; phases with neither run uninjected.

    Returns the task results in task order.
    """
    return _run_phase_group(
        cluster, [(fn, tasks, task_nodes)], profile=profile, executor=executor
    )[0]


def run_fused_phases(
    cluster,
    stages: Sequence[tuple],
    profile=None,
    executor: PhaseExecutor | None = None,
) -> list[list]:
    """Run several phases' stages under one shared barrier.

    ``stages`` is a sequence of ``(fn, tasks, task_nodes)`` triples, each
    exactly the arguments one :func:`run_phase` call would have taken.
    All stages' tasks are dispatched to the executor together and commit
    at a single barrier, so a later stage's local work overlaps an
    earlier stage's sends — the pipelined-exchange mode
    (:meth:`repro.cluster.cluster.Cluster.pipelined_phases`).

    Deterministic state is preserved exactly as in :func:`run_phase`:
    lanes are committed in stage-major task order, so each category's
    inbox arrival order and the ledger sums match the strict
    phase-per-stage execution.  (Message sequence numbers and profile
    *step order* may differ from strict mode, which is why pipelining is
    an explicit opt-in.)  Tasks of a fused group must not depend on an
    earlier stage's sends — those are only delivered at the shared
    barrier — nor on its results.

    Fault injection requires strict phase sequencing, so fusing more
    than one stage while a fault plan is installed raises
    :class:`~repro.errors.ParallelError`; callers gate on
    ``cluster.pipeline_active()``.

    Returns one result list per stage, in stage order.
    """
    return _run_phase_group(cluster, stages, profile=profile, executor=executor)


def _run_phase_group(
    cluster,
    stages: Sequence[tuple],
    profile=None,
    executor: PhaseExecutor | None = None,
) -> list[list]:
    executor = executor or cluster.executor
    network = cluster.network
    injector = getattr(network, "faults", None)
    if injector is not None and len(stages) > 1:
        raise ParallelError(
            "cannot fuse phases while a fault plan is installed; "
            "pipelining must fall back to strict barriers under faults"
        )

    # Flatten stage tasks into global lane positions, stage-major: the
    # barrier commits lanes in this order, which equals the order the
    # strict per-stage execution would have committed them in.
    stage_indices: list[Sequence[int]] = []
    stage_offsets: list[int] = []
    flat_fns: list[Callable[[int], object]] = []
    nodes: list[int | None] = []
    count = 0
    for fn, tasks, task_nodes in stages:
        indices = _stage_indices(cluster, tasks)
        if task_nodes is not None:
            task_nodes = list(task_nodes)
            if len(task_nodes) != len(indices):
                raise ParallelError(
                    f"task_nodes has {len(task_nodes)} entries "
                    f"for {len(indices)} tasks"
                )
            nodes.extend(task_nodes)
        elif tasks is None:
            nodes.extend(indices)
        else:
            nodes.extend([None] * len(indices))
        stage_indices.append(indices)
        stage_offsets.append(count)
        flat_fns.append(fn)
        count += len(indices)

    entry_time = wall_clock()
    starts = [0.0] * count
    ends = [0.0] * count
    lanes = network.begin_phase(count)
    profile_lanes = profile.begin_phase(count) if profile is not None else None

    def position_stage(position: int) -> int:
        stage = len(stage_offsets) - 1
        while stage_offsets[stage] > position:
            stage -= 1
        return stage

    def task(position: int):
        stage = position_stage(position)
        fn = flat_fns[stage]
        index = stage_indices[stage][position - stage_offsets[stage]]
        starts[position] = wall_clock()
        try:
            with network.bind_lane(lanes[position]):
                if profile_lanes is None:
                    return fn(index)
                with profile.bind_lane(profile_lanes[position]):
                    return fn(index)
        finally:
            ends[position] = wall_clock()

    injected = injector is not None and any(node is not None for node in nodes)
    if not injected:
        guarded = task
    else:

        def guarded(position: int):
            node = nodes[position]
            if node is not None:
                try:
                    injector.maybe_crash(node)
                except NodeCrashError as error:
                    return _CrashedTask(error)
            return task(position)

    try:
        results = executor.map(guarded, range(count))
        map_end = wall_clock()
        if injected:
            restarts: dict[int, int] = {}
            for position, result in enumerate(results):
                while isinstance(result, _CrashedTask):
                    node = nodes[position]
                    attempts = restarts.get(node, 0) + 1
                    restarts[node] = attempts
                    if attempts > injector.plan.max_node_restarts:
                        raise FaultExhaustedError(
                            f"node {node} crashed entering phase "
                            f"{injector.phase} and stayed down past the "
                            f"restart budget of "
                            f"{injector.plan.max_node_restarts}",
                            node=node,
                            attempts=attempts,
                        ) from result.error
                    injector.record_restart(node)
                    try:
                        injector.maybe_crash(node)
                    except NodeCrashError as error:
                        result = _CrashedTask(error)
                        continue
                    # Re-execute from the last barrier, inline on the
                    # coordinator, into the task's original (still
                    # empty) lane so commit order is unchanged.
                    result = task(position)
                results[position] = result
        commit_start = wall_clock()
        network.end_phase()
        if profile is not None:
            profile.end_phase()
    except BaseException:
        network.abort_phase()
        if profile is not None:
            profile.abort_phase()
        raise
    exit_time = wall_clock()
    if profile is not None:
        profile.record_phase_timing(
            {
                "tasks": count,
                "stages": len(stages),
                "workers": executor.workers,
                "dispatch_seconds": max(0.0, min(starts) - entry_time)
                if count
                else 0.0,
                "kernel_seconds": sum(
                    max(0.0, end - start) for start, end in zip(starts, ends)
                ),
                "barrier_wait_seconds": max(0.0, map_end - max(ends))
                if count
                else 0.0,
                "commit_seconds": exit_time - commit_start,
                "phase_seconds": exit_time - entry_time,
            }
        )
    return [
        results[offset : offset + len(indices)]
        for offset, indices in zip(stage_offsets, stage_indices)
    ]
