"""Worker-pool executors for the parallel cluster engine.

The simulated cluster runs each node's per-phase work (partition
scatters, merge-joins, tracking dedup) as one *task*; a
:class:`PhaseExecutor` decides where those tasks run:

:class:`SerialExecutor`
    Tasks run inline on the calling thread, in task order.  The
    default, and the reference every parallel run must match
    byte-for-byte.

:class:`ThreadExecutor`
    Tasks run on a shared :class:`~concurrent.futures.ThreadPoolExecutor`.
    The hot kernels are GIL-releasing numpy (sorts, gathers, bincounts),
    so threads give real parallelism without pickling any state.

:class:`ProcessExecutor`
    Opt-in process pool for large payloads.  Task callables and
    arguments must be picklable (module-level functions); numpy arrays
    should cross the process boundary through
    :mod:`repro.parallel.shm` shared-memory blocks instead of pickled
    copies.  The join operators use closures over cluster state and
    therefore always run on the serial or thread backend; the process
    backend serves embarrassingly-parallel kernel work (workload
    generation, batch scoring) where payload copies would dominate.

Determinism does not depend on the executor: :func:`run_phase` gives
every task its own network send lane and profile lane, and commits
them in task order at the phase barrier, so ledgers, inbox ordering,
and profiles are bit-identical for any worker count or interleaving.
"""

from __future__ import annotations

import abc
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence

from ..errors import ParallelError

__all__ = [
    "PhaseExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "default_workers",
    "set_default_workers",
    "resolve_executor",
    "run_phase",
]

#: Environment variable consulted for the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

_default_workers: int | None = None


def default_workers() -> int:
    """The worker count new clusters use when none is given.

    Resolution order: :func:`set_default_workers`, the ``REPRO_WORKERS``
    environment variable, then 1 (serial).
    """
    if _default_workers is not None:
        return _default_workers
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        try:
            workers = int(env)
        except ValueError as exc:
            raise ParallelError(f"{WORKERS_ENV} must be an integer, got {env!r}") from exc
        if workers < 1:
            raise ParallelError(f"{WORKERS_ENV} must be >= 1, got {workers}")
        return workers
    return 1


def set_default_workers(workers: int | None) -> int | None:
    """Set the process-wide default worker count; returns the previous value.

    ``None`` restores environment/serial resolution.
    """
    global _default_workers
    if workers is not None and workers < 1:
        raise ParallelError(f"worker count must be >= 1, got {workers}")
    previous = _default_workers
    _default_workers = workers
    return previous


class PhaseExecutor(abc.ABC):
    """Runs the tasks of one phase and collects their results in order."""

    #: Number of workers tasks may occupy concurrently.
    workers: int = 1

    @abc.abstractmethod
    def map(self, fn: Callable, items: Iterable) -> list:
        """Apply ``fn`` to every item; results are in item order.

        The first task exception propagates to the caller (remaining
        tasks may or may not have run).
        """

    def close(self) -> None:
        """Release pooled workers (no-op for inline executors)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} workers={self.workers}>"


class SerialExecutor(PhaseExecutor):
    """Inline execution on the calling thread, in task order."""

    workers = 1

    def map(self, fn: Callable, items: Iterable) -> list:
        return [fn(item) for item in items]


class ThreadExecutor(PhaseExecutor):
    """Thread-pool execution for GIL-releasing numpy task bodies."""

    def __init__(self, workers: int):
        if workers < 1:
            raise ParallelError(f"worker count must be >= 1, got {workers}")
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-worker"
            )
        return self._pool

    def map(self, fn: Callable, items: Iterable) -> list:
        return list(self._ensure_pool().map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessExecutor(PhaseExecutor):
    """Process-pool execution for picklable, payload-heavy task functions.

    Arrays should be passed as :class:`repro.parallel.shm.SharedArray`
    handles so workers attach to the same memory instead of receiving
    pickled copies.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ParallelError(f"worker count must be >= 1, got {workers}")
        self.workers = workers
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def map(self, fn: Callable, items: Iterable) -> list:
        return list(self._ensure_pool().map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def resolve_executor(
    workers: int | None = None, backend: str = "thread"
) -> PhaseExecutor:
    """Build the executor for ``workers`` (default: :func:`default_workers`).

    One worker always resolves to :class:`SerialExecutor`; more workers
    resolve to the requested ``backend`` (``"thread"`` or ``"process"``).
    """
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ParallelError(f"worker count must be >= 1, got {workers}")
    if workers == 1:
        return SerialExecutor()
    if backend == "thread":
        return ThreadExecutor(workers)
    if backend == "process":
        return ProcessExecutor(workers)
    raise ParallelError(f"backend must be 'thread' or 'process', got {backend!r}")


def run_phase(
    cluster,
    fn: Callable[[int], object],
    tasks: Sequence[int] | int | None = None,
    profile=None,
    executor: PhaseExecutor | None = None,
) -> list:
    """Run one phase's tasks with barrier semantics and deterministic state.

    ``fn(i)`` is invoked once per task index.  ``tasks`` is either a task
    count, an explicit index sequence, or ``None`` for one task per
    cluster node.  Every task is bound to its own network
    :class:`~repro.cluster.network.SendLane` (and, when ``profile`` is
    given, its own profile lane); lanes are committed in task order at
    the closing barrier, so traffic ledgers, inbox ordering, and
    profiles never depend on the worker count or thread interleaving.
    Messages sent inside the phase become visible to ``deliver`` only
    after the barrier, matching the paper's non-pipelined phase model.

    Returns the task results in task order.
    """
    executor = executor or cluster.executor
    network = cluster.network
    if tasks is None:
        indices: Sequence[int] = range(cluster.num_nodes)
    elif isinstance(tasks, int):
        indices = range(tasks)
    else:
        indices = list(tasks)
    count = len(indices)
    lanes = network.begin_phase(count)
    profile_lanes = profile.begin_phase(count) if profile is not None else None

    def task(position: int):
        index = indices[position]
        with network.bind_lane(lanes[position]):
            if profile_lanes is None:
                return fn(index)
            with profile.bind_lane(profile_lanes[position]):
                return fn(index)

    try:
        results = executor.map(task, range(count))
    except BaseException:
        network.abort_phase()
        if profile is not None:
            profile.abort_phase()
        raise
    network.end_phase()
    if profile is not None:
        profile.end_phase()
    return results
