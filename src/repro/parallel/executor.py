"""Worker-pool executors for the parallel cluster engine.

The simulated cluster runs each node's per-phase work (partition
scatters, merge-joins, tracking dedup) as one *task*; a
:class:`PhaseExecutor` decides where those tasks run:

:class:`SerialExecutor`
    Tasks run inline on the calling thread, in task order.  The
    default, and the reference every parallel run must match
    byte-for-byte.

:class:`ThreadExecutor`
    Tasks run on a shared :class:`~concurrent.futures.ThreadPoolExecutor`.
    The hot kernels are GIL-releasing numpy (sorts, gathers, bincounts),
    so threads give real parallelism without pickling any state.

:class:`ProcessExecutor`
    Opt-in process pool for large payloads.  Task callables and
    arguments must be picklable (module-level functions); numpy arrays
    should cross the process boundary through
    :mod:`repro.parallel.shm` shared-memory blocks instead of pickled
    copies.  The join operators use closures over cluster state and
    therefore always run on the serial or thread backend; the process
    backend serves embarrassingly-parallel kernel work (workload
    generation, batch scoring) where payload copies would dominate.

Determinism does not depend on the executor: :func:`run_phase` gives
every task its own network send lane and profile lane, and commits
them in task order at the phase barrier, so ledgers, inbox ordering,
and profiles are bit-identical for any worker count or interleaving.
"""

from __future__ import annotations

import abc
import os
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence

from ..errors import FaultExhaustedError, NodeCrashError, ParallelError, ValidationError

__all__ = [
    "PhaseExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "default_workers",
    "set_default_workers",
    "resolve_executor",
    "run_phase",
]

#: Environment variable consulted for the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

_default_workers: int | None = None


def _check_workers(workers) -> int:
    """Validate an explicit worker count; raises :class:`ValidationError`.

    Accepts integers (and integer-valued floats a CLI parser may
    produce); anything malformed or non-positive raises a clear,
    typed error instead of a bare ``ValueError`` escaping a parser.
    """
    if isinstance(workers, bool) or not isinstance(workers, (int, float)):
        raise ValidationError(
            f"worker count must be an integer, got {workers!r}"
        )
    if isinstance(workers, float):
        if not workers.is_integer():
            raise ValidationError(f"worker count must be an integer, got {workers!r}")
        workers = int(workers)
    if workers < 1:
        raise ValidationError(f"worker count must be >= 1, got {workers}")
    return workers


def default_workers() -> int:
    """The worker count new clusters use when none is given.

    Resolution order: :func:`set_default_workers`, the ``REPRO_WORKERS``
    environment variable, then 1 (serial).  A malformed or non-positive
    ``REPRO_WORKERS`` never aborts the process: it falls back to serial
    with a warning (the environment is ambient configuration, unlike an
    explicit ``workers=`` argument, which raises
    :class:`~repro.errors.ValidationError`).
    """
    if _default_workers is not None:
        return _default_workers
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        try:
            workers = int(env)
        except ValueError:
            warnings.warn(
                f"{WORKERS_ENV}={env!r} is not an integer; "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1
        if workers < 1:
            warnings.warn(
                f"{WORKERS_ENV} must be >= 1, got {workers}; "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1
        return workers
    return 1


def set_default_workers(workers: int | None) -> int | None:
    """Set the process-wide default worker count; returns the previous value.

    ``None`` restores environment/serial resolution.
    """
    global _default_workers
    if workers is not None:
        workers = _check_workers(workers)
    previous = _default_workers
    _default_workers = workers
    return previous


class PhaseExecutor(abc.ABC):
    """Runs the tasks of one phase and collects their results in order."""

    #: Number of workers tasks may occupy concurrently.
    workers: int = 1

    @abc.abstractmethod
    def map(self, fn: Callable, items: Iterable) -> list:
        """Apply ``fn`` to every item; results are in item order.

        The first task exception propagates to the caller (remaining
        tasks may or may not have run).
        """

    def close(self) -> None:
        """Release pooled workers (no-op for inline executors)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} workers={self.workers}>"


class SerialExecutor(PhaseExecutor):
    """Inline execution on the calling thread, in task order."""

    workers = 1

    def map(self, fn: Callable, items: Iterable) -> list:
        return [fn(item) for item in items]


class ThreadExecutor(PhaseExecutor):
    """Thread-pool execution for GIL-releasing numpy task bodies."""

    def __init__(self, workers: int):
        self.workers = _check_workers(workers)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-worker"
            )
        return self._pool

    def map(self, fn: Callable, items: Iterable) -> list:
        return list(self._ensure_pool().map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessExecutor(PhaseExecutor):
    """Process-pool execution for picklable, payload-heavy task functions.

    Arrays should be passed as :class:`repro.parallel.shm.SharedArray`
    handles so workers attach to the same memory instead of receiving
    pickled copies.

    A supervisor watches for dead workers: when the pool breaks (a
    worker process died mid-task), the pool is respawned and only the
    unfinished tasks are resubmitted, up to ``max_respawns`` times
    before a :class:`~repro.errors.FaultExhaustedError` propagates.
    Task functions must therefore be safe to re-execute (the phase
    tasks are: they produce results, they don't mutate shared state
    before the barrier).
    """

    def __init__(self, workers: int, max_respawns: int = 2):
        self.workers = _check_workers(workers)
        if max_respawns < 0:
            raise ValidationError(f"max_respawns must be >= 0, got {max_respawns}")
        self.max_respawns = max_respawns
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        results: list = [None] * len(items)
        pending = list(range(len(items)))
        respawns = 0
        while pending:
            pool = self._ensure_pool()
            futures = {index: pool.submit(fn, items[index]) for index in pending}
            failed: list[int] = []
            for index in pending:
                try:
                    results[index] = futures[index].result()
                except BrokenProcessPool:
                    failed.append(index)
            if not failed:
                break
            # A worker died: discard the broken pool, respawn, and
            # resubmit only the tasks that never produced a result.
            self.close()
            respawns += 1
            if respawns > self.max_respawns:
                raise FaultExhaustedError(
                    f"process pool broke {respawns} times "
                    f"({len(failed)} tasks unfinished); "
                    f"respawn budget of {self.max_respawns} exhausted",
                    attempts=respawns,
                )
            pending = failed
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def resolve_executor(
    workers: int | None = None, backend: str = "thread"
) -> PhaseExecutor:
    """Build the executor for ``workers`` (default: :func:`default_workers`).

    One worker always resolves to :class:`SerialExecutor`; more workers
    resolve to the requested ``backend`` (``"thread"`` or ``"process"``).
    A malformed or non-positive explicit ``workers`` raises
    :class:`~repro.errors.ValidationError`; an unknown backend raises
    :class:`~repro.errors.ParallelError`.
    """
    if workers is None:
        workers = default_workers()
    workers = _check_workers(workers)
    if workers == 1:
        return SerialExecutor()
    if backend == "thread":
        return ThreadExecutor(workers)
    if backend == "process":
        return ProcessExecutor(workers)
    raise ParallelError(f"backend must be 'thread' or 'process', got {backend!r}")


class _CrashedTask:
    """Sentinel result marking a task whose node crashed at phase entry.

    Crashes must not abort the whole phase inside ``executor.map`` (the
    supervisor restarts crashed nodes afterwards), so the guarded task
    wrapper converts :class:`~repro.errors.NodeCrashError` into this
    sentinel instead of letting it propagate.
    """

    __slots__ = ("error",)

    def __init__(self, error: NodeCrashError):
        self.error = error


def run_phase(
    cluster,
    fn: Callable[[int], object],
    tasks: Sequence[int] | int | None = None,
    profile=None,
    executor: PhaseExecutor | None = None,
    task_nodes: Sequence[int] | None = None,
) -> list:
    """Run one phase's tasks with barrier semantics and deterministic state.

    ``fn(i)`` is invoked once per task index.  ``tasks`` is either a task
    count, an explicit index sequence, or ``None`` for one task per
    cluster node.  Every task is bound to its own network
    :class:`~repro.cluster.network.SendLane` (and, when ``profile`` is
    given, its own profile lane); lanes are committed in task order at
    the closing barrier, so traffic ledgers, inbox ordering, and
    profiles never depend on the worker count or thread interleaving.
    Messages sent inside the phase become visible to ``deliver`` only
    after the barrier, matching the paper's non-pipelined phase model.

    Crash supervision
        When the cluster network has a fault plan installed, each task
        asks the injector whether its node fail-stops entering this
        phase — *before* the task body runs or its lane binds, so a
        crashed task has no partial side effects.  The supervisor then
        re-executes crashed tasks inline (same lane position, preserving
        barrier commit order) until they succeed or the plan's
        ``max_node_restarts`` budget is spent, at which point
        :class:`~repro.errors.FaultExhaustedError` propagates and the
        phase aborts.  Crash injection needs a task-to-node mapping:
        one-task-per-node phases provide it implicitly, other phases
        pass ``task_nodes``; phases with neither run uninjected.

    Returns the task results in task order.
    """
    executor = executor or cluster.executor
    network = cluster.network
    if tasks is None:
        indices: Sequence[int] = range(cluster.num_nodes)
    elif isinstance(tasks, int):
        indices = range(tasks)
    else:
        indices = list(tasks)
    count = len(indices)
    injector = getattr(network, "faults", None)
    nodes: Sequence[int] | None
    if task_nodes is not None:
        nodes = list(task_nodes)
        if len(nodes) != count:
            raise ParallelError(
                f"task_nodes has {len(nodes)} entries for {count} tasks"
            )
    elif tasks is None:
        nodes = list(indices)
    else:
        nodes = None
    lanes = network.begin_phase(count)
    profile_lanes = profile.begin_phase(count) if profile is not None else None

    def task(position: int):
        index = indices[position]
        with network.bind_lane(lanes[position]):
            if profile_lanes is None:
                return fn(index)
            with profile.bind_lane(profile_lanes[position]):
                return fn(index)

    if injector is None or nodes is None:
        guarded = task
    else:

        def guarded(position: int):
            try:
                injector.maybe_crash(nodes[position])
            except NodeCrashError as error:
                return _CrashedTask(error)
            return task(position)

    try:
        results = executor.map(guarded, range(count))
        if injector is not None and nodes is not None:
            restarts: dict[int, int] = {}
            for position, result in enumerate(results):
                while isinstance(result, _CrashedTask):
                    node = nodes[position]
                    attempts = restarts.get(node, 0) + 1
                    restarts[node] = attempts
                    if attempts > injector.plan.max_node_restarts:
                        raise FaultExhaustedError(
                            f"node {node} crashed entering phase "
                            f"{injector.phase} and stayed down past the "
                            f"restart budget of "
                            f"{injector.plan.max_node_restarts}",
                            node=node,
                            attempts=attempts,
                        ) from result.error
                    injector.record_restart(node)
                    try:
                        injector.maybe_crash(node)
                    except NodeCrashError as error:
                        result = _CrashedTask(error)
                        continue
                    # Re-execute from the last barrier, inline on the
                    # coordinator, into the task's original (still
                    # empty) lane so commit order is unchanged.
                    result = task(position)
                results[position] = result
        network.end_phase()
        if profile is not None:
            profile.end_phase()
    except BaseException:
        network.abort_phase()
        if profile is not None:
            profile.abort_phase()
        raise
    return results
