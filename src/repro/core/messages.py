"""Wire-size accounting for track join's metadata messages.

Track join sends three kinds of metadata: tracking entries (key, and for
the 3/4-phase variants a match count), location messages (key, node)
directing selective broadcasts, and migration instructions (key,
destination).  Their sizes — and the Section 2.4 compression options
(delta-coded key streams, node-grouped location messages) — are defined
here so every variant accounts identically.
"""

from __future__ import annotations

import numpy as np

from ..encoding.delta import delta_encoded_size

__all__ = ["tracking_message_bytes", "location_message_bytes"]


def tracking_message_bytes(
    keys: np.ndarray,
    key_width: float,
    count_width: float,
    delta_keys: bool = False,
) -> float:
    """Size of one tracking message carrying ``keys`` (+ counts).

    With ``delta_keys`` the key stream is accounted at its sorted
    delta-varint size (track join imposes no message order, so senders
    may sort freely — Section 2.4).
    """
    if delta_keys:
        key_bytes = float(delta_encoded_size(keys))
    else:
        key_bytes = len(keys) * key_width
    return key_bytes + len(keys) * count_width


def location_message_bytes(
    num_pairs: int,
    num_distinct_nodes: int,
    key_width: float,
    location_width: float,
    group_by_node: bool = False,
) -> float:
    """Size of a message carrying (key, node) pairs.

    Plain form repeats the node id for every key.  The grouped form
    (Section 2.4: "sending many keys with a single node label after
    partitioning by node") pays each distinct node label once.
    """
    if group_by_node:
        return num_pairs * key_width + num_distinct_nodes * location_width
    return num_pairs * (key_width + location_width)
