"""Per-key transfer schedule generation (Sections 2.2-2.3 of the paper).

Track join logically decomposes the join into one cartesian-product join
per distinct key and minimizes each key's network cost independently.
This module implements that optimization twice:

* A **scalar** form (:func:`selective_broadcast_cost`,
  :func:`migrate_and_broadcast`, :func:`optimal_schedule`) that mirrors
  the paper's pseudocode line by line.  It reproduces the worked
  examples of Figures 1 and 2 exactly and is the oracle for property
  tests against brute-force enumeration.

* A **vectorized** form (:func:`generate_schedules`) operating on a full
  :class:`~repro.core.tracking.TrackingTable` with segmented numpy
  reductions, which is what the join operators execute.  Python-level
  loops over millions of keys would dominate runtime otherwise.

Terminology: for the ``R -> S`` direction, R tuples are *selectively
broadcast* to the nodes holding matching S tuples, optionally after
*migrating* some nodes' S tuples onto fewer nodes (Theorem 1 shows the
per-node migration decisions are independent; Theorem 2 that the better
of the two optimized directions is the global single-key optimum).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ScheduleError
from ..fastpath import fused_enabled
from ..util import segment_ids
from .destinations import (
    migration_delta,
    paired_consolidation,
    scalar_consolidation,
    segmented_consolidation,
)
from .tracking import TrackingTable

__all__ = [
    "BroadcastPlan",
    "KeySchedule",
    "ScheduleSet",
    "selective_broadcast_cost",
    "migrate_and_broadcast",
    "optimal_schedule",
    "both_direction_plans",
    "generate_schedules",
]


# ---------------------------------------------------------------------------
# Scalar (single key) schedule generation -- mirrors the paper's pseudocode.
# ---------------------------------------------------------------------------


@dataclass
class BroadcastPlan:
    """Cost breakdown of one optimized selective-broadcast direction."""

    #: Total network cost: broadcast + location messages + migrations.
    cost: float
    #: Cost paid moving migrating-side tuples.
    migration_cost: float
    #: Nodes whose target-side tuples migrate to ``destination``.
    migrating_nodes: tuple[int, ...]
    #: Migration destination (the forced-stay node with maximal locality),
    #: or None when nothing migrates.
    destination: int | None


@dataclass
class KeySchedule:
    """The chosen schedule for one join key."""

    #: "RS" broadcasts R tuples to S locations; "SR" the opposite.
    direction: str
    plan: BroadcastPlan
    #: The rejected direction's plan (for introspection / examples).
    alternative: BroadcastPlan


def selective_broadcast_cost(
    broadcast_sizes: dict[int, float],
    target_sizes: dict[int, float],
    scheduler_node: int,
    location_width: float = 0.0,
) -> float:
    """Network cost of selectively broadcasting one side, no migration.

    Implements the paper's ``broadcast R to S`` cost routine: with
    ``R`` = broadcast side and ``S`` = target side,

    ``RScost = Rall * Snodes - Rlocal + Rnodes * Snodes * M``

    where ``Rnodes`` excludes the scheduler (location messages to self
    are free) and ``Rlocal`` credits broadcast-side bytes already living
    on a target node.
    """
    r_all = sum(broadcast_sizes.values())
    s_holders = [i for i, size in target_sizes.items() if size > 0]
    r_local = sum(size for i, size in broadcast_sizes.items() if target_sizes.get(i, 0) > 0)
    r_nodes = sum(1 for i, size in broadcast_sizes.items() if size > 0 and i != scheduler_node)
    return r_all * len(s_holders) - r_local + r_nodes * len(s_holders) * location_width


def migrate_and_broadcast(
    broadcast_sizes: dict[int, float],
    target_sizes: dict[int, float],
    scheduler_node: int,
    location_width: float = 0.0,
) -> BroadcastPlan:
    """Optimized selective broadcast: the ``migrate S & broadcast R`` routine.

    Checks, independently for every target-side holder, whether moving
    its tuples to the consolidation destination lowers total cost
    (Theorem 1), forcing the node with maximal ``|Ri| + |Si|`` to stay.
    """
    r_all = sum(broadcast_sizes.values())
    r_nodes = sum(1 for i, size in broadcast_sizes.items() if size > 0 and i != scheduler_node)
    cost = selective_broadcast_cost(
        broadcast_sizes, target_sizes, scheduler_node, location_width
    )
    holders = [i for i, size in target_sizes.items() if size > 0]
    if not holders:
        return BroadcastPlan(cost=cost, migration_cost=0.0, migrating_nodes=(), destination=None)

    def delta_of(i: int) -> float:
        return migration_delta(
            broadcast_sizes.get(i, 0.0),
            target_sizes[i],
            r_all,
            r_nodes,
            location_width,
            i == scheduler_node,
        )

    # One holder must stay (the migration destination); the shared core
    # forces out the maximal-delta holder and migrates every other
    # holder with a negative delta.  With a uniform message charge the
    # forced stay is the paper's max |Ri| + |Si| rule; with the
    # scheduler-local discount it also breaks ties correctly.
    forced_stay, migrating = scalar_consolidation(holders, delta_of)
    migration_cost = 0.0
    for i in migrating:
        cost += delta_of(i)
        migration_cost += target_sizes[i]
    destination = forced_stay if migrating else None
    return BroadcastPlan(
        cost=cost,
        migration_cost=migration_cost,
        migrating_nodes=tuple(migrating),
        destination=destination,
    )


def optimal_schedule(
    sizes_r: dict[int, float],
    sizes_s: dict[int, float],
    scheduler_node: int = 0,
    location_width: float = 0.0,
) -> KeySchedule:
    """Minimum-traffic schedule for a single key (Theorem 2).

    Computes both optimized directions and keeps the cheaper one; ties
    resolve to ``S -> R`` as in the paper's pseudocode (``if RScost <
    SRcost`` picks R->S strictly).
    """
    plan_rs = migrate_and_broadcast(sizes_r, sizes_s, scheduler_node, location_width)
    plan_sr = migrate_and_broadcast(sizes_s, sizes_r, scheduler_node, location_width)
    if plan_rs.cost < plan_sr.cost:
        return KeySchedule(direction="RS", plan=plan_rs, alternative=plan_sr)
    return KeySchedule(direction="SR", plan=plan_sr, alternative=plan_rs)


# ---------------------------------------------------------------------------
# Vectorized schedule generation over a TrackingTable.
# ---------------------------------------------------------------------------


@dataclass
class ScheduleSet:
    """Schedules for every tracked key, in tracking-table order.

    Per-key arrays are parallel to ``tracking.key_starts``; per-entry
    arrays are parallel to the tracking table's union rows.
    """

    tracking: TrackingTable
    #: Per key: True when R tuples are broadcast to S locations.
    direction_rs: np.ndarray
    #: Per key: cost of the chosen direction (diagnostics only).
    cost: np.ndarray
    #: Per key: cost of each direction before choosing.
    cost_rs: np.ndarray
    cost_sr: np.ndarray
    #: Per entry: this entry's migrating-side tuples move to ``dest_node``.
    migrate: np.ndarray
    #: Per key: migration destination node (-1 when nothing migrates).
    dest_node: np.ndarray
    #: Optional heavy-hitter sharding (``None`` ⇒ every key consolidates
    #: at a single destination and execution is byte-identical to the
    #: plain 4-phase plan).  ``sharded`` marks keys whose target side
    #: splits row-wise across multiple destinations; per sharded key
    #: ``k`` the destinations are ``shard_dests[shard_offsets[k]:
    #: shard_offsets[k + 1]]`` and the broadcast side replicates to all
    #: of them.  ``migrate``/``dest_node`` are cleared for sharded keys.
    sharded: np.ndarray | None = None
    #: CSR offsets into ``shard_dests``, length ``num_keys + 1``.
    shard_offsets: np.ndarray | None = None
    #: Concatenated shard destination node lists.
    shard_dests: np.ndarray | None = None

    @property
    def num_keys(self) -> int:
        """Number of scheduled keys."""
        return len(self.direction_rs)

    @property
    def has_shards(self) -> bool:
        """True when at least one key is sharded across destinations."""
        return self.sharded is not None and bool(self.sharded.any())

    def shard_dests_of(self, key: int) -> np.ndarray:
        """Shard destination nodes of one key (empty when unsharded)."""
        if self.shard_offsets is None or self.shard_dests is None:
            return np.empty(0, dtype=np.int64)
        return self.shard_dests[self.shard_offsets[key] : self.shard_offsets[key + 1]]


def _direction_costs(
    seg: np.ndarray,
    starts: np.ndarray,
    nodes: np.ndarray,
    t_node_of_entry: np.ndarray,
    size_b: np.ndarray,
    size_t: np.ndarray,
    location_width: float,
    allow_migration: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cost and migration plan of one broadcast direction for all keys.

    ``size_b`` is the broadcast side, ``size_t`` the target (potentially
    migrating) side.  Returns ``(cost_per_key, migrate_per_entry,
    dest_per_key)``.
    """
    num_entries = len(seg)
    has_b = size_b > 0
    has_t = size_t > 0
    not_scheduler = nodes != t_node_of_entry

    b_all = np.add.reduceat(size_b, starts)
    t_holders = np.add.reduceat(has_t.astype(np.int64), starts)
    b_local = np.add.reduceat(np.where(has_t, size_b, 0.0), starts)
    b_nodes = np.add.reduceat((has_b & not_scheduler).astype(np.int64), starts)
    base = b_all * t_holders - b_local + b_nodes * t_holders * location_width

    migrate = np.zeros(num_entries, dtype=bool)
    dest = np.full(len(starts), -1, dtype=np.int64)
    if not allow_migration:
        return base, migrate, dest

    delta = (
        size_b
        + size_t
        - b_all[seg]
        - b_nodes[seg] * location_width
        + np.where(not_scheduler, location_width, 0.0)
    )

    # The shared destination-choice core: forced stay at the
    # maximal-delta holder, migrate every other holder with a negative
    # delta, consolidate at the forced-stay node (Theorem 1).
    migrate, _, dest, savings = segmented_consolidation(
        seg, starts, nodes, delta, has_t
    )
    cost = base + savings
    return cost, migrate, dest


#: Keys per block in the paired schedule path.  The per-key pipeline
#: touches ~25 temporaries, so blocks of 2^15 keys keep the whole
#: working set (~6 MB) cache-resident instead of streaming every
#: operand through memory 100 times.  Measured optimum on the bench
#: box (smaller blocks pay python overhead, larger spill the cache).
_PAIRED_BLOCK = 1 << 15


def _both_direction_costs_paired(
    starts: np.ndarray,
    num_entries: int,
    counts: np.ndarray,
    nodes: np.ndarray,
    t_nodes: np.ndarray,
    size_r: np.ndarray,
    size_s: np.ndarray,
    location_width: float,
    allow_migration: bool,
) -> tuple[tuple, tuple]:
    """Both directions when every key has at most two tracking entries.

    The dominant real shape (a key lives on one R node and one S node)
    makes every segment reduction a single add/max of the segment's
    first and optional second entry, so the whole optimization runs on
    per-key arrays with no ``reduceat`` calls at all.  Phantom second
    entries of single-entry keys are zero-masked, which is bit-exact
    because every affected sum is non-negative or starts from the first
    entry (``x + 0.0 == x`` away from ``-0.0``).

    Every operation is elementwise per key, so the keys are processed in
    cache-sized blocks; block boundaries cannot change any result.
    """
    num_keys = len(starts)
    lw = location_width
    cost_rs = np.empty(num_keys, dtype=np.float64)
    cost_sr = np.empty(num_keys, dtype=np.float64)
    mig_rs = np.zeros(num_entries, dtype=bool)
    mig_sr = np.zeros(num_entries, dtype=bool)
    dest_rs = np.full(num_keys, -1, dtype=np.int64)
    dest_sr = np.full(num_keys, -1, dtype=np.int64)

    for lo in range(0, num_keys, _PAIRED_BLOCK):
        hi = min(lo + _PAIRED_BLOCK, num_keys)
        two = counts[lo:hi] == 2
        a = starts[lo:hi]
        b = a + two
        tn = t_nodes[lo:hi]

        size_r_a, size_s_a = size_r[a], size_s[a]
        size_r_b = np.where(two, size_r[b], 0.0)
        size_s_b = np.where(two, size_s[b], 0.0)
        has_r_a, has_s_a = size_r_a > 0, size_s_a > 0
        has_r_b, has_s_b = size_r_b > 0, size_s_b > 0
        nodes_a, nodes_b = nodes[a], nodes[b]
        ns_a = nodes_a != tn
        ns_b = nodes_b != tn

        r_all = size_r_a + size_r_b
        s_all = size_s_a + size_s_b
        # Holder/node tallies are at most 2; int8 keeps them a byte wide
        # and promotes to the identical float64 values in the cost terms.
        r_holders = has_r_a.astype(np.int8) + has_r_b
        s_holders = has_s_a.astype(np.int8) + has_s_b
        r_nodes = (has_r_a & ns_a).astype(np.int8) + (has_r_b & ns_b)
        s_nodes = (has_s_a & ns_a).astype(np.int8) + (has_s_b & ns_b)
        r_local = np.where(has_s_a, size_r_a, 0.0) + np.where(has_s_b, size_r_b, 0.0)
        s_local = np.where(has_r_a, size_s_a, 0.0) + np.where(has_r_b, size_s_b, 0.0)
        base_rs = r_all * s_holders - r_local + r_nodes * s_holders * lw
        base_sr = s_all * r_holders - s_local + s_nodes * r_holders * lw

        if not allow_migration:
            cost_rs[lo:hi] = base_rs
            cost_sr[lo:hi] = base_sr
            continue

        size_sum_a = size_r_a + size_s_a
        size_sum_b = size_r_b + size_s_b
        disc_a = np.where(ns_a, lw, 0.0)
        disc_b = np.where(ns_b, lw, 0.0)
        second = b[two]

        def one_direction(base, b_all, b_nodes, has_t_a, has_t_b, cost, mig, dest):
            bn_lw = b_nodes * lw
            delta_a = size_sum_a - b_all - bn_lw + disc_a
            delta_b = size_sum_b - b_all - bn_lw + disc_b
            mig_a, mig_b, _, dest_block = paired_consolidation(
                delta_a, delta_b, has_t_a, has_t_b, nodes_a, nodes_b
            )
            cost[lo:hi] = base + (
                np.where(mig_a, delta_a, 0.0) + np.where(mig_b, delta_b, 0.0)
            )
            dest[lo:hi] = dest_block
            mig[a] = mig_a
            mig[second] = mig_b[two]

        one_direction(base_rs, r_all, r_nodes, has_s_a, has_s_b, cost_rs, mig_rs, dest_rs)
        one_direction(base_sr, s_all, s_nodes, has_r_a, has_r_b, cost_sr, mig_sr, dest_sr)

    if not allow_migration:
        no_migration = np.zeros(num_entries, dtype=bool)
        no_dest = np.full(num_keys, -1, dtype=np.int64)
        return (cost_rs, no_migration, no_dest), (cost_sr, no_migration, no_dest)

    return (cost_rs, mig_rs, dest_rs), (cost_sr, mig_sr, dest_sr)


def _both_direction_costs_fused(
    seg: np.ndarray,
    starts: np.ndarray,
    nodes: np.ndarray,
    t_nodes: np.ndarray,
    size_r: np.ndarray,
    size_s: np.ndarray,
    location_width: float,
    allow_migration: bool,
) -> tuple[tuple, tuple]:
    """Both directions' costs and migration plans, sharing precomputation.

    Bit-identical to calling :func:`_direction_costs` once per direction:
    every per-element expression evaluates in the same operand order, so
    near-tie direction choices cannot flip between the two forms.
    ``t_nodes`` is per key; the per-entry expansion is only materialized
    on the generic path — the paired path never needs it.
    """
    num_entries = len(seg)
    counts = np.diff(np.append(starts, num_entries))
    if int(counts.max()) <= 2:
        return _both_direction_costs_paired(
            starts,
            num_entries,
            counts,
            nodes,
            t_nodes,
            size_r,
            size_s,
            location_width,
            allow_migration,
        )
    t_node_of_entry = t_nodes[seg]
    has_r = size_r > 0
    has_s = size_s > 0
    not_scheduler = nodes != t_node_of_entry
    r_all = np.add.reduceat(size_r, starts)
    s_all = np.add.reduceat(size_s, starts)
    r_holders = np.add.reduceat(has_r, starts, dtype=np.int64)
    s_holders = np.add.reduceat(has_s, starts, dtype=np.int64)
    r_nodes = np.add.reduceat(has_r & not_scheduler, starts, dtype=np.int64)
    s_nodes = np.add.reduceat(has_s & not_scheduler, starts, dtype=np.int64)
    r_local = np.add.reduceat(np.where(has_s, size_r, 0.0), starts)
    s_local = np.add.reduceat(np.where(has_r, size_s, 0.0), starts)
    base_rs = r_all * s_holders - r_local + r_nodes * s_holders * location_width
    base_sr = s_all * r_holders - s_local + s_nodes * r_holders * location_width

    if not allow_migration:
        no_migration = np.zeros(num_entries, dtype=bool)
        no_dest = np.full(len(starts), -1, dtype=np.int64)
        return (base_rs, no_migration, no_dest), (base_sr, no_migration, no_dest)

    size_sum = size_r + size_s
    scheduler_discount = np.where(not_scheduler, location_width, 0.0)

    def one_direction(base, b_all, b_nodes, has_t):
        delta = (
            size_sum
            - b_all[seg]
            - (b_nodes * location_width)[seg]
            + scheduler_discount
        )
        migrate, _, dest, savings = segmented_consolidation(
            seg, starts, nodes, delta, has_t
        )
        return base + savings, migrate, dest

    return (
        one_direction(base_rs, r_all, r_nodes, has_s),
        one_direction(base_sr, s_all, s_nodes, has_r),
    )


def both_direction_plans(
    tracking: TrackingTable,
    location_width: float = 1.0,
    allow_migration: bool = True,
    seg: np.ndarray | None = None,
) -> tuple[tuple, tuple]:
    """Both optimized directions' plans for every key at once.

    Returns ``((cost_rs, migrate_rs, dest_rs), (cost_sr, migrate_sr,
    dest_sr))`` — per-key costs and default destinations, per-entry
    migration masks.  This is the vectorized candidate evaluation
    shared by :func:`generate_schedules` and the load-aware policies
    (:mod:`repro.core.balance`, :mod:`repro.core.skew`), which differ
    only in how they pick a direction and destination from these plans.
    """
    starts = tracking.key_starts
    num_entries = tracking.num_entries
    if seg is None:
        seg = segment_ids(starts, num_entries)
    if fused_enabled():
        return _both_direction_costs_fused(
            seg,
            starts,
            tracking.nodes,
            tracking.t_nodes,
            tracking.size_r,
            tracking.size_s,
            location_width,
            allow_migration,
        )
    t_node_of_entry = tracking.t_nodes[seg]
    plan_rs = _direction_costs(
        seg,
        starts,
        tracking.nodes,
        t_node_of_entry,
        tracking.size_r,
        tracking.size_s,
        location_width,
        allow_migration,
    )
    plan_sr = _direction_costs(
        seg,
        starts,
        tracking.nodes,
        t_node_of_entry,
        tracking.size_s,
        tracking.size_r,
        location_width,
        allow_migration,
    )
    return plan_rs, plan_sr


def empty_schedule_set(tracking: TrackingTable) -> ScheduleSet:
    """A schedule set over zero tracked keys."""
    empty_f = np.empty(0, dtype=np.float64)
    empty_b = np.empty(0, dtype=bool)
    empty_i = np.empty(0, dtype=np.int64)
    return ScheduleSet(tracking, empty_b, empty_f, empty_f, empty_f, empty_b, empty_i)


def generate_schedules(
    tracking: TrackingTable,
    location_width: float = 1.0,
    allow_migration: bool = True,
    forced_direction: str | None = None,
    seg: np.ndarray | None = None,
) -> ScheduleSet:
    """Generate per-key schedules for the whole tracking table at once.

    Parameters
    ----------
    allow_migration:
        ``True`` for 4-phase track join; ``False`` gives the 3-phase
        bi-directional selective broadcast.
    forced_direction:
        ``"RS"`` or ``"SR"`` pins every key to one direction (2-phase
        track join); ``None`` chooses per key.
    seg:
        Optional precomputed ``segment_ids(tracking.key_starts,
        tracking.num_entries)``, so callers that already expanded the
        segments don't pay for it again.
    """
    if forced_direction not in (None, "RS", "SR"):
        raise ScheduleError(f"invalid forced direction {forced_direction!r}")
    starts = tracking.key_starts
    num_entries = tracking.num_entries
    if num_entries == 0:
        return empty_schedule_set(tracking)
    if seg is None:
        seg = segment_ids(starts, num_entries)

    (cost_rs, mig_rs, dest_rs), (cost_sr, mig_sr, dest_sr) = both_direction_plans(
        tracking, location_width, allow_migration, seg
    )

    if forced_direction == "RS":
        direction_rs = np.ones(len(starts), dtype=bool)
    elif forced_direction == "SR":
        direction_rs = np.zeros(len(starts), dtype=bool)
    else:
        direction_rs = cost_rs < cost_sr

    migrate = np.where(direction_rs[seg], mig_rs, mig_sr)
    dest_node = np.where(direction_rs, dest_rs, dest_sr)
    cost = np.where(direction_rs, cost_rs, cost_sr)
    return ScheduleSet(
        tracking=tracking,
        direction_rs=direction_rs,
        cost=cost,
        cost_rs=cost_rs,
        cost_sr=cost_sr,
        migrate=migrate,
        dest_node=dest_node,
    )
