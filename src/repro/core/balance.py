"""Balance-aware track join (the paper's Section 5 future work).

Section 5 observes that minimizing *total* traffic can concentrate
transfers on a few nodes when locality is skewed: "If some nodes exhibit
more locality than others, we need to take into account the balancing of
transfers among nodes and not only aim for minimal network traffic."

:class:`BalanceAwareTrackJoin` implements that extension as a thin
policy over the shared scheduling core: candidate evaluation — both
directions' costs, migration masks, and default destinations for every
key — comes from the same vectorized
:func:`~repro.core.schedule.both_direction_plans` the 4-phase operator
uses.  The policy then re-picks, against a running estimate of per-node
*received* bytes:

* the **direction**, when the two directions' costs are within
  ``tolerance`` — the one whose surviving destinations are less loaded
  wins;
* the **consolidation destination**, for every key that migrates — any
  surviving holder is cost-equivalent (Theorem 1), so the least-loaded
  one (:func:`~repro.core.destinations.least_loaded`) wins.

Keys whose choices depend on the load estimate are visited in seeded
random order so early keys do not systematically favour low-numbered
nodes; everything else — the candidate evaluation and the load
contributions of the cost-determined keys — is vectorized.

The result trades a bounded amount of extra traffic (at most
``tolerance`` per key, usually none) for a flatter receive distribution
— measured by :meth:`~repro.joins.base.JoinResult.node_balance` and the
ledger's :attr:`~repro.cluster.network.TrafficLedger.max_received_bytes`.
"""

from __future__ import annotations

import numpy as np

from ..cluster.cluster import Cluster
from ..joins.base import JoinSpec
from .destinations import least_loaded
from .schedule import ScheduleSet, both_direction_plans, empty_schedule_set
from .track_join import TrackJoin4

__all__ = ["BalanceAwareTrackJoin"]


class BalanceAwareTrackJoin(TrackJoin4):
    """4-phase track join with load-balanced destination choices.

    Parameters
    ----------
    tolerance:
        Extra bytes per key the balancer may spend to pick a less
        loaded destination (0 keeps traffic optimal and only breaks
        exact ties by load).
    seed:
        Order in which keys update the load estimate.
    """

    name = "4TJ-bal"

    def __init__(self, tolerance: float = 0.0, seed: int = 0):
        self.tolerance = float(tolerance)
        self.seed = seed

    def _make_schedules(
        self,
        cluster: Cluster,
        tracking,
        spec: JoinSpec,
        location_width: float,
        seg: np.ndarray,
    ) -> ScheduleSet:
        num_entries = tracking.num_entries
        if num_entries == 0:
            return empty_schedule_set(tracking)
        starts = tracking.key_starts
        num_keys = tracking.num_keys
        nodes = tracking.nodes
        size_r, size_s = tracking.size_r, tracking.size_s

        (cost_rs, mig_rs, dest_rs), (cost_sr, mig_sr, dest_sr) = both_direction_plans(
            tracking, location_width, allow_migration=True, seg=seg
        )

        # Per-direction load ingredients, all vectorized.  Once a
        # direction is chosen, a key's received bytes are fixed except
        # for *where* the migrating target tuples consolidate: every
        # surviving target holder receives the broadcast side's remote
        # bytes, and one survivor (the policy's choice) additionally
        # receives the migrated target bytes.
        has_r, has_s = size_r > 0, size_s > 0
        r_all = np.add.reduceat(size_r, starts)
        s_all = np.add.reduceat(size_s, starts)
        surv_rs = has_s & ~mig_rs  # RS: S is the (migrating) target side
        surv_sr = has_r & ~mig_sr
        recv_rs = np.where(surv_rs, r_all[seg] - size_r, 0.0)
        recv_sr = np.where(surv_sr, s_all[seg] - size_s, 0.0)
        migbytes_rs = np.add.reduceat(np.where(mig_rs, size_s, 0.0), starts)
        migbytes_sr = np.add.reduceat(np.where(mig_sr, size_r, 0.0), starts)

        # Keys needing a sequential, load-dependent choice: costs within
        # tolerance (direction by load) or a migrating chosen plan
        # (destination by load).  Everything else is fully determined.
        tie = np.abs(cost_rs - cost_sr) <= self.tolerance
        rs_cheaper = cost_rs < cost_sr
        chosen_migrates = np.where(
            tie, (dest_rs >= 0) | (dest_sr >= 0),
            np.where(rs_cheaper, dest_rs >= 0, dest_sr >= 0),
        )
        choice = tie | chosen_migrates

        direction_rs = rs_cheaper.copy()
        migrate = np.zeros(num_entries, dtype=bool)
        dest_node = np.full(num_keys, -1, dtype=np.int64)
        received_load = np.zeros(cluster.num_nodes)

        # Bulk keys (cost-determined, no migration): fold their fixed
        # broadcast receives into the load estimate up front.
        bulk_entry = ~choice[seg]
        entry_recv = np.where(direction_rs[seg], recv_rs, recv_sr)
        bulk_rows = np.flatnonzero(bulk_entry & (entry_recv > 0))
        np.add.at(received_load, nodes[bulk_rows], entry_recv[bulk_rows])

        rng = np.random.default_rng(self.seed)
        order = rng.permutation(np.flatnonzero(choice))
        key_ends = np.append(starts[1:], num_entries)
        for key in order:
            entries = slice(starts[key], key_ends[key])
            ns = nodes[entries]
            if tie[key]:
                # Within tolerance: direction whose busiest surviving
                # destination is less loaded (ties prefer R -> S).
                cand_rs = ns[surv_rs[entries]]
                cand_sr = ns[surv_sr[entries]]
                load_rs = received_load[cand_rs].max() if len(cand_rs) else 0.0
                load_sr = received_load[cand_sr].max() if len(cand_sr) else 0.0
                rs = bool(load_rs <= load_sr)
            else:
                rs = bool(rs_cheaper[key])
            direction_rs[key] = rs
            surv = surv_rs if rs else surv_sr
            survivors = ns[surv[entries]]
            if (dest_rs if rs else dest_sr)[key] >= 0 and len(survivors):
                # Load-aware destination: any surviving holder is cost
                # equivalent (Theorem 1), so pick the least loaded.
                destination = least_loaded(survivors, received_load)
                dest_node[key] = destination
                migrate[entries] = (mig_rs if rs else mig_sr)[entries]
                received_load[destination] += (
                    migbytes_rs[key] if rs else migbytes_sr[key]
                )
            # Broadcast load: every surviving target receives the
            # broadcast side's remote bytes.
            received_load[survivors] += (recv_rs if rs else recv_sr)[entries][
                surv[entries]
            ]

        cost = np.where(direction_rs, cost_rs, cost_sr)
        return ScheduleSet(
            tracking=tracking,
            direction_rs=direction_rs,
            cost=cost,
            cost_rs=cost_rs,
            cost_sr=cost_sr,
            migrate=migrate,
            dest_node=dest_node,
        )
