"""Balance-aware track join (the paper's Section 5 future work).

Section 5 observes that minimizing *total* traffic can concentrate
transfers on a few nodes when locality is skewed: "If some nodes exhibit
more locality than others, we need to take into account the balancing of
transfers among nodes and not only aim for minimal network traffic."

:class:`BalanceAwareTrackJoin` implements that extension.  Schedule
generation proceeds exactly as in 4-phase track join, but destination
choices are made against a running estimate of per-node *received*
bytes: among candidate consolidation destinations whose cost is within
``tolerance`` of the optimum, the least-loaded node wins, and keys are
processed in random order so early keys do not systematically favour
low-numbered nodes.

The result trades a bounded amount of extra traffic (at most
``tolerance`` per key, usually none) for a flatter receive distribution
— measured by :meth:`~repro.joins.base.JoinResult.node_balance`.

Implementation note: the per-key candidate evaluation is the scalar
scheduling primitive, so this operator is intended for moderate key
counts; the traffic-optimal :class:`~repro.core.track_join.TrackJoin4`
remains the fast vectorized path.
"""

from __future__ import annotations

import numpy as np

from ..cluster.cluster import Cluster
from ..joins.base import JoinSpec
from ..storage.table import DistributedTable, LocalPartition
from ..timing.profile import ExecutionProfile
from ..util import segment_ids
from .schedule import ScheduleSet, migrate_and_broadcast
from .track_join import TrackJoin4, _execute_schedules
from .tracking import run_tracking_phase

__all__ = ["BalanceAwareTrackJoin"]


class BalanceAwareTrackJoin(TrackJoin4):
    """4-phase track join with load-balanced destination choices.

    Parameters
    ----------
    tolerance:
        Extra bytes per key the balancer may spend to pick a less
        loaded destination (0 keeps traffic optimal and only breaks
        exact ties by load).
    seed:
        Order in which keys update the load estimate.
    """

    name = "4TJ-bal"

    def __init__(self, tolerance: float = 0.0, seed: int = 0):
        self.tolerance = float(tolerance)
        self.seed = seed

    def _execute(
        self,
        cluster: Cluster,
        table_r: DistributedTable,
        table_s: DistributedTable,
        spec: JoinSpec,
        profile: ExecutionProfile,
    ) -> list[LocalPartition]:
        tracking = run_tracking_phase(
            cluster, table_r, table_s, spec, profile, with_counts=True
        )
        key_width = table_r.schema.key_width(spec.encoding)
        message_width = key_width + spec.location_width
        num_entries = tracking.num_entries
        if num_entries == 0:
            schedules = ScheduleSet(
                tracking,
                np.empty(0, dtype=bool),
                np.empty(0),
                np.empty(0),
                np.empty(0),
                np.empty(0, dtype=bool),
                np.empty(0, dtype=np.int64),
            )
            return _execute_schedules(cluster, table_r, table_s, spec, profile, schedules)

        seg = segment_ids(tracking.key_starts, num_entries)
        num_keys = tracking.num_keys
        direction_rs = np.zeros(num_keys, dtype=bool)
        migrate = np.zeros(num_entries, dtype=bool)
        dest_node = np.full(num_keys, -1, dtype=np.int64)
        cost = np.zeros(num_keys)
        cost_rs = np.zeros(num_keys)
        cost_sr = np.zeros(num_keys)
        received_load = np.zeros(cluster.num_nodes)

        rng = np.random.default_rng(self.seed)
        order = rng.permutation(num_keys)
        key_ends = np.append(tracking.key_starts[1:], num_entries)
        for key in order:
            start, end = tracking.key_starts[key], key_ends[key]
            entries = slice(start, end)
            nodes = tracking.nodes[entries]
            sizes_r = dict(zip(nodes.tolist(), tracking.size_r[entries].tolist()))
            sizes_s = dict(zip(nodes.tolist(), tracking.size_s[entries].tolist()))
            sizes_r = {n: v for n, v in sizes_r.items() if v > 0}
            sizes_s = {n: v for n, v in sizes_s.items() if v > 0}
            scheduler = int(tracking.t_nodes[key])
            plan_rs = migrate_and_broadcast(sizes_r, sizes_s, scheduler, message_width)
            plan_sr = migrate_and_broadcast(sizes_s, sizes_r, scheduler, message_width)
            cost_rs[key], cost_sr[key] = plan_rs.cost, plan_sr.cost
            rs_better = plan_rs.cost < plan_sr.cost
            # Within tolerance, pick the direction whose destination set
            # is less loaded.
            if abs(plan_rs.cost - plan_sr.cost) <= self.tolerance:
                load_rs = self._destination_load(sizes_s, plan_rs, received_load)
                load_sr = self._destination_load(sizes_r, plan_sr, received_load)
                rs_better = load_rs <= load_sr
            direction_rs[key] = rs_better
            plan = plan_rs if rs_better else plan_sr
            broadcast = sizes_r if rs_better else sizes_s
            targets = sizes_s if rs_better else sizes_r
            cost[key] = plan.cost

            final_targets = [n for n in targets if n not in plan.migrating_nodes]
            if plan.migrating_nodes:
                # Load-aware destination: any surviving holder is cost
                # equivalent (Theorem 1), so pick the least loaded.
                destination = min(final_targets, key=lambda n: received_load[n])
                dest_node[key] = destination
                migrating = set(plan.migrating_nodes)
                for entry in range(start, end):
                    holder = int(tracking.nodes[entry])
                    if holder in migrating and targets.get(holder, 0) > 0:
                        migrate[entry] = True
                        received_load[destination] += targets[holder]
            # Broadcast load: every final target receives the broadcast
            # side's remote bytes.
            total_broadcast = sum(broadcast.values())
            for target in final_targets:
                received_load[target] += total_broadcast - broadcast.get(target, 0.0)

        schedules = ScheduleSet(
            tracking=tracking,
            direction_rs=direction_rs,
            cost=cost,
            cost_rs=cost_rs,
            cost_sr=cost_sr,
            migrate=migrate,
            dest_node=dest_node,
        )
        per_tnode = np.bincount(
            tracking.t_nodes[seg],
            weights=np.full(num_entries, key_width + spec.location_width + spec.count_width_r),
            minlength=cluster.num_nodes,
        )
        profile.add_cpu("Generate schedules and partition by node", "schedule", per_tnode)
        return _execute_schedules(cluster, table_r, table_s, spec, profile, schedules)

    @staticmethod
    def _destination_load(
        targets: dict[int, float], plan, received_load: np.ndarray
    ) -> float:
        """Current load of the busiest surviving destination of a plan."""
        stay = [n for n in targets if n not in plan.migrating_nodes]
        if not stay:
            return 0.0
        return float(max(received_load[n] for n in stay))
