"""The track join operators: 2-phase, 3-phase, and 4-phase variants.

All three share the same skeleton, faithful to Section 2:

1. **Tracking** — project both inputs to their join keys, deduplicate
   locally, and ship (key [, count]) entries to each key's scheduling
   node (:mod:`repro.core.tracking`).
2. **Scheduling** — the scheduling nodes generate a transfer plan per
   distinct key (:mod:`repro.core.schedule`): a fixed selective
   broadcast direction (2-phase), the cheaper direction per key
   (3-phase), or the cheaper *optimized* direction with migrations
   (4-phase).
3. **Migration** (4-phase only) — nodes told to consolidate move their
   matching tuples of the broadcast-target side to the designated
   destination.
4. **Selective broadcast** — scheduling nodes send (key, destination)
   location messages to the broadcast-side holders, which ship their
   matching tuples only to nodes with matches; each destination joins
   the received tuples against its (post-migration) local fragment.

The executor moves real numpy-backed tuple batches through the
simulated network, so output correctness and byte-exact traffic both
fall out of the same run.
"""

from __future__ import annotations

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.network import MessageClass
from ..errors import ValidationError
from ..fastpath import fused_enabled
from ..joins.base import DistributedJoin, JoinSpec
from ..joins.local import join_indices, local_join
from ..storage.table import DistributedTable, LocalPartition
from ..timing.profile import ExecutionProfile
from ..util import segment_ids, segmented_cartesian, stable_argsort_bounded
from .messages import location_message_bytes
from .schedule import ScheduleSet, generate_schedules
from .tracking import run_tracking_phase

__all__ = ["TrackJoin2", "TrackJoin3", "TrackJoin4"]


class _TrackJoinBase(DistributedJoin):
    """Shared tracking/scheduling/broadcast skeleton of all variants."""

    #: 3/4-phase tracking carries per-node match counts.
    with_counts: bool = True
    #: 4-phase adds the migration optimization.
    allow_migration: bool = True
    #: 2-phase pins every key to one direction ("RS" or "SR").
    forced_direction: str | None = None

    def _execute(
        self,
        cluster: Cluster,
        table_r: DistributedTable,
        table_s: DistributedTable,
        spec: JoinSpec,
        profile: ExecutionProfile,
    ) -> list[LocalPartition]:
        tracking = run_tracking_phase(
            cluster, table_r, table_s, spec, profile, with_counts=self.with_counts
        )
        key_width = table_r.schema.key_width(spec.encoding)
        # The per-entry segment ids are needed by schedule generation and
        # execution alike; expand them once and thread them through.
        seg = segment_ids(tracking.key_starts, tracking.num_entries)
        if tracking.num_entries:
            # Schedule generation happens at the T nodes; its work is
            # linear in the number of tracked (key, node) entries.
            entry_footprint = key_width + spec.location_width + spec.count_width_r
            if fused_enabled() and float(entry_footprint).is_integer():
                # count x width: exact for integer widths, and avoids
                # both the per-entry t-node gather and the constant
                # weights array.
                entries_per_key = np.diff(
                    np.append(tracking.key_starts, tracking.num_entries)
                )
                per_tnode = (
                    np.bincount(
                        tracking.t_nodes,
                        weights=entries_per_key.astype(np.float64),
                        minlength=cluster.num_nodes,
                    )
                    * entry_footprint
                )
            else:
                per_tnode = np.bincount(
                    tracking.t_nodes[seg],
                    weights=np.full(tracking.num_entries, entry_footprint),
                    minlength=cluster.num_nodes,
                )
            profile.add_cpu(
                "Generate schedules and partition by node", "schedule", per_tnode
            )
        # The paper's scheduling pseudocode treats M as the size of one
        # whole location message ("logically seen as key and node pairs,
        # have size equal to M"), so schedules are generated with the
        # full wire width of a (key, node) pair — keeping migration
        # decisions consistent with the bytes actually sent.
        schedules = generate_schedules(
            tracking,
            location_width=key_width + spec.location_width,
            allow_migration=self.allow_migration,
            forced_direction=self.forced_direction,
            seg=seg,
        )
        return _execute_schedules(
            cluster, table_r, table_s, spec, profile, schedules, seg=seg
        )


class TrackJoin2(_TrackJoinBase):
    """2-phase (single broadcast) track join.

    Tracks bare key locations, then selectively broadcasts one side's
    tuples to the other side's locations.  The direction is a query
    optimizer decision taken before execution, like the inner/outer
    distinction of hash join.
    """

    with_counts = False
    allow_migration = False

    def __init__(self, direction: str = "RS"):
        if direction not in ("RS", "SR"):
            raise ValidationError(f"direction must be 'RS' or 'SR', got {direction!r}")
        self.forced_direction = direction
        self.name = "2TJ-R" if direction == "RS" else "2TJ-S"


class TrackJoin3(_TrackJoinBase):
    """3-phase (double broadcast) track join.

    Tracking carries per-node match sizes, and the cheaper selective
    broadcast direction is chosen independently for every distinct key.
    """

    name = "3TJ"
    allow_migration = False


class TrackJoin4(_TrackJoinBase):
    """4-phase (full) track join.

    Adds the migration phase: per key, tuples of the broadcast-target
    side are consolidated onto fewer nodes whenever that lowers total
    traffic, producing the minimum possible payload transfers for an
    early-materialized distributed join (Theorems 1-2).
    """

    name = "4TJ"


# ---------------------------------------------------------------------------
# Schedule execution
# ---------------------------------------------------------------------------


def _execute_schedules(
    cluster: Cluster,
    table_r: DistributedTable,
    table_s: DistributedTable,
    spec: JoinSpec,
    profile: ExecutionProfile,
    sched: ScheduleSet,
    seg: np.ndarray | None = None,
) -> list[LocalPartition]:
    """Run migrations, selective broadcasts, and final local joins."""
    num_nodes = cluster.num_nodes
    tracking = sched.tracking
    key_width = table_r.schema.key_width(spec.encoding)
    widths = {
        "R": table_r.schema.tuple_width(spec.encoding),
        "S": table_s.schema.tuple_width(spec.encoding),
    }
    categories = {"R": MessageClass.R_TUPLES, "S": MessageClass.S_TUPLES}
    work: dict[str, list[LocalPartition]] = {
        "R": list(table_r.partitions),
        "S": list(table_s.partitions),
    }
    out_names = tuple("r." + n for n in table_r.payload_names) + tuple(
        "s." + n for n in table_s.payload_names
    )
    out_width = widths["R"] + table_s.schema.payload_width(spec.encoding)

    if tracking.num_entries == 0:
        return [LocalPartition.empty(out_names) for _ in range(num_nodes)]

    if seg is None:
        seg = segment_ids(tracking.key_starts, tracking.num_entries)
    entry_dir_rs = sched.direction_rs[seg]
    entry_dir_sr = ~entry_dir_rs
    has_r = tracking.size_r > 0
    has_s = tracking.size_s > 0

    # ---- Phase A: migrations (4-phase only; sched.migrate is all-False
    # otherwise).  For RS keys the S side consolidates, for SR keys R.
    for side, entry_mask in (
        ("S", sched.migrate & entry_dir_rs),
        ("R", sched.migrate & entry_dir_sr),
    ):
        _run_migrations(
            cluster, spec, profile, tracking, seg, sched, side, entry_mask,
            work, widths, key_width,
        )
    _apply_received_tuples(cluster, work)

    # ---- Phase B: location messages + selective broadcasts.
    not_migrating = ~sched.migrate
    for b_side, t_side, key_is_this_dir in (
        ("R", "S", entry_dir_rs),
        ("S", "R", entry_dir_sr),
    ):
        has_b = has_r if b_side == "R" else has_s
        has_t = has_s if b_side == "R" else has_r
        b_idx = np.flatnonzero(key_is_this_dir & has_b)
        d_idx = np.flatnonzero(key_is_this_dir & has_t & not_migrating)
        if len(b_idx) == 0 or len(d_idx) == 0:
            continue
        seg_b = seg[b_idx]
        ia, ib = segmented_cartesian(seg_b, seg[d_idx])
        pair_src = tracking.nodes[b_idx][ia]
        pair_dst = tracking.nodes[d_idx][ib]
        pair_key = tracking.keys[b_idx][ia]
        pair_t = tracking.t_nodes[seg_b][ia]
        step = f"Tran. {b_side} → {t_side} keys, nodes"
        _account_pair_messages(
            cluster, spec, profile, step, pair_t, pair_src, pair_dst, key_width
        )
        _broadcast_tuples(
            cluster, spec, profile, work, b_side, t_side,
            pair_src, pair_dst, pair_key, widths, key_width, categories,
        )

    # ---- Phase C: final local joins at every destination.
    def join_node(node: int) -> LocalPartition:
        received: dict[str, list[LocalPartition]] = {"R": [], "S": []}
        for msg in cluster.network.deliver(node):
            if msg.category is MessageClass.R_TUPLES:
                received["R"].append(msg.payload)
            elif msg.category is MessageClass.S_TUPLES:
                received["S"].append(msg.payload)
        parts: list[LocalPartition] = []
        if received["R"]:
            batch = LocalPartition.concat(received["R"])
            profile.add_cpu_at(
                "Merge rec. R → S tuples", "sort", node, batch.num_rows * widths["R"]
            )
            joined = local_join(batch, work["S"][node], "r.", "s.")
            profile.add_cpu_at(
                "Final merge-join R → S",
                "merge",
                node,
                batch.num_rows * widths["R"]
                + work["S"][node].num_rows * widths["S"]
                + joined.num_rows * out_width,
            )
            parts.append(joined)
        if received["S"]:
            batch = LocalPartition.concat(received["S"])
            profile.add_cpu_at(
                "Merge rec. S → R tuples", "sort", node, batch.num_rows * widths["S"]
            )
            joined = local_join(work["R"][node], batch, "r.", "s.")
            profile.add_cpu_at(
                "Final merge-join S → R",
                "merge",
                node,
                batch.num_rows * widths["S"]
                + work["R"][node].num_rows * widths["R"]
                + joined.num_rows * out_width,
            )
            parts.append(joined)
        if parts:
            return LocalPartition.concat(parts)
        return LocalPartition.empty(out_names)

    return cluster.run_phase(join_node, profile=profile)


def _run_migrations(
    cluster: Cluster,
    spec: JoinSpec,
    profile: ExecutionProfile,
    tracking,
    seg: np.ndarray,
    sched: ScheduleSet,
    side: str,
    entry_mask: np.ndarray,
    work: dict[str, list[LocalPartition]],
    widths: dict[str, float],
    key_width: float,
) -> None:
    """Send migration instructions and move the designated tuples."""
    idx = np.flatnonzero(entry_mask)
    if len(idx) == 0:
        return
    mig_keys = tracking.keys[idx]
    mig_nodes = tracking.nodes[idx]
    mig_dest = sched.dest_node[seg[idx]]
    mig_t = tracking.t_nodes[seg[idx]]

    # Migration instructions: (key, destination) from the scheduler to
    # each migrating holder.  Accounted under the direction that uses
    # them ("Tran. R -> S keys, nodes" when S consolidates, since those
    # messages enable the R -> S broadcast, and vice versa).
    other = "R" if side == "S" else "S"
    step = f"Tran. {other} → {side} keys, nodes"
    _account_pair_messages(
        cluster, spec, profile, step, mig_t, mig_nodes, mig_dest, key_width
    )

    category = MessageClass.R_TUPLES if side == "R" else MessageClass.S_TUPLES
    transfer_step = f"{side} tuples ({side} migration)"
    if fused_enabled():
        # One radix sort splits the migrating entries by holder instead
        # of one boolean scan per distinct holder; stability keeps each
        # holder's entries in the identical order.
        order = stable_argsort_bounded(mig_nodes, cluster.num_nodes)
        bounds = np.searchsorted(mig_nodes[order], np.arange(cluster.num_nodes + 1))
        node_groups = [
            (node, order[bounds[node] : bounds[node + 1]])
            for node in range(cluster.num_nodes)
            if bounds[node + 1] > bounds[node]
        ]
    else:
        node_groups = [
            (node, np.flatnonzero(mig_nodes == node)) for node in np.unique(mig_nodes)
        ]
    def migrate_holder(group: int) -> None:
        node, rows_sel = node_groups[group]
        keys_here = mig_keys[rows_sel]
        dest_here = mig_dest[rows_sel]
        local = work[side][node]
        right_partition = (
            local if fused_enabled() and local.num_rows else None
        )
        pair_pos, rows = join_indices(
            keys_here, local.keys, right_partition=right_partition
        )
        if len(rows) == 0:
            return
        destinations = dest_here[pair_pos]
        keep = np.ones(local.num_rows, dtype=bool)
        keep[rows] = False
        batches = local.split_by(destinations, cluster.num_nodes, rows=rows)
        work[side][node] = local.take(np.flatnonzero(keep))
        for dst, batch in enumerate(batches):
            if batch is None:
                continue
            nbytes = batch.num_rows * widths[side]
            cluster.network.send(int(node), dst, category, nbytes, payload=batch)
            if int(node) == dst:  # pragma: no cover - migrations never self-send
                profile.add_local(f"Local copy {transfer_step}", int(node), nbytes)
            else:
                profile.add_net_at(
                    f"Transfer {side} → {other} tuples", int(node), nbytes
                )

    cluster.run_phase(migrate_holder, tasks=len(node_groups), profile=profile)


def _apply_received_tuples(cluster: Cluster, work: dict[str, list[LocalPartition]]) -> None:
    """Barrier after migration: append received tuples to local fragments."""

    def absorb(node: int) -> None:
        extra: dict[str, list[LocalPartition]] = {"R": [], "S": []}
        for msg in cluster.network.deliver(node):
            if msg.category is MessageClass.R_TUPLES:
                extra["R"].append(msg.payload)
            elif msg.category is MessageClass.S_TUPLES:
                extra["S"].append(msg.payload)
        for side in ("R", "S"):
            if extra[side]:
                work[side][node] = LocalPartition.concat([work[side][node]] + extra[side])

    cluster.run_phase(absorb)


def _account_pair_messages(
    cluster: Cluster,
    spec: JoinSpec,
    profile: ExecutionProfile,
    step: str,
    senders: np.ndarray,
    receivers: np.ndarray,
    node_values: np.ndarray,
    key_width: float,
) -> None:
    """Account (key, node) messages grouped by (sender, receiver) link.

    Messages whose sender is the receiving node itself are free (the
    scheduler addressing a local holder), which is the ``i != self``
    exclusion in the paper's cost routines.
    """
    if len(senders) == 0:
        return
    n = cluster.num_nodes
    if fused_enabled() and n * n * n <= (1 << 20):
        # The (sender, receiver, value) triple domain is tiny: count
        # every triple with one bincount pass and read link totals and
        # per-link distinct values straight off the table — no sort.
        composite = (senders * n + receivers) * n + node_values
        triple_counts = np.bincount(composite, minlength=n * n * n).reshape(n * n, n)
        link_counts = triple_counts.sum(axis=1)
        link_distinct = np.count_nonzero(triple_counts, axis=1)
        links = np.flatnonzero(link_counts)
        counts = link_counts[links]
        distinct_counts = link_distinct[links]
        group_src = links // n
        group_dst = links % n
    elif fused_enabled() and n * n * n <= (1 << 62):
        # Grouped distinct counting in one pass: sort the packed
        # (sender, receiver, value) triple, find link-group boundaries,
        # and count value changes per group — no per-group np.unique.
        composite = (senders * n + receivers) * n + node_values
        if n * n * n <= (1 << 16):
            order = np.argsort(composite.astype(np.uint16), kind="stable")
        else:
            order = np.argsort(composite, kind="stable")
        c_sorted = composite[order]
        link = c_sorted // n
        change = np.empty(len(order), dtype=bool)
        change[0] = True
        np.not_equal(link[1:], link[:-1], out=change[1:])
        starts = np.flatnonzero(change)
        counts = np.diff(np.append(starts, len(order)))
        value_change = np.empty(len(order), dtype=bool)
        value_change[0] = True
        np.not_equal(c_sorted[1:], c_sorted[:-1], out=value_change[1:])
        # Per-group change totals via one cumsum pass (reduceat walks
        # element-by-element; there are only ~n^2 groups).
        cumulative = np.cumsum(value_change)
        ends = np.append(starts[1:], len(order))
        distinct_counts = cumulative[ends - 1] - cumulative[starts] + 1
        group_src = link[starts] // n
        group_dst = link[starts] % n
    else:
        order = np.lexsort((node_values, receivers, senders))
        s_sorted = senders[order]
        r_sorted = receivers[order]
        v_sorted = node_values[order]
        change = np.empty(len(order), dtype=bool)
        change[0] = True
        np.logical_or(
            s_sorted[1:] != s_sorted[:-1], r_sorted[1:] != r_sorted[:-1], out=change[1:]
        )
        starts = np.flatnonzero(change)
        counts = np.diff(np.append(starts, len(order)))
        distinct_counts = np.array(
            [
                len(np.unique(v_sorted[start : start + count]))
                for start, count in zip(starts, counts)
            ],
            dtype=np.int64,
        )
        group_src = s_sorted[starts]
        group_dst = r_sorted[starts]
    for src, dst, group_count, distinct in zip(
        group_src, group_dst, counts, distinct_counts
    ):
        src = int(src)
        dst = int(dst)
        nbytes = location_message_bytes(
            int(group_count),
            int(distinct),
            key_width,
            spec.location_width,
            group_by_node=spec.group_locations,
        )
        cluster.network.send(src, dst, MessageClass.KEYS_NODES, nbytes, payload=None)
        if src == dst:
            profile.add_local("Local copy keys, nodes", src, nbytes)
        else:
            profile.add_net_at(step, src, nbytes)
        # Receivers merge the incoming pair lists before acting on them.
        profile.add_cpu_at("Merge rec. keys, nodes", "merge", dst, nbytes)


def _broadcast_tuples(
    cluster: Cluster,
    spec: JoinSpec,
    profile: ExecutionProfile,
    work: dict[str, list[LocalPartition]],
    b_side: str,
    t_side: str,
    pair_src: np.ndarray,
    pair_dst: np.ndarray,
    pair_key: np.ndarray,
    widths: dict[str, float],
    key_width: float,
    categories: dict[str, MessageClass],
) -> None:
    """Each broadcast-side holder ships matching tuples per location pair."""
    num_nodes = cluster.num_nodes
    if fused_enabled():
        order = stable_argsort_bounded(pair_src, num_nodes)
    else:
        order = np.argsort(pair_src, kind="stable")
    bounds = np.searchsorted(pair_src[order], np.arange(num_nodes + 1))
    width = widths[b_side]
    step = f"Transfer {b_side} → {t_side} tuples"
    copy_step = f"Local copy {b_side} → {t_side} tuples"
    translate_step = (
        f"Merge-join {b_side} → {t_side} keys, nodes ⇒ payloads "
        "and partition by node"
    )
    def broadcast_holder(src: int) -> None:
        rows = order[bounds[src] : bounds[src + 1]]
        if len(rows) == 0:
            return
        keys_here = pair_key[rows]
        dst_here = pair_dst[rows]
        local = work[b_side][src]
        right_partition = (
            local if fused_enabled() and local.num_rows else None
        )
        pair_pos, local_rows = join_indices(
            keys_here, local.keys, right_partition=right_partition
        )
        profile.add_cpu_at(
            translate_step,
            "merge",
            src,
            len(rows) * (key_width + spec.location_width) + len(local_rows) * width,
        )
        if len(local_rows) == 0:
            return
        # One gather routes the matched tuples straight to their
        # destination slices — no per-destination take() copies and no
        # intermediate full materialization of the matched batch.
        destinations = dst_here[pair_pos]
        batches = local.split_by(destinations, num_nodes, rows=local_rows)
        sent = cluster.network.send_batches(src, categories[b_side], batches, width)
        for dst, nbytes in sent:
            if src == dst:
                profile.add_local(copy_step, src, nbytes)
            else:
                profile.add_net_at(step, src, nbytes)

    cluster.run_phase(broadcast_holder, profile=profile)
