"""The track join operators: 2-phase, 3-phase, and 4-phase variants.

All three share the same skeleton, faithful to Section 2:

1. **Tracking** — project both inputs to their join keys, deduplicate
   locally, and ship (key [, count]) entries to each key's scheduling
   node (:mod:`repro.core.tracking`).
2. **Scheduling** — the scheduling nodes generate a transfer plan per
   distinct key (:mod:`repro.core.schedule`): a fixed selective
   broadcast direction (2-phase), the cheaper direction per key
   (3-phase), or the cheaper *optimized* direction with migrations
   (4-phase).
3. **Migration** (4-phase only) — nodes told to consolidate move their
   matching tuples of the broadcast-target side to the designated
   destination.
4. **Selective broadcast** — scheduling nodes send (key, destination)
   location messages to the broadcast-side holders, which ship their
   matching tuples only to nodes with matches; each destination joins
   the received tuples against its (post-migration) local fragment.

The executor moves real numpy-backed tuple batches through the
simulated network, so output correctness and byte-exact traffic both
fall out of the same run.
"""

from __future__ import annotations

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.network import MessageClass
from ..joins.base import DistributedJoin, JoinSpec
from ..joins.local import join_indices, local_join
from ..storage.table import DistributedTable, LocalPartition
from ..timing.profile import ExecutionProfile
from ..util import segment_ids, segmented_cartesian
from .messages import location_message_bytes
from .schedule import ScheduleSet, generate_schedules
from .tracking import run_tracking_phase

__all__ = ["TrackJoin2", "TrackJoin3", "TrackJoin4"]


class _TrackJoinBase(DistributedJoin):
    """Shared tracking/scheduling/broadcast skeleton of all variants."""

    #: 3/4-phase tracking carries per-node match counts.
    with_counts: bool = True
    #: 4-phase adds the migration optimization.
    allow_migration: bool = True
    #: 2-phase pins every key to one direction ("RS" or "SR").
    forced_direction: str | None = None

    def _execute(
        self,
        cluster: Cluster,
        table_r: DistributedTable,
        table_s: DistributedTable,
        spec: JoinSpec,
        profile: ExecutionProfile,
    ) -> list[LocalPartition]:
        tracking = run_tracking_phase(
            cluster, table_r, table_s, spec, profile, with_counts=self.with_counts
        )
        key_width = table_r.schema.key_width(spec.encoding)
        if tracking.num_entries:
            # Schedule generation happens at the T nodes; its work is
            # linear in the number of tracked (key, node) entries.
            entry_footprint = key_width + spec.location_width + spec.count_width_r
            seg = segment_ids(tracking.key_starts, tracking.num_entries)
            per_tnode = np.bincount(
                tracking.t_nodes[seg],
                weights=np.full(tracking.num_entries, entry_footprint),
                minlength=cluster.num_nodes,
            )
            profile.add_cpu(
                "Generate schedules and partition by node", "schedule", per_tnode
            )
        # The paper's scheduling pseudocode treats M as the size of one
        # whole location message ("logically seen as key and node pairs,
        # have size equal to M"), so schedules are generated with the
        # full wire width of a (key, node) pair — keeping migration
        # decisions consistent with the bytes actually sent.
        schedules = generate_schedules(
            tracking,
            location_width=key_width + spec.location_width,
            allow_migration=self.allow_migration,
            forced_direction=self.forced_direction,
        )
        return _execute_schedules(
            cluster, table_r, table_s, spec, profile, schedules
        )


class TrackJoin2(_TrackJoinBase):
    """2-phase (single broadcast) track join.

    Tracks bare key locations, then selectively broadcasts one side's
    tuples to the other side's locations.  The direction is a query
    optimizer decision taken before execution, like the inner/outer
    distinction of hash join.
    """

    with_counts = False
    allow_migration = False

    def __init__(self, direction: str = "RS"):
        if direction not in ("RS", "SR"):
            raise ValueError(f"direction must be 'RS' or 'SR', got {direction!r}")
        self.forced_direction = direction
        self.name = "2TJ-R" if direction == "RS" else "2TJ-S"


class TrackJoin3(_TrackJoinBase):
    """3-phase (double broadcast) track join.

    Tracking carries per-node match sizes, and the cheaper selective
    broadcast direction is chosen independently for every distinct key.
    """

    name = "3TJ"
    allow_migration = False


class TrackJoin4(_TrackJoinBase):
    """4-phase (full) track join.

    Adds the migration phase: per key, tuples of the broadcast-target
    side are consolidated onto fewer nodes whenever that lowers total
    traffic, producing the minimum possible payload transfers for an
    early-materialized distributed join (Theorems 1-2).
    """

    name = "4TJ"


# ---------------------------------------------------------------------------
# Schedule execution
# ---------------------------------------------------------------------------


def _execute_schedules(
    cluster: Cluster,
    table_r: DistributedTable,
    table_s: DistributedTable,
    spec: JoinSpec,
    profile: ExecutionProfile,
    sched: ScheduleSet,
) -> list[LocalPartition]:
    """Run migrations, selective broadcasts, and final local joins."""
    num_nodes = cluster.num_nodes
    tracking = sched.tracking
    key_width = table_r.schema.key_width(spec.encoding)
    widths = {
        "R": table_r.schema.tuple_width(spec.encoding),
        "S": table_s.schema.tuple_width(spec.encoding),
    }
    categories = {"R": MessageClass.R_TUPLES, "S": MessageClass.S_TUPLES}
    work: dict[str, list[LocalPartition]] = {
        "R": list(table_r.partitions),
        "S": list(table_s.partitions),
    }
    out_names = tuple("r." + n for n in table_r.payload_names) + tuple(
        "s." + n for n in table_s.payload_names
    )
    out_width = widths["R"] + table_s.schema.payload_width(spec.encoding)

    if tracking.num_entries == 0:
        return [LocalPartition.empty(out_names) for _ in range(num_nodes)]

    seg = segment_ids(tracking.key_starts, tracking.num_entries)
    entry_dir_rs = sched.direction_rs[seg]
    has_r = tracking.size_r > 0
    has_s = tracking.size_s > 0

    # ---- Phase A: migrations (4-phase only; sched.migrate is all-False
    # otherwise).  For RS keys the S side consolidates, for SR keys R.
    for side, entry_mask in (
        ("S", sched.migrate & entry_dir_rs),
        ("R", sched.migrate & ~entry_dir_rs),
    ):
        _run_migrations(
            cluster, spec, profile, tracking, seg, sched, side, entry_mask,
            work, widths, key_width,
        )
    _apply_received_tuples(cluster, work)

    # ---- Phase B: location messages + selective broadcasts.
    for b_side, t_side, key_is_this_dir in (
        ("R", "S", entry_dir_rs),
        ("S", "R", ~entry_dir_rs),
    ):
        has_b = has_r if b_side == "R" else has_s
        has_t = has_s if b_side == "R" else has_r
        b_idx = np.flatnonzero(key_is_this_dir & has_b)
        d_idx = np.flatnonzero(key_is_this_dir & has_t & ~sched.migrate)
        if len(b_idx) == 0 or len(d_idx) == 0:
            continue
        ia, ib = segmented_cartesian(seg[b_idx], seg[d_idx])
        pair_src = tracking.nodes[b_idx][ia]
        pair_dst = tracking.nodes[d_idx][ib]
        pair_key = tracking.keys[b_idx][ia]
        pair_t = tracking.t_nodes[seg[b_idx]][ia]
        step = f"Tran. {b_side} → {t_side} keys, nodes"
        _account_pair_messages(
            cluster, spec, profile, step, pair_t, pair_src, pair_dst, key_width
        )
        _broadcast_tuples(
            cluster, spec, profile, work, b_side, t_side,
            pair_src, pair_dst, pair_key, widths, key_width, categories,
        )

    # ---- Phase C: final local joins at every destination.
    output: list[LocalPartition] = []
    for node in range(num_nodes):
        received: dict[str, list[LocalPartition]] = {"R": [], "S": []}
        for msg in cluster.network.deliver(node):
            if msg.category is MessageClass.R_TUPLES:
                received["R"].append(msg.payload)
            elif msg.category is MessageClass.S_TUPLES:
                received["S"].append(msg.payload)
        parts: list[LocalPartition] = []
        if received["R"]:
            batch = LocalPartition.concat(received["R"])
            profile.add_cpu_at(
                "Merge rec. R → S tuples", "sort", node, batch.num_rows * widths["R"]
            )
            joined = local_join(batch, work["S"][node], "r.", "s.")
            profile.add_cpu_at(
                "Final merge-join R → S",
                "merge",
                node,
                batch.num_rows * widths["R"]
                + work["S"][node].num_rows * widths["S"]
                + joined.num_rows * out_width,
            )
            parts.append(joined)
        if received["S"]:
            batch = LocalPartition.concat(received["S"])
            profile.add_cpu_at(
                "Merge rec. S → R tuples", "sort", node, batch.num_rows * widths["S"]
            )
            joined = local_join(work["R"][node], batch, "r.", "s.")
            profile.add_cpu_at(
                "Final merge-join S → R",
                "merge",
                node,
                batch.num_rows * widths["S"]
                + work["R"][node].num_rows * widths["R"]
                + joined.num_rows * out_width,
            )
            parts.append(joined)
        if parts:
            output.append(LocalPartition.concat(parts))
        else:
            output.append(LocalPartition.empty(out_names))
    return output


def _run_migrations(
    cluster: Cluster,
    spec: JoinSpec,
    profile: ExecutionProfile,
    tracking,
    seg: np.ndarray,
    sched: ScheduleSet,
    side: str,
    entry_mask: np.ndarray,
    work: dict[str, list[LocalPartition]],
    widths: dict[str, float],
    key_width: float,
) -> None:
    """Send migration instructions and move the designated tuples."""
    idx = np.flatnonzero(entry_mask)
    if len(idx) == 0:
        return
    mig_keys = tracking.keys[idx]
    mig_nodes = tracking.nodes[idx]
    mig_dest = sched.dest_node[seg[idx]]
    mig_t = tracking.t_nodes[seg[idx]]

    # Migration instructions: (key, destination) from the scheduler to
    # each migrating holder.  Accounted under the direction that uses
    # them ("Tran. R -> S keys, nodes" when S consolidates, since those
    # messages enable the R -> S broadcast, and vice versa).
    other = "R" if side == "S" else "S"
    step = f"Tran. {other} → {side} keys, nodes"
    _account_pair_messages(
        cluster, spec, profile, step, mig_t, mig_nodes, mig_dest, key_width
    )

    category = MessageClass.R_TUPLES if side == "R" else MessageClass.S_TUPLES
    transfer_step = f"{side} tuples ({side} migration)"
    for node in np.unique(mig_nodes):
        sel = mig_nodes == node
        keys_here = mig_keys[sel]
        dest_here = mig_dest[sel]
        local = work[side][node]
        pair_pos, rows = join_indices(keys_here, local.keys)
        if len(rows) == 0:
            continue
        moving = local.take(rows)
        destinations = dest_here[pair_pos]
        keep = np.ones(local.num_rows, dtype=bool)
        keep[rows] = False
        work[side][node] = local.take(np.flatnonzero(keep))
        order = np.argsort(destinations, kind="stable")
        bounds = np.searchsorted(destinations[order], np.arange(cluster.num_nodes + 1))
        for dst in range(cluster.num_nodes):
            chosen = order[bounds[dst] : bounds[dst + 1]]
            if len(chosen) == 0:
                continue
            batch = moving.take(chosen)
            nbytes = batch.num_rows * widths[side]
            cluster.network.send(int(node), dst, category, nbytes, payload=batch)
            if int(node) == dst:  # pragma: no cover - migrations never self-send
                profile.add_local(f"Local copy {transfer_step}", int(node), nbytes)
            else:
                profile.add_net_at(
                    f"Transfer {side} → {other} tuples", int(node), nbytes
                )


def _apply_received_tuples(cluster: Cluster, work: dict[str, list[LocalPartition]]) -> None:
    """Barrier after migration: append received tuples to local fragments."""
    for node in range(cluster.num_nodes):
        extra: dict[str, list[LocalPartition]] = {"R": [], "S": []}
        for msg in cluster.network.deliver(node):
            if msg.category is MessageClass.R_TUPLES:
                extra["R"].append(msg.payload)
            elif msg.category is MessageClass.S_TUPLES:
                extra["S"].append(msg.payload)
        for side in ("R", "S"):
            if extra[side]:
                work[side][node] = LocalPartition.concat([work[side][node]] + extra[side])


def _account_pair_messages(
    cluster: Cluster,
    spec: JoinSpec,
    profile: ExecutionProfile,
    step: str,
    senders: np.ndarray,
    receivers: np.ndarray,
    node_values: np.ndarray,
    key_width: float,
) -> None:
    """Account (key, node) messages grouped by (sender, receiver) link.

    Messages whose sender is the receiving node itself are free (the
    scheduler addressing a local holder), which is the ``i != self``
    exclusion in the paper's cost routines.
    """
    if len(senders) == 0:
        return
    order = np.lexsort((node_values, receivers, senders))
    s_sorted = senders[order]
    r_sorted = receivers[order]
    v_sorted = node_values[order]
    change = np.empty(len(order), dtype=bool)
    change[0] = True
    np.logical_or(
        s_sorted[1:] != s_sorted[:-1], r_sorted[1:] != r_sorted[:-1], out=change[1:]
    )
    starts = np.flatnonzero(change)
    counts = np.diff(np.append(starts, len(order)))
    for group_start, group_count in zip(starts, counts):
        src = int(s_sorted[group_start])
        dst = int(r_sorted[group_start])
        values = v_sorted[group_start : group_start + group_count]
        distinct = int(len(np.unique(values)))
        nbytes = location_message_bytes(
            int(group_count),
            distinct,
            key_width,
            spec.location_width,
            group_by_node=spec.group_locations,
        )
        cluster.network.send(src, dst, MessageClass.KEYS_NODES, nbytes, payload=None)
        if src == dst:
            profile.add_local("Local copy keys, nodes", src, nbytes)
        else:
            profile.add_net_at(step, src, nbytes)
        # Receivers merge the incoming pair lists before acting on them.
        profile.add_cpu_at("Merge rec. keys, nodes", "merge", dst, nbytes)


def _broadcast_tuples(
    cluster: Cluster,
    spec: JoinSpec,
    profile: ExecutionProfile,
    work: dict[str, list[LocalPartition]],
    b_side: str,
    t_side: str,
    pair_src: np.ndarray,
    pair_dst: np.ndarray,
    pair_key: np.ndarray,
    widths: dict[str, float],
    key_width: float,
    categories: dict[str, MessageClass],
) -> None:
    """Each broadcast-side holder ships matching tuples per location pair."""
    num_nodes = cluster.num_nodes
    order = np.argsort(pair_src, kind="stable")
    bounds = np.searchsorted(pair_src[order], np.arange(num_nodes + 1))
    width = widths[b_side]
    step = f"Transfer {b_side} → {t_side} tuples"
    copy_step = f"Local copy {b_side} → {t_side} tuples"
    translate_step = (
        f"Merge-join {b_side} → {t_side} keys, nodes ⇒ payloads "
        "and partition by node"
    )
    for src in range(num_nodes):
        rows = order[bounds[src] : bounds[src + 1]]
        if len(rows) == 0:
            continue
        keys_here = pair_key[rows]
        dst_here = pair_dst[rows]
        local = work[b_side][src]
        pair_pos, local_rows = join_indices(keys_here, local.keys)
        profile.add_cpu_at(
            translate_step,
            "merge",
            src,
            len(rows) * (key_width + spec.location_width) + len(local_rows) * width,
        )
        if len(local_rows) == 0:
            continue
        batch_all = local.take(local_rows)
        destinations = dst_here[pair_pos]
        d_order = np.argsort(destinations, kind="stable")
        d_bounds = np.searchsorted(destinations[d_order], np.arange(num_nodes + 1))
        for dst in range(num_nodes):
            chosen = d_order[d_bounds[dst] : d_bounds[dst + 1]]
            if len(chosen) == 0:
                continue
            batch = batch_all.take(chosen)
            nbytes = batch.num_rows * width
            cluster.network.send(src, dst, categories[b_side], nbytes, payload=batch)
            if src == dst:
                profile.add_local(copy_step, src, nbytes)
            else:
                profile.add_net_at(step, src, nbytes)
