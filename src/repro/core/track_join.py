"""The track join operators: 2-phase, 3-phase, and 4-phase variants.

All three share the same skeleton, faithful to Section 2:

1. **Tracking** — project both inputs to their join keys, deduplicate
   locally, and ship (key [, count]) entries to each key's scheduling
   node (:mod:`repro.core.tracking`).
2. **Scheduling** — the scheduling nodes generate a transfer plan per
   distinct key (:mod:`repro.core.schedule`): a fixed selective
   broadcast direction (2-phase), the cheaper direction per key
   (3-phase), or the cheaper *optimized* direction with migrations
   (4-phase).
3. **Migration** (4-phase only) — nodes told to consolidate move their
   matching tuples of the broadcast-target side to the designated
   destination.
4. **Selective broadcast** — scheduling nodes send (key, destination)
   location messages to the broadcast-side holders, which ship their
   matching tuples only to nodes with matches; each destination joins
   the received tuples against its (post-migration) local fragment.

The executor moves real numpy-backed tuple batches through the
simulated network, so output correctness and byte-exact traffic both
fall out of the same run.
"""

from __future__ import annotations

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.network import MessageClass
from ..errors import ValidationError
from ..exchange.gather import absorb_received
from ..exchange.locations import LocationExchange
from ..exchange.migrate import Migrate, ShardedMigrate
from ..exchange.selective import SelectiveBroadcast
from ..fastpath import fused_enabled
from ..joins.base import DistributedJoin, JoinSpec
from ..joins.local import local_join
from ..storage.table import DistributedTable, LocalPartition
from ..timing.profile import ExecutionProfile
from ..util import segment_ids, segmented_cartesian
from .schedule import ScheduleSet, generate_schedules
from .tracking import run_tracking_phase

__all__ = ["TrackJoin2", "TrackJoin3", "TrackJoin4"]


class _TrackJoinBase(DistributedJoin):
    """Shared tracking/scheduling/broadcast skeleton of all variants."""

    #: 3/4-phase tracking carries per-node match counts.
    with_counts: bool = True
    #: 4-phase adds the migration optimization.
    allow_migration: bool = True
    #: 2-phase pins every key to one direction ("RS" or "SR").
    forced_direction: str | None = None

    def _execute(
        self,
        cluster: Cluster,
        table_r: DistributedTable,
        table_s: DistributedTable,
        spec: JoinSpec,
        profile: ExecutionProfile,
    ) -> list[LocalPartition]:
        tracking = run_tracking_phase(
            cluster, table_r, table_s, spec, profile, with_counts=self.with_counts
        )
        key_width = table_r.schema.key_width(spec.encoding)
        # The per-entry segment ids are needed by schedule generation and
        # execution alike; expand them once and thread them through.
        seg = segment_ids(tracking.key_starts, tracking.num_entries)
        if tracking.num_entries:
            # Schedule generation happens at the T nodes; its work is
            # linear in the number of tracked (key, node) entries.
            entry_footprint = key_width + spec.location_width + spec.count_width_r
            if fused_enabled() and float(entry_footprint).is_integer():
                # count x width: exact for integer widths, and avoids
                # both the per-entry t-node gather and the constant
                # weights array.
                entries_per_key = np.diff(
                    np.append(tracking.key_starts, tracking.num_entries)
                )
                per_tnode = (
                    np.bincount(
                        tracking.t_nodes,
                        weights=entries_per_key.astype(np.float64),
                        minlength=cluster.num_nodes,
                    )
                    * entry_footprint
                )
            else:
                per_tnode = np.bincount(
                    tracking.t_nodes[seg],
                    weights=np.full(tracking.num_entries, entry_footprint),
                    minlength=cluster.num_nodes,
                )
            profile.add_cpu(
                "Generate schedules and partition by node", "schedule", per_tnode
            )
        # The paper's scheduling pseudocode treats M as the size of one
        # whole location message ("logically seen as key and node pairs,
        # have size equal to M"), so schedules are generated with the
        # full wire width of a (key, node) pair — keeping migration
        # decisions consistent with the bytes actually sent.
        schedules = self._make_schedules(
            cluster, tracking, spec, key_width + spec.location_width, seg
        )
        return _execute_schedules(
            cluster, table_r, table_s, spec, profile, schedules, seg=seg
        )

    def _make_schedules(
        self,
        cluster: Cluster,
        tracking,
        spec: JoinSpec,
        location_width: float,
        seg: np.ndarray,
    ) -> ScheduleSet:
        """Schedule-generation hook.

        The base operators take the traffic-optimal plan; policy
        subclasses (:mod:`repro.core.balance`, :mod:`repro.core.skew`)
        override only this method to re-pick destinations from the same
        shared candidate evaluation.
        """
        return generate_schedules(
            tracking,
            location_width=location_width,
            allow_migration=self.allow_migration,
            forced_direction=self.forced_direction,
            seg=seg,
        )


class TrackJoin2(_TrackJoinBase):
    """2-phase (single broadcast) track join.

    Tracks bare key locations, then selectively broadcasts one side's
    tuples to the other side's locations.  The direction is a query
    optimizer decision taken before execution, like the inner/outer
    distinction of hash join.
    """

    with_counts = False
    allow_migration = False

    def __init__(self, direction: str = "RS"):
        if direction not in ("RS", "SR"):
            raise ValidationError(f"direction must be 'RS' or 'SR', got {direction!r}")
        self.forced_direction = direction
        self.name = "2TJ-R" if direction == "RS" else "2TJ-S"


class TrackJoin3(_TrackJoinBase):
    """3-phase (double broadcast) track join.

    Tracking carries per-node match sizes, and the cheaper selective
    broadcast direction is chosen independently for every distinct key.
    """

    name = "3TJ"
    allow_migration = False


class TrackJoin4(_TrackJoinBase):
    """4-phase (full) track join.

    Adds the migration phase: per key, tuples of the broadcast-target
    side are consolidated onto fewer nodes whenever that lowers total
    traffic, producing the minimum possible payload transfers for an
    early-materialized distributed join (Theorems 1-2).
    """

    name = "4TJ"


# ---------------------------------------------------------------------------
# Schedule execution
# ---------------------------------------------------------------------------


def _execute_schedules(
    cluster: Cluster,
    table_r: DistributedTable,
    table_s: DistributedTable,
    spec: JoinSpec,
    profile: ExecutionProfile,
    sched: ScheduleSet,
    seg: np.ndarray | None = None,
) -> list[LocalPartition]:
    """Run migrations, selective broadcasts, and final local joins."""
    num_nodes = cluster.num_nodes
    tracking = sched.tracking
    key_width = table_r.schema.key_width(spec.encoding)
    widths = {
        "R": table_r.schema.tuple_width(spec.encoding),
        "S": table_s.schema.tuple_width(spec.encoding),
    }
    categories = {"R": MessageClass.R_TUPLES, "S": MessageClass.S_TUPLES}
    work: dict[str, list[LocalPartition]] = {
        "R": list(table_r.partitions),
        "S": list(table_s.partitions),
    }
    out_names = tuple("r." + n for n in table_r.payload_names) + tuple(
        "s." + n for n in table_s.payload_names
    )
    out_width = widths["R"] + table_s.schema.payload_width(spec.encoding)

    if tracking.num_entries == 0:
        return [LocalPartition.empty(out_names) for _ in range(num_nodes)]

    if seg is None:
        seg = segment_ids(tracking.key_starts, tracking.num_entries)
    entry_dir_rs = sched.direction_rs[seg]
    entry_dir_sr = ~entry_dir_rs
    has_r = tracking.size_r > 0
    has_s = tracking.size_s > 0
    # Heavy-hitter sharding: per-entry marker of sharded keys, or None —
    # with no shards every code path below is identical to the plain
    # single-destination plan, byte for byte.
    sh_entry = sched.sharded[seg] if sched.has_shards else None

    # ---- Phase A: migrations (4-phase only; sched.migrate is all-False
    # otherwise).  For RS keys the S side consolidates, for SR keys R.
    # The two directions touch disjoint holder lists (work["S"] vs
    # work["R"]) and neither reads the other's sends, so a pipelined
    # window may fuse them under one barrier.  Sharded keys consolidate
    # separately: every target-side holder deals its rows across the
    # key's shard destinations (their ``sched.migrate`` bits are clear,
    # so the plain migration pass never touches them).
    with cluster.pipelined_phases():
        for side, entry_mask in (
            ("S", sched.migrate & entry_dir_rs),
            ("R", sched.migrate & entry_dir_sr),
        ):
            _run_migrations(
                cluster, spec, profile, tracking, seg, sched, side, entry_mask,
                work, widths, key_width,
            )
        if sh_entry is not None:
            for side, entry_mask in (
                ("S", sh_entry & entry_dir_rs & has_s),
                ("R", sh_entry & entry_dir_sr & has_r),
            ):
                _run_shard_migrations(
                    cluster, spec, profile, tracking, seg, sched, side,
                    entry_mask, work, widths, key_width,
                )
    # Consolidation barrier: moved tuples join their destination's local
    # fragment before the selective broadcasts run against it.
    absorb_received(
        cluster,
        {MessageClass.R_TUPLES: work["R"], MessageClass.S_TUPLES: work["S"]},
    )

    # ---- Phase B: location messages + selective broadcasts.  The two
    # directions read only coordinator state (tracking/schedules) and
    # their side's consolidated fragments — never each other's sends —
    # so a pipelined window may overlap one direction's broadcast with
    # the other's translation work.  Location messages are coordinator
    # sends and keep immediate semantics either way.
    not_migrating = ~sched.migrate
    with cluster.pipelined_phases():
        for b_side, t_side, key_is_this_dir in (
            ("R", "S", entry_dir_rs),
            ("S", "R", entry_dir_sr),
        ):
            has_b = has_r if b_side == "R" else has_s
            has_t = has_s if b_side == "R" else has_r
            b_mask = key_is_this_dir & has_b
            d_mask = key_is_this_dir & has_t & not_migrating
            if sh_entry is not None:
                # Sharded keys broadcast to their shard destinations
                # instead of the tracked target entries (whose tuples
                # were dealt away in Phase A).
                b_mask = b_mask & ~sh_entry
                d_mask = d_mask & ~sh_entry
            b_idx = np.flatnonzero(b_mask)
            d_idx = np.flatnonzero(d_mask)
            if len(b_idx) and len(d_idx):
                seg_b = seg[b_idx]
                ia, ib = segmented_cartesian(seg_b, seg[d_idx])
                pair_src = tracking.nodes[b_idx][ia]
                pair_dst = tracking.nodes[d_idx][ib]
                pair_key = tracking.keys[b_idx][ia]
                pair_t = tracking.t_nodes[seg_b][ia]
            else:
                empty = np.empty(0, dtype=np.int64)
                pair_src = pair_dst = pair_key = pair_t = empty
            if sh_entry is not None:
                # Each broadcast-side holder of a sharded key replicates
                # its tuples to *every* shard, so each of the dealt
                # target rows meets each matching broadcast row exactly
                # once.
                sb_idx = np.flatnonzero(key_is_this_dir & has_b & sh_entry)
                if len(sb_idx):
                    sb_seg = seg[sb_idx]
                    off = sched.shard_offsets
                    counts = (off[sb_seg + 1] - off[sb_seg]).astype(np.int64)
                    rep = np.repeat(np.arange(len(sb_idx)), counts)
                    within = np.arange(int(counts.sum())) - np.repeat(
                        np.cumsum(counts) - counts, counts
                    )
                    dests = sched.shard_dests[np.repeat(off[sb_seg], counts) + within]
                    pair_src = np.concatenate([pair_src, tracking.nodes[sb_idx][rep]])
                    pair_dst = np.concatenate([pair_dst, dests])
                    pair_key = np.concatenate([pair_key, tracking.keys[sb_idx][rep]])
                    pair_t = np.concatenate([pair_t, tracking.t_nodes[sb_seg][rep]])
            if len(pair_src) == 0:
                continue
            _locations(spec, key_width, f"Tran. {b_side} → {t_side} keys, nodes").run(
                cluster, profile, pair_t, pair_src, pair_dst
            )
            SelectiveBroadcast(
                category=categories[b_side],
                width=widths[b_side],
                match_width=key_width + spec.location_width,
                transfer_step=f"Transfer {b_side} → {t_side} tuples",
                copy_step=f"Local copy {b_side} → {t_side} tuples",
                translate_step=(
                    f"Merge-join {b_side} → {t_side} keys, nodes ⇒ payloads "
                    "and partition by node"
                ),
            ).run(cluster, profile, work[b_side], pair_src, pair_dst, pair_key)

    # ---- Phase C: final local joins at every destination.
    def join_node(node: int) -> LocalPartition:
        received: dict[str, list[LocalPartition]] = {"R": [], "S": []}
        for msg in cluster.network.deliver(node):
            if msg.category is MessageClass.R_TUPLES:
                received["R"].append(msg.payload)
            elif msg.category is MessageClass.S_TUPLES:
                received["S"].append(msg.payload)
        parts: list[LocalPartition] = []
        if received["R"]:
            batch = LocalPartition.concat(received["R"])
            profile.add_cpu_at(
                "Merge rec. R → S tuples", "sort", node, batch.num_rows * widths["R"]
            )
            joined = local_join(batch, work["S"][node], "r.", "s.")
            profile.add_cpu_at(
                "Final merge-join R → S",
                "merge",
                node,
                batch.num_rows * widths["R"]
                + work["S"][node].num_rows * widths["S"]
                + joined.num_rows * out_width,
            )
            parts.append(joined)
        if received["S"]:
            batch = LocalPartition.concat(received["S"])
            profile.add_cpu_at(
                "Merge rec. S → R tuples", "sort", node, batch.num_rows * widths["S"]
            )
            joined = local_join(work["R"][node], batch, "r.", "s.")
            profile.add_cpu_at(
                "Final merge-join S → R",
                "merge",
                node,
                batch.num_rows * widths["S"]
                + work["R"][node].num_rows * widths["R"]
                + joined.num_rows * out_width,
            )
            parts.append(joined)
        if parts:
            return LocalPartition.concat(parts)
        return LocalPartition.empty(out_names)

    return cluster.run_phase(join_node, profile=profile)


def _locations(spec: JoinSpec, key_width: float, step: str) -> LocationExchange:
    """The (key, node) instruction exchange under this join's encodings."""
    return LocationExchange(
        step=step,
        key_width=key_width,
        location_width=spec.location_width,
        group_by_node=spec.group_locations,
    )


def _run_migrations(
    cluster: Cluster,
    spec: JoinSpec,
    profile: ExecutionProfile,
    tracking,
    seg: np.ndarray,
    sched: ScheduleSet,
    side: str,
    entry_mask: np.ndarray,
    work: dict[str, list[LocalPartition]],
    widths: dict[str, float],
    key_width: float,
) -> None:
    """Send migration instructions and move the designated tuples."""
    idx = np.flatnonzero(entry_mask)
    if len(idx) == 0:
        return
    mig_keys = tracking.keys[idx]
    mig_nodes = tracking.nodes[idx]
    mig_dest = sched.dest_node[seg[idx]]
    mig_t = tracking.t_nodes[seg[idx]]

    # Migration instructions: (key, destination) from the scheduler to
    # each migrating holder.  Accounted under the direction that uses
    # them ("Tran. R -> S keys, nodes" when S consolidates, since those
    # messages enable the R -> S broadcast, and vice versa).
    other = "R" if side == "S" else "S"
    _locations(spec, key_width, f"Tran. {other} → {side} keys, nodes").run(
        cluster, profile, mig_t, mig_nodes, mig_dest
    )

    Migrate(
        category=MessageClass.R_TUPLES if side == "R" else MessageClass.S_TUPLES,
        width=widths[side],
        transfer_step=f"Transfer {side} → {other} tuples",
        copy_step=f"Local copy {side} tuples ({side} migration)",
    ).run(cluster, profile, work[side], mig_keys, mig_nodes, mig_dest)


def _run_shard_migrations(
    cluster: Cluster,
    spec: JoinSpec,
    profile: ExecutionProfile,
    tracking,
    seg: np.ndarray,
    sched: ScheduleSet,
    side: str,
    entry_mask: np.ndarray,
    work: dict[str, list[LocalPartition]],
    widths: dict[str, float],
    key_width: float,
) -> None:
    """Instruct hot keys' target-side holders to deal across the shards.

    The sharded analogue of :func:`_run_migrations`: every target-side
    holder of a sharded key receives one (key, destination) instruction
    per shard, then deals its matching tuples cyclically over that list
    (:class:`~repro.exchange.migrate.ShardedMigrate`).
    """
    idx = np.flatnonzero(entry_mask)
    if len(idx) == 0:
        return
    entry_key = seg[idx]
    off = sched.shard_offsets
    counts = (off[entry_key + 1] - off[entry_key]).astype(np.int64)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    within = np.arange(offsets[-1]) - np.repeat(offsets[:-1], counts)
    flat = sched.shard_dests[np.repeat(off[entry_key], counts) + within]

    # Shard instructions: one (key, destination) message per
    # (holder, shard) pair, accounted like migration instructions.
    rep = np.repeat(np.arange(len(idx)), counts)
    other = "R" if side == "S" else "S"
    _locations(spec, key_width, f"Tran. {other} → {side} keys, nodes").run(
        cluster, profile, tracking.t_nodes[entry_key][rep],
        tracking.nodes[idx][rep], flat,
    )

    ShardedMigrate(
        category=MessageClass.R_TUPLES if side == "R" else MessageClass.S_TUPLES,
        width=widths[side],
        transfer_step=f"Transfer {side} → {other} tuples",
        copy_step=f"Local copy {side} tuples ({side} migration)",
    ).run(
        cluster, profile, work[side], tracking.keys[idx], tracking.nodes[idx],
        offsets, flat,
    )
