"""Shared destination-choice core of per-key schedule generation.

Every scheduling path — the scalar oracle
(:func:`repro.core.schedule.migrate_and_broadcast`), the vectorized
:func:`repro.core.schedule.generate_schedules`, and the load-aware
policies (:class:`repro.core.balance.BalanceAwareTrackJoin`,
:class:`repro.core.skew.SkewShardTrackJoin`) — answers the same
question for each key and direction: *which target-side holders
migrate, and where do the migrating tuples consolidate?*

The answer has two parts (Theorem 1 of the paper):

1. **Forced stay.**  One target-side holder must survive.  The optimal
   choice is the holder whose migration would save the least — the one
   with maximal migration delta — because the per-node decisions are
   otherwise independent.  Ties resolve to the lowest node id,
   deterministically.
2. **Migrate-if-saving.**  Every other holder migrates exactly when its
   delta is negative (migrating lowers total cost).

The *default* consolidation destination is the forced-stay holder; the
load-aware policies exploit the fact that any surviving holder is
cost-equivalent as a destination and instead pick the least-loaded one
(:func:`least_loaded`), or split a heavy key's migrating tuples over
several destinations (:func:`rank_by_load`).

This module is the single implementation of those rules.  The three
entry points share the decision logic across the three data layouts the
schedulers use: one key at a time (:func:`scalar_consolidation`),
segmented entry arrays (:func:`segmented_consolidation`), and the
two-entries-per-key fast path (:func:`paired_consolidation`).  The
arithmetic is arranged so each form is bit-identical to the others on
the shapes they share — the schedule golden suites pin that.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "migration_delta",
    "scalar_consolidation",
    "segmented_consolidation",
    "paired_consolidation",
    "least_loaded",
    "rank_by_load",
]


def migration_delta(
    broadcast_size: float,
    target_size: float,
    broadcast_all: float,
    broadcast_nodes: int,
    location_width: float,
    is_scheduler: bool,
) -> float:
    """Cost change of migrating one target-side holder (Theorem 1).

    Moving node *i*'s target tuples to the consolidation destination
    pays their transfer (``target_size``) and one migration instruction
    (``location_width``, free when *i* is the scheduler), and saves the
    broadcast bytes and location messages that would otherwise have
    been sent to *i* (``broadcast_all - broadcast_size`` plus
    ``broadcast_nodes * location_width``).  Negative delta ⇒ migrating
    is cheaper.
    """
    delta = (
        broadcast_size + target_size - broadcast_all - broadcast_nodes * location_width
    )
    if not is_scheduler:
        delta += location_width  # the migration instruction message
    return delta


def scalar_consolidation(
    holders: Sequence[int], delta_of: Callable[[int], float]
) -> tuple[int, list[int]]:
    """Forced-stay holder and migrating set for one key.

    ``holders`` are the target-side holders (any iteration order);
    ``delta_of`` evaluates :func:`migration_delta` for one of them.
    Returns ``(forced_stay, migrating)`` with ``migrating`` in
    ascending node order — the caller accumulates costs in that order
    so the scalar oracle's float arithmetic stays reproducible.
    """
    # max() keeps the first maximal element, so sorting first makes the
    # tie-break "lowest node id" — matching the vectorized forms, whose
    # entries are sorted by node within each key.
    forced_stay = max(sorted(holders), key=delta_of)
    migrating = [
        i for i in sorted(holders) if i != forced_stay and delta_of(i) < 0
    ]
    return forced_stay, migrating


def segmented_consolidation(
    seg: np.ndarray,
    starts: np.ndarray,
    nodes: np.ndarray,
    delta: np.ndarray,
    has_target: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized consolidation choice over segmented per-entry arrays.

    ``delta`` and ``has_target`` are per entry; ``seg``/``starts``
    delimit the per-key segments.  Returns ``(migrate, stay, dest,
    savings)``: the per-entry migration mask, the per-entry forced-stay
    marker, the per-key default destination (``-1`` when nothing
    migrates), and the per-key summed negative deltas to add onto the
    no-migration base cost.
    """
    num_entries = len(seg)
    stay_score = np.where(has_target, delta, -np.inf)
    maxima = np.maximum.reduceat(stay_score, starts)
    is_max = stay_score == maxima[seg]
    positions = np.arange(num_entries, dtype=np.int64)
    first_pos = np.minimum.reduceat(np.where(is_max, positions, num_entries), starts)
    stay = np.zeros(num_entries, dtype=bool)
    stay[first_pos] = True
    migrate = has_target & ~stay & (delta < 0)
    savings = np.add.reduceat(np.where(migrate, delta, 0.0), starts)
    any_migration = np.logical_or.reduceat(migrate, starts)
    dest = np.where(any_migration, nodes[first_pos], np.int64(-1))
    return migrate, stay, dest, savings


def paired_consolidation(
    delta_a: np.ndarray,
    delta_b: np.ndarray,
    has_t_a: np.ndarray,
    has_t_b: np.ndarray,
    nodes_a: np.ndarray,
    nodes_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Consolidation choice when every key has at most two entries.

    The inputs are per-key arrays for the (up to) two entries ``a`` and
    ``b``; phantom second entries must arrive zero-masked
    (``has_t_b`` False).  Returns ``(migrate_a, migrate_b, stay_is_a,
    dest)`` — the same decisions :func:`segmented_consolidation` makes
    on two-entry segments, without materializing segment ids.
    """
    stay_a = np.where(has_t_a, delta_a, -np.inf)
    stay_b = np.where(has_t_b, delta_b, -np.inf)
    maxima = np.maximum(stay_a, stay_b)
    stay_is_a = stay_a == maxima
    first_b = (stay_b == maxima) & ~stay_is_a
    migrate_a = has_t_a & ~stay_is_a & (delta_a < 0)
    migrate_b = has_t_b & ~first_b & (delta_b < 0)
    any_migration = migrate_a | migrate_b
    dest = np.where(
        any_migration, np.where(stay_is_a, nodes_a, nodes_b), np.int64(-1)
    )
    return migrate_a, migrate_b, stay_is_a, dest


def least_loaded(candidates: np.ndarray, load: np.ndarray) -> int:
    """The least-loaded candidate node; ties go to the lowest node id.

    Any surviving target holder is a cost-equivalent consolidation
    destination (the migration deltas never depend on *which* survivor
    receives the tuples), so load-aware policies are free to pick by
    ``load``.  ``candidates`` must be in ascending node order —
    ``argmin`` keeps the first minimum, making the tie-break match the
    default forced-stay choice.
    """
    return int(candidates[np.argmin(load[candidates])])


def rank_by_load(load: np.ndarray, count: int) -> np.ndarray:
    """The ``count`` least-loaded nodes, ascending by (load, node id).

    Used by heavy-hitter sharding to spread one key's consolidation
    over several destinations deterministically.
    """
    order = np.lexsort((np.arange(len(load)), load))
    return order[: min(count, len(load))]
