"""The tracking phase: discover where every join key's tuples live.

Both inputs are projected to their join key; each node eliminates local
duplicates and sends its distinct keys — optionally with per-node match
counts (3/4-phase) — to the key's scheduling node ``hash(k) mod N``.
The scheduling nodes thereby assemble, for every distinct key, the list
of nodes holding matches on either side, which is the input to per-key
schedule generation.

This module materializes that state as a :class:`TrackingTable`: a flat
"union table" with one row per (key, node) pair that holds at least one
matching tuple on either side, carrying the total matching tuple *size*
per side (count x tuple width, generalizing counts to variable lengths
as the paper prescribes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.network import MessageClass
from ..fastpath import fused_enabled
from ..storage.table import DistributedTable
from ..timing.profile import ExecutionProfile
from ..util import hash_partition, segment_boundaries
from .messages import tracking_message_bytes

__all__ = ["TrackingTable", "run_tracking_phase"]


@dataclass
class TrackingTable:
    """Union of per-node key occurrences across both tables.

    All arrays are parallel and sorted by ``(key, node)``:

    Attributes
    ----------
    keys:
        Join key of the entry.
    nodes:
        Node holding matching tuples of that key.
    size_r, size_s:
        Total matching tuple bytes of each table on that node (0 when
        the node has no tuples of that side).
    key_starts:
        Segment offsets: entries of one distinct key are contiguous.
    t_nodes:
        Scheduling node of each distinct key (parallel to segments).
    """

    keys: np.ndarray
    nodes: np.ndarray
    size_r: np.ndarray
    size_s: np.ndarray
    key_starts: np.ndarray
    t_nodes: np.ndarray

    @property
    def num_entries(self) -> int:
        """Number of (key, node) union rows."""
        return len(self.keys)

    @property
    def num_keys(self) -> int:
        """Number of distinct tracked keys."""
        return len(self.key_starts)

    def distinct_keys(self) -> np.ndarray:
        """The distinct key values, in sorted order."""
        return self.keys[self.key_starts]


def run_tracking_phase(
    cluster: Cluster,
    table_r: DistributedTable,
    table_s: DistributedTable,
    spec,
    profile: ExecutionProfile,
    with_counts: bool = True,
) -> TrackingTable:
    """Execute the tracking phase and assemble the global tracking table.

    Parameters
    ----------
    with_counts:
        3/4-phase track join tracks per-node match counts; 2-phase sends
        bare keys (``False`` drops the count bytes from the traffic).
    """
    num_nodes = cluster.num_nodes
    width_r = table_r.schema.tuple_width(spec.encoding)
    width_s = table_s.schema.tuple_width(spec.encoding)
    key_width = table_r.schema.key_width(spec.encoding)

    fused = fused_enabled()
    sides = (
        ("R", table_r, width_r, spec.count_width_r),
        ("S", table_s, width_s, spec.count_width_s),
    )
    all_keys: list[np.ndarray] = []
    all_nodes: list[np.ndarray] = []
    all_sizes: dict[str, list[np.ndarray]] = {"R": [], "S": []}
    stream_sizes: list[np.ndarray] = []
    stream_nodes: list[int] = []
    r_entries = 0

    def track_partition(task: int):
        """Dedup + scatter one (side, node) partition; returns its stream."""
        side, table, width, count_width = sides[task // num_nodes]
        node = task % num_nodes
        partition = table.partitions[node]
        # Local sort + key aggregation (dedup) before tracking.
        profile.add_cpu_at(
            f"Sort local {side} tuples", "sort", node, partition.num_rows * width
        )
        if fused:
            distinct, counts = partition.distinct_with_counts()
        else:
            distinct, counts = np.unique(partition.keys, return_counts=True)
        profile.add_cpu_at(
            "Aggregate keys", "aggregate", node, partition.num_rows * key_width
        )
        if len(distinct) == 0:
            return None
        sizes = counts.astype(np.float64) * width
        # Ship (key [, count]) entries to each key's scheduling node.
        profile.add_cpu_at(
            "Hash part. keys, counts",
            "partition",
            node,
            len(distinct) * (key_width + (count_width if with_counts else 0)),
        )
        if fused:
            plan = partition.distinct_scatter_plan(num_nodes, spec.hash_seed)
            order, boundaries = plan.order, plan.bounds
        else:
            t_of_key = hash_partition(distinct, num_nodes, spec.hash_seed)
            order = np.argsort(t_of_key, kind="stable")
            boundaries = np.searchsorted(t_of_key[order], np.arange(num_nodes + 1))
        for dst in range(num_nodes):
            rows = order[boundaries[dst] : boundaries[dst + 1]]
            if len(rows) == 0:
                continue
            if fused and not spec.delta_keys:
                # Plain-coded tracking messages are sized purely by
                # entry count; skip materializing the key groups.
                nbytes = len(rows) * key_width + len(rows) * (
                    count_width if with_counts else 0.0
                )
            else:
                nbytes = tracking_message_bytes(
                    distinct[rows],
                    key_width,
                    count_width if with_counts else 0.0,
                    delta_keys=spec.delta_keys,
                )
            cluster.network.send(
                node, dst, MessageClass.KEYS_COUNTS, nbytes, payload=None
            )
            if node == dst:
                profile.add_local("Local copy key, count", node, nbytes)
            else:
                profile.add_net_at("Transfer key, count", node, nbytes)
        return side, node, distinct, sizes

    # One task per (side, node): R partitions first, then S, so the
    # stream assembly below sees the same order as a serial nested loop.
    # task_nodes maps both sides' tasks back to the node they simulate,
    # so crash injection hits each node's R and S work alike.
    streams = cluster.run_phase(
        track_partition,
        tasks=2 * num_nodes,
        profile=profile,
        task_nodes=[task % num_nodes for task in range(2 * num_nodes)],
    )
    for stream in streams:
        if stream is None:
            continue
        side, node, distinct, sizes = stream
        all_keys.append(distinct)
        if fused:
            # The per-stream node id stays scalar until (and unless)
            # the merge below actually needs it expanded.
            stream_nodes.append(node)
            stream_sizes.append(sizes)
            if side == "R":
                r_entries += len(distinct)
        else:
            all_nodes.append(np.full(len(distinct), node, dtype=np.int64))
            all_sizes[side].append(sizes)
            all_sizes["S" if side == "R" else "R"].append(
                np.zeros(len(distinct), dtype=np.float64)
            )

    # Drain the tracking inboxes (payloads carry no data; the union table
    # below is the logically-equivalent global state).
    for _node, _messages in cluster.network.deliver_all():
        pass

    if not all_keys:
        empty = np.empty(0, dtype=np.int64)
        return TrackingTable(empty, empty, empty.astype(float), empty.astype(float), empty, empty)

    if fused:
        # Merge without the zero-padded mirror columns: concatenate one
        # size stream per (side, node), group by (key, node), and sum
        # each side's stream slice into its group with bincount.  Every
        # group receives at most one nonzero contribution per side, so
        # the sums are bit-identical to the padded reduceat form.
        sizes = np.concatenate(stream_sizes)
        # (key, node) lex order via one stable argsort of the packed
        # composite — identical permutation to lexsort((nodes, keys))
        # since nodes < num_nodes, and much faster because the streams
        # are concatenated sorted runs, which timsort's run detection
        # merges without a full sort.  Fall back for keys that overflow
        # the packing.  Each distinct stream is sorted, so its min/max
        # are its endpoints — no full scan.
        min_key = min(int(d[0]) for d in all_keys)
        max_key = max(int(d[-1]) for d in all_keys)
        if min_key >= 0 and max_key < (1 << 62) // num_nodes:
            # Pack per stream: the full keys/nodes entry columns are
            # never materialized, saving their concatenations.  A 32-bit
            # composite halves the sort's value traffic when it fits;
            # the argsort permutation is identical either way.
            if (max_key + 1) * num_nodes <= (1 << 31):
                composite = np.concatenate(
                    [
                        d.astype(np.int32) * num_nodes + n
                        for d, n in zip(all_keys, stream_nodes)
                    ]
                )
            else:
                composite = np.concatenate(
                    [d * num_nodes + n for d, n in zip(all_keys, stream_nodes)]
                )
            # The streams are concatenated sorted runs; timsort's run
            # detection merges them faster than a radix sort here.
            order = np.argsort(composite, kind="stable")
            # The packed composite is injective, so grouping and the
            # merged (key, node) columns all come from its sorted form —
            # one gather instead of separately sorting keys and nodes.
            comp_sorted = composite[order]
            is_new = np.empty(len(comp_sorted), dtype=bool)
            is_new[0] = True
            np.not_equal(comp_sorted[1:], comp_sorted[:-1], out=is_new[1:])
            starts = np.flatnonzero(is_new)
            comp_starts = comp_sorted[starts]
            if num_nodes & (num_nodes - 1) == 0:
                # Power-of-two node counts unpack with shift/mask —
                # exact for the non-negative packed values.
                shift = num_nodes.bit_length() - 1
                merged_keys = comp_starts >> shift
                merged_nodes = comp_starts & (num_nodes - 1)
            else:
                merged_keys = comp_starts // num_nodes
                merged_nodes = comp_starts - merged_keys * num_nodes
            # Restore the table's int64 column contract (no-op copies
            # unless the 32-bit packing was taken).
            merged_keys = merged_keys.astype(np.int64, copy=False)
            merged_nodes = merged_nodes.astype(np.int64, copy=False)
        else:
            keys = np.concatenate(all_keys)
            nodes = np.concatenate(
                [
                    np.full(len(d), n, dtype=np.int64)
                    for d, n in zip(all_keys, stream_nodes)
                ]
            )
            order = np.lexsort((nodes, keys))
            keys = keys[order]
            nodes = nodes[order]
            is_new = np.empty(len(keys), dtype=bool)
            is_new[0] = True
            np.logical_or(
                keys[1:] != keys[:-1], nodes[1:] != nodes[:-1], out=is_new[1:]
            )
            starts = np.flatnonzero(is_new)
            merged_keys = keys[starts]
            merged_nodes = nodes[starts]
        # 1-based group ids skip the extra full-length subtraction; the
        # unused bin 0 is sliced away after the sums.
        group_of_entry = np.empty(len(order), dtype=np.int64)
        group_of_entry[order] = np.cumsum(is_new)
        merged_r = np.bincount(
            group_of_entry[:r_entries],
            weights=sizes[:r_entries],
            minlength=len(starts) + 1,
        )[1:]
        merged_s = np.bincount(
            group_of_entry[r_entries:],
            weights=sizes[r_entries:],
            minlength=len(starts) + 1,
        )[1:]
    else:
        keys = np.concatenate(all_keys)
        nodes = np.concatenate(all_nodes)
        size_r = np.concatenate(all_sizes["R"])
        size_s = np.concatenate(all_sizes["S"])

        # Merge R and S entries of the same (key, node) into union rows.
        order = np.lexsort((nodes, keys))
        keys, nodes, size_r, size_s = keys[order], nodes[order], size_r[order], size_s[order]
        is_new = np.empty(len(keys), dtype=bool)
        is_new[0] = True
        np.logical_or(keys[1:] != keys[:-1], nodes[1:] != nodes[:-1], out=is_new[1:])
        starts = np.flatnonzero(is_new)
        merged_keys = keys[starts]
        merged_nodes = nodes[starts]
        merged_r = np.add.reduceat(size_r, starts)
        merged_s = np.add.reduceat(size_s, starts)

    key_starts = segment_boundaries(merged_keys)
    t_nodes = hash_partition(merged_keys[key_starts], num_nodes, spec.hash_seed)

    # Receiving T nodes merge the incoming sorted (key, count) streams.
    entry_bytes = key_width + spec.count_width_r  # footprint per union entry
    entries_per_key = np.diff(np.append(key_starts, len(merged_keys)))
    if fused and float(entry_bytes).is_integer():
        # count x width instead of summing a constant per entry: exact
        # for integer widths (every partial sum is an exact integer far
        # below 2**53), and skips the 1:1 repeat expansion.
        per_tnode = (
            np.bincount(
                t_nodes,
                weights=entries_per_key.astype(np.float64),
                minlength=num_nodes,
            )
            * entry_bytes
        )
    else:
        per_tnode = np.bincount(
            np.repeat(t_nodes, entries_per_key),
            weights=np.full(len(merged_keys), entry_bytes),
            minlength=num_nodes,
        )
    profile.add_cpu("Merge recv. key, count", "merge", per_tnode)

    return TrackingTable(
        keys=merged_keys,
        nodes=merged_nodes,
        size_r=merged_r,
        size_s=merged_s,
        key_starts=key_starts,
        t_nodes=t_nodes,
    )
