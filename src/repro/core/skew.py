"""Heavy-hitter sharding: skew-resistant 4-phase track join.

Track join's per-key optimum consolidates a key at a *single* node
(Theorem 1): the migrating side's tuples move there, and the broadcast
side converges on the survivors.  Under heavy skew that optimum is the
problem — a hot key's bytes (both sides) pile onto one destination, so
minimal total traffic comes with a maximal per-node peak
(:attr:`~repro.cluster.network.TrafficLedger.max_received_bytes`).

:class:`SkewShardTrackJoin` trades a bounded amount of replication for
a flat load profile.  Keys that the optimal plan consolidates and whose
combined bytes exceed ``hot_fraction`` of the total tracked bytes are
*sharded*: their larger side is dealt row-wise across several
destinations (:class:`~repro.exchange.migrate.ShardedMigrate`) picked
least-loaded first (:func:`~repro.core.destinations.rank_by_load`), and
the smaller side replicates to every shard so each output pair is still
produced exactly once.  Dealing the larger side may flip the key's
broadcast direction — replication is paid once per shard, so the
replicated side must be the cheap one.  Cold keys keep their
traffic-optimal schedule untouched: with no hot keys the plan (and
therefore the byte ledger) is identical to plain
:class:`~repro.core.track_join.TrackJoin4`.

The planner is exact, not sketched: tracking already delivers per-key,
per-node byte counts to the scheduling nodes, so hot keys are read off
the tracked sizes directly.  The sketch-based detector
(:func:`repro.costmodel.histogram.heavy_hitters`) serves the cost model
before execution, when only samples exist.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..cluster.cluster import Cluster
from ..errors import ValidationError
from ..joins.base import JoinSpec
from ..util import segment_ids
from .destinations import rank_by_load
from .schedule import ScheduleSet, generate_schedules
from .track_join import TrackJoin4
from .tracking import TrackingTable

__all__ = ["SkewShardTrackJoin", "ShardPlan", "plan_shards", "attach_shards"]


@dataclass
class ShardPlan:
    """Shard destinations for the heavy hitters of one schedule set."""

    #: Per key: True when the key is sharded.
    sharded: np.ndarray
    #: CSR offsets into ``dests``, length ``num_keys + 1``.
    offsets: np.ndarray
    #: Concatenated shard destination node lists.
    dests: np.ndarray
    #: Per key: broadcast direction after sharding (sharding deals the
    #: larger side, which may flip the traffic-optimal direction).
    direction_rs: np.ndarray


def plan_shards(
    tracking: TrackingTable,
    schedules: ScheduleSet,
    num_nodes: int,
    hot_fraction: float = 0.05,
    max_shards: int | None = None,
    seg: np.ndarray | None = None,
) -> ShardPlan | None:
    """Pick shard destinations for the heavy hitters of a schedule set.

    A key is *hot* when the optimal plan consolidates it
    (``dest_node >= 0``) and its combined tracked bytes exceed
    ``hot_fraction`` of the total — exactly the keys whose bytes the
    single-destination optimum piles onto one node.  A hot key's larger
    side is split over ``ceil(larger_bytes / (hot_fraction *
    total_bytes))`` shards (capped at ``min(num_nodes, max_shards)``),
    assigned least-loaded first against the cold keys' estimated
    per-node received bytes.  Hot keys are placed in descending
    combined-size order so the largest key gets the emptiest nodes; the
    order (and hence the plan) is deterministic.

    Returns a :class:`ShardPlan`, or ``None`` when no key qualifies (or
    the cluster cannot split: fewer than two nodes).
    """
    if num_nodes < 2 or tracking.num_entries == 0:
        return None
    starts = tracking.key_starts
    if seg is None:
        seg = segment_ids(starts, tracking.num_entries)
    size_r, size_s = tracking.size_r, tracking.size_s
    r_all = np.add.reduceat(size_r, starts)
    s_all = np.add.reduceat(size_s, starts)
    total = float(size_r.sum() + size_s.sum())
    if total <= 0.0:
        return None

    hot = (schedules.dest_node >= 0) & (r_all + s_all > hot_fraction * total)
    if not hot.any():
        return None

    # Sharded keys deal their larger side: the dealt side is paid once,
    # the replicated side once *per shard*, so replicate the cheap one.
    direction_rs = np.where(hot, s_all >= r_all, schedules.direction_rs)
    t_all = np.where(direction_rs, s_all, r_all)
    b_all = np.where(direction_rs, r_all, s_all)
    cap = num_nodes if max_shards is None else min(num_nodes, max_shards)
    num_shards = np.clip(
        np.ceil(t_all / (hot_fraction * total)).astype(np.int64), 2, cap
    )

    # Estimated received bytes per node under the *cold* keys' plan:
    # every surviving target holder receives the broadcast side's
    # remote bytes, and each migration destination the moved bytes.
    dir_e = schedules.direction_rs[seg]
    size_b = np.where(dir_e, size_r, size_s)
    size_t = np.where(dir_e, size_s, size_r)
    cold_b_all = np.where(schedules.direction_rs, r_all, s_all)
    surv = (size_t > 0) & ~schedules.migrate & ~hot[seg]
    recv = cold_b_all[seg] - size_b
    load = np.zeros(num_nodes)
    np.add.at(load, tracking.nodes[surv], recv[surv])
    migbytes = np.add.reduceat(np.where(schedules.migrate, size_t, 0.0), starts)
    cold_mig = np.flatnonzero((schedules.dest_node >= 0) & ~hot)
    np.add.at(load, schedules.dest_node[cold_mig], migbytes[cold_mig])

    # Largest hot keys first (ties broken by key index via the stable
    # lexsort), each taking the currently least-loaded nodes.
    hot_keys = np.flatnonzero(hot)
    order = hot_keys[np.lexsort((hot_keys, -(r_all + s_all)[hot_keys]))]
    offsets = np.zeros(tracking.num_keys + 1, dtype=np.int64)
    offsets[1:] = np.cumsum(np.where(hot, num_shards, 0))
    dests = np.empty(offsets[-1], dtype=np.int64)
    for key in order:
        chosen = rank_by_load(load, int(num_shards[key]))
        dests[offsets[key] : offsets[key + 1]] = chosen
        # Each shard absorbs its deal of the dealt side plus a full
        # replica of the broadcast side.
        load[chosen] += t_all[key] / len(chosen) + b_all[key]
    return ShardPlan(hot, offsets, dests, direction_rs)


def attach_shards(
    schedules: ScheduleSet,
    plan: ShardPlan | None,
    seg: np.ndarray | None = None,
) -> ScheduleSet:
    """Graft a shard plan onto a schedule set.

    Sharded keys leave the single-destination machinery entirely: their
    ``migrate`` bits and ``dest_node`` are cleared so Phase A's plain
    migrations and Phase B's tracked-entry broadcasts skip them, their
    direction follows the plan, and the sharding arrays take over.
    ``plan=None`` returns the input unchanged.
    """
    if plan is None:
        return schedules
    tracking = schedules.tracking
    if seg is None:
        seg = segment_ids(tracking.key_starts, tracking.num_entries)
    return replace(
        schedules,
        direction_rs=plan.direction_rs,
        migrate=schedules.migrate & ~plan.sharded[seg],
        dest_node=np.where(plan.sharded, -1, schedules.dest_node),
        sharded=plan.sharded,
        shard_offsets=plan.offsets,
        shard_dests=plan.dests,
    )


class SkewShardTrackJoin(TrackJoin4):
    """4-phase track join with heavy-hitter sharding.

    Parameters
    ----------
    hot_fraction:
        A consolidating key is sharded when its combined tracked bytes
        exceed this fraction of the total; it also sizes the shards
        (each shard's deal targets at most ``hot_fraction`` of the
        total).
    max_shards:
        Optional cap on shards per key (default: the node count).
    """

    name = "4TJ-shard"

    def __init__(self, hot_fraction: float = 0.05, max_shards: int | None = None):
        if not 0.0 < hot_fraction <= 1.0:
            raise ValidationError(
                f"hot_fraction must be in (0, 1], got {hot_fraction}"
            )
        self.hot_fraction = float(hot_fraction)
        self.max_shards = max_shards

    def _make_schedules(
        self,
        cluster: Cluster,
        tracking: TrackingTable,
        spec: JoinSpec,
        location_width: float,
        seg: np.ndarray,
    ) -> ScheduleSet:
        schedules = generate_schedules(
            tracking, location_width=location_width, allow_migration=True, seg=seg
        )
        plan = plan_shards(
            tracking,
            schedules,
            cluster.num_nodes,
            hot_fraction=self.hot_fraction,
            max_shards=self.max_shards,
            seg=seg,
        )
        return attach_shards(schedules, plan, seg=seg)
