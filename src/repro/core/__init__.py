"""Track join core: tracking, per-key schedule generation, operators."""

from .balance import BalanceAwareTrackJoin
from .messages import location_message_bytes, tracking_message_bytes
from .schedule import (
    BroadcastPlan,
    KeySchedule,
    ScheduleSet,
    both_direction_plans,
    generate_schedules,
    migrate_and_broadcast,
    optimal_schedule,
    selective_broadcast_cost,
)
from .skew import ShardPlan, SkewShardTrackJoin, attach_shards, plan_shards
from .track_join import TrackJoin2, TrackJoin3, TrackJoin4
from .tracking import TrackingTable, run_tracking_phase

__all__ = [
    "TrackJoin2",
    "TrackJoin3",
    "TrackJoin4",
    "BalanceAwareTrackJoin",
    "SkewShardTrackJoin",
    "ShardPlan",
    "plan_shards",
    "attach_shards",
    "both_direction_plans",
    "TrackingTable",
    "run_tracking_phase",
    "BroadcastPlan",
    "KeySchedule",
    "ScheduleSet",
    "selective_broadcast_cost",
    "migrate_and_broadcast",
    "optimal_schedule",
    "generate_schedules",
    "tracking_message_bytes",
    "location_message_bytes",
]
