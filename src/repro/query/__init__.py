"""Query plans over distributed tables: scans, joins, aggregation."""

from .aggregate import AggregateSpec, AggregationResult, run_aggregation
from .executor import (
    OperatorStats,
    PhysicalPlan,
    QueryResult,
    RunContext,
    compile_plan,
    execute,
    rekey_table,
    table_stats,
)
from .plan import Aggregate, Join, PlanNode, Rekey, Scan
from .predicates import And, ColumnPredicate, Or, Predicate
from .starplan import star_plan

__all__ = [
    "Scan",
    "Join",
    "Aggregate",
    "Rekey",
    "star_plan",
    "rekey_table",
    "PlanNode",
    "execute",
    "compile_plan",
    "PhysicalPlan",
    "RunContext",
    "QueryResult",
    "OperatorStats",
    "table_stats",
    "AggregateSpec",
    "AggregationResult",
    "run_aggregation",
    "Predicate",
    "ColumnPredicate",
    "And",
    "Or",
]
