"""Selection predicates over distributed table columns.

The paper's expensive queries "apply selections on 4 [relations]"
before joining; input selectivity (``sR``/``sS``) is also a first-class
term of the Section 3 cost model.  Predicates here are simple,
vectorized column comparisons that plan scans push down to every
partition — selections are node-local and generate no network traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..storage.table import LocalPartition

__all__ = ["Predicate", "ColumnPredicate", "And", "Or"]

_OPS = {
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


class Predicate:
    """Base predicate: maps a partition to a boolean keep-mask."""

    def mask(self, partition: LocalPartition) -> np.ndarray:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)


@dataclass(frozen=True)
class ColumnPredicate(Predicate):
    """Compare one column against a constant.

    ``column`` may name a payload column or ``"key"`` for the join key.
    """

    column: str
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ReproError(f"unknown predicate operator {self.op!r}; use {sorted(_OPS)}")

    def _column_values(self, partition: LocalPartition) -> np.ndarray:
        if self.column == "key":
            return partition.keys
        if self.column not in partition.columns:
            raise ReproError(
                f"predicate references unknown column {self.column!r}; "
                f"partition has {sorted(partition.columns)}"
            )
        return partition.columns[self.column]

    def mask(self, partition: LocalPartition) -> np.ndarray:
        return _OPS[self.op](self._column_values(partition), self.value)


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of two predicates."""

    left: Predicate
    right: Predicate

    def mask(self, partition: LocalPartition) -> np.ndarray:
        return self.left.mask(partition) & self.right.mask(partition)


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of two predicates."""

    left: Predicate
    right: Predicate

    def mask(self, partition: LocalPartition) -> np.ndarray:
        return self.left.mask(partition) | self.right.mask(partition)
