"""Query plan execution over the simulated cluster.

Walks a :mod:`repro.query.plan` tree bottom-up: scans filter locally,
joins run one of the distributed operators (picked by the Section 3
cost model when ``algorithm="auto"``), and aggregation finishes with
the two-phase group-by.  Intermediate results stay distributed; the
executor threads traffic ledgers through so the returned
:class:`QueryResult` accounts every byte of the whole query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.network import TrafficLedger
from ..core.track_join import TrackJoin2, TrackJoin3, TrackJoin4
from ..costmodel.optimizer import choose_algorithm
from ..costmodel.stats import JoinStats
from ..errors import ReproError
from ..joins.base import DistributedJoin, JoinResult, JoinSpec
from ..joins.broadcast import BroadcastJoin
from ..joins.grace_hash import GraceHashJoin
from ..joins.semijoin import SemiJoinFilteredJoin
from ..storage.schema import Column, Schema
from ..storage.table import DistributedTable, LocalPartition
from .aggregate import run_aggregation
from .plan import Aggregate, Join, PlanNode, Rekey, Scan

__all__ = ["QueryResult", "OperatorStats", "execute", "table_stats", "rekey_table"]

_ALGORITHMS: dict[str, callable] = {
    "HJ": GraceHashJoin,
    "BJ-R": lambda: BroadcastJoin("R"),
    "BJ-S": lambda: BroadcastJoin("S"),
    "2TJ-R": lambda: TrackJoin2("RS"),
    "2TJ-S": lambda: TrackJoin2("SR"),
    "3TJ": TrackJoin3,
    "4TJ": TrackJoin4,
}


@dataclass
class OperatorStats:
    """One executed operator's contribution to the query."""

    operator: str
    output_rows: int
    network_bytes: float
    note: str = ""


@dataclass
class QueryResult:
    """Final table plus the query-wide traffic accounting."""

    table: DistributedTable
    traffic: TrafficLedger
    operators: list[OperatorStats] = field(default_factory=list)

    @property
    def network_bytes(self) -> float:
        """Total bytes the whole query moved across the network."""
        return self.traffic.total_bytes

    @property
    def output_rows(self) -> int:
        """Rows of the final result."""
        return self.table.total_rows


def table_stats(
    table_r: DistributedTable,
    table_s: DistributedTable,
    spec: JoinSpec,
    sample_rate: float | None = None,
) -> JoinStats:
    """Join statistics measured from two distributed tables.

    With ``sample_rate`` set, statistics come from a key-correlated
    sample (the Section 3.1 technique a real optimizer would use);
    otherwise they are exact, isolating the algorithm-choice logic
    from estimation error.
    """
    keys_r = table_r.all_keys()
    keys_s = table_s.all_keys()
    if sample_rate is not None:
        from ..costmodel.sampling import _sample_mask

        keys_r = keys_r[_sample_mask(keys_r, sample_rate)]
        keys_s = keys_s[_sample_mask(keys_s, sample_rate)]
        if len(keys_r) == 0 or len(keys_s) == 0:
            keys_r = table_r.all_keys()
            keys_s = table_s.all_keys()
            sample_rate = None
    distinct_r = np.unique(keys_r)
    distinct_s = np.unique(keys_s)
    matched = np.intersect1d(distinct_r, distinct_s, assume_unique=True)
    if len(keys_r) and len(matched):
        selectivity_r = float(np.isin(keys_r, matched).mean())
    else:
        selectivity_r = 0.0
    if len(keys_s) and len(matched):
        selectivity_s = float(np.isin(keys_s, matched).mean())
    else:
        selectivity_s = 0.0
    inflate = 1.0 / sample_rate if sample_rate else 1.0
    return JoinStats(
        num_nodes=table_r.num_nodes,
        tuples_r=max(1, len(keys_r)) * inflate,
        tuples_s=max(1, len(keys_s)) * inflate,
        distinct_r=max(1, len(distinct_r)) * inflate,
        distinct_s=max(1, len(distinct_s)) * inflate,
        key_width=table_r.schema.key_width(spec.encoding),
        payload_r=table_r.schema.payload_width(spec.encoding),
        payload_s=table_s.schema.payload_width(spec.encoding),
        selectivity_r=selectivity_r,
        selectivity_s=selectivity_s,
        location_width=spec.location_width,
    )


def _output_column_defs(
    left: DistributedTable, right: DistributedTable
) -> tuple[Column, dict[str, Column]]:
    """Column definitions of a join output: key + prefixed payloads."""
    key_column = left.schema.key_columns[0]
    defs: dict[str, Column] = {}
    for column in left.schema.payload_columns:
        defs["r." + column.name] = Column(
            "r." + column.name,
            bits=column.bits,
            decimal_digits=column.decimal_digits,
            char_length=column.char_length,
        )
    for column in right.schema.payload_columns:
        defs["s." + column.name] = Column(
            "s." + column.name,
            bits=column.bits,
            decimal_digits=column.decimal_digits,
            char_length=column.char_length,
        )
    return key_column, defs


def _join_output_table(
    result: JoinResult,
    left: DistributedTable,
    right: DistributedTable,
    rekey_on: str | None,
) -> DistributedTable:
    """Package a join's output partitions as a distributed table."""
    key_column, defs = _output_column_defs(left, right)
    if result.output is None:
        raise ReproError("query joins need materialize=True in the JoinSpec")
    if rekey_on is None:
        schema = Schema((key_column,), tuple(defs.values()))
        return DistributedTable(f"({left.name}⋈{right.name})", schema, result.output)
    if rekey_on not in defs:
        raise ReproError(
            f"cannot re-key join output on {rekey_on!r}; columns: {sorted(defs)}"
        )
    new_key = defs.pop(rekey_on)
    old_key_name = key_column.name
    payload = (Column(old_key_name, bits=key_column.bits,
                      decimal_digits=key_column.decimal_digits,
                      char_length=key_column.char_length),) + tuple(defs.values())
    schema = Schema((new_key,), payload)
    partitions = []
    for partition in result.output:
        columns = dict(partition.columns)
        new_keys = columns.pop(rekey_on)
        columns[old_key_name] = partition.keys
        partitions.append(LocalPartition(keys=new_keys, columns=columns))
    return DistributedTable(f"({left.name}⋈{right.name})", schema, partitions)


def rekey_table(table: DistributedTable, column: str) -> DistributedTable:
    """Re-key a distributed table on one of its payload columns.

    Node-local: rows stay where they are; only the schema's notion of
    the join key changes, with the old key demoted to a payload column.
    """
    matches = [c for c in table.schema.payload_columns if c.name == column]
    if not matches:
        raise ReproError(
            f"cannot re-key {table.name!r} on unknown column {column!r}; "
            f"payload columns: {[c.name for c in table.schema.payload_columns]}"
        )
    new_key = matches[0]
    old_key = table.schema.key_columns[0]
    payload = (old_key,) + tuple(
        c for c in table.schema.payload_columns if c.name != column
    )
    schema = Schema((new_key,), payload)
    partitions = []
    for partition in table.partitions:
        columns = dict(partition.columns)
        new_keys = columns.pop(column)
        columns[old_key.name] = partition.keys
        partitions.append(LocalPartition(keys=new_keys, columns=columns))
    return DistributedTable(f"rekey({table.name},{column})", schema, partitions)


def _execute_scan(node: Scan, cluster: Cluster) -> tuple[DistributedTable, OperatorStats]:
    cluster.check_table(node.table)
    if node.predicate is None:
        stats = OperatorStats("scan", node.table.total_rows, 0.0)
        return node.table, stats
    partitions = [
        partition.take(node.predicate.mask(partition))
        for partition in node.table.partitions
    ]
    filtered = DistributedTable(f"σ({node.table.name})", node.table.schema, partitions)
    kept = filtered.total_rows
    selectivity = kept / node.table.total_rows if node.table.total_rows else 0.0
    stats = OperatorStats(
        "scan+filter", kept, 0.0, note=f"selectivity {selectivity:.3f}"
    )
    return filtered, stats


def execute(plan: PlanNode, cluster: Cluster, spec: JoinSpec | None = None) -> QueryResult:
    """Execute a plan tree and return the final table with accounting."""
    spec = spec or JoinSpec()
    if not spec.materialize:
        raise ReproError("query execution requires materialize=True")

    if isinstance(plan, Scan):
        table, stats = _execute_scan(plan, cluster)
        return QueryResult(table=table, traffic=TrafficLedger(), operators=[stats])

    if isinstance(plan, Join):
        left = execute(plan.left, cluster, spec)
        right = execute(plan.right, cluster, spec)
        if plan.algorithm == "auto":
            stats = table_stats(left.table, right.table, spec)
            choice = choose_algorithm(stats)
            algorithm_name = choice.algorithm
            note = f"auto: {choice.algorithm}"
            if choice.note:
                note += f" ({choice.note})"
        elif plan.algorithm in _ALGORITHMS:
            algorithm_name = plan.algorithm
            note = "fixed"
        else:
            raise ReproError(
                f"unknown join algorithm {plan.algorithm!r}; "
                f"use 'auto' or one of {sorted(_ALGORITHMS)}"
            )
        operator: DistributedJoin = _ALGORITHMS[algorithm_name]()
        if plan.semijoin_filter:
            operator = SemiJoinFilteredJoin(operator)
        result = operator.run(cluster, left.table, right.table, spec)
        out_table = _join_output_table(result, left.table, right.table, plan.rekey_on)
        traffic = left.traffic.merged_with(right.traffic).merged_with(result.traffic)
        operators = (
            left.operators
            + right.operators
            + [
                OperatorStats(
                    f"join[{operator.name}]",
                    result.output_rows,
                    result.network_bytes,
                    note=note,
                )
            ]
        )
        return QueryResult(table=out_table, traffic=traffic, operators=operators)

    if isinstance(plan, Rekey):
        child = execute(plan.child, cluster, spec)
        table = rekey_table(child.table, plan.column)
        operators = child.operators + [
            OperatorStats("rekey", table.total_rows, 0.0, note=f"on {plan.column}")
        ]
        return QueryResult(table=table, traffic=child.traffic, operators=operators)

    if isinstance(plan, Aggregate):
        child = execute(plan.child, cluster, spec)
        aggregated = run_aggregation(cluster, child.table, plan.aggregates, spec)
        traffic = child.traffic.merged_with(aggregated.traffic)
        operators = child.operators + [
            OperatorStats(
                "aggregate",
                aggregated.table.total_rows,
                aggregated.network_bytes,
            )
        ]
        return QueryResult(table=aggregated.table, traffic=traffic, operators=operators)

    raise ReproError(f"unknown plan node type: {type(plan).__name__}")
