"""Query execution: logical plans compiled to a physical-operator pipeline.

Execution happens in two stages.  :func:`compile_plan` linearizes a
:mod:`repro.query.plan` tree into a :class:`PhysicalPlan` — a post-order
list of physical operators wired by input indices.  The plan then runs
as a pipeline: every operator goes through an explicit lifecycle of

- ``plan``    — pre-execution decisions: algorithm choice via the
  Section 3 cost model (with per-operator statistics caching) for
  ``algorithm="auto"`` joins;
- ``execute`` — produce the operator's distributed output table
  (joins construct their operator through the registry,
  :mod:`repro.joins.registry`);
- ``account`` — fold the operator's traffic into the query ledger and
  record its :class:`OperatorStats` row.

Intermediate results stay distributed, and the returned
:class:`QueryResult` accounts every byte of the whole query.  The
split lifecycle is what plan-level features hang off: operator
statistics are cached on the run context, ``Rekey``-into-``Join``
fusion is a compile-time rewrite (``fuse_rekey=True``), and a future
adaptive re-choice can re-enter ``plan`` mid-pipeline.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.network import MessageClass, TrafficLedger
from ..costmodel.optimizer import choose_algorithm, fallback_algorithm
from ..costmodel.stats import JoinStats, stats_epoch
from ..errors import FaultExhaustedError, QueryTimeoutError, ReproError
from ..joins.base import JoinResult, JoinSpec
from ..joins.registry import algorithm, algorithm_names, create
from ..joins.semijoin import SemiJoinFilteredJoin
from ..parallel.executor import PhaseExecutor
from ..storage.schema import Column, Schema
from ..storage.table import DistributedTable, LocalPartition
from ..timing.clock import wall_clock
from ..timing.profile import ExecutionProfile
from .aggregate import run_aggregation
from .plan import Aggregate, Join, PlanNode, Rekey, Scan

__all__ = [
    "QueryResult",
    "OperatorStats",
    "PhysicalPlan",
    "RunContext",
    "compile_plan",
    "execute",
    "table_stats",
    "rekey_table",
]


@dataclass
class OperatorStats:
    """One executed operator's contribution to the query."""

    operator: str
    output_rows: int
    network_bytes: float
    note: str = ""


@dataclass
class QueryResult:
    """Final table plus the query-wide traffic accounting."""

    table: DistributedTable
    traffic: TrafficLedger
    operators: list[OperatorStats] = field(default_factory=list)
    #: Execution profiles of the traffic-producing operators, in
    #: execution order (one per join/aggregate).  Their deterministic
    #: step lists let callers prove a concurrent run matched a solo run.
    profiles: list[ExecutionProfile] = field(default_factory=list)

    @property
    def network_bytes(self) -> float:
        """Total bytes the whole query moved across the network."""
        return self.traffic.total_bytes

    @property
    def output_rows(self) -> int:
        """Rows of the final result."""
        return self.table.total_rows


def table_stats(
    table_r: DistributedTable,
    table_s: DistributedTable,
    spec: JoinSpec,
    sample_rate: float | None = None,
) -> JoinStats:
    """Join statistics measured from two distributed tables.

    With ``sample_rate`` set, statistics come from a key-correlated
    sample (the Section 3.1 technique a real optimizer would use);
    otherwise they are exact, isolating the algorithm-choice logic
    from estimation error.
    """
    keys_r = table_r.all_keys()
    keys_s = table_s.all_keys()
    if sample_rate is not None:
        from ..costmodel.sampling import _sample_mask

        keys_r = keys_r[_sample_mask(keys_r, sample_rate)]
        keys_s = keys_s[_sample_mask(keys_s, sample_rate)]
        if len(keys_r) == 0 or len(keys_s) == 0:
            keys_r = table_r.all_keys()
            keys_s = table_s.all_keys()
            sample_rate = None
    distinct_r = np.unique(keys_r)
    distinct_s = np.unique(keys_s)
    matched = np.intersect1d(distinct_r, distinct_s, assume_unique=True)
    if len(keys_r) and len(matched):
        selectivity_r = float(np.isin(keys_r, matched).mean())
    else:
        selectivity_r = 0.0
    if len(keys_s) and len(matched):
        selectivity_s = float(np.isin(keys_s, matched).mean())
    else:
        selectivity_s = 0.0
    inflate = 1.0 / sample_rate if sample_rate else 1.0
    return JoinStats(
        num_nodes=table_r.num_nodes,
        tuples_r=max(1, len(keys_r)) * inflate,
        tuples_s=max(1, len(keys_s)) * inflate,
        distinct_r=max(1, len(distinct_r)) * inflate,
        distinct_s=max(1, len(distinct_s)) * inflate,
        key_width=table_r.schema.key_width(spec.encoding),
        payload_r=table_r.schema.payload_width(spec.encoding),
        payload_s=table_s.schema.payload_width(spec.encoding),
        selectivity_r=selectivity_r,
        selectivity_s=selectivity_s,
        location_width=spec.location_width,
    )


def _output_column_defs(
    left: DistributedTable, right: DistributedTable
) -> tuple[Column, dict[str, Column]]:
    """Column definitions of a join output: key + prefixed payloads."""
    key_column = left.schema.key_columns[0]
    defs: dict[str, Column] = {}
    for column in left.schema.payload_columns:
        defs["r." + column.name] = Column(
            "r." + column.name,
            bits=column.bits,
            decimal_digits=column.decimal_digits,
            char_length=column.char_length,
        )
    for column in right.schema.payload_columns:
        defs["s." + column.name] = Column(
            "s." + column.name,
            bits=column.bits,
            decimal_digits=column.decimal_digits,
            char_length=column.char_length,
        )
    return key_column, defs


def _join_output_table(
    result: JoinResult,
    left: DistributedTable,
    right: DistributedTable,
    rekey_on: str | None,
) -> DistributedTable:
    """Package a join's output partitions as a distributed table."""
    key_column, defs = _output_column_defs(left, right)
    if result.output is None:
        raise ReproError("query joins need materialize=True in the JoinSpec")
    if rekey_on is None:
        schema = Schema((key_column,), tuple(defs.values()))
        return DistributedTable(f"({left.name}⋈{right.name})", schema, result.output)
    if rekey_on not in defs:
        raise ReproError(
            f"cannot re-key join output on {rekey_on!r}; columns: {sorted(defs)}"
        )
    new_key = defs.pop(rekey_on)
    old_key_name = key_column.name
    payload = (Column(old_key_name, bits=key_column.bits,
                      decimal_digits=key_column.decimal_digits,
                      char_length=key_column.char_length),) + tuple(defs.values())
    schema = Schema((new_key,), payload)
    partitions = []
    for partition in result.output:
        columns = dict(partition.columns)
        new_keys = columns.pop(rekey_on)
        columns[old_key_name] = partition.keys
        partitions.append(LocalPartition(keys=new_keys, columns=columns))
    return DistributedTable(f"({left.name}⋈{right.name})", schema, partitions)


def rekey_table(table: DistributedTable, column: str) -> DistributedTable:
    """Re-key a distributed table on one of its payload columns.

    Node-local: rows stay where they are; only the schema's notion of
    the join key changes, with the old key demoted to a payload column.
    """
    matches = [c for c in table.schema.payload_columns if c.name == column]
    if not matches:
        raise ReproError(
            f"cannot re-key {table.name!r} on unknown column {column!r}; "
            f"payload columns: {[c.name for c in table.schema.payload_columns]}"
        )
    new_key = matches[0]
    old_key = table.schema.key_columns[0]
    payload = (old_key,) + tuple(
        c for c in table.schema.payload_columns if c.name != column
    )
    schema = Schema((new_key,), payload)
    partitions = []
    for partition in table.partitions:
        columns = dict(partition.columns)
        new_keys = columns.pop(column)
        columns[old_key.name] = partition.keys
        partitions.append(LocalPartition(keys=new_keys, columns=columns))
    return DistributedTable(f"rekey({table.name},{column})", schema, partitions)


# ---------------------------------------------------------------------------
# Physical operators
# ---------------------------------------------------------------------------


@dataclass
class ExecutionContext:
    """Per-run state threaded through the operator lifecycle.

    Every mutable per-run value lives here, never on the physical
    operators themselves: a compiled :class:`PhysicalPlan` is an
    immutable artifact that many concurrent runs (each with its own
    context) may execute at once — the plan-cache contract.  Operators
    pass state between their lifecycle steps through :meth:`state`.
    """

    cluster: Cluster
    spec: JoinSpec
    #: Output table of each executed operator, by operator index.
    tables: dict[int, DistributedTable] = field(default_factory=dict)
    #: Query-wide ledger; each operator folds its traffic in at account.
    traffic: TrafficLedger = field(default_factory=TrafficLedger)
    #: OperatorStats rows in execution (post-)order.
    operators: list[OperatorStats] = field(default_factory=list)
    #: Cached join statistics by operator index, so a re-entered plan
    #: step (or a future adaptive re-choice) never re-measures.  A
    #: :class:`RunContext` may supply this dict, making the cache
    #: survive across reruns of the same compiled plan.
    join_stats: dict[int, JoinStats] = field(default_factory=dict)
    #: Per-operator scratch (plan -> execute -> account hand-off),
    #: keyed by operator index.
    scratch: dict[int, dict] = field(default_factory=dict)
    #: Execution profiles of traffic-producing operators, in order.
    profiles: list[ExecutionProfile] = field(default_factory=list)
    #: Optional wall-clock deadline; checked at operator boundaries.
    deadline: float | None = None

    def state(self, index: int) -> dict:
        """This run's scratch dict for the operator at ``index``."""
        return self.scratch.setdefault(index, {})


@dataclass
class RunContext:
    """Reusable cross-run state for a compiled plan.

    A cached :class:`PhysicalPlan` is re-executed many times; this
    object carries what later runs can skip re-deriving:

    - ``executor`` — a warm :class:`~repro.parallel.executor.PhaseExecutor`
      (typically leased from a :class:`repro.serve.WarmExecutorPool`)
      installed on the cluster for the duration of the run, so no run
      ever re-resolves or respawns a worker pool;
    - ``join_stats`` — measured per-operator :class:`JoinStats`, shared
      across runs so a cached-plan rerun skips the full-table statistics
      pass.  The dict is invalidated automatically whenever any scanned
      table's statistics epoch moves.
    - ``deadline`` — per-run wall-clock deadline (this field is *not*
      cross-run; the owner sets it before each run).
    """

    executor: PhaseExecutor | None = None
    join_stats: dict[int, JoinStats] = field(default_factory=dict)
    deadline: float | None = None
    #: Epoch of every scanned table when ``join_stats`` was measured;
    #: maintained by :meth:`PhysicalPlan.run`.
    epoch_signature: tuple | None = None


class PhysicalOperator(abc.ABC):
    """One pipeline stage with a plan → execute → account lifecycle.

    Operators are immutable after compilation: per-run values flow
    through ``ctx.state(self.index)`` so one compiled plan can serve
    concurrent runs (see :class:`ExecutionContext`).
    """

    def __init__(self, index: int, inputs: tuple[int, ...]):
        self.index = index
        self.inputs = inputs

    def plan(self, ctx: ExecutionContext) -> None:
        """Pre-execution decisions; default operators have none."""

    @abc.abstractmethod
    def execute(self, ctx: ExecutionContext) -> None:
        """Produce this operator's table into ``ctx.tables[self.index]``."""

    @abc.abstractmethod
    def account(self, ctx: ExecutionContext) -> None:
        """Fold traffic and stats of the finished execution into ``ctx``."""


class ScanOp(PhysicalOperator):
    """Table scan with an optional node-local selection."""

    def __init__(self, index: int, node: Scan):
        super().__init__(index, ())
        self.node = node

    def execute(self, ctx: ExecutionContext) -> None:
        node = self.node
        state = ctx.state(self.index)
        ctx.cluster.check_table(node.table)
        if node.predicate is None:
            ctx.tables[self.index] = node.table
            state["stats"] = OperatorStats("scan", node.table.total_rows, 0.0)
            return
        partitions = [
            partition.take(node.predicate.mask(partition))
            for partition in node.table.partitions
        ]
        filtered = DistributedTable(
            f"σ({node.table.name})", node.table.schema, partitions
        )
        kept = filtered.total_rows
        selectivity = kept / node.table.total_rows if node.table.total_rows else 0.0
        ctx.tables[self.index] = filtered
        state["stats"] = OperatorStats(
            "scan+filter", kept, 0.0, note=f"selectivity {selectivity:.3f}"
        )

    def account(self, ctx: ExecutionContext) -> None:
        ctx.operators.append(ctx.state(self.index)["stats"])


class JoinOp(PhysicalOperator):
    """Distributed join; the algorithm resolves at plan time."""

    def __init__(
        self, index: int, inputs: tuple[int, int], node: Join,
        rekey_on: str | None = None, fused_rekey: bool = False,
    ):
        super().__init__(index, inputs)
        self.node = node
        self.rekey_on = rekey_on if fused_rekey else node.rekey_on
        self.fused_rekey = fused_rekey

    def plan(self, ctx: ExecutionContext) -> None:
        node = self.node
        state = ctx.state(self.index)
        if node.algorithm == "auto":
            stats = ctx.join_stats.get(self.index)
            if stats is None:
                left, right = (ctx.tables[i] for i in self.inputs)
                stats = table_stats(left, right, ctx.spec)
                ctx.join_stats[self.index] = stats
            choice = choose_algorithm(stats)
            state["algorithm"] = choice.algorithm
            state["note"] = f"auto: {choice.algorithm}"
            if choice.note:
                state["note"] += f" ({choice.note})"
        elif node.algorithm in algorithm_names():
            state["algorithm"] = node.algorithm
            state["note"] = "fixed"
        else:
            raise ReproError(
                f"unknown join algorithm {node.algorithm!r}; "
                f"use 'auto' or one of {sorted(algorithm_names())}"
            )
        if self.fused_rekey:
            state["note"] += f"; fused rekey on {self.rekey_on}"

    #: Message classes only tracking-phase operators send; their fault
    #: exhaustion is survivable by degrading to a non-tracking algorithm.
    _TRACKING_CLASSES = (MessageClass.KEYS_COUNTS, MessageClass.KEYS_NODES)

    def execute(self, ctx: ExecutionContext) -> None:
        left, right = (ctx.tables[i] for i in self.inputs)
        try:
            self._run_operator(ctx, left, right)
        except FaultExhaustedError as error:
            fallback = self._degraded_algorithm(ctx, error)
            if fallback is None:
                raise
            ctx.state(self.index)["algorithm"] = fallback
            self._run_operator(ctx, left, right)

    def _run_operator(
        self, ctx: ExecutionContext, left: DistributedTable, right: DistributedTable
    ) -> None:
        state = ctx.state(self.index)
        operator = create(state["algorithm"])
        if self.node.semijoin_filter:
            operator = SemiJoinFilteredJoin(operator)
        state["operator_name"] = operator.name
        state["result"] = operator.run(ctx.cluster, left, right, ctx.spec)
        ctx.tables[self.index] = _join_output_table(
            state["result"], left, right, self.rekey_on
        )

    def _degraded_algorithm(
        self, ctx: ExecutionContext, error: FaultExhaustedError
    ) -> str | None:
        """Graceful degradation: the cheapest non-tracking fallback.

        Applies only when the exhausted traffic is a tracking message
        class and the chosen operator actually has a tracking phase — a
        poisoned tuple class or a crash would fail any algorithm, so
        those exhaustions propagate.  The fallback re-runs the join from
        scratch (``DistributedJoin.run`` resets the cluster, rewinding
        the fault injector to the identical seeded sequence), and the
        downgrade is recorded in the operator's stats note.
        """
        state = ctx.state(self.index)
        if error.category not in self._TRACKING_CLASSES:
            return None
        if not algorithm(state["algorithm"]).tracking:
            return None
        stats = ctx.join_stats.get(self.index)
        if stats is None:
            left, right = (ctx.tables[i] for i in self.inputs)
            stats = table_stats(left, right, ctx.spec)
            ctx.join_stats[self.index] = stats
        fallback = fallback_algorithm(stats)
        if fallback is None or fallback.algorithm == state["algorithm"]:
            return None
        state["note"] += (
            f"; degraded {state['algorithm']}->{fallback.algorithm}: "
            f"{error.category.value} traffic exhausted its fault budget"
        )
        return fallback.algorithm

    def account(self, ctx: ExecutionContext) -> None:
        state = ctx.state(self.index)
        result: JoinResult = state["result"]
        ctx.traffic = ctx.traffic.merged_with(result.traffic)
        ctx.profiles.append(result.profile)
        ctx.operators.append(
            OperatorStats(
                f"join[{state['operator_name']}]",
                result.output_rows,
                result.network_bytes,
                note=state["note"],
            )
        )


class RekeyOp(PhysicalOperator):
    """Node-local re-key of the input table on a payload column."""

    def __init__(self, index: int, inputs: tuple[int], node: Rekey):
        super().__init__(index, inputs)
        self.node = node

    def execute(self, ctx: ExecutionContext) -> None:
        ctx.tables[self.index] = rekey_table(
            ctx.tables[self.inputs[0]], self.node.column
        )

    def account(self, ctx: ExecutionContext) -> None:
        ctx.operators.append(
            OperatorStats(
                "rekey",
                ctx.tables[self.index].total_rows,
                0.0,
                note=f"on {self.node.column}",
            )
        )


class AggregateOp(PhysicalOperator):
    """Two-phase distributed group-by over the input table."""

    def __init__(self, index: int, inputs: tuple[int], node: Aggregate):
        super().__init__(index, inputs)
        self.node = node

    def execute(self, ctx: ExecutionContext) -> None:
        result = run_aggregation(
            ctx.cluster, ctx.tables[self.inputs[0]], self.node.aggregates, ctx.spec
        )
        ctx.state(self.index)["result"] = result
        ctx.tables[self.index] = result.table

    def account(self, ctx: ExecutionContext) -> None:
        result = ctx.state(self.index)["result"]
        ctx.traffic = ctx.traffic.merged_with(result.traffic)
        ctx.profiles.append(result.profile)
        ctx.operators.append(
            OperatorStats(
                "aggregate",
                result.table.total_rows,
                result.network_bytes,
            )
        )


# ---------------------------------------------------------------------------
# Compilation and the pipeline
# ---------------------------------------------------------------------------


@dataclass
class PhysicalPlan:
    """A compiled plan: physical operators in post-order.

    The compiled artifact is immutable and safe to share: concurrent
    :meth:`run` calls keep all per-run state on their own
    :class:`ExecutionContext`, which is what lets the serve layer's
    plan cache hand one compiled plan to many in-flight queries.
    """

    operators: list[PhysicalOperator]
    #: Names of every scanned table, for statistics-epoch invalidation.
    table_names: tuple[str, ...] = ()

    def run(
        self,
        cluster: Cluster,
        spec: JoinSpec | None = None,
        operator_retries: int = 0,
        pipeline_depth: int | None = None,
        context: RunContext | None = None,
    ) -> QueryResult:
        """Drive every operator through plan → execute → account.

        Completed operator outputs in ``ctx.tables`` double as
        checkpoints: an operator that fails with
        :class:`~repro.errors.FaultExhaustedError` can be retried up to
        ``operator_retries`` times without re-running anything upstream
        (the cluster fabric is reset, which also rewinds a fault
        injector to its seeded sequence).  A failed attempt accounted
        nothing — ``execute`` raises before ``account`` folds traffic
        or stats into the context — so retries never double-count.

        ``pipeline_depth`` overrides the cluster's exchange pipelining
        for the duration of this query (restored afterwards); ``None``
        leaves the cluster's configured depth untouched.  Pipelining
        stays disabled while a fault plan is installed regardless.

        ``context`` threads reusable cross-run state through the run
        (see :class:`RunContext`): a warm executor is installed on the
        cluster for the duration of the run instead of the cluster's
        own (restored afterwards), cached ``join_stats`` let reruns
        skip the statistics pass (cleared automatically when a scanned
        table's statistics epoch has moved), and a ``deadline`` is
        enforced at every operator boundary with
        :class:`~repro.errors.QueryTimeoutError`.
        """
        spec = spec or JoinSpec()
        if not spec.materialize:
            raise ReproError("query execution requires materialize=True")
        if operator_retries < 0:
            raise ReproError(
                f"operator_retries must be >= 0, got {operator_retries}"
            )
        join_stats: dict[int, JoinStats] | None = None
        deadline: float | None = None
        previous_executor = None
        if context is not None:
            epoch_signature = tuple(
                stats_epoch(name) for name in self.table_names
            )
            if context.epoch_signature != epoch_signature:
                context.join_stats.clear()
                context.epoch_signature = epoch_signature
            join_stats = context.join_stats
            deadline = context.deadline
            if (
                context.executor is not None
                and context.executor is not cluster.executor
            ):
                previous_executor = cluster.executor
                cluster.executor = context.executor
        previous_depth = cluster.pipeline_depth
        if pipeline_depth is not None:
            cluster.set_pipeline_depth(pipeline_depth)
        try:
            ctx = ExecutionContext(cluster=cluster, spec=spec, deadline=deadline)
            if join_stats is not None:
                ctx.join_stats = join_stats
            for operator in self.operators:
                if deadline is not None and wall_clock() > deadline:
                    raise QueryTimeoutError(
                        f"query deadline expired before operator "
                        f"{operator.index} ({type(operator).__name__})",
                        where="running",
                    )
                attempt = 0
                while True:
                    try:
                        operator.plan(ctx)
                        operator.execute(ctx)
                        operator.account(ctx)
                        break
                    except FaultExhaustedError:
                        attempt += 1
                        if attempt > operator_retries:
                            raise
                        cluster.reset()
            final = ctx.tables[self.operators[-1].index]
            return QueryResult(
                table=final,
                traffic=ctx.traffic,
                operators=ctx.operators,
                profiles=ctx.profiles,
            )
        finally:
            if pipeline_depth is not None:
                cluster.set_pipeline_depth(previous_depth)
            if previous_executor is not None:
                cluster.executor = previous_executor


def _fusable(node: PlanNode, fuse_rekey: bool) -> bool:
    """A Rekey directly over a plain Join can fold into the join's output."""
    return (
        fuse_rekey
        and isinstance(node, Rekey)
        and isinstance(node.child, Join)
        and node.child.rekey_on is None
    )


def _children(node: PlanNode, fuse_rekey: bool) -> tuple[PlanNode, ...]:
    if _fusable(node, fuse_rekey):
        return (node.child.left, node.child.right)
    if isinstance(node, Join):
        return (node.left, node.right)
    if isinstance(node, (Rekey, Aggregate)):
        return (node.child,)
    return ()


def _make_operator(
    node: PlanNode, index: int, inputs: tuple[int, ...], fuse_rekey: bool
) -> PhysicalOperator:
    if _fusable(node, fuse_rekey):
        return JoinOp(index, inputs, node.child, rekey_on=node.column, fused_rekey=True)
    if isinstance(node, Scan):
        return ScanOp(index, node)
    if isinstance(node, Join):
        return JoinOp(index, inputs, node)
    if isinstance(node, Rekey):
        return RekeyOp(index, inputs, node)
    if isinstance(node, Aggregate):
        return AggregateOp(index, inputs, node)
    raise ReproError(f"unknown plan node type: {type(node).__name__}")


def compile_plan(plan: PlanNode, *, fuse_rekey: bool = False) -> PhysicalPlan:
    """Linearize a logical plan tree into a physical pipeline.

    The walk is iterative (an explicit frame stack, no recursion) and
    emits operators in post-order: children left to right, then the
    node itself, so execution order and accounting match a bottom-up
    evaluation.  With ``fuse_rekey=True``, a ``Rekey`` sitting directly
    on a ``Join`` folds into the join's output-packaging step, saving
    one full pass over the joined partitions; the fused plan's result
    table keeps the join's name (not ``rekey(...)``) and reports one
    fewer operator.
    """
    operators: list[PhysicalOperator] = []
    # Each frame: [node, collected child op indices, next child position].
    frames: list[list] = [[plan, [], 0]]
    while frames:
        node, child_ids, pos = frames[-1]
        kids = _children(node, fuse_rekey)
        if pos < len(kids):
            frames[-1][2] += 1
            frames.append([kids[pos], [], 0])
            continue
        index = len(operators)
        operators.append(_make_operator(node, index, tuple(child_ids), fuse_rekey))
        frames.pop()
        if frames:
            frames[-1][1].append(index)
    return PhysicalPlan(operators, table_names=plan.table_names())


def execute(plan: PlanNode, cluster: Cluster, spec: JoinSpec | None = None) -> QueryResult:
    """Compile a plan tree and run it; returns the final table with accounting."""
    return compile_plan(plan).run(cluster, spec)
