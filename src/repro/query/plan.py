"""Logical query plans: scans, joins, and a final aggregation.

The paper's expensive queries are multi-join plans — "Q1 joins 7
relations, after applying selections on 4, and performs one final
aggregation."  These plan nodes let the library express such queries
and evaluate how per-join algorithm choices (hash join vs the track
join variants, picked by the Section 3 cost model) shape total network
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.table import DistributedTable
from .aggregate import AggregateSpec
from .predicates import Predicate

__all__ = ["PlanNode", "Scan", "Join", "Rekey", "Aggregate"]


class PlanNode:
    """Base class of all logical plan nodes."""


@dataclass
class Scan(PlanNode):
    """Read one distributed table, optionally applying a selection.

    Selections run node-local (no network traffic) and feed the cost
    model's input selectivity terms.
    """

    table: DistributedTable
    predicate: Predicate | None = None


@dataclass
class Join(PlanNode):
    """Distributed equi-join of two sub-plans on their key columns.

    Parameters
    ----------
    algorithm:
        A fixed operator name ("HJ", "BJ-R", "BJ-S", "2TJ-R", "2TJ-S",
        "3TJ", "4TJ") or ``"auto"`` to let the Section 3 cost model
        choose from the inputs' measured statistics.
    rekey_on:
        Column of the join output (e.g. ``"s.customer_id"``) to use as
        the key of the produced table, so a subsequent join can run on
        a different attribute.  ``None`` keeps the current join key.
    """

    left: PlanNode
    right: PlanNode
    algorithm: str = "auto"
    rekey_on: str | None = None
    #: Wrap the join in two-way Bloom semi-join filtering (Section 3.3).
    semijoin_filter: bool = False


@dataclass
class Rekey(PlanNode):
    """Re-key the child's table on one of its payload columns.

    A purely local operation (no traffic): the named column becomes the
    join key of the produced table and the old key becomes a payload
    column.  Used to join the next relation on a different attribute —
    e.g. keying a fact table on a foreign key before joining its
    dimension.
    """

    child: PlanNode
    column: str


@dataclass
class Aggregate(PlanNode):
    """Group the child by its key column and compute aggregates."""

    child: PlanNode
    aggregates: tuple[AggregateSpec, ...] = field(default=())
