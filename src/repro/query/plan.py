"""Logical query plans: scans, joins, and a final aggregation.

The paper's expensive queries are multi-join plans — "Q1 joins 7
relations, after applying selections on 4, and performs one final
aggregation."  These plan nodes let the library express such queries
and evaluate how per-join algorithm choices (hash join vs the track
join variants, picked by the Section 3 cost model) shape total network
traffic.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..costmodel.stats import stats_epoch
from ..errors import ReproError
from ..storage.table import DistributedTable
from .aggregate import AggregateSpec
from .predicates import Predicate

__all__ = ["PlanNode", "Scan", "Join", "Rekey", "Aggregate"]


class PlanNode:
    """Base class of all logical plan nodes."""

    def fingerprint(self) -> str:
        """Deterministic identity of this plan for caching.

        Two structurally identical plans — same node shapes, algorithm
        choices, predicates, and aggregate specs over tables with the
        same name, schema, and partition count — produce the same
        fingerprint, even when built independently.  Each scanned
        table's current statistics epoch
        (:func:`repro.costmodel.stats.stats_epoch`) is folded in, so
        bumping an epoch after a data change retires every fingerprint
        that was computed against the old statistics.  The digest is a
        SHA-256 hex string, stable across processes (no reliance on
        Python's per-process ``hash``).
        """
        return hashlib.sha256(repr(self._canonical()).encode()).hexdigest()

    def table_names(self) -> tuple[str, ...]:
        """Names of every table this plan scans, in scan order."""
        names: list[str] = []
        stack: list[PlanNode] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Scan):
                names.append(node.table.name)
            elif isinstance(node, Join):
                stack.extend((node.right, node.left))
            elif isinstance(node, (Rekey, Aggregate)):
                stack.append(node.child)
        return tuple(names)

    def _canonical(self) -> tuple:
        raise ReproError(
            f"plan node {type(self).__name__} does not define a canonical "
            "fingerprint form"
        )


def _schema_signature(table: DistributedTable) -> tuple:
    """Structural identity of a table's schema (names and widths)."""
    return tuple(
        (column.name, column.bits, column.decimal_digits, column.char_length)
        for column in table.schema.columns
    )


@dataclass
class Scan(PlanNode):
    """Read one distributed table, optionally applying a selection.

    Selections run node-local (no network traffic) and feed the cost
    model's input selectivity terms.
    """

    table: DistributedTable
    predicate: Predicate | None = None

    def _canonical(self) -> tuple:
        # Predicates are frozen dataclasses, so their repr is structural
        # and process-independent; the epoch term retires stale entries.
        return (
            "scan",
            self.table.name,
            self.table.num_nodes,
            _schema_signature(self.table),
            repr(self.predicate),
            stats_epoch(self.table.name),
        )


@dataclass
class Join(PlanNode):
    """Distributed equi-join of two sub-plans on their key columns.

    Parameters
    ----------
    algorithm:
        A fixed operator name ("HJ", "BJ-R", "BJ-S", "2TJ-R", "2TJ-S",
        "3TJ", "4TJ") or ``"auto"`` to let the Section 3 cost model
        choose from the inputs' measured statistics.
    rekey_on:
        Column of the join output (e.g. ``"s.customer_id"``) to use as
        the key of the produced table, so a subsequent join can run on
        a different attribute.  ``None`` keeps the current join key.
    """

    left: PlanNode
    right: PlanNode
    algorithm: str = "auto"
    rekey_on: str | None = None
    #: Wrap the join in two-way Bloom semi-join filtering (Section 3.3).
    semijoin_filter: bool = False

    def _canonical(self) -> tuple:
        return (
            "join",
            self.algorithm,
            self.rekey_on,
            self.semijoin_filter,
            self.left._canonical(),
            self.right._canonical(),
        )


@dataclass
class Rekey(PlanNode):
    """Re-key the child's table on one of its payload columns.

    A purely local operation (no traffic): the named column becomes the
    join key of the produced table and the old key becomes a payload
    column.  Used to join the next relation on a different attribute —
    e.g. keying a fact table on a foreign key before joining its
    dimension.
    """

    child: PlanNode
    column: str

    def _canonical(self) -> tuple:
        return ("rekey", self.column, self.child._canonical())


@dataclass
class Aggregate(PlanNode):
    """Group the child by its key column and compute aggregates."""

    child: PlanNode
    aggregates: tuple[AggregateSpec, ...] = field(default=())

    def _canonical(self) -> tuple:
        return (
            "aggregate",
            tuple((s.name, s.function, s.column) for s in self.aggregates),
            self.child._canonical(),
        )
