"""Distributed group-by aggregation.

Every expensive query of the paper's workloads ends with an
aggregation.  The operator here is the standard two-phase scheme: each
node pre-aggregates its local fragment by group key, the partial
aggregates are hash-partitioned on the group key, and the receiving
nodes merge partials into finals.  Pre-aggregation makes the exchanged
volume proportional to per-node distinct groups, not input rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.network import MessageClass, TrafficLedger
from ..errors import ReproError
from ..storage.schema import Column, Schema
from ..storage.table import DistributedTable, LocalPartition
from ..timing.profile import ExecutionProfile
from ..util import hash_partition, segment_boundaries

__all__ = ["AggregateSpec", "AggregationResult", "run_aggregation"]

#: Supported aggregate functions and their (mergeable) numpy reducers.
_REDUCERS = {
    "sum": np.add,
    "min": np.minimum,
    "max": np.maximum,
    "count": np.add,  # counts merge by summing partial counts
}


@dataclass(frozen=True)
class AggregateSpec:
    """One output aggregate: ``function(column) AS name``."""

    name: str
    function: str
    column: str

    def __post_init__(self) -> None:
        if self.function not in _REDUCERS:
            raise ReproError(
                f"unknown aggregate {self.function!r}; use {sorted(_REDUCERS)}"
            )


@dataclass
class AggregationResult:
    """Output of a distributed aggregation."""

    table: DistributedTable
    traffic: TrafficLedger
    profile: ExecutionProfile

    @property
    def network_bytes(self) -> float:
        """Bytes the aggregation exchanged."""
        return self.traffic.total_bytes


def _local_partials(
    partition: LocalPartition, specs: tuple[AggregateSpec, ...]
) -> LocalPartition:
    """Pre-aggregate one fragment by its key column."""
    if partition.num_rows == 0:
        return LocalPartition(
            keys=np.empty(0, dtype=np.int64),
            columns={s.name: np.empty(0, dtype=np.int64) for s in specs},
        )
    order = np.argsort(partition.keys, kind="stable")
    sorted_keys = partition.keys[order]
    starts = segment_boundaries(sorted_keys)
    columns: dict[str, np.ndarray] = {}
    for spec in specs:
        if spec.function == "count":
            values = np.ones(partition.num_rows, dtype=np.int64)
        else:
            if spec.column not in partition.columns:
                raise ReproError(
                    f"aggregate references unknown column {spec.column!r}; "
                    f"partition has {sorted(partition.columns)}"
                )
            values = partition.columns[spec.column][order]
        reducer = _REDUCERS[spec.function]
        columns[spec.name] = reducer.reduceat(values, starts)
    return LocalPartition(keys=sorted_keys[starts], columns=columns)


def _merge_partials(
    parts: list[LocalPartition], specs: tuple[AggregateSpec, ...]
) -> LocalPartition:
    """Merge received partial aggregates into finals."""
    merged = LocalPartition.concat(parts)
    if merged.num_rows == 0:
        return merged
    order = np.argsort(merged.keys, kind="stable")
    sorted_keys = merged.keys[order]
    starts = segment_boundaries(sorted_keys)
    columns = {
        spec.name: _REDUCERS[spec.function].reduceat(
            merged.columns[spec.name][order], starts
        )
        for spec in specs
    }
    return LocalPartition(keys=sorted_keys[starts], columns=columns)


def run_aggregation(
    cluster: Cluster,
    table: DistributedTable,
    specs: tuple[AggregateSpec, ...] | list[AggregateSpec],
    spec,
) -> AggregationResult:
    """Aggregate ``table`` by its key column across the cluster.

    Parameters
    ----------
    specs:
        The aggregates to compute; the group key is the table's key.
    spec:
        A :class:`~repro.joins.base.JoinSpec` supplying encoding and
        hash seed (aggregate values are accounted at 8 bytes each).
    """
    specs = tuple(specs)
    if not specs:
        raise ReproError("aggregation needs at least one AggregateSpec")
    cluster.reset()
    profile = ExecutionProfile(cluster.num_nodes)
    key_width = table.schema.key_width(spec.encoding)
    value_width = 8.0  # partial aggregates travel as 64-bit values
    partial_width = key_width + value_width * len(specs)

    for node, partition in enumerate(table.partitions):
        partials = _local_partials(partition, specs)
        profile.add_cpu_at(
            "Pre-aggregate local groups",
            "aggregate",
            node,
            partition.num_rows * (key_width + value_width),
        )
        if partials.num_rows == 0:
            continue
        destinations = hash_partition(partials.keys, cluster.num_nodes, spec.hash_seed)
        order = np.argsort(destinations, kind="stable")
        bounds = np.searchsorted(destinations[order], np.arange(cluster.num_nodes + 1))
        for dst in range(cluster.num_nodes):
            rows = order[bounds[dst] : bounds[dst + 1]]
            if len(rows) == 0:
                continue
            batch = partials.take(rows)
            nbytes = batch.num_rows * partial_width
            cluster.network.send(
                node, dst, MessageClass.AGGREGATES, nbytes, payload=batch
            )
            if node == dst:
                profile.add_local("Local copy partial aggregates", node, nbytes)
            else:
                profile.add_net_at("Transfer partial aggregates", node, nbytes)

    partitions = []
    for node in range(cluster.num_nodes):
        received = [m.payload for m in cluster.network.deliver(node)]
        merged = _merge_partials(received, specs) if received else LocalPartition(
            keys=np.empty(0, dtype=np.int64),
            columns={s.name: np.empty(0, dtype=np.int64) for s in specs},
        )
        profile.add_cpu_at(
            "Merge partial aggregates", "merge", node, merged.num_rows * partial_width
        )
        partitions.append(merged)

    out_schema = Schema(
        key_columns=table.schema.key_columns,
        payload_columns=tuple(Column(s.name, bits=64) for s in specs),
    )
    out_table = DistributedTable(f"agg({table.name})", out_schema, partitions)
    return AggregationResult(
        table=out_table,
        traffic=cluster.network.reset_ledger(),
        profile=profile,
    )
