"""Star-schema plan building with a simple join-order heuristic.

The paper's expensive queries join a fact-like intermediate result with
several other relations.  Given a fact table and its dimensions keyed
by foreign-key columns, :func:`star_plan` builds the left-deep plan —
re-keying the running result on each dimension's foreign key before
joining it — and optionally orders the dimensions smallest-first, the
classic greedy heuristic that shrinks intermediate results early.
"""

from __future__ import annotations

from ..errors import ReproError
from .plan import Join, PlanNode, Rekey, Scan

__all__ = ["star_plan"]


def star_plan(
    fact: Scan,
    dimensions: dict[str, Scan],
    algorithm: str = "auto",
    order: str = "smallest-first",
) -> PlanNode:
    """Left-deep plan joining ``fact`` with each dimension.

    Parameters
    ----------
    fact:
        Scan of the fact table; its payload columns must include every
        foreign key named in ``dimensions``.
    dimensions:
        Maps a fact foreign-key column to the dimension scan keyed by
        that column's values.  After the first join, foreign keys live
        under accumulating ``r.`` prefixes, which the builder tracks.
    algorithm:
        Join algorithm for every join ("auto" lets the cost model pick
        per join).
    order:
        ``"smallest-first"`` joins dimensions in ascending table size
        (shrink-early heuristic); ``"given"`` preserves dict order.
    """
    if not dimensions:
        raise ReproError("star_plan needs at least one dimension")
    if order == "smallest-first":
        ordered = sorted(dimensions.items(), key=lambda kv: kv[1].table.total_rows)
    elif order == "given":
        ordered = list(dimensions.items())
    else:
        raise ReproError(f"unknown dimension order {order!r}")

    fact_columns = set(fact.table.payload_names)
    missing = [fk for fk, _scan in ordered if fk not in fact_columns]
    if missing:
        raise ReproError(
            f"fact table {fact.table.name!r} lacks foreign key columns {missing}"
        )

    plan: PlanNode = fact
    # Name of each pending foreign key inside the running result: after
    # every join, previous fact-side columns gain an "r." prefix, and
    # the re-keyed-away old key returns as a payload column.
    current_name = {fk: fk for fk, _scan in ordered}
    for fk, dimension in ordered:
        plan = Join(Rekey(plan, current_name[fk]), dimension, algorithm=algorithm)
        for other in current_name:
            current_name[other] = "r." + current_name[other]
        # The re-keyed column was consumed as the join key; its fact
        # row identity lives on via the join output's key itself.
    return plan
