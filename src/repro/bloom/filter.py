"""Bloom filters over join keys, used for semi-join reduction.

Section 3.3 analyzes how track join interacts with Bloom-filter-based
semi-joins [4, 6, 22].  This is a real vectorized implementation: a bit
array with ``k`` splitmix64-derived hash functions, sized analytically
from the expected element count and target false-positive rate, so the
filtered join variants measure genuine false positives rather than a
modeled error term.
"""

from __future__ import annotations

import math

import numpy as np

from ..util import mix64
from ..errors import ValidationError

__all__ = ["BloomFilter", "optimal_bits_per_element", "optimal_num_hashes"]


def optimal_bits_per_element(false_positive_rate: float) -> float:
    """Bits per element minimizing space for a target error rate."""
    if not 0.0 < false_positive_rate < 1.0:
        raise ValidationError(f"false positive rate must be in (0, 1), got {false_positive_rate}")
    return -math.log(false_positive_rate) / (math.log(2) ** 2)


def optimal_num_hashes(bits_per_element: float) -> int:
    """Hash function count minimizing error for a bits/element budget."""
    return max(1, round(bits_per_element * math.log(2)))


class BloomFilter:
    """A fixed-size Bloom filter over 64-bit integer keys."""

    def __init__(self, num_bits: int, num_hashes: int):
        if num_bits <= 0:
            raise ValidationError(f"num_bits must be positive, got {num_bits}")
        if num_hashes <= 0:
            raise ValidationError(f"num_hashes must be positive, got {num_hashes}")
        self.num_bits = int(num_bits)
        self.num_hashes = int(num_hashes)
        self._bits = np.zeros((self.num_bits + 7) // 8, dtype=np.uint8)

    @classmethod
    def for_capacity(
        cls, expected_elements: int, false_positive_rate: float = 0.01
    ) -> "BloomFilter":
        """Size a filter for ``expected_elements`` at a target error rate."""
        bits_per_element = optimal_bits_per_element(false_positive_rate)
        num_bits = max(8, math.ceil(max(1, expected_elements) * bits_per_element))
        return cls(num_bits, optimal_num_hashes(bits_per_element))

    @property
    def wire_bytes(self) -> float:
        """Bytes the filter occupies when broadcast."""
        return self.num_bits / 8.0

    def _positions(self, keys: np.ndarray) -> np.ndarray:
        """Bit positions of every key under every hash function."""
        keys = np.asarray(keys, dtype=np.int64)
        positions = np.empty((self.num_hashes, len(keys)), dtype=np.int64)
        for h in range(self.num_hashes):
            positions[h] = (mix64(keys, seed=h + 101) % np.uint64(self.num_bits)).astype(
                np.int64
            )
        return positions

    def add(self, keys: np.ndarray) -> None:
        """Insert all ``keys`` into the filter."""
        if len(keys) == 0:
            return
        positions = self._positions(keys).reshape(-1)
        np.bitwise_or.at(self._bits, positions >> 3, (1 << (positions & 7)).astype(np.uint8))

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Boolean mask of keys possibly present (no false negatives)."""
        keys = np.asarray(keys, dtype=np.int64)
        if len(keys) == 0:
            return np.zeros(0, dtype=bool)
        positions = self._positions(keys)
        hits = (self._bits[positions >> 3] >> (positions & 7).astype(np.uint8)) & 1
        return hits.all(axis=0).astype(bool)

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Union of two identically-configured filters."""
        if (self.num_bits, self.num_hashes) != (other.num_bits, other.num_hashes):
            raise ValidationError("cannot union Bloom filters with different shapes")
        merged = BloomFilter(self.num_bits, self.num_hashes)
        merged._bits = self._bits | other._bits
        return merged

    def fill_ratio(self) -> float:
        """Fraction of set bits (diagnostic for saturation)."""
        return float(np.unpackbits(self._bits).sum()) / self.num_bits
