"""Bloom filter substrate for semi-join reduction (Section 3.3)."""

from .filter import BloomFilter, optimal_bits_per_element, optimal_num_hashes

__all__ = ["BloomFilter", "optimal_bits_per_element", "optimal_num_hashes"]
