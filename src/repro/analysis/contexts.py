"""Task-context inference, lock coverage, and mutation enumeration.

Builds the concurrency-specific layers the REP007–REP011 rules share,
on top of :mod:`repro.analysis.dataflow`'s package index:

Task contexts
    A function runs in *task context* when it can execute off the
    coordinator thread.  Seeds are discovered syntactically at dispatch
    sites — callables handed to ``run_phase`` / ``run_fused_phases``
    (phase tasks), to ``run_chunks`` / ``.map()`` / ``.submit()``
    (kernel subtasks), and to ``threading.Thread(target=...)`` (service
    driver threads) — then closed over the call graph with
    :meth:`PackageIndex.reachable_from`.  Callable expressions resolve
    through local bindings (``tasks = [...]`` then ``run_phase(tasks)``),
    lambdas (their internal calls become seeds), ``functools.partial``,
    and factory calls (the factory's nested ``def``s become seeds, since
    the closure it returns is what the pool executes).

Lock coverage
    :func:`lock_held_map` maps every AST node of a function body to the
    ``frozenset`` of lock names held there, derived from ``with``
    statements over lock-looking expressions.  Local aliases of ``self``
    attributes (``counters = self._counters`` … ``with counters.lock:``)
    normalize back to the attribute path so the same lock compares equal
    across spellings.

Mutations
    :func:`iter_mutations` enumerates the statements that mutate shared
    structures in place: subscript stores, augmented assigns, attribute
    rebinds, ``del x[k]``, and mutator method calls (``append`` /
    ``update`` / ``pop`` / ...).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .dataflow import (
    FunctionInfo,
    ModuleInfo,
    PackageIndex,
    attr_chain,
    own_nodes,
    resolve_class,
    resolve_method,
    resolve_name,
)
from .dataflow import _resolve_call, resolve_qualified

__all__ = [
    "TaskContexts",
    "Mutation",
    "infer_task_contexts",
    "dispatch_kind",
    "lock_held_map",
    "self_aliases",
    "iter_mutations",
    "declared_globals",
    "local_names",
]

#: Dispatcher name -> context kind for bare-name calls.
_NAME_DISPATCH = {
    "run_phase": "phase",
    "run_fused_phases": "phase",
    "run_chunks": "kernel",
    "Thread": "driver",
}

#: Dispatcher name -> context kind for ``obj.method(...)`` calls.
_ATTR_DISPATCH = {
    "run_phase": "phase",
    "run_fused_phases": "phase",
    "run_chunks": "kernel",
    "map": "kernel",
    "submit": "kernel",
    "Thread": "driver",
}

#: Keyword arguments of dispatchers that may carry task callables.
_CALLABLE_KEYWORDS = {"tasks", "stages", "fn", "fns", "task", "target"}

#: Container/set method names that mutate their receiver in place.
_MUTATOR_METHODS = {
    "append",
    "appendleft",
    "extend",
    "extendleft",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "discard",
    "clear",
}


@dataclass
class TaskContexts:
    """Seed functions and their call-graph closures, per context kind."""

    phase_seeds: set[str] = field(default_factory=set)
    kernel_seeds: set[str] = field(default_factory=set)
    driver_seeds: set[str] = field(default_factory=set)
    phase: set[str] = field(default_factory=set)
    kernel: set[str] = field(default_factory=set)
    driver: set[str] = field(default_factory=set)

    @property
    def seeds(self) -> set[str]:
        return self.phase_seeds | self.kernel_seeds | self.driver_seeds

    @property
    def task(self) -> set[str]:
        """Every function that can run off the coordinator thread."""
        return self.phase | self.kernel | self.driver

    def kinds_of(self, qualname: str) -> tuple[str, ...]:
        """Which context kinds a function participates in."""
        kinds = []
        for kind in ("phase", "kernel", "driver"):
            if qualname in getattr(self, kind):
                kinds.append(kind)
        return tuple(kinds)


def dispatch_kind(call: ast.Call) -> str | None:
    """Context kind a call dispatches into, or None for ordinary calls.

    Only attribute calls count for ``map``/``submit`` — the ``map``
    builtin is lazy and runs on the calling thread.
    """
    func = call.func
    if isinstance(func, ast.Name):
        return _NAME_DISPATCH.get(func.id)
    if isinstance(func, ast.Attribute):
        return _ATTR_DISPATCH.get(func.attr)
    return None


def _local_bindings(info: FunctionInfo) -> dict[str, list[ast.AST]]:
    """Name -> value expressions assigned to it inside the function."""
    bindings: dict[str, list[ast.AST]] = {}
    for node in own_nodes(info.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bindings.setdefault(target.id, []).append(node.value)
    return bindings


def _resolve_callable(
    index: PackageIndex,
    module: ModuleInfo,
    info: FunctionInfo,
    node: ast.AST,
    bindings: dict[str, list[ast.AST]],
    depth: int = 0,
) -> set[str]:
    """Function qualnames a callable expression can execute."""
    if depth > 4:
        return set()
    seeds: set[str] = set()
    if isinstance(node, ast.Name):
        found = resolve_name(index, module, info, node.id)
        if found is not None:
            seeds.add(found)
        else:
            for value in bindings.get(node.id, ()):
                seeds |= _resolve_callable(
                    index, module, info, value, bindings, depth + 1
                )
    elif isinstance(node, ast.Attribute):
        chain = attr_chain(node)
        if len(chain) == 2 and chain[0] in ("self", "cls"):
            cls = index.class_of(info)
            if cls is not None:
                found = resolve_method(index, cls, chain[1])
                if found is not None:
                    seeds.add(found)
        elif len(chain) >= 2:
            prefix = module.imports.get(chain[0])
            if prefix is not None:
                found = resolve_qualified(index, ".".join([prefix, *chain[1:]]))
                if found is not None:
                    seeds.add(found)
            elif len(chain) == 2:
                cls = resolve_class(index, module, chain[0])
                if cls is not None:
                    found = resolve_method(index, cls, chain[1])
                    if found is not None:
                        seeds.add(found)
    elif isinstance(node, ast.Lambda):
        # The lambda body runs in the task; every function it calls is
        # a context seed even though the lambda has no qualname itself.
        for call in ast.walk(node.body):
            if isinstance(call, ast.Call):
                seeds |= _resolve_call(index, module, info, call)
    elif isinstance(node, ast.Call):
        chain = attr_chain(node.func)
        if chain and chain[-1] == "partial" and node.args:
            seeds |= _resolve_callable(
                index, module, info, node.args[0], bindings, depth + 1
            )
        else:
            factory = _resolve_call(index, module, info, node)
            for qual in factory:
                # A factory call at a dispatch site hands its *returned
                # closure* to the pool: treat the factory's nested defs
                # as the executed code.
                seeds.update(
                    nested.qualname
                    for nested in index.functions.values()
                    if nested.parent == qual
                )
    elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for element in node.elts:
            seeds |= _resolve_callable(
                index, module, info, element, bindings, depth + 1
            )
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        seeds |= _resolve_callable(
            index, module, info, node.elt, bindings, depth + 1
        )
    elif isinstance(node, ast.Starred):
        seeds |= _resolve_callable(
            index, module, info, node.value, bindings, depth + 1
        )
    return seeds


def _seed_expressions(call: ast.Call, kind: str) -> list[ast.AST]:
    """The argument expressions that may carry task callables."""
    if kind == "driver":
        return [kw.value for kw in call.keywords if kw.arg == "target"]
    if kind == "kernel":
        # run_chunks(fn, items) / executor.map(fn, items) /
        # pool.submit(fn, *args): only the leading argument is code.
        exprs: list[ast.AST] = list(call.args[:1])
    else:
        exprs = list(call.args)
    exprs.extend(
        kw.value for kw in call.keywords if kw.arg in _CALLABLE_KEYWORDS
    )
    return exprs


def infer_task_contexts(index: PackageIndex) -> TaskContexts:
    """Discover dispatch sites and close them over the call graph."""
    contexts = TaskContexts()
    buckets = {
        "phase": contexts.phase_seeds,
        "kernel": contexts.kernel_seeds,
        "driver": contexts.driver_seeds,
    }
    for info in index.functions.values():
        module = index.modules[info.module]
        bindings: dict[str, list[ast.AST]] | None = None
        for node in own_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            kind = dispatch_kind(node)
            if kind is None:
                continue
            if bindings is None:
                bindings = _local_bindings(info)
            for expr in _seed_expressions(node, kind):
                buckets[kind] |= _resolve_callable(
                    index, module, info, expr, bindings
                )
    contexts.phase = index.reachable_from(contexts.phase_seeds)
    contexts.kernel = index.reachable_from(contexts.kernel_seeds)
    contexts.driver = index.reachable_from(contexts.driver_seeds)
    return contexts


def self_aliases(info: FunctionInfo) -> dict[str, list[str]]:
    """Local names aliased to ``self`` attribute chains.

    ``counters = self._counters`` yields ``{"counters": ["self",
    "_counters"]}`` so locks reached through the alias normalize to the
    same name as direct ``self._counters`` access.
    """
    aliases: dict[str, list[str]] = {}
    for node in own_nodes(info.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                chain = attr_chain(node.value)
                if len(chain) >= 2 and chain[0] in ("self", "cls"):
                    aliases[target.id] = chain
    return aliases


def _lock_name(
    index: PackageIndex,
    module: ModuleInfo,
    info: FunctionInfo,
    expr: ast.AST,
    aliases: dict[str, list[str]],
) -> str | None:
    """Normalized name of a lock-looking ``with`` expression, or None."""
    chain = attr_chain(expr)
    if not chain:
        return None
    if chain[0] in aliases:
        chain = aliases[chain[0]] + chain[1:]
    tail = chain[-1].lower()
    name = ".".join(chain)
    if "lock" in tail or "mutex" in tail:
        return name
    if len(chain) == 1:
        var = module.globals.get(chain[0])
        if var is not None and var.kind == "lock":
            return name
    if len(chain) == 2 and chain[0] == "self":
        cls = index.class_of(info)
        if cls is not None and chain[1] in cls.lock_attrs:
            return name
    return None


def lock_held_map(
    index: PackageIndex, info: FunctionInfo
) -> dict[int, frozenset[str]]:
    """Map ``id(node)`` -> lock names held when that node executes."""
    module = index.modules[info.module]
    aliases = self_aliases(info)
    held: dict[int, frozenset[str]] = {}

    def visit(node: ast.AST, locks: frozenset[str]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(locks)
            for item in node.items:
                held[id(item.context_expr)] = locks
                visit(item.context_expr, locks)
                name = _lock_name(index, module, info, item.context_expr, aliases)
                if name is not None:
                    acquired.add(name)
            inner = frozenset(acquired)
            for stmt in node.body:
                held[id(stmt)] = inner
                visit(stmt, inner)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            held[id(child)] = locks
            visit(child, locks)

    visit(info.node, frozenset())
    return held


@dataclass
class Mutation:
    """One in-place mutation site inside a function body."""

    node: ast.AST
    #: Attribute chain of the mutated object (``["self", "_entries"]``).
    chain: tuple[str, ...]
    #: ``setitem`` | ``delitem`` | ``augassign`` | ``assign`` | ``method``
    kind: str
    #: Mutator method name for ``kind == "method"``.
    method: str | None = None


def iter_mutations(info: FunctionInfo) -> Iterator[Mutation]:
    """Enumerate mutation sites in a function's own body."""
    for node in own_nodes(info.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                yield from _target_mutation(node, target)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            yield from _target_mutation(node, node.target)
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Subscript):
                chain = attr_chain(target.value)
                if chain:
                    yield Mutation(node, tuple(chain), "setitem")
            else:
                chain = attr_chain(target)
                if chain:
                    yield Mutation(node, tuple(chain), "augassign")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    chain = attr_chain(target.value)
                    if chain:
                        yield Mutation(node, tuple(chain), "delitem")
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATOR_METHODS:
                chain = attr_chain(node.func.value)
                if chain:
                    yield Mutation(node, tuple(chain), "method", node.func.attr)


def _target_mutation(node: ast.AST, target: ast.AST) -> Iterator[Mutation]:
    if isinstance(target, ast.Subscript):
        chain = attr_chain(target.value)
        if chain:
            yield Mutation(node, tuple(chain), "setitem")
    elif isinstance(target, ast.Attribute):
        chain = attr_chain(target)
        if chain:
            yield Mutation(node, tuple(chain), "assign")
    elif isinstance(target, ast.Name):
        yield Mutation(node, (target.id,), "assign")
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_mutation(node, element)


def declared_globals(info: FunctionInfo) -> set[str]:
    """Names the function declares ``global``."""
    names: set[str] = set()
    for node in own_nodes(info.node):
        if isinstance(node, ast.Global):
            names.update(node.names)
    return names


def local_names(info: FunctionInfo) -> set[str]:
    """Names bound locally: parameters, assignments, loop/with targets."""
    node = info.node
    names: set[str] = set()
    args = node.args
    for arg in (
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *filter(None, (args.vararg, args.kwarg)),
    ):
        names.add(arg.arg)
    for child in own_nodes(node):
        if isinstance(child, ast.Assign):
            for target in child.targets:
                names.update(_bound_names(target))
        elif isinstance(child, ast.AnnAssign):
            names.update(_bound_names(child.target))
        elif isinstance(child, ast.AugAssign):
            names.update(_bound_names(child.target))
        elif isinstance(child, (ast.For, ast.AsyncFor)):
            names.update(_bound_names(child.target))
        elif isinstance(child, (ast.With, ast.AsyncWith)):
            for item in child.items:
                if item.optional_vars is not None:
                    names.update(_bound_names(item.optional_vars))
    for child in ast.walk(node):
        if child is not node and isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.add(child.name)
    return names - declared_globals(info)


def _bound_names(target: ast.AST) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        bound: set[str] = set()
        for element in target.elts:
            bound |= _bound_names(element)
        return bound
    if isinstance(target, ast.Starred):
        return _bound_names(target.value)
    return set()
