"""The REP rule catalogue: determinism and aliasing invariants as AST checks.

Every rule here encodes a contract the runtime actually depends on (see
the module docstrings of :mod:`repro.cluster.network` and
:mod:`repro.parallel.executor`).  The checks are deliberately
conservative and purely syntactic: they reason about names and lexical
structure, not data flow across calls, so a clean report is a strong
hint rather than a proof — and a flagged line is either a real hazard
or a deliberate exception worth a visible ``# repro: noqa[CODE]``
waiver.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import (
    DataflowRule,
    Diagnostic,
    FileContext,
    Rule,
    register_dataflow_rule,
    register_rule,
)

__all__ = ["DEFAULT_TARGET", "RULES_VERSION"]

#: The tree `python -m repro lint` scans when no paths are given.
DEFAULT_TARGET = "src/repro"

#: Bumped whenever rule logic changes; part of the lint-cache key so a
#: stale `.repro-lint-cache/` can never mask a new finding.
RULES_VERSION = "1"

#: time-module attributes that read wall or monotonic clocks.
_CLOCK_ATTRS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "thread_time",
    "thread_time_ns",
}

#: numpy.random constructors that are deterministic *when seeded*.
_SEEDABLE_RNG = {"default_rng", "Generator", "SeedSequence", "RandomState",
                 "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937"}

#: Builtin exception names library code must not raise directly.
_BANNED_RAISES = {
    "Exception",
    "BaseException",
    "ValueError",
    "TypeError",
    "RuntimeError",
    "KeyError",
    "IndexError",
    "LookupError",
    "ArithmeticError",
}

#: ndarray methods that mutate the array in place.
_INPLACE_METHODS = {
    "fill",
    "sort",
    "partition",
    "put",
    "resize",
    "setfield",
    "setflags",
    "itemset",
    "byteswap",
}


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"]; empty when not a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _imported_modules(tree: ast.Module) -> set[str]:
    """Top-level module names bound by plain ``import`` statements."""
    modules: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                modules.add(alias.asname or alias.name.split(".")[0])
    return modules


def _from_imports(tree: ast.Module, module: str) -> set[str]:
    """Names bound by ``from <module> import ...`` statements."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


@register_rule
class UnseededRandomness(Rule):
    """REP001: every random stream must be constructed from an explicit seed.

    A reproduction is only a reproduction if two runs agree; the repo's
    convention (see ``repro.storage.placement`` and the workload
    generators) is that randomness always flows from
    ``np.random.default_rng(seed)`` with a caller-supplied seed.  This
    rule flags ``default_rng()``/``Generator``-family constructors
    called without arguments, any use of numpy's implicit global stream
    (``np.random.seed``, ``np.random.randint``, ...), and the stdlib
    ``random`` module's global functions.
    """

    code = "REP001"
    summary = "unseeded or global-state randomness"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        stdlib_random = "random" in _imported_modules(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if len(chain) >= 2 and chain[-2] == "random" and chain[0] in ("np", "numpy"):
                attr = chain[-1]
                if attr in _SEEDABLE_RNG:
                    if not node.args and not node.keywords:
                        yield ctx.diagnostic(
                            node,
                            self.code,
                            f"np.random.{attr}() without an explicit seed; "
                            "pass a seed so runs are reproducible",
                        )
                else:
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"np.random.{attr} uses numpy's global random state; "
                        "use np.random.default_rng(seed) instead",
                    )
            elif stdlib_random and len(chain) == 2 and chain[0] == "random":
                attr = chain[1]
                if attr in ("Random", "SystemRandom"):
                    if attr == "SystemRandom" or (not node.args and not node.keywords):
                        yield ctx.diagnostic(
                            node,
                            self.code,
                            f"random.{attr} without a deterministic seed",
                        )
                else:
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"random.{attr} draws from the global stdlib stream; "
                        "use a seeded generator",
                    )


@register_rule
class WallClockAndSetOrder(Rule):
    """REP002: no wall-clock reads or set-iteration feeding network state.

    Timing belongs to ``repro/timing`` (the calibrated model) and
    ``repro/perf`` (the benchmark harness); a clock read anywhere else
    leaks nondeterminism into values the engine promises are
    bit-identical across runs.  Likewise, python ``set`` iteration order
    is seeded per process, so a ``for`` loop over a set that sends
    messages or touches a ledger produces run-dependent inbox order.
    """

    code = "REP002"
    summary = "wall-clock read or set-iteration order feeding network state"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        exempt = ctx.in_subtree("repro/timing/", "repro/perf/")
        clock_names = _from_imports(ctx.tree, "time") & _CLOCK_ATTRS
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and not exempt:
                chain = _attr_chain(node.func)
                if (
                    len(chain) == 2
                    and chain[0] == "time"
                    and chain[1] in _CLOCK_ATTRS
                ) or (len(chain) == 1 and chain[0] in clock_names):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"clock read {'.'.join(chain)}() outside repro/timing "
                        "and repro/perf; timing must flow through the "
                        "calibrated model",
                    )
                elif len(chain) >= 2 and chain[-1] in ("now", "utcnow", "today") and (
                    "datetime" in chain or "date" in chain
                ):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"wall-clock read {'.'.join(chain)}() in library code",
                    )
            if isinstance(node, ast.For) and self._iterates_set(node.iter):
                if self._feeds_network(node.body):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        "iterating a set to send messages or record ledger "
                        "state; set order is per-process — sort first",
                    )

    @staticmethod
    def _iterates_set(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "set"
        )

    @staticmethod
    def _feeds_network(body: list[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    chain = _attr_chain(node.func)
                    if chain and chain[-1] in ("send", "send_batches", "record"):
                        return True
                if isinstance(node, ast.Attribute) and node.attr == "ledger":
                    return True
                if isinstance(node, ast.Name) and node.id == "ledger":
                    return True
        return False


@register_rule
class SendLaneBypass(Rule):
    """REP003: sends must reach the network where lane staging can see them.

    During an open phase, determinism rests on every task's sends being
    staged in its bound :class:`~repro.cluster.network.SendLane` and
    committed at the barrier in task order.  Two syntactic shapes defeat
    that: (a) touching the network's private spool (``_inboxes``,
    ``_phase_lanes``) from outside the network module, and (b) a closure
    that calls ``.send``/``.send_batches`` inside an enclosing function
    that never routes work through ``run_phase`` (or binds a lane
    itself) — if such a closure ever runs on a pool thread while a phase
    is open, its sends commit immediately and the barrier no longer
    orders them.
    """

    code = "REP003"
    summary = "network send can bypass SendLane staging"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        is_network_module = ctx.in_subtree("repro/cluster/network.py")
        if not is_network_module:
            for node in ast.walk(ctx.tree):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr in ("_inboxes", "_phase_lanes")
                    # self._phase_lanes is a class managing its own lanes
                    # (ExecutionProfile), not a bypass of the network's.
                    and not (
                        isinstance(node.value, ast.Name) and node.value.id == "self"
                    )
                ):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"direct access to Network.{node.attr} bypasses "
                        "SendLane staging and the phase barrier",
                    )
        yield from self._check_closures(ctx, ctx.tree, enclosing=[])

    def _check_closures(
        self, ctx: FileContext, node: ast.AST, enclosing: list[ast.AST]
    ) -> Iterator[Diagnostic]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if len(enclosing) >= 1:  # nested def: a phase-task closure
                    if not any(self._stages_lanes(outer) for outer in enclosing):
                        for send in self._direct_sends(child):
                            yield ctx.diagnostic(
                                send,
                                self.code,
                                "closure sends without the enclosing function "
                                "running it via run_phase/bind_lane; if this "
                                "runs during an open phase the send skips "
                                "SendLane staging",
                            )
                yield from self._check_closures(ctx, child, enclosing + [child])
            else:
                yield from self._check_closures(ctx, child, enclosing)

    @staticmethod
    def _stages_lanes(func: ast.AST) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Attribute) and node.attr in (
                "run_phase",
                "bind_lane",
            ):
                return True
            if isinstance(node, ast.Name) and node.id in ("run_phase", "bind_lane"):
                return True
        return False

    @staticmethod
    def _direct_sends(func: ast.AST) -> list[ast.Call]:
        sends = []
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if chain and chain[-1] in ("send", "send_batches"):
                    sends.append(node)
        return sends


@register_rule
class BareBuiltinRaise(Rule):
    """REP004: library errors derive from the ``ReproError`` hierarchy.

    Raising bare builtins (``ValueError``, ``KeyError``, ...) makes
    library failures indistinguishable from programming errors at call
    sites.  ``repro.errors`` provides dual-inheritance classes
    (:class:`~repro.errors.ValidationError`,
    :class:`~repro.errors.UnknownKeyError`) so converting a raise never
    breaks callers that catch the builtin.  ``NotImplementedError`` and
    ``AssertionError`` stay legal (abstract hooks, internal checks).
    """

    code = "REP004"
    summary = "bare builtin exception raised in library code"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in _BANNED_RAISES:
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"raise {name} in library code; use the ReproError "
                    "hierarchy (e.g. ValidationError, UnknownKeyError)",
                )


@register_rule
class WriteAfterSend(Rule):
    """REP005: a payload handed to a send is frozen until rebound.

    The network transports payloads zero-copy; mutating an array after
    passing it to ``send``/``send_batches`` rewrites a message already
    in flight (the copy-on-conflict rule of
    :mod:`repro.cluster.network`).  This is a conservative
    intra-function escape check: within one function body, a *name*
    passed as a payload must not be mutated on a later line (subscript
    store, augmented assignment, in-place ndarray method, or ``out=``
    target) unless the name is first rebound to a fresh object.  The
    runtime sanitizer (:mod:`repro.analysis.sanitizer`) covers the
    flow-sensitive cases this rule cannot see.
    """

    code = "REP005"
    summary = "numpy array mutated after being passed to a send"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, func: ast.AST
    ) -> Iterator[Diagnostic]:
        events: list[tuple[int, int, str, str, ast.AST]] = []

        for node in ast.walk(func):
            pos = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
            if isinstance(node, ast.Call):
                payload = self._payload_name(node)
                if payload is not None:
                    events.append((*pos, "send", payload, node))
                for kw in node.keywords:
                    if kw.arg == "out" and isinstance(kw.value, ast.Name):
                        events.append((*pos, "mutate", kw.value.id, node))
                chain = _attr_chain(node.func)
                if (
                    len(chain) >= 2
                    and chain[-1] in _INPLACE_METHODS
                ):
                    events.append((*pos, "mutate", chain[0], node))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for name in self._store_names(target):
                        events.append((*pos, "rebind", name, node))
                    for name in self._subscript_names(target):
                        events.append((*pos, "mutate", name, node))
            elif isinstance(node, ast.AugAssign):
                for name in self._store_names(node.target):
                    events.append((*pos, "mutate", name, node))
                for name in self._subscript_names(node.target):
                    events.append((*pos, "mutate", name, node))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for name in self._store_names(node.target):
                    events.append((*pos, "rebind", name, node))

        events.sort(key=lambda e: (e[0], e[1]))
        sent: dict[str, int] = {}
        for line, _col, kind, name, node in events:
            if kind == "send":
                sent[name] = line
            elif kind == "rebind":
                sent.pop(name, None)
            elif kind == "mutate" and name in sent:
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"{name!r} is mutated after being passed to a send on "
                    f"line {sent[name]}; the payload is in flight zero-copy "
                    "— copy before sending or send a fresh array",
                )

    @staticmethod
    def _payload_name(call: ast.Call) -> str | None:
        chain = _attr_chain(call.func)
        if not chain:
            return None
        arg: ast.AST | None = None
        if chain[-1] == "send":
            for kw in call.keywords:
                if kw.arg == "payload":
                    arg = kw.value
            if arg is None and len(call.args) >= 5:
                arg = call.args[4]
        elif chain[-1] == "send_batches":
            for kw in call.keywords:
                if kw.arg == "batches":
                    arg = kw.value
            if arg is None and len(call.args) >= 3:
                arg = call.args[2]
        if isinstance(arg, ast.Name):
            return arg.id
        return None

    @staticmethod
    def _store_names(target: ast.AST) -> list[str]:
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, (ast.Tuple, ast.List)):
            names = []
            for element in target.elts:
                names.extend(WriteAfterSend._store_names(element))
            return names
        return []

    @staticmethod
    def _subscript_names(target: ast.AST) -> list[str]:
        if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
            return [target.value.id]
        if isinstance(target, (ast.Tuple, ast.List)):
            names = []
            for element in target.elts:
                names.extend(WriteAfterSend._subscript_names(element))
            return names
        return []


@register_rule
class SwallowedException(Rule):
    """REP006: broad exception handlers must re-raise (or narrow).

    Fault tolerance lives on error signals: a dropped message, a dead
    worker, or an exhausted retry budget surfaces as a typed exception
    that recovery code catches *specifically*.  A bare ``except:`` or a
    blanket ``except Exception``/``except BaseException`` whose body
    never re-raises silently converts those signals into wrong answers
    — exactly the failure mode a chaos suite cannot distinguish from
    success.  This rule flags such handlers; legitimate firewalls
    (e.g. a CLI's top-level reporter) either catch ``ReproError`` or
    carry a visible ``# repro: noqa[REP006]`` waiver.
    """

    code = "REP006"
    summary = "broad exception handler swallows the error"

    _BROAD = {"Exception", "BaseException"}

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            label = self._broad_label(node.type)
            if label is None:
                continue
            if any(isinstance(inner, ast.Raise) for stmt in node.body
                   for inner in ast.walk(stmt)):
                continue
            yield ctx.diagnostic(
                node,
                self.code,
                f"{label} without a re-raise swallows the error; catch the "
                "specific exception (ReproError subclasses) or re-raise",
            )

    @classmethod
    def _broad_label(cls, annotation: ast.AST | None) -> str | None:
        """The offending handler's label, or None when it is narrow."""
        if annotation is None:
            return "bare 'except:'"
        names = []
        if isinstance(annotation, ast.Tuple):
            names = [getattr(el, "id", None) for el in annotation.elts]
        elif isinstance(annotation, ast.Name):
            names = [annotation.id]
        broad = sorted(set(names) & cls._BROAD)
        if broad:
            return f"'except {broad[0]}'"
        return None


# ---------------------------------------------------------------------------
# Whole-package dataflow rules (REP007–REP011).
#
# These run over the PackageIndex built by repro.analysis.dataflow: they
# see the call graph and the inferred task contexts, so "reachable from
# a phase task" is a real property here, not a per-file guess.  Imports
# are function-local to keep module import order acyclic (engine imports
# this module to populate the registries; dataflow imports engine).
# ---------------------------------------------------------------------------


def _function_items(index) -> list[tuple[str, object]]:
    """(qualname, FunctionInfo) pairs in deterministic order."""
    return sorted(index.functions.items())


@register_dataflow_rule
class UnsynchronizedGlobalMutation(DataflowRule):
    """REP007: module globals mutated from task context need a lock.

    A phase task, kernel subtask, or service driver thread runs
    concurrently with its siblings; a mutation of module-level mutable
    state (dict/list/set globals, or any ``global``-declared rebind or
    augmented assign) from such a function is a data race unless every
    access happens under a lock.  Thread-local state
    (``threading.local()``) and lock objects themselves are exempt, as
    is any mutation lexically inside a ``with <lock>:`` block.
    """

    code = "REP007"
    summary = "module global mutated from task context without a lock"

    def check_package(self, index) -> Iterator[Diagnostic]:
        from .contexts import (
            declared_globals,
            iter_mutations,
            local_names,
            lock_held_map,
        )

        contexts = index.task_contexts()
        for qual in sorted(contexts.task):
            info = index.functions[qual]
            module = index.modules[info.module]
            declared = declared_globals(info)
            locals_ = local_names(info)
            held = None
            for mutation in iter_mutations(info):
                head = mutation.chain[0]
                if head in ("self", "cls"):
                    continue
                var = module.globals.get(head)
                if var is None or var.kind in ("lock", "tls"):
                    continue
                if mutation.kind in ("assign", "augassign"):
                    if len(mutation.chain) != 1 or head not in declared:
                        continue
                elif mutation.kind in ("setitem", "delitem", "method"):
                    if var.kind != "mutable":
                        continue
                    if head in locals_ and head not in declared:
                        continue
                else:
                    continue
                if held is None:
                    held = lock_held_map(index, info)
                if held.get(id(mutation.node)):
                    continue
                kinds = "/".join(contexts.kinds_of(qual)) or "task"
                yield module.ctx.diagnostic(
                    mutation.node,
                    self.code,
                    f"{qual} runs in {kinds} context and mutates module "
                    f"global {head!r} without holding a lock; guard the "
                    "access or make the state thread-local",
                )


@register_dataflow_rule
class ScratchKeyNamespace(DataflowRule):
    """REP008: ``ExecutionContext.scratch`` keys must be namespaced.

    Since the serve layer runs many queries over shared compiled
    operators, per-run state lives on ``ctx.scratch`` — a dict shared by
    *every operator in the plan*.  A bare literal key (``"build"``)
    silently collides the moment two operators pick the same word; the
    convention is a namespaced literal (``"join:build"``) or a dynamic
    key carrying the operator identity (``("join", self.index)``,
    ``ctx.state(self.index)``).  This rule flags non-namespaced string
    literals and any fully-literal key used by more than one class.
    """

    code = "REP008"
    summary = "non-namespaced or colliding ExecutionContext.scratch key"

    def check_package(self, index) -> Iterator[Diagnostic]:
        sites: list[tuple[object, object, str | None, object, object]] = []
        for name in sorted(index.modules):
            module = index.modules[name]
            for owner, key, anchor in self._scratch_keys(module.ctx.tree):
                sites.append((module, owner, *self._key_literal(key), anchor))

        owners_by_literal: dict[object, set[tuple[str, str | None]]] = {}
        for module, owner, kind, literal, _anchor in sites:
            if kind == "literal":
                owners_by_literal.setdefault(literal, set()).add(
                    (module.name, owner)
                )

        for module, owner, kind, literal, anchor in sites:
            if kind != "literal":
                continue
            if len(owners_by_literal[literal]) > 1:
                yield module.ctx.diagnostic(
                    anchor,
                    self.code,
                    f"scratch key {literal!r} is used by multiple operators "
                    "(" + ", ".join(
                        sorted(
                            f"{mod}.{cls}" if cls else mod
                            for mod, cls in owners_by_literal[literal]
                        )
                    )
                    + "); shared scratch keys collide across a plan",
                )
            elif isinstance(literal, str) and ":" not in literal:
                yield module.ctx.diagnostic(
                    anchor,
                    self.code,
                    f"scratch key {literal!r} is not namespaced; use "
                    "'<operator>:<name>', a (name, self.index) tuple, or "
                    "ctx.state(self.index)",
                )
            elif not isinstance(literal, (str, tuple)):
                yield module.ctx.diagnostic(
                    anchor,
                    self.code,
                    f"scratch key {literal!r} carries no operator identity; "
                    "key scratch entries on a namespaced literal or tuple",
                )

    @staticmethod
    def _scratch_keys(tree: ast.Module):
        """Yield (owning class or None, key expr, anchor node)."""

        def visit(node: ast.AST, owner: str | None):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    yield from visit(child, child.name)
                    continue
                if isinstance(child, ast.Subscript):
                    chain = _attr_chain(child.value)
                    if chain and chain[-1] == "scratch":
                        yield owner, child.slice, child
                elif isinstance(child, ast.Call) and isinstance(
                    child.func, ast.Attribute
                ):
                    if child.func.attr in ("get", "setdefault", "pop"):
                        chain = _attr_chain(child.func.value)
                        if chain and chain[-1] == "scratch" and child.args:
                            yield owner, child.args[0], child
                yield from visit(child, owner)

        yield from visit(tree, None)

    @staticmethod
    def _key_literal(key: ast.AST) -> tuple[str, object]:
        """("literal", value) for fully-constant keys, else ("dynamic", None)."""
        if isinstance(key, ast.Constant):
            return "literal", key.value
        if isinstance(key, ast.Tuple) and all(
            isinstance(element, ast.Constant) for element in key.elts
        ):
            return "literal", tuple(element.value for element in key.elts)
        return "dynamic", None


@register_dataflow_rule
class LockAsymmetry(DataflowRule):
    """REP009: state guarded by a lock anywhere must be guarded everywhere.

    In a class that owns a lock (a ``self._lock``-style attribute), two
    access shapes defeat the guard: mutating a container attribute
    (``self._entries[k] = v``, ``self.leases += 1``) outside any
    ``with``-lock block, and *reading* an attribute outside the lock
    when its writers hold it — the read can observe a torn or stale
    snapshot (the warm-pool ``stats()`` bug).  ``__init__`` is exempt:
    the object is not yet published.
    """

    code = "REP009"
    summary = "cache/pool structure accessed outside its owning lock"

    def check_package(self, index) -> Iterator[Diagnostic]:
        from .contexts import iter_mutations, lock_held_map

        for cls_qual in sorted(index.classes):
            cls = index.classes[cls_qual]
            if not cls.lock_attrs:
                continue
            module = index.modules[cls.module]
            methods = {
                method: index.functions[qual]
                for method, qual in sorted(cls.methods.items())
                if qual in index.functions
            }
            container_attrs = self._container_attrs(cls)

            guarded: set[str] = set()
            mutations = {}
            held_maps = {}
            for method, info in methods.items():
                held_maps[method] = lock_held_map(index, info)
                sites = [
                    mutation
                    for mutation in iter_mutations(info)
                    if len(mutation.chain) >= 2 and mutation.chain[0] == "self"
                ]
                mutations[method] = sites
                if method != "__init__":
                    for mutation in sites:
                        if held_maps[method].get(id(mutation.node)):
                            guarded.add(mutation.chain[1])
            guarded -= cls.lock_attrs

            for method, info in methods.items():
                if method == "__init__":
                    continue
                held = held_maps[method]
                flagged: set[tuple[str, int]] = set()
                for mutation in mutations[method]:
                    attr = mutation.chain[1]
                    if attr not in container_attrs and attr not in guarded:
                        continue
                    if held.get(id(mutation.node)):
                        continue
                    line = getattr(mutation.node, "lineno", 0)
                    if (attr, line) in flagged:
                        continue
                    flagged.add((attr, line))
                    yield module.ctx.diagnostic(
                        mutation.node,
                        self.code,
                        f"{cls.name}.{method} mutates self.{attr} outside "
                        f"the lock that guards it elsewhere in {cls.name}; "
                        "take the owning lock around the mutation",
                    )
                for node, attr in self._self_reads(info):
                    if attr not in guarded or held.get(id(node)):
                        continue
                    line = getattr(node, "lineno", 0)
                    if (attr, line) in flagged:
                        continue
                    flagged.add((attr, line))
                    yield module.ctx.diagnostic(
                        node,
                        self.code,
                        f"{cls.name}.{method} reads self.{attr} outside the "
                        f"lock its writers hold; the value can be torn or "
                        "stale — snapshot it under the lock",
                    )

    @staticmethod
    def _container_attrs(cls) -> set[str]:
        """``self`` attributes assigned a mutable container in the class."""
        from .dataflow import _classify_value

        attrs: set[str] = set()
        for node in ast.walk(cls.node):
            if not isinstance(node, ast.Assign):
                continue
            if _classify_value(node.value) != "mutable":
                continue
            for target in node.targets:
                chain = _attr_chain(target)
                if len(chain) == 2 and chain[0] == "self":
                    attrs.add(chain[1])
        return attrs

    @staticmethod
    def _self_reads(info):
        """(node, attr) for every ``self.<attr>`` load in the method."""
        from .contexts import own_nodes

        for node in own_nodes(info.node):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                yield node, node.attr


@register_dataflow_rule
class DriverBlockingCall(DataflowRule):
    """REP010: driver paths must not block without a timeout.

    ``QueryService`` promises per-query deadlines, enforced at operator
    boundaries — a promise an unbounded ``join()``, ``get()``,
    ``wait()``, ``acquire()``, or ``time.sleep`` on the driver path can
    outlast arbitrarily.  Calls that pass a timeout (or any argument,
    for ``join``/``get``/``wait``) are fine; the driver's own top-level
    idle wait (the seed function) is exempt — blocking on the admission
    queue *between* queries is the designed behavior.
    """

    code = "REP010"
    summary = "unbounded blocking call on a QueryService driver path"
    severity = "warning"

    _BLOCKING = {"join", "get", "wait", "acquire"}

    def check_package(self, index) -> Iterator[Diagnostic]:
        contexts = index.task_contexts()
        for qual in sorted(contexts.driver - contexts.driver_seeds):
            info = index.functions[qual]
            module = index.modules[info.module]
            sleep_names = {
                local
                for local, (mod, original) in module.from_imports.items()
                if mod == "time" and original == "sleep"
            }
            from .contexts import own_nodes

            for node in own_nodes(info.node):
                if not isinstance(node, ast.Call):
                    continue
                label = self._blocking_label(node, sleep_names)
                if label is not None:
                    yield module.ctx.diagnostic(
                        node,
                        self.code,
                        f"{qual} runs on a QueryService driver thread; "
                        f"unbounded {label} ignores the per-query deadline "
                        "— pass a timeout derived from the deadline",
                    )

    @classmethod
    def _blocking_label(
        cls, call: ast.Call, sleep_names: set[str]
    ) -> str | None:
        chain = _attr_chain(call.func)
        if not chain:
            return None
        tail = chain[-1]
        dotted = ".".join(chain)
        if tail == "sleep" and (
            (len(chain) >= 2 and chain[-2] == "time")
            or (len(chain) == 1 and chain[0] in sleep_names)
        ):
            return f"{dotted}()"
        kwargs = {kw.arg for kw in call.keywords}
        if "timeout" in kwargs:
            return None
        if call.args:
            return None
        if tail in cls._BLOCKING and tail != "acquire":
            return f"{dotted}()"
        if tail == "acquire" and "blocking" not in kwargs:
            return f"{dotted}()"
        return None


@register_dataflow_rule
class SharedViewWriteAfterHandoff(DataflowRule):
    """REP011: a SharedArray view handed to a task is frozen.

    ``SharedArray`` views alias one buffer across tasks zero-copy; once
    a view is passed to ``run_phase``/``run_chunks``/``.map``/
    ``.submit``, an in-place numpy mutation on the dispatching side
    races the task reading it.  Within one function body, a name bound
    from ``SharedArray(...)`` or a ``.view()`` call must not be mutated
    (subscript store, augmented assign, in-place ndarray method,
    ``out=`` target) on a line after a dispatch call that received it,
    unless rebound to a fresh object first.
    """

    code = "REP011"
    summary = "SharedArray view mutated after handoff to a task"

    def check_package(self, index) -> Iterator[Diagnostic]:
        for qual, info in _function_items(index):
            module = index.modules[info.module]
            yield from self._check_function(index, module, info)

    def _check_function(self, index, module, info) -> Iterator[Diagnostic]:
        from .contexts import dispatch_kind, own_nodes

        events: list[tuple[int, int, str, str, ast.AST]] = []
        for node in own_nodes(info.node):
            pos = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        kind = (
                            "track"
                            if self._is_shared_view(node.value)
                            else "rebind"
                        )
                        events.append((*pos, kind, target.id, node))
                    elif isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        events.append((*pos, "mutate", target.value.id, node))
            elif isinstance(node, ast.AugAssign):
                target = node.target
                if isinstance(target, ast.Name):
                    events.append((*pos, "mutate", target.id, node))
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    events.append((*pos, "mutate", target.value.id, node))
            elif isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if (
                    len(chain) >= 2
                    and chain[-1] in _INPLACE_METHODS
                ):
                    events.append((*pos, "mutate", chain[0], node))
                for kw in node.keywords:
                    if kw.arg == "out" and isinstance(kw.value, ast.Name):
                        events.append((*pos, "mutate", kw.value.id, node))
                if dispatch_kind(node) is not None:
                    for name in self._argument_names(node):
                        events.append((*pos, "handoff", name, node))

        events.sort(key=lambda event: (event[0], event[1]))
        tracked: set[str] = set()
        handed: dict[str, int] = {}
        for line, _col, kind, name, node in events:
            if kind == "track":
                tracked.add(name)
                handed.pop(name, None)
            elif kind == "rebind":
                tracked.discard(name)
                handed.pop(name, None)
            elif kind == "handoff" and name in tracked:
                handed.setdefault(name, line)
            elif kind == "mutate" and name in handed:
                yield module.ctx.diagnostic(
                    node,
                    self.code,
                    f"SharedArray view {name!r} is mutated after being "
                    f"handed to a task on line {handed[name]}; the task "
                    "reads the same buffer — mutate before dispatch or "
                    "hand off a copy",
                )

    @staticmethod
    def _is_shared_view(value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        chain = _attr_chain(value.func)
        if not chain:
            return False
        return chain[-1] in ("SharedArray", "view")

    @staticmethod
    def _argument_names(call: ast.Call) -> set[str]:
        names: set[str] = set()
        for arg in (*call.args, *(kw.value for kw in call.keywords)):
            for node in ast.walk(arg):
                if isinstance(node, ast.Name):
                    names.add(node.id)
        return names
