"""AST-walking rule engine: registry, diagnostics, suppression, reporters.

The engine is deliberately small and project-specific.  A rule is a
class with a ``code`` (``REPnnn``), a one-line ``summary``, and a
``check`` method that walks one file's AST and yields
:class:`Diagnostic` objects.  :func:`lint_paths` runs every registered
rule over a file tree, drops diagnostics suppressed by
``# repro: noqa[CODE]`` comments, and returns a :class:`LintReport`
that renders as text (``path:line: CODE message``) or JSON.

Suppression syntax, on the flagged line::

    destinations = set(nodes)  # repro: noqa[REP002] order normalized below
    # repro: noqa[REP001,REP005]   -- several codes
    # repro: noqa                  -- blanket (all codes); use sparingly

Suppressions are counted in the report so a creeping pile of waivers
stays visible.
"""

from __future__ import annotations

import abc
import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ..errors import AnalysisError

__all__ = [
    "Diagnostic",
    "FileContext",
    "Rule",
    "LintReport",
    "register_rule",
    "all_rules",
    "lint_source",
    "lint_file",
    "lint_paths",
]

_NOQA = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]*)\])?")


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule violation anchored to a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The canonical one-line text form."""
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


class FileContext:
    """Everything a rule may inspect about one source file."""

    def __init__(self, path: str | Path, source: str):
        self.path = str(path)
        self.source = source
        self.lines = source.splitlines()
        try:
            self.tree = ast.parse(source, filename=self.path)
        except SyntaxError as exc:
            raise AnalysisError(f"{self.path}: cannot parse: {exc}") from exc
        # Normalized with forward slashes so rules can match subtrees
        # (e.g. "repro/timing/") on any platform.
        self.posix_path = Path(self.path).as_posix()

    def in_subtree(self, *fragments: str) -> bool:
        """True if this file lives under any of the given path fragments."""
        return any(fragment in self.posix_path for fragment in fragments)

    def diagnostic(self, node: ast.AST, code: str, message: str) -> Diagnostic:
        """Build a diagnostic anchored at ``node``."""
        return Diagnostic(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        )

    def suppressed(self, diagnostic: Diagnostic) -> bool:
        """True if the flagged line carries a matching noqa comment."""
        if not 1 <= diagnostic.line <= len(self.lines):
            return False
        match = _NOQA.search(self.lines[diagnostic.line - 1])
        if match is None:
            return False
        codes = match.group("codes")
        if codes is None:
            return True  # blanket "# repro: noqa"
        allowed = {c.strip() for c in codes.split(",") if c.strip()}
        return diagnostic.code in allowed


class Rule(abc.ABC):
    """One invariant, checked per file."""

    #: Stable diagnostic code, ``REPnnn``.
    code: str = ""
    #: One-line description shown in reports and the rule catalogue.
    summary: str = ""

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Yield a diagnostic for every violation found in ``ctx``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.code}: {self.summary}>"


_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule by its code."""
    instance = cls()
    if not instance.code:
        raise AnalysisError(f"rule {cls.__name__} has no code")
    if instance.code in _REGISTRY:
        raise AnalysisError(f"duplicate rule code {instance.code}")
    _REGISTRY[instance.code] = instance
    return cls


def all_rules() -> dict[str, Rule]:
    """The registered rule catalogue, keyed by code."""
    from . import rules  # noqa: F401  -- importing registers the rule set

    return dict(_REGISTRY)


@dataclass
class LintReport:
    """Outcome of one lint run over a set of files."""

    diagnostics: list[Diagnostic]
    files_scanned: int
    suppressed: int

    @property
    def clean(self) -> bool:
        """True when no unsuppressed diagnostics were found."""
        return not self.diagnostics

    def by_code(self) -> dict[str, int]:
        """Unsuppressed diagnostic counts per rule code."""
        counts: dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> dict:
        """Compact machine-readable summary (the BENCH ``analysis`` section)."""
        return {
            "files_scanned": self.files_scanned,
            "diagnostics": len(self.diagnostics),
            "suppressed": self.suppressed,
            "by_code": self.by_code(),
            "rules": sorted(all_rules()),
            "clean": self.clean,
        }

    def render_text(self) -> str:
        """Text report: one line per diagnostic plus a closing summary."""
        lines = [d.render() for d in sorted(self.diagnostics)]
        counts = ", ".join(f"{code}={n}" for code, n in self.by_code().items())
        lines.append(
            f"{len(self.diagnostics)} problem(s) in {self.files_scanned} file(s)"
            + (f" [{counts}]" if counts else "")
            + (f", {self.suppressed} suppressed" if self.suppressed else "")
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        """JSON report: summary plus the full diagnostic list."""
        payload = dict(self.summary())
        payload["findings"] = [d.to_dict() for d in sorted(self.diagnostics)]
        return json.dumps(payload, indent=2)


def lint_source(
    source: str, path: str | Path = "<string>", rules: Sequence[Rule] | None = None
) -> tuple[list[Diagnostic], int]:
    """Lint one source string; returns (diagnostics, suppressed count)."""
    ctx = FileContext(path, source)
    active = list(rules) if rules is not None else list(all_rules().values())
    kept: list[Diagnostic] = []
    suppressed = 0
    for rule in active:
        for diagnostic in rule.check(ctx):
            if ctx.suppressed(diagnostic):
                suppressed += 1
            else:
                kept.append(diagnostic)
    kept.sort()
    return kept, suppressed


def lint_file(
    path: str | Path, rules: Sequence[Rule] | None = None
) -> tuple[list[Diagnostic], int]:
    """Lint one file on disk; returns (diagnostics, suppressed count)."""
    file_path = Path(path)
    try:
        source = file_path.read_text()
    except OSError as exc:
        raise AnalysisError(f"cannot read {path}: {exc}") from exc
    return lint_source(source, file_path, rules)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            found.update(path.rglob("*.py"))
        elif path.suffix == ".py" and path.exists():
            found.add(path)
        else:
            raise AnalysisError(f"lint target {entry} is not a python file or directory")
    return sorted(found)


def lint_paths(
    paths: Iterable[str | Path], rules: Sequence[Rule] | None = None
) -> LintReport:
    """Run the rule set over files and directory trees."""
    files = iter_python_files(paths)
    diagnostics: list[Diagnostic] = []
    suppressed = 0
    for file_path in files:
        found, skipped = lint_file(file_path, rules)
        diagnostics.extend(found)
        suppressed += skipped
    return LintReport(
        diagnostics=diagnostics, files_scanned=len(files), suppressed=suppressed
    )
