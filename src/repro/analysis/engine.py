"""AST-walking rule engine: registry, diagnostics, suppression, reporters.

The engine is deliberately small and project-specific.  A rule is a
class with a ``code`` (``REPnnn``), a one-line ``summary``, and a
``check`` method that walks one file's AST and yields
:class:`Diagnostic` objects.  :func:`lint_paths` runs every registered
rule over a file tree, drops diagnostics suppressed by
``# repro: noqa[CODE]`` comments, and returns a :class:`LintReport`
that renders as text (``path:line: CODE message``), JSON, or SARIF.

Two rule kinds share the engine:

:class:`Rule`
    Per-file checks (REP001–REP006): one AST, no knowledge of the rest
    of the package.

:class:`DataflowRule`
    Whole-package checks (REP007–REP011): run once against a
    :class:`~repro.analysis.dataflow.PackageIndex` (symbol tables, call
    graph, task contexts) built over every scanned file, enabled with
    ``lint_paths(..., dataflow=True)`` / ``python -m repro lint
    --dataflow``.

Suppression syntax, on any line of the flagged statement (including a
decorator line or the trailing line of a multi-line call)::

    destinations = set(nodes)  # repro: noqa[REP002] order normalized below
    # repro: noqa[REP001,REP005]   -- several codes
    # repro: noqa                  -- blanket (all codes); use sparingly

Suppressions are counted in the report so a creeping pile of waivers
stays visible.  Pre-existing findings can also be *baselined*
(``lint_paths(..., baseline="lint-baseline.json")``): matched findings
are counted separately and do not gate, so a new rule can land before
every legacy violation is fixed while still failing on regressions.
"""

from __future__ import annotations

import abc
import ast
import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from ..errors import AnalysisError

__all__ = [
    "Diagnostic",
    "FileContext",
    "Rule",
    "DataflowRule",
    "LintReport",
    "LintCache",
    "register_rule",
    "register_dataflow_rule",
    "all_rules",
    "all_dataflow_rules",
    "load_baseline",
    "write_baseline",
    "lint_source",
    "lint_file",
    "lint_paths",
]

_NOQA = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]*)\])?")


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule violation anchored to a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The canonical one-line text form."""
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Diagnostic":
        """Inverse of :meth:`to_dict` (used by the lint cache)."""
        return cls(
            path=payload["path"],
            line=payload["line"],
            col=payload["col"],
            code=payload["code"],
            message=payload["message"],
        )


class FileContext:
    """Everything a rule may inspect about one source file."""

    def __init__(self, path: str | Path, source: str):
        self.path = str(path)
        self.source = source
        self.lines = source.splitlines()
        try:
            self.tree = ast.parse(source, filename=self.path)
        except SyntaxError as exc:
            raise AnalysisError(f"{self.path}: cannot parse: {exc}") from exc
        # Normalized with forward slashes so rules can match subtrees
        # (e.g. "repro/timing/") on any platform.
        self.posix_path = Path(self.path).as_posix()
        self._spans: dict[int, tuple[int, int]] | None = None

    def in_subtree(self, *fragments: str) -> bool:
        """True if this file lives under any of the given path fragments."""
        return any(fragment in self.posix_path for fragment in fragments)

    def diagnostic(self, node: ast.AST, code: str, message: str) -> Diagnostic:
        """Build a diagnostic anchored at ``node``."""
        return Diagnostic(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        )

    def _statement_spans(self) -> dict[int, tuple[int, int]]:
        """Line -> (first, last) line of its innermost enclosing statement.

        A compound statement (``def``, ``for``, ``with``, ...) spans only
        its *header* — decorator lines through the line before its first
        body statement — so a noqa inside a function body never blankets
        sibling lines.  Simple statements span every physical line they
        occupy, which is what lets a trailing-line noqa suppress a
        diagnostic anchored at the first line of a multi-line call.
        """
        if self._spans is None:
            spans: dict[int, tuple[int, int]] = {}

            def visit(node: ast.AST) -> None:
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, ast.stmt):
                        start = child.lineno
                        decorators = getattr(child, "decorator_list", None) or []
                        if decorators:
                            start = min(start, min(d.lineno for d in decorators))
                        end = getattr(child, "end_lineno", None) or child.lineno
                        inner: list[ast.AST] = []
                        for name in ("body", "orelse", "finalbody", "handlers"):
                            inner.extend(getattr(child, name, None) or [])
                        if inner:
                            first = min(getattr(s, "lineno", end) for s in inner)
                            end = max(start, min(end, first - 1))
                        for line in range(start, end + 1):
                            spans[line] = (start, end)
                    visit(child)

            visit(self.tree)
            self._spans = spans
        return self._spans

    def suppressed(self, diagnostic: Diagnostic) -> bool:
        """True if the flagged statement carries a matching noqa comment.

        Every line of the diagnostic's enclosing statement is checked,
        so ``# repro: noqa[CODE]`` on a decorator or on any line of a
        multi-line statement suppresses diagnostics anchored anywhere in
        that statement.
        """
        start, end = self._statement_spans().get(
            diagnostic.line, (diagnostic.line, diagnostic.line)
        )
        for line in range(max(start, 1), min(end, len(self.lines)) + 1):
            match = _NOQA.search(self.lines[line - 1])
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                return True  # blanket "# repro: noqa"
            allowed = {c.strip() for c in codes.split(",") if c.strip()}
            if diagnostic.code in allowed:
                return True
        return False


class Rule(abc.ABC):
    """One invariant, checked per file."""

    #: Stable diagnostic code, ``REPnnn``.
    code: str = ""
    #: One-line description shown in reports and the rule catalogue.
    summary: str = ""
    #: SARIF severity: ``error`` (default), ``warning``, or ``note``.
    severity: str = "error"

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Yield a diagnostic for every violation found in ``ctx``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.code}: {self.summary}>"


class DataflowRule(abc.ABC):
    """One cross-module invariant, checked over a whole package at once.

    Dataflow rules see a :class:`~repro.analysis.dataflow.PackageIndex`
    — per-module symbol tables, the call graph, and the inferred task
    contexts — instead of a single file, so they can reason about state
    shared *across* function and module boundaries (module globals
    mutated from phase tasks, scratch-key collisions between operators,
    lock coverage of cache internals).  They run only when a lint is
    invoked with ``dataflow=True``.
    """

    #: Stable diagnostic code, ``REPnnn``.
    code: str = ""
    #: One-line description shown in reports and the rule catalogue.
    summary: str = ""
    #: SARIF severity: ``error`` (default), ``warning``, or ``note``.
    severity: str = "error"

    @abc.abstractmethod
    def check_package(self, index: Any) -> Iterator[Diagnostic]:
        """Yield a diagnostic for every violation found in the package."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DataflowRule {self.code}: {self.summary}>"


_REGISTRY: dict[str, Rule] = {}
_DATAFLOW_REGISTRY: dict[str, DataflowRule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule by its code."""
    instance = cls()
    if not instance.code:
        raise AnalysisError(f"rule {cls.__name__} has no code")
    if instance.code in _REGISTRY or instance.code in _DATAFLOW_REGISTRY:
        raise AnalysisError(f"duplicate rule code {instance.code}")
    _REGISTRY[instance.code] = instance
    return cls


def register_dataflow_rule(cls: type[DataflowRule]) -> type[DataflowRule]:
    """Class decorator: instantiate and register a dataflow rule."""
    instance = cls()
    if not instance.code:
        raise AnalysisError(f"rule {cls.__name__} has no code")
    if instance.code in _REGISTRY or instance.code in _DATAFLOW_REGISTRY:
        raise AnalysisError(f"duplicate rule code {instance.code}")
    _DATAFLOW_REGISTRY[instance.code] = instance
    return cls


def all_rules() -> dict[str, Rule]:
    """The registered per-file rule catalogue, keyed by code."""
    from . import rules  # noqa: F401  -- importing registers the rule set

    return dict(_REGISTRY)


def all_dataflow_rules() -> dict[str, DataflowRule]:
    """The registered whole-package rule catalogue, keyed by code."""
    from . import rules  # noqa: F401  -- importing registers the rule set

    return dict(_DATAFLOW_REGISTRY)


def _severity_of(code: str) -> str:
    """SARIF severity for a rule code (``error`` when unknown)."""
    rule = all_rules().get(code) or all_dataflow_rules().get(code)
    return getattr(rule, "severity", "error")


@dataclass
class LintReport:
    """Outcome of one lint run over a set of files."""

    diagnostics: list[Diagnostic]
    files_scanned: int
    suppressed: int
    #: Findings matched (and absorbed) by a baseline file.
    baselined: int = 0
    #: Analyzer statistics when the dataflow pass ran (else ``None``).
    dataflow: dict | None = None

    @property
    def clean(self) -> bool:
        """True when no unsuppressed, unbaselined diagnostics were found."""
        return not self.diagnostics

    def by_code(self) -> dict[str, int]:
        """Unsuppressed diagnostic counts per rule code."""
        counts: dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> dict:
        """Compact machine-readable summary (the BENCH ``analysis`` section)."""
        payload = {
            "files_scanned": self.files_scanned,
            "diagnostics": len(self.diagnostics),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "by_code": self.by_code(),
            "rules": sorted(all_rules()),
            "clean": self.clean,
        }
        if self.dataflow is not None:
            payload["dataflow_rules"] = sorted(all_dataflow_rules())
            payload["dataflow"] = dict(self.dataflow)
        return payload

    def render_text(self) -> str:
        """Text report: one line per diagnostic plus a closing summary."""
        lines = [d.render() for d in sorted(self.diagnostics)]
        counts = ", ".join(f"{code}={n}" for code, n in self.by_code().items())
        lines.append(
            f"{len(self.diagnostics)} problem(s) in {self.files_scanned} file(s)"
            + (f" [{counts}]" if counts else "")
            + (f", {self.suppressed} suppressed" if self.suppressed else "")
            + (f", {self.baselined} baselined" if self.baselined else "")
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        """JSON report: summary plus the full diagnostic list."""
        payload = dict(self.summary())
        payload["findings"] = [d.to_dict() for d in sorted(self.diagnostics)]
        return json.dumps(payload, indent=2)

    def render_sarif(self) -> str:
        """SARIF 2.1.0 report for GitHub code-scanning upload."""
        levels = {"error": "error", "warning": "warning", "note": "note"}
        catalogue: dict[str, Any] = {**all_rules(), **all_dataflow_rules()}
        rules_meta = [
            {
                "id": code,
                "shortDescription": {"text": rule.summary},
                "defaultConfiguration": {
                    "level": levels.get(rule.severity, "error")
                },
            }
            for code, rule in sorted(catalogue.items())
        ]
        results = [
            {
                "ruleId": d.code,
                "level": levels.get(_severity_of(d.code), "error"),
                "message": {"text": d.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": Path(d.path).as_posix()},
                            "region": {
                                "startLine": d.line,
                                "startColumn": d.col + 1,
                            },
                        }
                    }
                ],
            }
            for d in sorted(self.diagnostics)
        ]
        payload = {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "informationUri": (
                                "https://github.com/track-join/repro"
                            ),
                            "rules": rules_meta,
                        }
                    },
                    "results": results,
                }
            ],
        }
        return json.dumps(payload, indent=2)


def load_baseline(path: str | Path) -> dict[tuple[str, str, str], int]:
    """Load a baseline file into a finding multiset.

    The format is the one :func:`write_baseline` emits:
    ``{"version": 1, "findings": [{"path", "code", "message"}, ...]}``.
    Matching is a multiset over ``(posix path, code, message)`` — line
    numbers are deliberately excluded so unrelated edits above a
    baselined finding do not un-baseline it.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
    findings = payload.get("findings") if isinstance(payload, dict) else payload
    if not isinstance(findings, list):
        raise AnalysisError(f"baseline {path} has no findings list")
    counts: dict[tuple[str, str, str], int] = {}
    for item in findings:
        key = (
            Path(str(item.get("path", ""))).as_posix(),
            str(item.get("code", "")),
            str(item.get("message", "")),
        )
        counts[key] = counts.get(key, 0) + 1
    return counts


def write_baseline(report: LintReport, path: str | Path) -> None:
    """Write the report's current findings as a baseline file."""
    payload = {
        "version": 1,
        "findings": [
            {
                "path": Path(d.path).as_posix(),
                "code": d.code,
                "message": d.message,
            }
            for d in sorted(report.diagnostics)
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def lint_source(
    source: str, path: str | Path = "<string>", rules: Sequence[Rule] | None = None
) -> tuple[list[Diagnostic], int]:
    """Lint one source string; returns (diagnostics, suppressed count)."""
    ctx = FileContext(path, source)
    active = list(rules) if rules is not None else list(all_rules().values())
    kept: list[Diagnostic] = []
    suppressed = 0
    for rule in active:
        for diagnostic in rule.check(ctx):
            if ctx.suppressed(diagnostic):
                suppressed += 1
            else:
                kept.append(diagnostic)
    kept.sort()
    return kept, suppressed


def lint_file(
    path: str | Path, rules: Sequence[Rule] | None = None
) -> tuple[list[Diagnostic], int]:
    """Lint one file on disk; returns (diagnostics, suppressed count)."""
    file_path = Path(path)
    try:
        source = file_path.read_text()
    except OSError as exc:
        raise AnalysisError(f"cannot read {path}: {exc}") from exc
    return lint_source(source, file_path, rules)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            found.update(path.rglob("*.py"))
        elif path.suffix == ".py" and path.exists():
            found.add(path)
        else:
            raise AnalysisError(f"lint target {entry} is not a python file or directory")
    return sorted(found)


class LintCache:
    """On-disk cache of per-file (and package-level) rule results.

    Entries are keyed on ``path | mtime_ns | size | rules-version`` so
    any edit, or any change to the rule catalogue
    (:data:`repro.analysis.rules.RULES_VERSION`), invalidates exactly
    the affected results.  ``save()`` rewrites the index with only the
    keys touched this run, so stale generations prune themselves.
    Caching is best-effort: a read-only tree lints fine, it just pays
    full price every time.
    """

    def __init__(self, root: str | Path = ".repro-lint-cache"):
        self.root = Path(root)
        self.index_path = self.root / "cache.json"
        try:
            entries = json.loads(self.index_path.read_text())
        except (OSError, ValueError):
            entries = {}
        self._entries: dict[str, Any] = entries if isinstance(entries, dict) else {}
        self._used: dict[str, Any] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def file_key(path: Path, version: str) -> str | None:
        """Cache key for one file, or None when it cannot be stat'd."""
        try:
            stat = path.stat()
        except OSError:
            return None
        return f"{path.as_posix()}|{stat.st_mtime_ns}|{stat.st_size}|{version}"

    def get(self, key: str) -> Any | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._used[key] = entry
        return entry

    def put(self, key: str, value: Any) -> None:
        self._entries[key] = value
        self._used[key] = value

    def save(self) -> None:
        """Persist the entries touched this run (self-pruning)."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            self.index_path.write_text(json.dumps(self._used))
        except OSError:
            pass


def _rules_version(active: Sequence[Rule]) -> str:
    """Cache-key component covering the rule catalogue in force."""
    from . import rules as catalogue

    codes = ",".join(sorted(rule.code for rule in active))
    flow_codes = ",".join(sorted(_DATAFLOW_REGISTRY))
    return f"{getattr(catalogue, 'RULES_VERSION', '0')}|{codes}|{flow_codes}"


def _run_dataflow(
    files: list[Path],
    roots: Iterable[str | Path],
    cache: LintCache | None,
    version: str,
) -> tuple[dict, list[Diagnostic], int]:
    """The whole-package pass: build the index, run every dataflow rule.

    Returns ``(stats, diagnostics, suppressed)``.  The result is cached
    under a digest of every scanned file's (path, mtime, size), so an
    unchanged tree skips both parsing and analysis.
    """
    from ..timing.clock import wall_clock
    from .dataflow import build_package_index

    start = wall_clock()
    key = None
    if cache is not None:
        digest = hashlib.sha256()
        for file_path in files:
            digest.update((LintCache.file_key(file_path, version) or "?").encode())
        key = f"dataflow|{digest.hexdigest()}"
        entry = cache.get(key)
        if entry is not None:
            stats = dict(entry["stats"])
            stats["wall_seconds"] = round(wall_clock() - start, 6)
            diagnostics = [Diagnostic.from_dict(d) for d in entry["diagnostics"]]
            return stats, diagnostics, entry["suppressed"]
    index = build_package_index(files, roots)
    diagnostics = []
    suppressed = 0
    for rule in all_dataflow_rules().values():
        for diagnostic in rule.check_package(index):
            ctx = index.context_for(diagnostic.path)
            if ctx is not None and ctx.suppressed(diagnostic):
                suppressed += 1
            else:
                diagnostics.append(diagnostic)
    diagnostics.sort()
    contexts = index.task_contexts()
    stats = {
        "modules": len(index.modules),
        "functions": len(index.functions),
        "call_edges": index.edges,
        "task_functions": len(contexts.task),
        "phase_functions": len(contexts.phase),
        "kernel_functions": len(contexts.kernel),
        "driver_functions": len(contexts.driver),
        "wall_seconds": round(wall_clock() - start, 6),
    }
    if cache is not None and key is not None:
        cache.put(
            key,
            {
                "stats": {k: v for k, v in stats.items() if k != "wall_seconds"},
                "diagnostics": [d.to_dict() for d in diagnostics],
                "suppressed": suppressed,
            },
        )
    return stats, diagnostics, suppressed


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
    *,
    dataflow: bool = False,
    baseline: str | Path | dict | None = None,
    cache_dir: str | Path | None = None,
) -> LintReport:
    """Run the rule set over files and directory trees.

    ``dataflow=True`` additionally builds a
    :class:`~repro.analysis.dataflow.PackageIndex` over the scanned
    files and runs the whole-package REP007–REP011 rules.  ``baseline``
    names a JSON file (or a preloaded multiset from
    :func:`load_baseline`) whose findings are absorbed into
    ``report.baselined`` instead of gating.  ``cache_dir`` enables the
    on-disk :class:`LintCache` rooted there.
    """
    paths = list(paths)
    files = iter_python_files(paths)
    active = list(rules) if rules is not None else list(all_rules().values())
    version = _rules_version(active)
    cache = LintCache(cache_dir) if cache_dir is not None else None
    diagnostics: list[Diagnostic] = []
    suppressed = 0
    for file_path in files:
        key = LintCache.file_key(file_path, version) if cache is not None else None
        if cache is not None and key is not None:
            entry = cache.get(key)
            if entry is not None:
                diagnostics.extend(
                    Diagnostic.from_dict(d) for d in entry["diagnostics"]
                )
                suppressed += entry["suppressed"]
                continue
        found, skipped = lint_file(file_path, active)
        diagnostics.extend(found)
        suppressed += skipped
        if cache is not None and key is not None:
            cache.put(
                key,
                {
                    "diagnostics": [d.to_dict() for d in found],
                    "suppressed": skipped,
                },
            )
    dataflow_stats = None
    if dataflow:
        dataflow_stats, flow_diagnostics, flow_suppressed = _run_dataflow(
            files, paths, cache, version
        )
        diagnostics.extend(flow_diagnostics)
        suppressed += flow_suppressed
    if cache is not None:
        cache.save()
    baselined = 0
    if baseline is not None:
        allowance = (
            dict(baseline) if isinstance(baseline, dict) else load_baseline(baseline)
        )
        kept: list[Diagnostic] = []
        for diagnostic in sorted(diagnostics):
            key3 = (
                Path(diagnostic.path).as_posix(),
                diagnostic.code,
                diagnostic.message,
            )
            if allowance.get(key3, 0) > 0:
                allowance[key3] -= 1
                baselined += 1
            else:
                kept.append(diagnostic)
        diagnostics = kept
    diagnostics.sort()
    return LintReport(
        diagnostics=diagnostics,
        files_scanned=len(files),
        suppressed=suppressed,
        baselined=baselined,
        dataflow=dataflow_stats,
    )
