"""Whole-package dataflow analysis: symbol tables, call graph, contexts.

The per-file rules (REP001–REP006) reason about one AST at a time; the
concurrency invariants introduced by the kernel thread pool (PR 7) and
the concurrent query service (PR 8) are invisible at that granularity —
whether a mutation races depends on *which thread reaches it*, and that
is a property of the call graph, not of any single file.  This module
builds the package-level picture the REP007–REP011 rules need:

:class:`PackageIndex` / :func:`build_package_index`
    Parses every scanned file once and records, per module: imports
    (absolute and relative, resolved to package-qualified names),
    module-level globals classified by kind (``mutable`` container,
    ``lock``, thread-``local``, plain value), classes with their bases,
    lock-holding attributes and methods, and every function — including
    methods and nested closures — under a stable qualified name such as
    ``repro.serve.service.QueryService._drive``.

Call graph
    Each function gets a resolved callee set.  Resolution handles bare
    names (enclosing-closure scope, module scope, ``from`` imports,
    class constructors → ``__init__``), ``self.method`` /``cls.method``
    (walking package-local base classes), module-qualified attribute
    chains, ``ClassName.method``, and monkey-patch edges
    (``Cls.attr = replacement`` routes callers of ``Cls.attr`` to the
    replacement, which is how the sanitizer's patched ``Network.send``
    stays visible).  Unresolvable method calls fall back to a limited
    class-hierarchy approximation: a call ``x.m(...)`` links to every
    package method named ``m`` unless ``m`` is a common builtin-protocol
    name (``get``, ``append``, ``close``, ...) or the candidate set is
    implausibly large.  The approximation over-links rather than
    under-links — reachability-based rules stay sound against the
    contexts they model.

Task contexts
    :meth:`PackageIndex.task_contexts` (computed by
    :mod:`repro.analysis.contexts`) infers which functions can run off
    the coordinator thread: callables handed to ``run_phase`` /
    ``run_fused_phases`` / ``pipelined_phases`` (phase tasks), to
    ``run_chunks`` / ``.map()`` / ``.submit()`` (kernel subtasks), and
    to ``threading.Thread(target=...)`` (service driver threads), plus
    everything reachable from them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from ..errors import AnalysisError
from .engine import FileContext

__all__ = [
    "GlobalVar",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "PackageIndex",
    "build_package_index",
    "attr_chain",
    "own_nodes",
    "resolve_name",
    "resolve_class",
    "resolve_method",
]

#: ``threading`` factories whose product synchronizes access.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

#: Constructors (and literals, handled separately) of shared-mutable state.
_MUTABLE_FACTORIES = {
    "dict",
    "list",
    "set",
    "bytearray",
    "OrderedDict",
    "defaultdict",
    "deque",
    "Counter",
}

#: Method names excluded from the class-hierarchy call approximation:
#: builtin container/string/file/queue/ndarray protocol names would link
#: nearly every call site to unrelated classes.
_CHA_SKIP = frozenset(
    {
        "get",
        "items",
        "keys",
        "values",
        "append",
        "add",
        "update",
        "pop",
        "popitem",
        "setdefault",
        "extend",
        "remove",
        "discard",
        "clear",
        "copy",
        "sort",
        "insert",
        "count",
        "index",
        "join",
        "split",
        "strip",
        "rstrip",
        "lstrip",
        "format",
        "encode",
        "decode",
        "startswith",
        "endswith",
        "lower",
        "upper",
        "replace",
        "read",
        "write",
        "close",
        "open",
        "put",
        "get_nowait",
        "put_nowait",
        "acquire",
        "release",
        "wait",
        "notify",
        "notify_all",
        "set",
        "is_set",
        "locked",
        "astype",
        "reshape",
        "ravel",
        "flatten",
        "tolist",
        "item",
        "fill",
        "view",
        "take",
        "repeat",
        "searchsorted",
        "argsort",
        "nonzero",
        "cumsum",
        "sum",
        "min",
        "max",
        "mean",
        "any",
        "all",
        "tobytes",
    }
)

#: Candidate bound for the class-hierarchy approximation; a method name
#: shared by more classes than this is treated as unresolvable noise.
_CHA_LIMIT = 16


def attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]``; empty when not a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root``'s body, excluding nested function/class bodies.

    Lambdas stay with their enclosing function; ``def``s become their
    own :class:`FunctionInfo` and are analyzed separately.
    """
    for child in ast.iter_child_nodes(root):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield child
        yield from own_nodes(child)


def _classify_value(value: ast.AST | None) -> str:
    """Kind of a module-level binding: mutable / lock / tls / other."""
    if value is None:
        return "other"
    if isinstance(
        value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
    ):
        return "mutable"
    if isinstance(value, ast.Call):
        chain = attr_chain(value.func)
        if chain:
            tail = chain[-1]
            if tail in _LOCK_FACTORIES:
                return "lock"
            if tail == "local" and chain[:-1] in ([], ["threading"]):
                return "tls"
            if tail in _MUTABLE_FACTORIES:
                return "mutable"
    return "other"


def _is_lock_value(value: ast.AST | None) -> bool:
    """True for ``threading.Lock()``-family values, including dataclass
    ``field(default_factory=threading.Lock)`` declarations."""
    if _classify_value(value) == "lock":
        return True
    if isinstance(value, ast.Call):
        chain = attr_chain(value.func)
        if chain and chain[-1] == "field":
            for kw in value.keywords:
                if kw.arg == "default_factory":
                    factory = attr_chain(kw.value)
                    if factory and factory[-1] in _LOCK_FACTORIES:
                        return True
    return False


@dataclass
class GlobalVar:
    """One module-level binding."""

    name: str
    lineno: int
    #: ``mutable`` | ``lock`` | ``tls`` | ``other``
    kind: str


@dataclass
class FunctionInfo:
    """One function, method, or nested closure in the package."""

    qualname: str
    name: str
    module: str
    path: str
    node: ast.AST
    #: Owning class name for methods, else None.
    cls: str | None = None
    #: Enclosing function qualname for nested defs, else None.
    parent: str | None = None
    #: Resolved callee qualnames (filled by the call-graph pass).
    callees: set[str] = field(default_factory=set)


@dataclass
class ClassInfo:
    """One class: bases, methods, and its lock-holding attributes."""

    qualname: str
    name: str
    module: str
    node: ast.ClassDef
    bases: tuple[str, ...]
    #: method name -> function qualname
    methods: dict[str, str]
    #: ``self`` attributes assigned a lock (or a lock default_factory).
    lock_attrs: set[str]


@dataclass
class ModuleInfo:
    """Symbol table of one parsed module."""

    name: str
    path: str
    ctx: FileContext
    is_package: bool
    #: local alias -> absolute module name (``import x.y as z``).
    imports: dict[str, str] = field(default_factory=dict)
    #: local name -> (module, original name) for ``from m import n``.
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    globals: dict[str, GlobalVar] = field(default_factory=dict)
    #: class name -> class qualname
    classes: dict[str, str] = field(default_factory=dict)
    #: top-level function name -> function qualname
    functions: dict[str, str] = field(default_factory=dict)


class PackageIndex:
    """Symbol tables plus a call graph over one linted package."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: Total resolved call edges (reported in the lint summary).
        self.edges = 0
        self._by_path: dict[str, FileContext] = {}
        self._methods_by_name: dict[str, list[str]] = {}
        self._contexts = None

    def context_for(self, path: str | Path) -> FileContext | None:
        """The FileContext a diagnostic at ``path`` anchors into."""
        return self._by_path.get(str(path))

    def class_of(self, info: FunctionInfo) -> ClassInfo | None:
        """The owning ClassInfo of a method, else None."""
        if info.cls is None:
            return None
        return self.classes.get(f"{info.module}.{info.cls}")

    def task_contexts(self):
        """The inferred task contexts (cached after the first call)."""
        if self._contexts is None:
            from .contexts import infer_task_contexts

            self._contexts = infer_task_contexts(self)
        return self._contexts

    def reachable_from(self, seeds: Iterable[str]) -> set[str]:
        """Every function reachable from ``seeds`` along call edges."""
        seen: set[str] = set()
        frontier = [qual for qual in seeds if qual in self.functions]
        while frontier:
            qual = frontier.pop()
            if qual in seen:
                continue
            seen.add(qual)
            frontier.extend(
                callee
                for callee in self.functions[qual].callees
                if callee not in seen
            )
        return seen


def _module_name(path: Path, roots: list[Path]) -> tuple[str, bool]:
    """Dotted module name for ``path`` relative to a scan root.

    The root directory's own name becomes the top package (scanning
    ``src/repro`` names modules ``repro.serve.service``), so relative
    imports resolve naturally.  Files outside every root fall back to
    their stem.
    """
    resolved = path.resolve()
    for root in sorted(roots, key=lambda r: len(r.parts), reverse=True):
        try:
            rel = resolved.relative_to(root)
        except ValueError:
            continue
        parts = [root.name, *rel.with_suffix("").parts]
        if parts[-1] == "__init__":
            return ".".join(parts[:-1]), True
        return ".".join(parts), False
    if path.stem == "__init__":
        return path.parent.name, True
    return path.stem, False


def _resolve_relative(
    module_name: str, is_package: bool, level: int, target: str | None
) -> str | None:
    """Absolute module named by a (possibly relative) ``from`` import."""
    if level == 0:
        return target
    parts = module_name.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop > len(parts):
        return None
    if drop:
        parts = parts[: len(parts) - drop]
    if target:
        parts = parts + target.split(".")
    return ".".join(parts) if parts else None


def _child_defs(root: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Function definitions nested directly in ``root``'s own body."""
    for child in ast.iter_child_nodes(root):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield child
        elif not isinstance(child, ast.ClassDef):
            yield from _child_defs(child)


def _lock_attrs(cls: ast.ClassDef) -> set[str]:
    """``self`` attribute names bound to locks anywhere in the class."""
    attrs: set[str] = set()
    for node in ast.walk(cls):
        targets: list[ast.AST] = []
        value: ast.AST | None = None
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
            value = node.value
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value = node.value
        else:
            continue
        if not _is_lock_value(value):
            continue
        for target in targets:
            chain = attr_chain(target)
            if len(chain) == 2 and chain[0] == "self":
                attrs.add(chain[1])
            elif isinstance(target, ast.Name):
                attrs.add(target.id)
    return attrs


def _index_module(
    index: PackageIndex, name: str, is_package: bool, ctx: FileContext
) -> ModuleInfo:
    module = ModuleInfo(name=name, path=ctx.path, ctx=ctx, is_package=is_package)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                module.imports[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(name, is_package, node.level, node.module)
            if base is None:
                continue
            for alias in node.names:
                module.from_imports[alias.asname or alias.name] = (base, alias.name)

    for stmt in ctx.tree.body:
        targets: list[ast.Name] = []
        value: ast.AST | None = None
        if isinstance(stmt, ast.Assign):
            targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        kind = _classify_value(value)
        for target in targets:
            module.globals[target.id] = GlobalVar(
                name=target.id, lineno=stmt.lineno, kind=kind
            )

    def register_function(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls_name: str | None,
        parent: str | None,
        prefix: str,
    ) -> str:
        qual = f"{prefix}.{node.name}"
        info = FunctionInfo(
            qualname=qual,
            name=node.name,
            module=name,
            path=ctx.path,
            node=node,
            cls=cls_name,
            parent=parent,
        )
        index.functions[qual] = info
        if cls_name is not None:
            index._methods_by_name.setdefault(node.name, []).append(qual)
        for child in _child_defs(node):
            register_function(child, cls_name, qual, qual)
        return qual

    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module.functions[stmt.name] = register_function(stmt, None, None, name)
        elif isinstance(stmt, ast.ClassDef):
            cls_qual = f"{name}.{stmt.name}"
            methods: dict[str, str] = {}
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods[item.name] = register_function(
                        item, stmt.name, None, cls_qual
                    )
            bases = tuple(
                base
                for base in (".".join(attr_chain(b)) for b in stmt.bases)
                if base
            )
            index.classes[cls_qual] = ClassInfo(
                qualname=cls_qual,
                name=stmt.name,
                module=name,
                node=stmt,
                bases=bases,
                methods=methods,
                lock_attrs=_lock_attrs(stmt),
            )
            module.classes[stmt.name] = cls_qual
    return module


def resolve_qualified(index: PackageIndex, qual: str) -> str | None:
    """A function qualname for ``qual``; classes resolve to __init__."""
    if qual in index.functions:
        return qual
    cls = index.classes.get(qual)
    if cls is not None:
        return cls.methods.get("__init__")
    return None


def resolve_class(
    index: PackageIndex, module: ModuleInfo, name: str
) -> ClassInfo | None:
    """Resolve a class name visible in ``module`` to its ClassInfo."""
    if name in module.classes:
        return index.classes.get(module.classes[name])
    if name in module.from_imports:
        base, original = module.from_imports[name]
        return index.classes.get(f"{base}.{original}")
    return None


def resolve_method(
    index: PackageIndex, cls: ClassInfo, name: str, _depth: int = 0
) -> str | None:
    """Resolve a method by name on ``cls``, walking package-local bases."""
    if name in cls.methods:
        return cls.methods[name]
    if _depth > 5:
        return None
    module = index.modules.get(cls.module)
    if module is None:
        return None
    for base in cls.bases:
        base_cls = resolve_class(index, module, base.split(".")[-1])
        if base_cls is not None and base_cls is not cls:
            found = resolve_method(index, base_cls, name, _depth + 1)
            if found is not None:
                return found
    return None


def resolve_name(
    index: PackageIndex, module: ModuleInfo, info: FunctionInfo | None, name: str
) -> str | None:
    """Resolve a bare name in a function's scope to a function qualname.

    Lookup order: nested closures of the enclosing function chain,
    module-level functions, module classes (→ ``__init__``), then
    ``from`` imports into other indexed modules.
    """
    scope = info
    while scope is not None:
        candidate = f"{scope.qualname}.{name}"
        if candidate in index.functions:
            return candidate
        scope = index.functions.get(scope.parent) if scope.parent else None
    if name in module.functions:
        return module.functions[name]
    if name in module.classes:
        return index.classes[module.classes[name]].methods.get("__init__")
    if name in module.from_imports:
        base, original = module.from_imports[name]
        return resolve_qualified(index, f"{base}.{original}")
    return None


def _resolve_call(
    index: PackageIndex, module: ModuleInfo, info: FunctionInfo, call: ast.Call
) -> set[str]:
    """Callee qualnames of one call expression."""
    func = call.func
    targets: set[str] = set()
    if isinstance(func, ast.Name):
        found = resolve_name(index, module, info, func.id)
        if found is not None:
            targets.add(found)
        return targets
    if not isinstance(func, ast.Attribute):
        return targets
    chain = attr_chain(func)
    if chain:
        head, attr = chain[0], chain[-1]
        if head in ("self", "cls") and info.cls is not None and len(chain) == 2:
            cls = index.class_of(info)
            if cls is not None:
                found = resolve_method(index, cls, attr)
                if found is not None:
                    targets.add(found)
                    return targets
        if len(chain) >= 2:
            prefix = module.imports.get(head)
            if prefix is not None:
                found = resolve_qualified(index, ".".join([prefix, *chain[1:]]))
                if found is not None:
                    targets.add(found)
                    return targets
            if len(chain) == 2:
                cls = resolve_class(index, module, head)
                if cls is not None:
                    found = resolve_method(index, cls, attr)
                    if found is not None:
                        targets.add(found)
                        return targets
    attr = func.attr
    if attr in _CHA_SKIP or attr.startswith("__"):
        return targets
    candidates = index._methods_by_name.get(attr, ())
    if 0 < len(candidates) <= _CHA_LIMIT:
        targets.update(candidates)
    return targets


def _monkeypatch_edges(index: PackageIndex) -> None:
    """Route ``Cls.attr = replacement`` assignments into the call graph.

    Callers resolved to ``Cls.attr`` must also reach the replacement
    function, otherwise runtime-installed wrappers (the payload
    sanitizer's ``Network.send``) escape every reachability argument.
    """
    for module in index.modules.values():
        for node in ast.walk(module.ctx.tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            chain = attr_chain(target)
            if len(chain) != 2 or not isinstance(target, ast.Attribute):
                continue
            cls = resolve_class(index, module, chain[0])
            if cls is None:
                continue
            patched = cls.methods.get(chain[1])
            if patched is None:
                continue
            replacement = None
            if isinstance(node.value, ast.Name):
                replacement = resolve_name(index, module, None, node.value.id)
            if replacement is not None:
                index.functions[patched].callees.add(replacement)


def _build_call_graph(index: PackageIndex) -> None:
    for info in index.functions.values():
        module = index.modules[info.module]
        for node in own_nodes(info.node):
            if isinstance(node, ast.Call):
                info.callees.update(_resolve_call(index, module, info, node))
        info.callees.discard(info.qualname)
    _monkeypatch_edges(index)
    index.edges = sum(len(info.callees) for info in index.functions.values())


def build_package_index(
    files: Iterable[str | Path], roots: Iterable[str | Path] = ()
) -> PackageIndex:
    """Parse ``files`` into a :class:`PackageIndex` with a call graph.

    ``roots`` are the directories the lint was invoked with; each file's
    module name is derived from its position under the containing root.
    """
    index = PackageIndex()
    root_paths = [Path(r).resolve() for r in roots if Path(r).is_dir()]
    for file_path in sorted(Path(f) for f in files):
        try:
            source = file_path.read_text()
        except OSError as exc:
            raise AnalysisError(f"cannot read {file_path}: {exc}") from exc
        ctx = FileContext(file_path, source)
        name, is_package = _module_name(file_path, root_paths)
        index.modules[name] = _index_module(index, name, is_package, ctx)
        index._by_path[ctx.path] = ctx
    _build_call_graph(index)
    return index
