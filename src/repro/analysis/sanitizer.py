"""Runtime payload sanitizer: freeze sent views until the barrier commits.

The network ships payloads zero-copy (see :mod:`repro.cluster.network`):
a sender must not mutate an array's buffers after handing it to
``send``.  The static REP005 rule catches the lexically obvious cases;
this module catches the rest at runtime.  While enabled, every numpy
array reachable from a payload staged by a lane-bound send — including
the arrays inside :class:`~repro.storage.table.LocalPartition` batches
and the view's base chain, so writes through the original buffer are
caught too — is marked read-only until the phase barrier
(``end_phase``/``abort_phase``) commits or discards the lane.  A latent
write-after-send then raises ``ValueError: assignment destination is
read-only`` at the exact offending store instead of silently corrupting
a message in flight.

Sends outside an open phase keep immediate semantics and are not
frozen: they are coordinator-side, single-threaded, and have no barrier
to thaw at.

Enabling is process-global and reference-counted, so nested
``sanitized()`` blocks and a conftest-level enable compose::

    from repro.analysis import sanitized

    with sanitized():
        join.run(cluster, r, s)   # aliasing bugs raise immediately

The tier-1 test suite runs entirely sanitized (see ``tests/conftest.py``;
set ``REPRO_SANITIZE=0`` to opt out).

Alongside the payload freezer, enabling installs a **race tracker**: the
concurrency-critical structures (plan cache, warm executor pool, service
counters) call :func:`track_shared` at each guarded access, recording
which thread touched which shared object under which locks.  A
cross-thread write/write or read/write pair with no lock in common
raises :class:`~repro.errors.RaceError` deterministically at the second
access — the runtime complement of the static REP007/REP009 rules.
When the sanitizer is off, :func:`track_shared` is a single ``None``
check and the hot paths pay nothing.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from typing import Any, Iterable, Iterator

import numpy as np

from ..cluster.network import Network
from ..errors import RaceError

__all__ = [
    "sanitizer_enable",
    "sanitizer_disable",
    "sanitizer_enabled",
    "sanitized",
    "RaceTracker",
    "race_tracker",
    "shared_key",
    "track_shared",
]

_lock = threading.Lock()
_depth = 0
_saved: dict[str, Any] = {}

#: The process-wide tracker, alive while the sanitizer is enabled.
_race_tracker: "RaceTracker | None" = None


class RaceTracker:
    """Record shared-object accesses and raise on unsynchronized conflict.

    For every registered key the tracker keeps, per accessing thread,
    the distinct *access shapes* seen so far: a ``(write, lock-ids)``
    pair.  A new access conflicts when another thread holds a recorded
    shape such that at least one side is a write and the two lock sets
    are disjoint — no common lock means no ordering, and the pair is a
    data race by definition.  The conflict raises at the second access,
    on the thread performing it, so a test exercising a fixed
    interleaving fails deterministically at the same line every run.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: key -> {thread id -> (thread name, {(write, frozen lock ids)})}
        self._accesses: dict[str, dict[int, tuple[str, set]]] = {}

    def record(self, key: str, *, write: bool, locks: Iterable[Any] = ()) -> None:
        """Record one access; raise :class:`RaceError` on conflict."""
        tid = threading.get_ident()
        name = threading.current_thread().name
        shape = (bool(write), frozenset(id(lock) for lock in locks))
        with self._lock:
            per_key = self._accesses.setdefault(key, {})
            for other_tid, (other_name, shapes) in per_key.items():
                if other_tid == tid:
                    continue
                for other_write, other_locks in shapes:
                    if not (shape[0] or other_write):
                        continue
                    if shape[1] & other_locks:
                        continue
                    kind = (
                        "write/write"
                        if shape[0] and other_write
                        else "read/write"
                    )
                    raise RaceError(
                        f"race on {key!r}: {kind} between threads "
                        f"{other_name!r} and {name!r} with no common lock",
                        key=key,
                        kind=kind,
                        threads=(other_name, name),
                    )
            mine = per_key.setdefault(tid, (name, set()))
            mine[1].add(shape)

    def keys(self) -> list[str]:
        """Registered shared-object keys, sorted (for introspection)."""
        with self._lock:
            return sorted(self._accesses)


def race_tracker() -> RaceTracker | None:
    """The live tracker, or None while the sanitizer is disabled."""
    return _race_tracker


def track_shared(key: str, *, write: bool, locks: Iterable[Any] = ()) -> None:
    """Record an access to a registered shared object (no-op when off).

    Callers pass the lock *objects* they hold around the access; the
    tracker compares identities, so the same lock reached through an
    alias still counts as common coverage.
    """
    tracker = _race_tracker
    if tracker is not None:
        tracker.record(key, write=write, locks=locks)


_shared_tokens = itertools.count()


def shared_key(prefix: str) -> str:
    """Mint a process-unique tracking key for one shared object.

    Instrumented classes call this once at construction and reuse the
    key at every :func:`track_shared` site.  ``id(self)`` is not a safe
    suffix: ids are recycled after garbage collection, so a new object
    could inherit a dead instance's recorded accesses (with different
    lock identities) and trip a false race.  The counter never repeats.
    """
    return f"{prefix}#{next(_shared_tokens)}"

#: Per-network attribute holding {id(array): (array, original_writeable)}
#: for every array frozen during the currently open phase.
_FROZEN_ATTR = "_sanitizer_frozen"

_freeze_lock = threading.Lock()


def _payload_arrays(payload: Any, depth: int = 0) -> Iterator[np.ndarray]:
    """Yield every numpy array reachable from a message payload.

    Understands the payload shapes the operators actually send: bare
    ndarrays, ``LocalPartition``-like objects (``keys`` plus a
    ``columns`` dict), and lists/tuples/dicts of those.  The walk is
    bounded so a pathological payload cannot recurse forever.
    """
    if depth > 4 or payload is None:
        return
    if isinstance(payload, np.ndarray):
        yield payload
        return
    if isinstance(payload, (list, tuple)):
        for item in payload:
            yield from _payload_arrays(item, depth + 1)
        return
    if isinstance(payload, dict):
        for item in payload.values():
            yield from _payload_arrays(item, depth + 1)
        return
    keys = getattr(payload, "keys", None)
    columns = getattr(payload, "columns", None)
    if isinstance(keys, np.ndarray):
        yield keys
    if isinstance(columns, dict):
        for item in columns.values():
            yield from _payload_arrays(item, depth + 1)


def _chain_depth(array: np.ndarray) -> int:
    """Number of ``.base`` hops from a view to its owning array."""
    depth = 0
    base = array.base
    while isinstance(base, np.ndarray):
        depth += 1
        base = base.base
    return depth


def _freeze_payload(network: Network, payload: Any) -> None:
    """Mark payload arrays (and their base chains) read-only.

    Each array is recorded once with its pre-freeze writeability, under
    a lock so two lane-bound sends of views over the same buffer cannot
    record an already-frozen state as the original.
    """
    with _freeze_lock:
        frozen = network.__dict__.setdefault(_FROZEN_ATTR, {})
        for array in _payload_arrays(payload):
            target: np.ndarray | None = array
            while isinstance(target, np.ndarray):
                key = id(target)
                if key not in frozen:
                    frozen[key] = (target, target.flags.writeable)
                    target.flags.writeable = False
                target = target.base  # writes through the base alias the view


def _thaw_network(network: Network) -> None:
    """Restore every frozen array to its pre-send writeability.

    Owning arrays thaw before their views: numpy refuses to make a view
    writeable while its base is still read-only.
    """
    with _freeze_lock:
        frozen = network.__dict__.pop(_FROZEN_ATTR, {})
    for array, writeable in sorted(frozen.values(), key=lambda e: _chain_depth(e[0])):
        if writeable:
            array.flags.writeable = True


def _sanitized_send(self: Network, src, dst, category, nbytes, payload=None):
    _saved["send"](self, src, dst, category, nbytes, payload)
    if getattr(self._tls, "lane", None) is not None:
        _freeze_payload(self, payload)


def _sanitized_end_phase(self: Network) -> None:
    # Thaw even when the barrier raises (a fault injector exhausting its
    # retry budget mid-commit): the phase is closed either way, and a
    # degraded re-run must not inherit read-only arrays.
    try:
        _saved["end_phase"](self)
    finally:
        _thaw_network(self)


def _sanitized_abort_phase(self: Network) -> None:
    _saved["abort_phase"](self)
    _thaw_network(self)


def sanitizer_enable() -> None:
    """Install the sanitizer on :class:`Network` (reference-counted)."""
    global _depth, _race_tracker
    with _lock:
        _depth += 1
        if _depth > 1:
            return
        _race_tracker = RaceTracker()
        _saved["send"] = Network.send
        _saved["end_phase"] = Network.end_phase
        _saved["abort_phase"] = Network.abort_phase
        Network.send = _sanitized_send  # type: ignore[method-assign]
        Network.end_phase = _sanitized_end_phase  # type: ignore[method-assign]
        Network.abort_phase = _sanitized_abort_phase  # type: ignore[method-assign]


def sanitizer_disable() -> None:
    """Drop one enable; the patch is removed when the count reaches zero."""
    global _depth, _race_tracker
    with _lock:
        if _depth == 0:
            return
        _depth -= 1
        if _depth > 0:
            return
        _race_tracker = None
        Network.send = _saved.pop("send")  # type: ignore[method-assign]
        Network.end_phase = _saved.pop("end_phase")  # type: ignore[method-assign]
        Network.abort_phase = _saved.pop("abort_phase")  # type: ignore[method-assign]


def sanitizer_enabled() -> bool:
    """True while at least one enable is outstanding."""
    return _depth > 0


@contextmanager
def sanitized():
    """Context manager form of enable/disable."""
    sanitizer_enable()
    try:
        yield
    finally:
        sanitizer_disable()
