"""Determinism and aliasing static analysis for the track-join reproduction.

The parallel engine (PR 3) promises bit-identical ledgers, inbox order,
profiles, and outputs for any worker count, and ships message payloads
as zero-copy views under a copy-on-conflict rule.  Those contracts are
cheap to state and easy to erode; this package enforces them
mechanically, in two complementary layers:

:mod:`repro.analysis.engine`
    A small AST-walking rule engine: rule registry, per-file diagnostics
    (``path:line: CODE message``), suppression via ``# repro: noqa[CODE]``
    comments, and text/JSON reporters.

:mod:`repro.analysis.rules`
    The rule catalogue encoding the repo's real invariants:

    ========  ==========================================================
    REP001    no unseeded randomness under ``src/repro/``
    REP002    no wall-clock reads outside ``repro/timing``/``repro/perf``
              and no set-iteration feeding sends or ledgers
    REP003    no network sends that can bypass ``SendLane`` staging
    REP004    no bare builtin exceptions in library code (use the
              :class:`~repro.errors.ReproError` hierarchy)
    REP005    no mutation of a numpy array after it was passed to a send
    ========  ==========================================================

:mod:`repro.analysis.sanitizer`
    The runtime half of REP005: when enabled, payload arrays handed to a
    staged (lane-bound) send are marked read-only until the phase
    barrier commits, so a latent write-after-send aliasing bug raises
    immediately at the offending store instead of silently corrupting a
    message in flight.

Run the static pass with ``python -m repro lint`` or ``make lint``.
"""

from __future__ import annotations

from .engine import (
    Diagnostic,
    FileContext,
    LintReport,
    Rule,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    register_rule,
)
from .rules import DEFAULT_TARGET
from .sanitizer import sanitized, sanitizer_disable, sanitizer_enable, sanitizer_enabled

__all__ = [
    "Diagnostic",
    "FileContext",
    "LintReport",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_rule",
    "DEFAULT_TARGET",
    "sanitized",
    "sanitizer_enable",
    "sanitizer_disable",
    "sanitizer_enabled",
]
