"""Determinism, aliasing, and phase-safety analysis for the reproduction.

The parallel engine (PR 3) promises bit-identical ledgers, inbox order,
profiles, and outputs for any worker count; the kernel pool (PR 7) and
the concurrent query service (PR 8) add the stronger promise that those
bytes stay identical *under concurrency*.  This package enforces both
mechanically, in three complementary layers:

:mod:`repro.analysis.engine`
    A two-kind rule engine: per-file AST rules plus whole-package
    dataflow rules, with path:line diagnostics, statement-span
    ``# repro: noqa[CODE]`` suppression, a baseline mechanism for
    grandfathered findings, an on-disk lint cache, and text/JSON/SARIF
    reporters.

:mod:`repro.analysis.rules`
    The catalogue.  Per-file rules:

    ========  ==========================================================
    REP001    no unseeded randomness under ``src/repro/``
    REP002    no wall-clock reads outside ``repro/timing``/``repro/perf``
              and no set-iteration feeding sends or ledgers
    REP003    no network sends that can bypass ``SendLane`` staging
    REP004    no bare builtin exceptions in library code (use the
              :class:`~repro.errors.ReproError` hierarchy)
    REP005    no mutation of a numpy array after it was passed to a send
    REP006    no broad exception handler that swallows the error
    ========  ==========================================================

    Whole-package dataflow rules (over the call graph and inferred task
    contexts built by :mod:`repro.analysis.dataflow` /
    :mod:`repro.analysis.contexts`):

    ========  ==========================================================
    REP007    no unsynchronized mutation of module globals from task
              context (phase tasks, kernel subtasks, driver threads)
    REP008    no non-namespaced or colliding ``ExecutionContext.scratch``
              keys across operators
    REP009    no cache/pool structure access outside its owning lock
    REP010    no unbounded blocking calls on QueryService driver paths
    REP011    no in-place mutation of a SharedArray view after handoff
              to another task
    ========  ==========================================================

:mod:`repro.analysis.sanitizer`
    The runtime half: payload arrays handed to a staged send are frozen
    read-only until the phase barrier commits (REP005's dynamic
    counterpart), and registered shared objects record accessing-thread
    sets plus lock coverage, raising :class:`~repro.errors.RaceError`
    on a cross-thread conflict with no common lock (REP007/REP009's
    dynamic counterpart).

Run the static pass with ``python -m repro lint --dataflow`` or
``make lint``.
"""

from __future__ import annotations

from .engine import (
    DataflowRule,
    Diagnostic,
    FileContext,
    LintCache,
    LintReport,
    Rule,
    all_dataflow_rules,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    load_baseline,
    register_dataflow_rule,
    register_rule,
    write_baseline,
)
from .rules import DEFAULT_TARGET, RULES_VERSION
from .sanitizer import (
    RaceTracker,
    race_tracker,
    sanitized,
    sanitizer_disable,
    sanitizer_enable,
    sanitizer_enabled,
    shared_key,
    track_shared,
)

__all__ = [
    "DataflowRule",
    "Diagnostic",
    "FileContext",
    "LintCache",
    "LintReport",
    "Rule",
    "all_dataflow_rules",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register_dataflow_rule",
    "register_rule",
    "write_baseline",
    "DEFAULT_TARGET",
    "RULES_VERSION",
    "RaceTracker",
    "race_tracker",
    "sanitized",
    "sanitizer_enable",
    "sanitizer_disable",
    "sanitizer_enabled",
    "shared_key",
    "track_shared",
]
