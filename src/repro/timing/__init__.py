"""Timing substrate: execution profiles and calibrated hardware models."""

from .hardware import (
    HardwareModel,
    StepTiming,
    bottleneck_seconds,
    paper_cluster_2014,
    scaled_network,
)
from .profile import CPU, LOCAL, NET, ExecutionProfile, Step

__all__ = [
    "ExecutionProfile",
    "Step",
    "HardwareModel",
    "StepTiming",
    "paper_cluster_2014",
    "scaled_network",
    "bottleneck_seconds",
    "CPU",
    "NET",
    "LOCAL",
]
