"""Hardware models: converting recorded work into seconds.

The paper's implementation platform (Section 4.2) is four machines with
2x 4-core Xeon X5550 CPUs on 1 Gbit Ethernet.  The authors report that
the platform is "severely network bound": each Ethernet edge moves 0.093
GB/s when used exclusively, but during all-to-all exchange the measured
effective rate is lower.  Back-solving from their own step timings
(Table 3: 6.35 GB of remote R tuples in 29.46 s; 13.05 GB of S tuples in
57.2 s; workload Y transfers agree) gives an aggregate effective
exchange bandwidth of ~0.22 GB/s for the 4-node cluster, i.e. ~55 MB/s
of sustained egress per node.  CPU step rates are likewise calibrated
from Tables 3-4 (partitioning ~6 GB/s/node, sorting ~1.8 GB/s/node,
merging ~4.5 GB/s/node, ...).

The model is deliberately linear: ``time = work / rate`` with CPU steps
bounded by the most loaded node and network steps by total volume.
That is exactly the regime the paper argues for ("any network traffic
reduction directly translates to faster execution") and lets the Table
2-4 benches reproduce the published *shape* — which algorithm wins and
by roughly what factor — without the authors' testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from ..errors import UnknownKeyError, ValidationError

from .profile import CPU, LOCAL, NET, ExecutionProfile, Step

__all__ = ["HardwareModel", "StepTiming", "paper_cluster_2014", "scaled_network", "bottleneck_seconds"]

_GB = 1e9


@dataclass
class StepTiming:
    """Seconds attributed to one step of a profile."""

    name: str
    kind: str
    seconds: float


@dataclass
class HardwareModel:
    """Linear work-to-time model for one cluster configuration.

    Parameters
    ----------
    num_nodes:
        Cluster size; used to sanity-check profiles.
    net_aggregate_bandwidth:
        Effective cluster-wide exchange bandwidth in bytes/second.
    cpu_rates:
        Bytes/second/node for each CPU rate class.
    """

    num_nodes: int
    net_aggregate_bandwidth: float
    cpu_rates: dict[str, float] = field(default_factory=dict)

    def rate_for(self, rate_class: str) -> float:
        """CPU rate (bytes/s/node) for a rate class."""
        if rate_class not in self.cpu_rates:
            raise UnknownKeyError(
                f"hardware model has no rate for {rate_class!r}; "
                f"known classes: {sorted(self.cpu_rates)}"
            )
        return self.cpu_rates[rate_class]

    def step_seconds(self, step: Step) -> float:
        """Seconds one step takes under this model."""
        if step.kind == NET:
            return step.total_bytes / self.net_aggregate_bandwidth
        rate = self.rate_for(step.rate_class)
        return step.max_node_bytes / rate

    def step_timings(self, profile: ExecutionProfile) -> list[StepTiming]:
        """Per-step timings in execution order."""
        return [
            StepTiming(step.name, step.kind, self.step_seconds(step))
            for step in profile.steps
        ]

    def cpu_seconds(self, profile: ExecutionProfile) -> float:
        """Total CPU time (CPU + local-copy steps), as Table 2 reports it."""
        return sum(
            self.step_seconds(s) for s in profile.steps if s.kind in (CPU, LOCAL)
        )

    def network_seconds(self, profile: ExecutionProfile) -> float:
        """Total network transfer time, as Table 2 reports it."""
        return sum(self.step_seconds(s) for s in profile.steps if s.kind == NET)

    def total_seconds(self, profile: ExecutionProfile, overlap: bool = False) -> float:
        """End-to-end time of one execution.

        The paper's implementation is de-pipelined, so the default is
        CPU + network.  ``overlap=True`` models the Section 5 pipelined
        execution bound where CPU work hides behind transfers (and vice
        versa): ``max(cpu, network)``.  Real pipelines land between the
        two; both bounds are useful for projections.
        """
        cpu = self.cpu_seconds(profile)
        net = self.network_seconds(profile)
        return max(cpu, net) if overlap else cpu + net


def paper_cluster_2014(num_nodes: int = 4) -> HardwareModel:
    """The paper's 4-node 1 GbE cluster, calibrated from Tables 3-4.

    Rate classes:

    - ``partition``: hash/radix partitioning of tuples into send buffers.
    - ``sort``: MSB radix sort of tuples (the paper's local join is a
      sort-merge join).
    - ``merge``: merge-join of two sorted runs, input+output bytes.
    - ``aggregate``: duplicate elimination / count aggregation of sorted
      keys.
    - ``schedule``: per-key schedule generation over tracked metadata.
    - ``copy``: node-local memory copies.
    """
    per_node_egress = 0.055 * _GB
    return HardwareModel(
        num_nodes=num_nodes,
        net_aggregate_bandwidth=per_node_egress * num_nodes,
        cpu_rates={
            "partition": 8.0 * _GB,
            "sort": 2.6 * _GB,
            "merge": 18.0 * _GB,
            "aggregate": 6.8 * _GB,
            "schedule": 1.4 * _GB,
            "copy": 12.4 * _GB,  # RAM-to-RAM copy bandwidth given in Sec 4.2
        },
    )


def scaled_network(base: HardwareModel, factor: float) -> HardwareModel:
    """A copy of ``base`` with the network ``factor``x faster.

    Section 4.2 projects track join onto a 10x faster network by scaling
    only the network time; this helper reproduces that projection.
    """
    return HardwareModel(
        num_nodes=base.num_nodes,
        net_aggregate_bandwidth=base.net_aggregate_bandwidth * factor,
        cpu_rates=dict(base.cpu_rates),
    )


def bottleneck_seconds(ledger, per_link_bandwidth: float) -> float:
    """Makespan lower bound from the busiest directed link.

    Total volume (what track join minimizes) is not the only time
    metric: with uniform full-duplex links, no schedule can finish
    before its most loaded link drains (the completion-time view of
    Roediger et al. [27], discussed in the paper's related work).
    Computed from a :class:`~repro.cluster.network.TrafficLedger`'s
    per-link byte counts.
    """
    if per_link_bandwidth <= 0:
        raise ValidationError(f"link bandwidth must be positive, got {per_link_bandwidth}")
    if not ledger.by_link:
        return 0.0
    busiest = max(ledger.by_link.values())
    return busiest / per_link_bandwidth
