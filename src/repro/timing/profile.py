"""Execution profiles: the per-step work a distributed join performs.

The paper's Tables 2-4 report wall-clock seconds per algorithm step on a
real 4-machine cluster.  Our substrate is a simulator, so joins instead
record *work*: for every named step, how many bytes each node processed
(CPU steps) or how many bytes crossed the network (network steps).  A
:class:`~repro.timing.hardware.HardwareModel` then converts work into
seconds with calibrated rates.

Steps are recorded in execution order and keep the paper's step names
("Hash partition R tuples", "Generate schedules and partition by node",
...), so the Table 3/4 benches print rows aligned with the paper.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from ..errors import ValidationError

import numpy as np

__all__ = ["Step", "ExecutionProfile", "CPU", "NET", "LOCAL"]

#: Step kinds.  ``LOCAL`` marks node-local memory copies, which the paper
#: separates from real network transfers ("Local copy tuples").
CPU = "cpu"
NET = "net"
LOCAL = "local"


@dataclass
class Step:
    """One named step of a join execution.

    Attributes
    ----------
    name:
        Human-readable step name (matches the paper's step tables).
    kind:
        ``CPU`` (per-node processing), ``NET`` (network transfer), or
        ``LOCAL`` (node-local copy).
    rate_class:
        Which calibrated hardware rate applies ("partition", "sort",
        "merge", "aggregate", "schedule", "copy", "transfer").
    per_node_bytes:
        Work per node.  CPU time is driven by the most loaded node
        (nodes run in parallel); network time by the total volume.
    """

    name: str
    kind: str
    rate_class: str
    per_node_bytes: np.ndarray

    @property
    def total_bytes(self) -> float:
        """Work summed over all nodes."""
        return float(self.per_node_bytes.sum())

    @property
    def max_node_bytes(self) -> float:
        """Work of the most loaded node."""
        return float(self.per_node_bytes.max()) if len(self.per_node_bytes) else 0.0


class ExecutionProfile:
    """Ordered collection of the steps one join execution performed.

    The profile is phase-aware for the parallel engine: while a phase is
    open (:meth:`begin_phase`), a worker thread bound to a lane profile
    (:meth:`bind_lane`) records into that private lane instead of the
    shared step list, and :meth:`end_phase` merges lanes back in task
    order.  Step lists and per-node sums are therefore bit-identical for
    every worker count and thread interleaving.
    """

    def __init__(self, num_nodes: int):
        self.num_nodes = num_nodes
        self.steps: list[Step] = []
        #: Wall-clock phase breakdowns (one dict per executed phase
        #: group): dispatch/kernel/barrier-wait/commit seconds plus
        #: task/stage/worker counts.  Unlike ``steps``, these are real
        #: timings — non-deterministic by nature — so they are excluded
        #: from lane merging, golden comparisons, and :meth:`merge`.
        self.phase_timings: list[dict] = []
        #: Per-node network load summary recorded from the traffic
        #: ledger when the join finishes (``max_received_bytes``,
        #: ``max_sent_bytes``, ``mean_received_bytes``).  Like
        #: ``phase_timings`` it is a run-level annotation, excluded from
        #: lane merging and :meth:`merge`.
        self.network_load: dict[str, float] = {}
        self._phase_lanes: list["ExecutionProfile"] | None = None
        self._tls = threading.local()

    def record_network_load(self, ledger) -> None:
        """Snapshot the ledger's per-node load extremes into the profile.

        Called once per join, right before the cluster's ledger is
        detached from the run; keeps the skew metrics available from
        the profile after the ledger moves on.
        """
        received = ledger.received_by_node
        self.network_load = {
            "max_received_bytes": ledger.max_received_bytes,
            "max_sent_bytes": ledger.max_sent_bytes,
            "mean_received_bytes": (
                float(sum(received.values()) / self.num_nodes)
                if self.num_nodes
                else 0.0
            ),
        }

    # -- phases and lanes ------------------------------------------------

    def begin_phase(self, num_lanes: int) -> list["ExecutionProfile"]:
        """Open a phase with one private lane profile per task."""
        if self._phase_lanes is not None:
            raise ValidationError("a profile phase is already open (missing barrier?)")
        self._phase_lanes = [ExecutionProfile(self.num_nodes) for _ in range(num_lanes)]
        return self._phase_lanes

    @contextmanager
    def bind_lane(self, lane: "ExecutionProfile"):
        """Route this thread's recordings into ``lane`` for the duration."""
        previous = getattr(self._tls, "lane", None)
        self._tls.lane = lane
        try:
            yield lane
        finally:
            self._tls.lane = previous

    def end_phase(self) -> None:
        """Barrier: merge all lane profiles back, in task order."""
        lanes = self._phase_lanes
        if lanes is None:
            raise ValidationError("no profile phase is open")
        self._phase_lanes = None
        for lane in lanes:
            self.merge(lane)

    def abort_phase(self) -> None:
        """Discard all lane profiles (error path)."""
        self._phase_lanes = None

    def merge(self, other: "ExecutionProfile") -> "ExecutionProfile":
        """Accumulate another profile's steps into this one, in step order."""
        for step in other.steps:
            self._accumulate(step.name, step.kind, step.rate_class, step.per_node_bytes)
        return self

    # -- recording -------------------------------------------------------

    def _accumulate(self, name: str, kind: str, rate_class: str, per_node) -> Step:
        lane: "ExecutionProfile | None" = getattr(self._tls, "lane", None)
        if lane is not None:
            return lane._accumulate(name, kind, rate_class, per_node)
        per_node = np.asarray(per_node, dtype=np.float64)
        if per_node.shape != (self.num_nodes,):
            raise ValidationError(
                f"step {name!r}: expected {self.num_nodes} per-node values, "
                f"got shape {per_node.shape}"
            )
        # Merge with an existing step of the same name so loops over nodes
        # can record incrementally.
        for step in self.steps:
            if step.name == name and step.kind == kind:
                step.per_node_bytes = step.per_node_bytes + per_node
                return step
        step = Step(name=name, kind=kind, rate_class=rate_class, per_node_bytes=per_node)
        self.steps.append(step)
        return step

    def add_cpu(self, name: str, rate_class: str, per_node_bytes) -> Step:
        """Record per-node CPU work for a named step."""
        return self._accumulate(name, CPU, rate_class, per_node_bytes)

    def add_cpu_at(self, name: str, rate_class: str, node: int, nbytes: float) -> Step:
        """Record CPU work for one node of a named step."""
        per_node = np.zeros(self.num_nodes)
        per_node[node] = nbytes
        return self._accumulate(name, CPU, rate_class, per_node)

    def add_net(self, name: str, per_node_sent_bytes) -> Step:
        """Record a network transfer step (bytes sent per node)."""
        return self._accumulate(name, NET, "transfer", per_node_sent_bytes)

    def add_net_at(self, name: str, node: int, nbytes: float) -> Step:
        """Record bytes one node sent during a named transfer step."""
        per_node = np.zeros(self.num_nodes)
        per_node[node] = nbytes
        return self._accumulate(name, NET, "transfer", per_node)

    def add_local(self, name: str, node: int, nbytes: float) -> Step:
        """Record a node-local copy (not network traffic)."""
        per_node = np.zeros(self.num_nodes)
        per_node[node] = nbytes
        return self._accumulate(name, LOCAL, "copy", per_node)

    def record_phase_timing(self, timing: dict) -> None:
        """Append one phase group's wall-clock breakdown.

        Always recorded on the shared profile (never routed through a
        lane): the phase runner calls this once per group, after the
        barrier, from the coordinating thread.
        """
        self.phase_timings.append(timing)

    def timing_totals(self) -> dict:
        """Summed wall-clock breakdown over all recorded phases."""
        totals = {
            "phases": len(self.phase_timings),
            "dispatch_seconds": 0.0,
            "kernel_seconds": 0.0,
            "barrier_wait_seconds": 0.0,
            "commit_seconds": 0.0,
            "phase_seconds": 0.0,
        }
        for timing in self.phase_timings:
            for field in (
                "dispatch_seconds",
                "kernel_seconds",
                "barrier_wait_seconds",
                "commit_seconds",
                "phase_seconds",
            ):
                totals[field] += timing.get(field, 0.0)
        return totals

    def step_named(self, name: str) -> Step | None:
        """Look up a recorded step by name."""
        for step in self.steps:
            if step.name == name:
                return step
        return None

    def total_network_bytes(self) -> float:
        """Bytes crossing the network over all NET steps."""
        return sum(s.total_bytes for s in self.steps if s.kind == NET)
