"""Wall-clock access point for engine instrumentation.

Phase-timing instrumentation (dispatch / kernel / commit / barrier-wait
breakdowns in :class:`~repro.timing.profile.ExecutionProfile`) needs a
monotonic clock, but reading wall time from arbitrary engine modules is
exactly the nondeterminism the REP002 lint rule exists to catch.  The
one sanctioned clock lives here, inside the ``repro/timing`` subtree
the rule exempts: engine code imports :func:`wall_clock` instead of
``time.perf_counter`` directly, which keeps the lint gate meaningful —
a new raw clock read anywhere else still fails ``python -m repro lint``.

Timing read through this clock must never influence computed results,
ledgers, or profiles' deterministic step lists; it may only be recorded
into explicitly non-deterministic fields
(:attr:`ExecutionProfile.phase_timings`).
"""

from __future__ import annotations

import time

__all__ = ["wall_clock"]

#: Monotonic wall-clock seconds (float); the only sanctioned clock read
#: for engine instrumentation outside the perf harness.
wall_clock = time.perf_counter
