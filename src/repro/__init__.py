"""Track join: distributed joins with minimal network traffic.

A faithful, executable reproduction of Polychroniou, Sen & Ross,
*"Track Join: Distributed Joins with Minimal Network Traffic"*
(SIGMOD 2014).  The package provides:

- a cluster simulator with byte-exact, per-message-class traffic
  accounting (:mod:`repro.cluster`);
- distributed equi-join operators: broadcast join, Grace hash join,
  tracking-aware hash join, Bloom-filtered semi-join variants, and the
  paper's 2-/3-/4-phase track joins (:mod:`repro.joins`,
  :mod:`repro.core`);
- the Section 3 analytic network cost model and query-optimizer hooks
  (:mod:`repro.costmodel`);
- a calibrated timing model reproducing the paper's CPU/network second
  tables (:mod:`repro.timing`);
- workload generators for the synthetic and surrogate real datasets of
  the evaluation (:mod:`repro.workloads`) and one registered experiment
  per paper table/figure (:mod:`repro.experiments`).

Quickstart::

    import numpy as np
    from repro import (
        Cluster, JoinSpec, GraceHashJoin, TrackJoin4, Schema, random_uniform,
    )

    cluster = Cluster(num_nodes=4)
    schema = Schema.with_widths(key_bits=32, payload_bits=128)
    keys = np.arange(100_000)
    r = cluster.table_from_assignment("R", schema, keys, random_uniform(len(keys), 4, seed=1))
    s = cluster.table_from_assignment("S", schema, keys, random_uniform(len(keys), 4, seed=2))
    hash_result = GraceHashJoin().run(cluster, r, s)
    track_result = TrackJoin4().run(cluster, r, s)
    print(hash_result.network_bytes, track_result.network_bytes)
"""

from .cluster import Cluster, MessageClass, Network, TrafficLedger
from .core import (
    BalanceAwareTrackJoin,
    SkewShardTrackJoin,
    TrackJoin2,
    TrackJoin3,
    TrackJoin4,
    generate_schedules,
    migrate_and_broadcast,
    optimal_schedule,
    selective_broadcast_cost,
)
from .encoding import (
    DeltaEncoding,
    DictionaryEncoding,
    Encoding,
    FixedByteEncoding,
    VarByteEncoding,
)
from .errors import FaultExhaustedError, NodeCrashError, ReproError
from .faults import (
    CrashEvent,
    FaultPlan,
    FaultRates,
    FaultStats,
    StragglerEvent,
)
from .parallel import (
    ProcessExecutor,
    SerialExecutor,
    SharedArray,
    ThreadExecutor,
    resolve_executor,
    set_default_workers,
)
from .joins import (
    BroadcastJoin,
    DistributedJoin,
    GraceHashJoin,
    JoinResult,
    JoinSpec,
)
from .storage import (
    Column,
    DistributedTable,
    LocalPartition,
    Schema,
    by_key_hash,
    collocated_fraction,
    pattern_nodes,
    random_uniform,
    round_robin,
    shuffled,
)
from .serve import PlanCache, QueryRequest, QueryService, WarmExecutorPool
from .timing import ExecutionProfile, HardwareModel, paper_cluster_2014, scaled_network

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "Network",
    "MessageClass",
    "TrafficLedger",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SharedArray",
    "resolve_executor",
    "set_default_workers",
    "Schema",
    "Column",
    "DistributedTable",
    "LocalPartition",
    "JoinSpec",
    "JoinResult",
    "DistributedJoin",
    "BroadcastJoin",
    "GraceHashJoin",
    "TrackJoin2",
    "TrackJoin3",
    "TrackJoin4",
    "BalanceAwareTrackJoin",
    "SkewShardTrackJoin",
    "Encoding",
    "FixedByteEncoding",
    "VarByteEncoding",
    "DictionaryEncoding",
    "DeltaEncoding",
    "ExecutionProfile",
    "HardwareModel",
    "paper_cluster_2014",
    "scaled_network",
    "selective_broadcast_cost",
    "migrate_and_broadcast",
    "optimal_schedule",
    "generate_schedules",
    "round_robin",
    "random_uniform",
    "by_key_hash",
    "shuffled",
    "pattern_nodes",
    "collocated_fraction",
    "FaultPlan",
    "FaultRates",
    "FaultStats",
    "CrashEvent",
    "StragglerEvent",
    "NodeCrashError",
    "FaultExhaustedError",
    "ReproError",
    "QueryService",
    "QueryRequest",
    "PlanCache",
    "WarmExecutorPool",
    "__version__",
]
