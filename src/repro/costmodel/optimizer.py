"""Query-optimizer hook: choose the cheapest distributed join.

The formal model of track join exists "to decide whether to use track
join in favor of hash join or broadcast join" (Section 3).  Given
:class:`~repro.costmodel.stats.JoinStats` (and, optionally, correlation
classes from correlated sampling), :func:`rank_algorithms` scores every
available algorithm and :func:`choose_algorithm` returns the winner with
a human-readable justification, applying the paper's rules of thumb:

- broadcast join when one input is very small;
- 2-phase track join when both inputs have almost entirely unique keys
  (the full scheduler is redundant there);
- hash join when payloads are narrow relative to keys
  (``2*wk > max(wR, wS)`` and no locality).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..joins.registry import ALGORITHMS
from .formulas import CorrelationClasses, track_join_beats_hash_join_width_rule
from .stats import JoinStats

__all__ = [
    "AlgorithmEstimate",
    "rank_algorithms",
    "choose_algorithm",
    "fallback_algorithm",
]

#: Keys are "almost entirely unique" when repetition is below this.
_UNIQUE_KEY_REPETITION = 1.05


@dataclass(frozen=True)
class AlgorithmEstimate:
    """One algorithm's analytic traffic estimate."""

    algorithm: str
    cost_bytes: float
    note: str = ""


def rank_algorithms(
    stats: JoinStats, classes: CorrelationClasses | None = None
) -> list[AlgorithmEstimate]:
    """All algorithms ordered by estimated network bytes, cheapest first.

    Candidates come from the operator registry
    (:data:`repro.joins.registry.ALGORITHMS`); registry order is the
    tie-break of the stable sort.
    """
    estimates = [
        AlgorithmEstimate(info.name, info.cost(stats, classes))
        for info in ALGORITHMS
        if info.cost is not None
    ]
    return sorted(estimates, key=lambda e: e.cost_bytes)


def fallback_algorithm(
    stats: JoinStats, classes: CorrelationClasses | None = None
) -> AlgorithmEstimate | None:
    """Cheapest non-tracking algorithm, for graceful degradation.

    When a tracking phase exhausts its fault budget (repeatedly dropped
    ``KEYS_COUNTS``/``KEYS_NODES`` traffic), the query executor retries
    with this choice instead of failing the query: the non-tracking
    operators never send the poisoned message classes.  Returns ``None``
    when the registry has no rankable non-tracking entry.
    """
    tracking = {info.name: info.tracking for info in ALGORITHMS}
    for estimate in rank_algorithms(stats, classes):
        if not tracking[estimate.algorithm]:
            return estimate
    return None


def choose_algorithm(
    stats: JoinStats, classes: CorrelationClasses | None = None
) -> AlgorithmEstimate:
    """The optimizer's pick, with the reasoning attached."""
    ranking = rank_algorithms(stats, classes)
    best = ranking[0]

    notes = []
    repetition_r = stats.tuples_r / stats.distinct_r
    repetition_s = stats.tuples_s / stats.distinct_s
    unique_keys = (
        repetition_r <= _UNIQUE_KEY_REPETITION
        and repetition_s <= _UNIQUE_KEY_REPETITION
    )
    if best.algorithm.startswith("BJ"):
        notes.append("one input is small enough that replication is cheapest")
    if unique_keys and best.algorithm.startswith(("3TJ", "4TJ")):
        # Prefer the simpler variant when scheduling cannot help: with
        # unique keys all track join versions transfer the same payloads.
        for estimate in ranking:
            if estimate.algorithm.startswith("2TJ"):
                if estimate.cost_bytes <= best.cost_bytes * 1.001:
                    best = estimate
                    notes.append(
                        "keys are almost entirely unique; 2-phase track join "
                        "suffices and avoids scheduling overhead"
                    )
                break
    if best.algorithm == "HJ" and not track_join_beats_hash_join_width_rule(stats):
        notes.append(
            "payloads are narrow (2*wk > max(wR, wS)); without locality "
            "track join cannot beat hash join"
        )
    return AlgorithmEstimate(best.algorithm, best.cost_bytes, "; ".join(notes))
