"""Query-optimizer hook: choose the cheapest distributed join.

The formal model of track join exists "to decide whether to use track
join in favor of hash join or broadcast join" (Section 3).  Given
:class:`~repro.costmodel.stats.JoinStats` (and, optionally, correlation
classes from correlated sampling), :func:`rank_algorithms` scores every
available algorithm and :func:`choose_algorithm` returns the winner with
a human-readable justification, applying the paper's rules of thumb:

- broadcast join when one input is very small;
- 2-phase track join when both inputs have almost entirely unique keys
  (the full scheduler is redundant there);
- hash join when payloads are narrow relative to keys
  (``2*wk > max(wR, wS)`` and no locality).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CostModelError
from ..joins.registry import ALGORITHMS
from .formulas import CorrelationClasses, track_join_beats_hash_join_width_rule
from .stats import JoinStats

__all__ = [
    "AlgorithmEstimate",
    "rank_algorithms",
    "choose_algorithm",
    "fallback_algorithm",
]

#: Keys are "almost entirely unique" when repetition is below this.
_UNIQUE_KEY_REPETITION = 1.05


@dataclass(frozen=True)
class AlgorithmEstimate:
    """One algorithm's analytic traffic estimate."""

    algorithm: str
    cost_bytes: float
    note: str = ""


def rank_algorithms(
    stats: JoinStats,
    classes: CorrelationClasses | None = None,
    load_weight: float = 0.0,
) -> list[AlgorithmEstimate]:
    """All algorithms ordered by estimated network bytes, cheapest first.

    Candidates come from the operator registry
    (:data:`repro.joins.registry.ALGORITHMS`); registry order is the
    tie-break of the stable sort.

    ``load_weight`` adds the skew-aware term: entries not flagged
    ``skew_resistant`` are ranked (not reported) with a penalty of
    ``load_weight * max_key_fraction * total_tuple_bytes`` — the bytes
    a heavy hitter concentrates on a single node.  The default ``0``
    ranks purely by total traffic, the paper's objective; weights near
    1 value a byte of peak load like a byte of traffic.
    """
    if load_weight < 0:
        raise CostModelError(f"load_weight must be non-negative, got {load_weight}")
    hot_bytes = stats.max_key_fraction * (
        stats.tuples_r * stats.tuple_width_r + stats.tuples_s * stats.tuple_width_s
    )
    ranked = sorted(
        (
            (
                info.cost(stats, classes),
                0.0 if info.skew_resistant else load_weight * hot_bytes,
                info.name,
            )
            for info in ALGORITHMS
            if info.cost is not None
        ),
        key=lambda entry: entry[0] + entry[1],
    )
    return [AlgorithmEstimate(name, cost) for cost, _, name in ranked]


def fallback_algorithm(
    stats: JoinStats, classes: CorrelationClasses | None = None
) -> AlgorithmEstimate | None:
    """Cheapest non-tracking algorithm, for graceful degradation.

    When a tracking phase exhausts its fault budget (repeatedly dropped
    ``KEYS_COUNTS``/``KEYS_NODES`` traffic), the query executor retries
    with this choice instead of failing the query: the non-tracking
    operators never send the poisoned message classes.  Returns ``None``
    when the registry has no rankable non-tracking entry.
    """
    tracking = {info.name: info.tracking for info in ALGORITHMS}
    for estimate in rank_algorithms(stats, classes):
        if not tracking[estimate.algorithm]:
            return estimate
    return None


def choose_algorithm(
    stats: JoinStats,
    classes: CorrelationClasses | None = None,
    load_weight: float = 0.0,
) -> AlgorithmEstimate:
    """The optimizer's pick, with the reasoning attached."""
    ranking = rank_algorithms(stats, classes, load_weight=load_weight)
    best = ranking[0]

    notes = []
    if load_weight > 0 and stats.max_key_fraction > 0:
        unweighted = rank_algorithms(stats, classes)[0]
        if unweighted.algorithm != best.algorithm:
            notes.append(
                f"heavy hitter holds {stats.max_key_fraction:.0%} of the rows; "
                f"load weighting displaced {unweighted.algorithm}"
            )
    repetition_r = stats.tuples_r / stats.distinct_r
    repetition_s = stats.tuples_s / stats.distinct_s
    unique_keys = (
        repetition_r <= _UNIQUE_KEY_REPETITION
        and repetition_s <= _UNIQUE_KEY_REPETITION
    )
    if best.algorithm.startswith("BJ"):
        notes.append("one input is small enough that replication is cheapest")
    if unique_keys and best.algorithm.startswith(("3TJ", "4TJ")):
        # Prefer the simpler variant when scheduling cannot help: with
        # unique keys all track join versions transfer the same payloads.
        for estimate in ranking:
            if estimate.algorithm.startswith("2TJ"):
                if estimate.cost_bytes <= best.cost_bytes * 1.001:
                    best = estimate
                    notes.append(
                        "keys are almost entirely unique; 2-phase track join "
                        "suffices and avoids scheduling overhead"
                    )
                break
    if best.algorithm == "HJ" and not track_join_beats_hash_join_width_rule(stats):
        notes.append(
            "payloads are narrow (2*wk > max(wR, wS)); without locality "
            "track join cannot beat hash join"
        )
    return AlgorithmEstimate(best.algorithm, best.cost_bytes, "; ".join(notes))
