"""Analytic network cost model and optimizer hooks (Section 3)."""

from .formulas import (
    CorrelationClasses,
    broadcast_cost,
    filtered_hash_join_cost,
    filtered_late_materialization_cost,
    filtered_track2_cost,
    hash_join_cost,
    late_materialization_cost,
    track2_cost,
    track3_cost,
    track4_cost,
    track4_shard_cost,
    track_join_beats_hash_join_width_rule,
    tracking_aware_cost,
)
from .histogram import (
    KeyHistogram,
    estimate_distinct,
    heavy_hitters,
    stats_from_histograms,
)
from .optimizer import AlgorithmEstimate, choose_algorithm, rank_algorithms
from .sampling import CorrelatedSample, correlated_sample, estimate_classes
from .stats import (
    JoinStats,
    bump_stats_epoch,
    register_epoch_listener,
    stats_epoch,
)

__all__ = [
    "JoinStats",
    "stats_epoch",
    "bump_stats_epoch",
    "register_epoch_listener",
    "KeyHistogram",
    "estimate_distinct",
    "heavy_hitters",
    "stats_from_histograms",
    "CorrelationClasses",
    "hash_join_cost",
    "broadcast_cost",
    "track2_cost",
    "track3_cost",
    "track4_cost",
    "track4_shard_cost",
    "late_materialization_cost",
    "tracking_aware_cost",
    "filtered_hash_join_cost",
    "filtered_late_materialization_cost",
    "filtered_track2_cost",
    "track_join_beats_hash_join_width_rule",
    "AlgorithmEstimate",
    "rank_algorithms",
    "choose_algorithm",
    "CorrelatedSample",
    "correlated_sample",
    "estimate_classes",
]
