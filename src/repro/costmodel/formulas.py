"""Closed-form network traffic formulas of Sections 3.1-3.3.

Each function returns estimated bytes crossing the network for one
algorithm, given :class:`~repro.costmodel.stats.JoinStats`.  The
formulas are transcribed from the paper; where the paper keeps a term
symbolic (correlation classes, Bloom filter error) the functions take it
as a parameter.

The hash join estimate follows the paper in omitting the ``1 - 1/N``
in-place probability by default; pass ``include_local_discount=True``
for the byte-exact expectation the simulator measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import CostModelError
from .stats import JoinStats

__all__ = [
    "hash_join_cost",
    "broadcast_cost",
    "track2_cost",
    "track3_cost",
    "track4_cost",
    "track4_shard_cost",
    "CorrelationClasses",
    "late_materialization_cost",
    "tracking_aware_cost",
    "filtered_hash_join_cost",
    "filtered_late_materialization_cost",
    "filtered_track2_cost",
    "track_join_beats_hash_join_width_rule",
]


def _remote_fraction(stats: JoinStats, include_local_discount: bool) -> float:
    return (1.0 - 1.0 / stats.num_nodes) if include_local_discount else 1.0


def hash_join_cost(stats: JoinStats, include_local_discount: bool = False) -> float:
    """Grace hash join: ``tR*(wk+wR) + tS*(wk+wS)``."""
    fraction = _remote_fraction(stats, include_local_discount)
    return fraction * (
        stats.tuples_r * stats.tuple_width_r + stats.tuples_s * stats.tuple_width_s
    )


def broadcast_cost(stats: JoinStats, side: str = "R") -> float:
    """Broadcast join: the chosen side is replicated to ``N - 1`` nodes."""
    if side == "R":
        return stats.tuples_r * stats.tuple_width_r * (stats.num_nodes - 1)
    if side == "S":
        return stats.tuples_s * stats.tuple_width_s * (stats.num_nodes - 1)
    raise CostModelError(f"side must be 'R' or 'S', got {side!r}")


def _tracking_cost(stats: JoinStats, with_counts: bool) -> float:
    """Key tracking: each node's distinct keys to the scheduling nodes."""
    count_r = stats.counter_width_r() if with_counts else 0.0
    count_s = stats.counter_width_s() if with_counts else 0.0
    return stats.distinct_r * stats.nodes_per_key_r * (stats.key_width + count_r) + (
        stats.distinct_s * stats.nodes_per_key_s * (stats.key_width + count_s)
    )


def track2_cost(stats: JoinStats, direction: str = "RS") -> float:
    """2-phase track join, Section 3.1:

    ``(dR*nR + dS*nS)*wk + dR*mS*wk + tR*sR*mS*(wk+wR)`` for R -> S.
    """
    if direction == "SR":
        return track2_cost(stats.swapped(), "RS")
    if direction != "RS":
        raise CostModelError(f"direction must be 'RS' or 'SR', got {direction!r}")
    tracking = _tracking_cost(stats, with_counts=False)
    locations = stats.distinct_r * stats.matching_nodes_s * stats.key_width
    tuples = (
        stats.tuples_r
        * stats.selectivity_r
        * stats.matching_nodes_s
        * stats.tuple_width_r
    )
    return tracking + locations + tuples


@dataclass(frozen=True)
class CorrelationClasses:
    """Key-population split used by the 3/4-phase cost formulas.

    Fractions of the distinct keys (and, with uniform repetition, of the
    tuples) joined through each mechanism:

    - ``rs``: R -> S selective broadcast (class R1/S1),
    - ``sr``: S -> R selective broadcast (class R2/S2),
    - ``hashlike``: keys whose optimal schedule consolidates to a single
      node, hash join style (class R3/S3, 4-phase only).

    The paper populates these classes with correlated sampling; see
    :mod:`repro.costmodel.sampling`.
    """

    rs: float
    sr: float
    hashlike: float = 0.0

    def __post_init__(self) -> None:
        total = self.rs + self.sr + self.hashlike
        if not math.isclose(total, 1.0, rel_tol=1e-6, abs_tol=1e-9):
            raise CostModelError(f"correlation class fractions must sum to 1, got {total}")
        if min(self.rs, self.sr, self.hashlike) < -1e-12:
            raise CostModelError("correlation class fractions must be non-negative")


def _selective_broadcast_terms(stats: JoinStats, fraction: float, direction: str) -> float:
    """Location + tuple transfer cost for one direction's key class."""
    if direction == "SR":
        return _selective_broadcast_terms(stats.swapped(), fraction, "RS")
    locations = fraction * stats.distinct_r * stats.matching_nodes_s * stats.key_width
    tuples = (
        fraction
        * stats.tuples_r
        * stats.selectivity_r
        * stats.matching_nodes_s
        * stats.tuple_width_r
    )
    return locations + tuples


def track3_cost(stats: JoinStats, classes: CorrelationClasses | None = None) -> float:
    """3-phase track join with per-key direction classes R1/S1, R2/S2."""
    if classes is None:
        # Without sampling information, assume the optimizer-preferred
        # single direction (cheaper side broadcast) for every key.
        rs_cost = _selective_broadcast_terms(stats, 1.0, "RS")
        sr_cost = _selective_broadcast_terms(stats, 1.0, "SR")
        best = min(rs_cost, sr_cost)
        return _tracking_cost(stats, with_counts=True) + best
    if classes.hashlike:
        raise CostModelError("3-phase track join has no hash-like class")
    return (
        _tracking_cost(stats, with_counts=True)
        + _selective_broadcast_terms(stats, classes.rs, "RS")
        + _selective_broadcast_terms(stats, classes.sr, "SR")
    )


def track4_cost(stats: JoinStats, classes: CorrelationClasses | None = None) -> float:
    """4-phase track join, simplified three-class form of Section 3.1.

    Classes ``rs``/``sr`` behave like 3-phase selective broadcasts; the
    ``hashlike`` class consolidates each key at one node, paying one
    transfer per tuple plus its tracking-style location messages.
    """
    if classes is None:
        return track3_cost(stats, None)
    hashlike = classes.hashlike * (
        stats.distinct_r * stats.nodes_per_key_r * stats.key_width
        + stats.tuples_r * stats.selectivity_r * stats.tuple_width_r
        + stats.distinct_s * stats.nodes_per_key_s * stats.key_width
        + stats.tuples_s * stats.selectivity_s * stats.tuple_width_s
    )
    return (
        _tracking_cost(stats, with_counts=True)
        + _selective_broadcast_terms(stats, classes.rs, "RS")
        + _selective_broadcast_terms(stats, classes.sr, "SR")
        + hashlike
    )


def track4_shard_cost(
    stats: JoinStats,
    classes: CorrelationClasses | None = None,
    hot_fraction: float = 0.05,
    max_shards: int | None = None,
) -> float:
    """4-phase track join with heavy-hitter sharding.

    Cold keys cost exactly :func:`track4_cost`.  A heavy hitter
    (``stats.max_key_fraction > hot_fraction``) additionally replicates
    its smaller side to every shard of its larger side, paying the
    replicated bytes once per extra shard — the premium sharding trades
    for a flat per-node load.  Without skew information
    (``max_key_fraction = 0``) the estimate equals the plain 4-phase
    cost, mirroring the byte-identical execution on non-skewed inputs.
    """
    base = track4_cost(stats, classes)
    if stats.max_key_fraction <= hot_fraction:
        return base
    bytes_r = stats.tuples_r * stats.tuple_width_r
    bytes_s = stats.tuples_s * stats.tuple_width_s
    total = bytes_r + bytes_s
    big, small = max(bytes_r, bytes_s), min(bytes_r, bytes_s)
    shards = math.ceil(stats.max_key_fraction * big / (hot_fraction * total))
    cap = stats.num_nodes if max_shards is None else min(stats.num_nodes, max_shards)
    shards = max(2, min(shards, cap))
    return base + stats.max_key_fraction * small * (shards - 1)


def _rid_bytes(tuples: float) -> float:
    """``log t`` bits, as bytes, for a record identifier."""
    return max(1.0, math.log2(max(2.0, tuples))) / 8.0


def late_materialization_cost(stats: JoinStats, output_tuples: float) -> float:
    """Late-materialized hash join (Section 3.2):

    ``(tR+tS)*wk + tRS*(wR+wS+log tR+log tS)``.
    """
    rid_r = _rid_bytes(stats.tuples_r)
    rid_s = _rid_bytes(stats.tuples_s)
    return (stats.tuples_r + stats.tuples_s) * stats.key_width + output_tuples * (
        stats.payload_r + stats.payload_s + rid_r + rid_s
    )


def tracking_aware_cost(stats: JoinStats, output_tuples: float) -> float:
    """Tracking-aware rid hash join (Section 3.2):

    ``(tR+tS)*wk + tRS*(min(wR,wS)+wk+log tR+log tS)``.
    """
    rid_r = _rid_bytes(stats.tuples_r)
    rid_s = _rid_bytes(stats.tuples_s)
    return (stats.tuples_r + stats.tuples_s) * stats.key_width + output_tuples * (
        min(stats.payload_r, stats.payload_s) + stats.key_width + rid_r + rid_s
    )


def _filter_broadcast(stats: JoinStats, filter_width: float) -> float:
    """``(tR*sR + tS*sS) * N * wbf``: Bloom filters to every node."""
    qualifying = stats.tuples_r * stats.selectivity_r + stats.tuples_s * stats.selectivity_s
    return qualifying * stats.num_nodes * filter_width


def filtered_hash_join_cost(
    stats: JoinStats, filter_width: float, error: float
) -> float:
    """Early-materialized hash join behind two-way Bloom filtering."""
    return (
        _filter_broadcast(stats, filter_width)
        + stats.tuples_r * (stats.selectivity_r + error) * stats.tuple_width_r
        + stats.tuples_s * (stats.selectivity_s + error) * stats.tuple_width_s
    )


def filtered_late_materialization_cost(
    stats: JoinStats, filter_width: float, error: float, output_tuples: float
) -> float:
    """Late-materialized hash join behind two-way Bloom filtering."""
    rid_r = _rid_bytes(stats.tuples_r)
    rid_s = _rid_bytes(stats.tuples_s)
    return (
        _filter_broadcast(stats, filter_width)
        + stats.tuples_r * (stats.selectivity_r + error) * (stats.key_width + rid_r)
        + stats.tuples_s * (stats.selectivity_s + error) * (stats.key_width + rid_s)
        + output_tuples * (stats.payload_r + stats.payload_s + rid_r + rid_s)
    )


def filtered_track2_cost(stats: JoinStats, filter_width: float, error: float) -> float:
    """2-phase track join behind two-way Bloom filtering (Section 3.3)."""
    me_r = min(
        stats.num_nodes,
        stats.tuples_r * (stats.selectivity_r + error) / stats.distinct_r,
    )
    me_s = min(
        stats.num_nodes,
        stats.tuples_s * (stats.selectivity_s + error) / stats.distinct_s,
    )
    return (
        _filter_broadcast(stats, filter_width)
        + stats.distinct_r * (stats.selectivity_r + error) * me_r * stats.key_width
        + stats.distinct_s * (stats.selectivity_s + error) * me_s * stats.key_width
        + stats.distinct_r * stats.selectivity_r * stats.matching_nodes_s * stats.key_width
        + stats.tuples_r
        * stats.selectivity_r
        * stats.matching_nodes_s
        * stats.tuple_width_r
    )


def track_join_beats_hash_join_width_rule(stats: JoinStats) -> bool:
    """The Section 3.1 width rule for unique-key equal-cardinality joins.

    With no locality, track join transfers no more than hash join iff
    ``2*wk <= max(wR, wS)``.
    """
    return 2 * stats.key_width <= max(stats.payload_r, stats.payload_s)
