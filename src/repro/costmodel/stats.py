"""Input statistics for the analytic network cost model (Section 3.1).

The query optimizer decides between broadcast join, hash join, and the
track join variants from closed-form traffic estimates.  Those formulas
consume the statistics collected here: table cardinalities, distinct key
counts, column widths under the chosen encoding, and input
selectivities.  Derived quantities follow the paper's notation:

- ``n_r = min(N, tR/dR)`` — expected nodes holding matches of a key
  (worst case: equal keys randomly distributed);
- ``m_r = min(N, tR*sR/dR)`` — the same after selective predicates;
- ``c_r = log2(tR/(dR*nR))`` — bits needed for tracking counters, the
  average per-node key repetition.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Callable

from ..errors import CostModelError

__all__ = [
    "JoinStats",
    "stats_epoch",
    "bump_stats_epoch",
    "register_epoch_listener",
]


# ---------------------------------------------------------------------------
# Statistics epochs
# ---------------------------------------------------------------------------
#
# Cached artifacts derived from table statistics — compiled-plan
# fingerprints, per-operator JoinStats on a run context — stay valid
# only while the underlying data does.  The epoch registry is the
# invalidation contract: loading, mutating, or re-partitioning a
# resident table bumps its epoch (or the global epoch for wholesale
# changes), every fingerprint that embeds the old epoch stops matching,
# and registered listeners (the serve-layer plan cache) drop stale
# entries eagerly.

_epoch_lock = threading.Lock()
_global_epoch: int = 0
_table_epochs: dict[str, int] = {}
_epoch_listeners: list[Callable[[str | None, int], None]] = []


def stats_epoch(table: str | None = None) -> int:
    """Current statistics epoch of ``table``, or the global epoch.

    A table's epoch is the global epoch plus its own bump count, so
    both :func:`bump_stats_epoch(name) <bump_stats_epoch>` and a global
    ``bump_stats_epoch()`` advance it.  Epochs only ever grow.
    """
    with _epoch_lock:
        if table is None:
            return _global_epoch
        return _global_epoch + _table_epochs.get(table, 0)


def bump_stats_epoch(table: str | None = None) -> int:
    """Invalidate statistics for ``table`` (or, with ``None``, every table).

    Returns the table's (or global) new epoch and notifies every
    listener registered via :func:`register_epoch_listener` with
    ``(table, new_epoch)``.  Call this whenever a resident table's data
    changes: rows appended, partitions rebalanced, a fresh load.
    """
    with _epoch_lock:
        global _global_epoch
        if table is None:
            _global_epoch += 1
            epoch = _global_epoch
        else:
            _table_epochs[table] = _table_epochs.get(table, 0) + 1
            epoch = _global_epoch + _table_epochs[table]
        listeners = list(_epoch_listeners)
    for listener in listeners:
        listener(table, epoch)
    return epoch


def register_epoch_listener(
    listener: Callable[[str | None, int], None]
) -> Callable[[], None]:
    """Subscribe to epoch bumps; returns an unsubscribe callable.

    Listeners fire after the epoch has advanced, outside the registry
    lock, with the bumped table name (``None`` for a global bump) and
    its new epoch.  The serve-layer plan cache uses this to evict
    fingerprints of stale statistics instead of waiting for capacity
    pressure to push them out.
    """
    with _epoch_lock:
        _epoch_listeners.append(listener)

    def unregister() -> None:
        with _epoch_lock:
            if listener in _epoch_listeners:
                _epoch_listeners.remove(listener)

    return unregister


@dataclass(frozen=True)
class JoinStats:
    """Statistics describing one distributed equi-join.

    Widths are bytes on the wire; ``key_width`` is ``wk``, the width of
    all join key columns together, and the payloads are ``wR``/``wS``.
    Selectivities are the fraction of each table with matches on the
    other side after applying all other predicates (``sR``, ``sS``).
    """

    num_nodes: int
    tuples_r: float
    tuples_s: float
    distinct_r: float
    distinct_s: float
    key_width: float
    payload_r: float
    payload_s: float
    selectivity_r: float = 1.0
    selectivity_s: float = 1.0
    location_width: float = 1.0
    #: Fraction of all rows held by the most frequent join key (both
    #: sides combined, symmetric under :meth:`swapped`); populated from
    #: :func:`~repro.costmodel.histogram.heavy_hitters`.  ``0`` means
    #: "no skew known" and keeps every formula at its uniform estimate.
    max_key_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise CostModelError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.tuples_r < 0 or self.tuples_s < 0:
            raise CostModelError("tuple counts must be non-negative")
        if not (0 < self.distinct_r <= max(self.tuples_r, 1)):
            raise CostModelError(
                f"distinct_r={self.distinct_r} inconsistent with tuples_r={self.tuples_r}"
            )
        if not (0 < self.distinct_s <= max(self.tuples_s, 1)):
            raise CostModelError(
                f"distinct_s={self.distinct_s} inconsistent with tuples_s={self.tuples_s}"
            )
        for name in ("selectivity_r", "selectivity_s", "max_key_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise CostModelError(f"{name} must be in [0, 1], got {value}")

    # -- derived quantities (paper notation) ----------------------------

    @property
    def tuple_width_r(self) -> float:
        """Full R tuple width ``wk + wR``."""
        return self.key_width + self.payload_r

    @property
    def tuple_width_s(self) -> float:
        """Full S tuple width ``wk + wS``."""
        return self.key_width + self.payload_s

    @property
    def nodes_per_key_r(self) -> float:
        """``nR = min(N, tR/dR)``: nodes holding R matches of a key."""
        return min(self.num_nodes, self.tuples_r / self.distinct_r)

    @property
    def nodes_per_key_s(self) -> float:
        """``nS = min(N, tS/dS)``."""
        return min(self.num_nodes, self.tuples_s / self.distinct_s)

    @property
    def matching_nodes_r(self) -> float:
        """``mR = min(N, tR*sR/dR)``: R match nodes after predicates."""
        return min(self.num_nodes, self.tuples_r * self.selectivity_r / self.distinct_r)

    @property
    def matching_nodes_s(self) -> float:
        """``mS = min(N, tS*sS/dS)``."""
        return min(self.num_nodes, self.tuples_s * self.selectivity_s / self.distinct_s)

    def counter_width_r(self) -> float:
        """Bytes for R tracking counters: ``log2`` of per-node repetition."""
        repetition = max(2.0, self.tuples_r / (self.distinct_r * max(self.nodes_per_key_r, 1e-9)))
        return max(1.0, math.log2(repetition)) / 8.0

    def counter_width_s(self) -> float:
        """Bytes for S tracking counters."""
        repetition = max(2.0, self.tuples_s / (self.distinct_s * max(self.nodes_per_key_s, 1e-9)))
        return max(1.0, math.log2(repetition)) / 8.0

    def swapped(self) -> "JoinStats":
        """The same join with R and S roles exchanged."""
        return JoinStats(
            num_nodes=self.num_nodes,
            tuples_r=self.tuples_s,
            tuples_s=self.tuples_r,
            distinct_r=self.distinct_s,
            distinct_s=self.distinct_r,
            key_width=self.key_width,
            payload_r=self.payload_s,
            payload_s=self.payload_r,
            selectivity_r=self.selectivity_s,
            selectivity_s=self.selectivity_r,
            location_width=self.location_width,
            max_key_fraction=self.max_key_fraction,
        )
