"""Correlated sampling: populating correlation classes from data.

Section 3.1 proposes estimating the exact track join cost — and the
R1/R2/R3 correlation classes of the 3/4-phase formulas — with correlated
sampling [37]: a sample that includes a tuple iff its *join key* is
sampled, so join relationships between the tables are preserved
regardless of distribution.  The sample is augmented with the tuples'
initial node placements.

We sample keys by hashing them to ``[0, 1)`` and keeping those below the
rate, which is consistent across tables and can be computed offline.
The sampled tracking table then runs through the real schedule
generator, classifying every sampled key by how its optimal schedule
moves data and scaling costs back by ``1 / rate``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.schedule import generate_schedules
from ..core.tracking import TrackingTable
from ..errors import CostModelError
from ..storage.table import DistributedTable
from ..util import hash_partition, mix64, segment_boundaries, segment_ids
from .formulas import CorrelationClasses

__all__ = ["CorrelatedSample", "correlated_sample", "estimate_classes"]

_SAMPLE_SEED = 0xC52


@dataclass
class CorrelatedSample:
    """A key-correlated sample of both join inputs with placements."""

    rate: float
    tracking: TrackingTable
    #: Distinct sampled keys.
    num_keys: int

    def scale(self, value: float) -> float:
        """Scale a sampled quantity back to the full population."""
        return value / self.rate


def _sample_mask(keys: np.ndarray, rate: float) -> np.ndarray:
    """Deterministic key-correlated inclusion mask."""
    draws = mix64(keys, seed=_SAMPLE_SEED).astype(np.float64) / 2.0**64
    return draws < rate


def correlated_sample(
    table_r: DistributedTable,
    table_s: DistributedTable,
    rate: float,
    encoding,
    hash_seed: int = 0,
) -> CorrelatedSample:
    """Build the sampled tracking table for both inputs.

    The same key-hash decides inclusion in both tables, so every sampled
    key carries its complete match structure.
    """
    if not 0.0 < rate <= 1.0:
        raise CostModelError(f"sampling rate must be in (0, 1], got {rate}")
    width_r = table_r.schema.tuple_width(encoding)
    width_s = table_s.schema.tuple_width(encoding)
    num_nodes = table_r.num_nodes

    chunks_keys, chunks_nodes, chunks_r, chunks_s = [], [], [], []
    for side, table, width in (("R", table_r, width_r), ("S", table_s, width_s)):
        for node, partition in enumerate(table.partitions):
            kept = partition.keys[_sample_mask(partition.keys, rate)]
            if len(kept) == 0:
                continue
            distinct, counts = np.unique(kept, return_counts=True)
            chunks_keys.append(distinct)
            chunks_nodes.append(np.full(len(distinct), node, dtype=np.int64))
            sizes = counts.astype(np.float64) * width
            if side == "R":
                chunks_r.append(sizes)
                chunks_s.append(np.zeros(len(distinct)))
            else:
                chunks_r.append(np.zeros(len(distinct)))
                chunks_s.append(sizes)

    if not chunks_keys:
        empty_i = np.empty(0, dtype=np.int64)
        empty_f = np.empty(0, dtype=np.float64)
        tracking = TrackingTable(empty_i, empty_i, empty_f, empty_f, empty_i, empty_i)
        return CorrelatedSample(rate=rate, tracking=tracking, num_keys=0)

    keys = np.concatenate(chunks_keys)
    nodes = np.concatenate(chunks_nodes)
    size_r = np.concatenate(chunks_r)
    size_s = np.concatenate(chunks_s)
    order = np.lexsort((nodes, keys))
    keys, nodes, size_r, size_s = keys[order], nodes[order], size_r[order], size_s[order]
    is_new = np.empty(len(keys), dtype=bool)
    is_new[0] = True
    np.logical_or(keys[1:] != keys[:-1], nodes[1:] != nodes[:-1], out=is_new[1:])
    starts = np.flatnonzero(is_new)
    keys, nodes = keys[starts], nodes[starts]
    size_r = np.add.reduceat(size_r, starts)
    size_s = np.add.reduceat(size_s, starts)
    key_starts = segment_boundaries(keys)
    t_nodes = hash_partition(keys[key_starts], num_nodes, hash_seed)
    tracking = TrackingTable(keys, nodes, size_r, size_s, key_starts, t_nodes)
    return CorrelatedSample(rate=rate, tracking=tracking, num_keys=len(key_starts))


def estimate_classes(
    sample: CorrelatedSample, location_width: float = 1.0
) -> tuple[CorrelationClasses, float]:
    """Classify sampled keys and estimate 4-phase payload traffic.

    Runs real schedule generation on the sampled tracking table and
    returns (correlation classes, estimated full-population schedule
    cost in bytes).  A key counts as *hash-like* when its schedule
    consolidates everything onto a single node via migrations.
    """
    tracking = sample.tracking
    if tracking.num_keys == 0:
        return CorrelationClasses(rs=0.5, sr=0.5, hashlike=0.0), 0.0
    schedules = generate_schedules(tracking, location_width=location_width)
    seg = segment_ids(tracking.key_starts, tracking.num_entries)

    # Hash-like: after migration, the target side occupies one node.
    target_entries = np.where(
        schedules.direction_rs[seg], tracking.size_s > 0, tracking.size_r > 0
    )
    survivors = target_entries & ~schedules.migrate
    survivors_per_key = np.add.reduceat(survivors.astype(np.int64), tracking.key_starts)
    migrations_per_key = np.add.reduceat(
        schedules.migrate.astype(np.int64), tracking.key_starts
    )
    hashlike = (survivors_per_key == 1) & (migrations_per_key > 0)

    num_keys = tracking.num_keys
    frac_hash = float(hashlike.sum()) / num_keys
    frac_rs = float((schedules.direction_rs & ~hashlike).sum()) / num_keys
    frac_sr = max(0.0, 1.0 - frac_hash - frac_rs)
    classes = CorrelationClasses(rs=frac_rs, sr=frac_sr, hashlike=frac_hash)
    estimated_cost = sample.scale(float(schedules.cost.sum()))
    return classes, estimated_cost
