"""Equi-depth key histograms: catalog statistics without full scans.

The query executor can measure join statistics exactly, but a real
optimizer works from catalog synopses.  This module provides the
classic equi-depth histogram over join keys plus a distinct-count
estimator (a register-based cardinality sketch in the
Flajolet-Martin/HyperLogLog family), and derives
:class:`~repro.costmodel.stats.JoinStats` for two histogrammed tables —
including overlap-based selectivity estimates — so
:func:`~repro.costmodel.optimizer.choose_algorithm` can run from
synopses alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CostModelError
from ..storage.table import DistributedTable
from ..util import mix64
from .stats import JoinStats

__all__ = [
    "KeyHistogram",
    "estimate_distinct",
    "heavy_hitters",
    "stats_from_histograms",
]


def estimate_distinct(keys: np.ndarray, num_registers: int = 1024) -> float:
    """Estimate the number of distinct keys with an HLL-style sketch.

    Hashes keys into ``num_registers`` registers keeping each register's
    maximum leading-zero count, then applies the standard harmonic-mean
    estimator with the small-range (linear counting) correction.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if len(keys) == 0:
        return 0.0
    if num_registers < 16 or num_registers & (num_registers - 1):
        raise CostModelError(
            f"register count must be a power of two >= 16, got {num_registers}"
        )
    register_bits = int(num_registers).bit_length() - 1
    window = 64 - register_bits  # bits left for the rank estimate
    hashes = mix64(keys, seed=0x41D)
    registers = (hashes & np.uint64(num_registers - 1)).astype(np.int64)
    remaining = (hashes >> np.uint64(register_bits)).astype(np.uint64)
    # rho = leading zeros of the window + 1 (rank of the first set bit).
    bit_length = np.where(
        remaining > 0,
        np.floor(np.log2(np.maximum(remaining, 1).astype(np.float64))) + 1,
        0,
    )
    rho = (window - bit_length + 1).astype(np.int64)
    max_rho = np.zeros(num_registers, dtype=np.int64)
    np.maximum.at(max_rho, registers, rho)
    alpha = 0.7213 / (1 + 1.079 / num_registers)
    estimate = alpha * num_registers**2 / np.sum(2.0 ** (-max_rho.astype(np.float64)))
    zero_registers = int((max_rho == 0).sum())
    if estimate <= 2.5 * num_registers and zero_registers > 0:
        # Linear counting for small cardinalities.
        estimate = num_registers * np.log(num_registers / zero_registers)
    return float(estimate)


def heavy_hitters(
    keys: np.ndarray, threshold: float = 0.05
) -> tuple[np.ndarray, np.ndarray]:
    """Exact heavy hitters: keys holding more than ``threshold`` of the rows.

    Reuses the synopsis machinery rather than a full group-by.  With
    ``ceil(2 / threshold)`` equi-depth quantiles, consecutive quantile
    points are at most ``threshold / 2`` of the rows apart, so any key
    frequent enough must repeat as a raw quantile value — the repeated
    values are a small candidate set (at most ``~2 / threshold``), and
    one exact count per candidate confirms or rejects it.  Before any of
    that, the distinct-count sketch short-circuits columns that provably
    cannot contain a heavy hitter: with ``d`` distinct keys the most
    frequent one has at most ``total - d + 1`` rows (the ``0.8`` factor
    absorbs sketch error).

    Returns ``(hot_keys, counts)`` sorted by key, both empty when no
    key's frequency *strictly* exceeds the threshold.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if not 0.0 < threshold <= 1.0:
        raise CostModelError(f"threshold must be in (0, 1], got {threshold}")
    total = len(keys)
    empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    if total == 0:
        return empty
    frequency_bound = total - 0.8 * estimate_distinct(keys) + 1
    if frequency_bound <= threshold * total:
        return empty
    num_quantiles = int(np.ceil(2.0 / threshold))
    quantiles = np.quantile(keys, np.linspace(0, 1, num_quantiles + 1))
    values = quantiles.astype(np.int64)
    candidates = np.unique(values[:-1][values[1:] == values[:-1]])
    if len(candidates) == 0:
        return empty
    ordered = np.sort(keys)
    counts = np.searchsorted(ordered, candidates, side="right") - np.searchsorted(
        ordered, candidates, side="left"
    )
    keep = counts > threshold * total
    return candidates[keep], counts[keep].astype(np.int64)


@dataclass
class KeyHistogram:
    """Equi-depth histogram of one table's join keys.

    Attributes
    ----------
    boundaries:
        ``num_buckets + 1`` key values; bucket ``i`` covers
        ``[boundaries[i], boundaries[i+1])`` (last bucket inclusive).
    counts:
        Rows per bucket (roughly equal by construction).
    distinct:
        Sketch-estimated distinct keys of the whole column.
    total:
        Total rows histogrammed.
    """

    boundaries: np.ndarray
    counts: np.ndarray
    distinct: float
    total: int

    @classmethod
    def build(cls, keys: np.ndarray, num_buckets: int = 32) -> "KeyHistogram":
        """Build from a key column (one pass + sort of a sample)."""
        keys = np.asarray(keys, dtype=np.int64)
        if num_buckets < 1:
            raise CostModelError(f"need at least one bucket, got {num_buckets}")
        if len(keys) == 0:
            return cls(
                boundaries=np.array([0, 0], dtype=np.int64),
                counts=np.zeros(1, dtype=np.int64),
                distinct=0.0,
                total=0,
            )
        quantiles = np.quantile(keys, np.linspace(0, 1, num_buckets + 1))
        boundaries = np.unique(quantiles.astype(np.int64))
        if len(boundaries) < 2:
            boundaries = np.array([boundaries[0], boundaries[0] + 1], dtype=np.int64)
        # Right-exclusive buckets, with the last stretched one unit so
        # the maximum key lands inside it.
        bins = boundaries.astype(np.float64)
        bins[-1] = boundaries[-1] + 1
        counts, _ = np.histogram(keys, bins=bins)
        return cls(
            boundaries=boundaries,
            counts=counts.astype(np.int64),
            distinct=estimate_distinct(keys),
            total=len(keys),
        )

    @classmethod
    def of_table(cls, table: DistributedTable, num_buckets: int = 32) -> "KeyHistogram":
        """Histogram a distributed table's key column."""
        return cls.build(table.all_keys(), num_buckets)

    def overlap_fraction(self, other: "KeyHistogram") -> float:
        """Fraction of this histogram's rows in ``other``'s key range.

        A coarse containment estimate: rows in buckets intersecting the
        other histogram's [min, max] range, weighted by the intersected
        share of each bucket's width.
        """
        if self.total == 0 or other.total == 0:
            return 0.0
        lo = float(other.boundaries[0])
        hi = float(other.boundaries[-1])
        fraction = 0.0
        for i in range(len(self.counts)):
            left = float(self.boundaries[i])
            right = float(self.boundaries[i + 1])
            width = max(right - left, 1.0)
            inter = max(0.0, min(right, hi + 1) - max(left, lo))
            fraction += (self.counts[i] / self.total) * min(1.0, inter / width)
        return min(1.0, fraction)


def stats_from_histograms(
    hist_r: KeyHistogram,
    hist_s: KeyHistogram,
    num_nodes: int,
    key_width: float,
    payload_r: float,
    payload_s: float,
    location_width: float = 1.0,
) -> JoinStats:
    """Derive optimizer statistics from two key histograms."""
    return JoinStats(
        num_nodes=num_nodes,
        tuples_r=max(1.0, float(hist_r.total)),
        tuples_s=max(1.0, float(hist_s.total)),
        distinct_r=float(np.clip(hist_r.distinct, 1.0, max(1, hist_r.total))),
        distinct_s=float(np.clip(hist_s.distinct, 1.0, max(1, hist_s.total))),
        key_width=key_width,
        payload_r=payload_r,
        payload_s=payload_s,
        selectivity_r=hist_r.overlap_fraction(hist_s),
        selectivity_s=hist_s.overlap_fraction(hist_r),
        location_width=location_width,
    )
