"""Plan cache: compiled physical plans keyed by plan fingerprint.

A compiled :class:`~repro.query.executor.PhysicalPlan` is an immutable,
reusable artifact (PR 5's ``compile_plan`` split); what made it
single-use in practice was that every query recompiled from scratch.
The cache closes that gap: queries are keyed by
:meth:`PlanNode.fingerprint() <repro.query.plan.PlanNode.fingerprint>`
— a deterministic digest of plan shape, algorithm choices, table
schemas, and each table's statistics epoch — so a resubmitted query
reuses both the compiled operator pipeline and the
:class:`~repro.query.executor.RunContext` holding its measured join
statistics.

Invalidation is epoch-driven: the fingerprint embeds
:func:`repro.costmodel.stats.stats_epoch` per scanned table, so bumping
an epoch makes stale entries unreachable, and the cache also registers
an epoch listener to evict them eagerly (counted separately from
capacity evictions).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from ..analysis.sanitizer import shared_key, track_shared
from ..costmodel.stats import register_epoch_listener
from ..errors import ValidationError
from ..query.executor import PhysicalPlan, RunContext, compile_plan
from ..query.plan import PlanNode

__all__ = ["CacheEntry", "PlanCache"]


@dataclass
class CacheEntry:
    """One cached compiled plan plus its reusable run state."""

    fingerprint: str
    physical: PhysicalPlan
    #: Cross-run context: cached join statistics keyed by operator.
    context: RunContext = field(default_factory=RunContext)
    hits: int = 0


class PlanCache:
    """LRU cache of compiled plans with hit/miss/eviction counters.

    Thread-safe: lookups and inserts from concurrent query drivers
    serialize on one lock (compilation itself happens outside the lock;
    a rare duplicate compile of the same fingerprint is benign — one
    entry wins, both runs are correct).

    ``capacity`` bounds the entry count; least-recently-used entries
    fall off.  ``close()`` unregisters the epoch listener.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValidationError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._track = shared_key("serve.cache.entries")
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._unregister = register_epoch_listener(self._on_epoch_bump)

    def get_or_compile(
        self, plan: PlanNode, *, fuse_rekey: bool = False
    ) -> tuple[CacheEntry, bool]:
        """The cached entry for ``plan``, compiling on a miss.

        Returns ``(entry, hit)``.  The fingerprint embeds each scanned
        table's statistics epoch, so a post-bump resubmission of the
        same plan shape misses and compiles fresh.
        """
        fingerprint = plan.fingerprint()
        with self._lock:
            track_shared(self._track, write=True, locks=(self._lock,))
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
                entry.hits += 1
                self.hits += 1
                return entry, True
            self.misses += 1
        physical = compile_plan(plan, fuse_rekey=fuse_rekey)
        entry = CacheEntry(fingerprint=fingerprint, physical=physical)
        with self._lock:
            track_shared(self._track, write=True, locks=(self._lock,))
            existing = self._entries.get(fingerprint)
            if existing is not None:
                # A concurrent driver compiled the same plan first;
                # keep its entry (and its warmed statistics).
                self._entries.move_to_end(fingerprint)
                return existing, False
            self._entries[fingerprint] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return entry, False

    def _on_epoch_bump(self, table: str | None, _epoch: int) -> None:
        """Eagerly drop entries whose statistics just went stale."""
        with self._lock:
            track_shared(self._track, write=True, locks=(self._lock,))
            if table is None:
                stale = list(self._entries)
            else:
                stale = [
                    fingerprint
                    for fingerprint, entry in self._entries.items()
                    if table in entry.physical.table_names
                ]
            for fingerprint in stale:
                del self._entries[fingerprint]
            self.invalidations += len(stale)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Counter snapshot: hits, misses, evictions, invalidations."""
        with self._lock:
            track_shared(self._track, write=False, locks=(self._lock,))
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def close(self) -> None:
        """Unregister the statistics-epoch listener."""
        self._unregister()
