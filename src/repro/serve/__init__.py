"""Concurrent query service: plan cache, warm pool, admission control.

The serve layer turns the single-query engine into a multi-tenant
service: compiled plans are cached by deterministic fingerprint
(:mod:`repro.serve.cache`), phase workers are spawned once and shared
across queries (:mod:`repro.serve.pool`), and an admission-controlled
fair scheduler multiplexes bounded in-flight queries over them
(:mod:`repro.serve.service`) — while every query's traffic ledger,
profile, and output stay byte-identical to a solo run.
"""

from .bench import bench_serve, bench_serve_report, check_serve
from .cache import CacheEntry, PlanCache
from .pool import SharedExecutor, WarmExecutorPool
from .service import QueryOutcome, QueryRequest, QueryService, QueryTicket

__all__ = [
    "PlanCache",
    "CacheEntry",
    "WarmExecutorPool",
    "SharedExecutor",
    "QueryService",
    "QueryRequest",
    "QueryTicket",
    "QueryOutcome",
    "bench_serve",
    "bench_serve_report",
    "check_serve",
]
