"""Concurrent query service: admission control over a warm worker pool.

:class:`QueryService` is the "millions of users" layer: many clients
submit logical plans against shared resident tables, and the service
multiplexes them over one :class:`~repro.serve.pool.WarmExecutorPool`
with a :class:`~repro.serve.cache.PlanCache` amortizing compilation and
statistics across repeated plan shapes.

Scheduling model
----------------
- **Admission**: at most ``max_queue`` queries may wait; a submit
  beyond that (or after ``close()``) is rejected with a typed
  :class:`~repro.errors.AdmissionError` — clean backpressure instead of
  unbounded queueing.
- **Fairness**: ``max_inflight`` driver threads pull from one priority
  queue ordered by ``(priority, admission sequence)`` — strict FIFO
  within a priority level, lower priority values first.
- **Deadlines**: a request's ``timeout`` starts at admission.  An
  expired query is failed with
  :class:`~repro.errors.QueryTimeoutError` without running; one that
  expires mid-run is cut at the next operator boundary.

Isolation
---------
Each query runs on its *own* :class:`~repro.cluster.cluster.Cluster`
(network fabric, ledger, inboxes) borrowing only the shared executor,
so its traffic ledger, execution profiles, and output are byte-identical
to the same query run solo — the per-task send-lane barrier discipline
already guarantees worker-count invariance, and nothing of a query's
network state is shared.  Resident tables are read-shared; their
partition caches are deterministic derived values, so concurrent reads
are safe.
"""

from __future__ import annotations

import itertools
import queue
import threading
from dataclasses import dataclass, field

from ..analysis.sanitizer import shared_key, track_shared
from ..cluster.cluster import Cluster
from ..errors import AdmissionError, QueryTimeoutError, ValidationError
from ..joins.base import JoinSpec
from ..query.executor import QueryResult, RunContext
from ..query.plan import PlanNode
from ..storage.table import DistributedTable
from ..timing.clock import wall_clock
from .cache import PlanCache
from .pool import WarmExecutorPool

__all__ = ["QueryRequest", "QueryOutcome", "QueryTicket", "QueryService"]


@dataclass(frozen=True)
class QueryRequest:
    """One client query: a logical plan plus scheduling parameters."""

    plan: PlanNode
    spec: JoinSpec | None = None
    #: Lower values run first; ties are FIFO in admission order.
    priority: int = 0
    #: Seconds from admission until the deadline (``None`` = no limit).
    timeout: float | None = None
    #: Caller label carried through to the outcome (diagnostics only).
    tag: str = ""
    #: Per-operator FaultExhaustedError retries (see PhysicalPlan.run).
    operator_retries: int = 0


@dataclass
class QueryOutcome:
    """Terminal state of one admitted query."""

    tag: str
    ok: bool
    result: QueryResult | None = None
    error: BaseException | None = None
    #: Whether the plan came from the cache (compilation skipped).
    cache_hit: bool = False
    fingerprint: str = ""
    queue_seconds: float = 0.0
    run_seconds: float = 0.0
    total_seconds: float = 0.0


class QueryTicket:
    """Handle returned by :meth:`QueryService.submit`."""

    def __init__(self, tag: str):
        self.tag = tag
        self._done = threading.Event()
        self._outcome: QueryOutcome | None = None

    def _complete(self, outcome: QueryOutcome) -> None:
        self._outcome = outcome
        self._done.set()

    def done(self) -> bool:
        """True once the query reached a terminal state."""
        return self._done.is_set()

    def outcome(self, timeout: float | None = None) -> QueryOutcome:
        """Block until terminal and return the outcome.

        Raises :class:`~repro.errors.QueryTimeoutError` if the *wait*
        itself times out (the query may still complete later).
        """
        if not self._done.wait(timeout):
            raise QueryTimeoutError(
                f"query {self.tag!r} still pending after {timeout}s wait",
                timeout=timeout,
                where="waiting",
            )
        return self._outcome

    def result(self, timeout: float | None = None) -> QueryResult:
        """The query's :class:`QueryResult`; re-raises its failure."""
        outcome = self.outcome(timeout)
        if outcome.error is not None:
            raise outcome.error
        return outcome.result


@dataclass
class _ServiceCounters:
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    timed_out: int = 0
    inflight: int = 0
    max_inflight_seen: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class QueryService:
    """Admission-controlled concurrent execution of plans over one pool.

    Parameters
    ----------
    tables:
        Optional resident tables to register by name (convenience for
        :meth:`table`; plans reference table objects directly).
    workers / backend:
        Warm pool configuration (see :class:`WarmExecutorPool`).  With
        one worker, queries run their phases inline on the driver
        threads; inter-query concurrency then comes from
        ``max_inflight`` alone.
    max_inflight:
        Driver-thread count — the bound on concurrently *executing*
        queries.
    max_queue:
        Bound on *waiting* queries; submits beyond it raise
        :class:`~repro.errors.AdmissionError`.
    cache_capacity:
        Plan-cache entry bound (LRU).
    fuse_rekey:
        Compile plans with Rekey-into-Join fusion.

    Use as a context manager, or call :meth:`close` to drain and stop
    the driver threads and release the pool.
    """

    def __init__(
        self,
        tables: dict[str, DistributedTable] | None = None,
        *,
        workers: int | None = None,
        backend: str = "thread",
        max_inflight: int = 4,
        max_queue: int = 128,
        cache_capacity: int = 128,
        fuse_rekey: bool = False,
    ):
        if max_inflight < 1:
            raise ValidationError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 1:
            raise ValidationError(f"max_queue must be >= 1, got {max_queue}")
        self.tables = dict(tables or {})
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.fuse_rekey = fuse_rekey
        self.pool = WarmExecutorPool(workers, backend)
        self.cache = PlanCache(cache_capacity)
        self._counters = _ServiceCounters()
        self._track = shared_key("serve.service.counters")
        self._sequence = itertools.count()
        self._queue: "queue.PriorityQueue[tuple]" = queue.PriorityQueue()
        self._closed = False
        self._drivers = [
            threading.Thread(
                target=self._drive, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(max_inflight)
        ]
        for driver in self._drivers:
            driver.start()

    # -- registration ----------------------------------------------------

    def register_table(self, table: DistributedTable) -> None:
        """Make a resident table addressable via :meth:`table`."""
        self.tables[table.name] = table

    def table(self, name: str) -> DistributedTable:
        """A registered resident table by name."""
        if name not in self.tables:
            raise ValidationError(
                f"no resident table {name!r}; registered: {sorted(self.tables)}"
            )
        return self.tables[name]

    # -- admission -------------------------------------------------------

    def submit(self, request: QueryRequest | PlanNode) -> QueryTicket:
        """Admit one query; returns a ticket, or raises on rejection.

        A bare :class:`~repro.query.plan.PlanNode` is wrapped in a
        default :class:`QueryRequest`.  Rejection
        (:class:`~repro.errors.AdmissionError`) happens when the wait
        queue is at ``max_queue`` or the service is closed; an admitted
        query always reaches a terminal outcome.
        """
        if isinstance(request, PlanNode):
            request = QueryRequest(plan=request)
        counters = self._counters
        with counters.lock:
            track_shared(self._track, write=True, locks=(counters.lock,))
            if self._closed:
                counters.rejected += 1
                raise AdmissionError(
                    "service is closed", queued=self._queue.qsize(), limit=None
                )
            queued = self._queue.qsize()
            if queued >= self.max_queue:
                counters.rejected += 1
                raise AdmissionError(
                    f"admission queue is full ({queued}/{self.max_queue} waiting)",
                    queued=queued,
                    limit=self.max_queue,
                )
            counters.admitted += 1
            sequence = next(self._sequence)
        ticket = QueryTicket(request.tag or f"q{sequence}")
        admitted_at = wall_clock()
        deadline = (
            admitted_at + request.timeout if request.timeout is not None else None
        )
        self._queue.put((request.priority, sequence, request, ticket, admitted_at, deadline))
        return ticket

    def submit_many(self, requests) -> list[QueryTicket]:
        """Admit several queries in order; all-or-nothing is *not*
        attempted — a mid-list rejection propagates after earlier
        admissions stand."""
        return [self.submit(request) for request in requests]

    # -- the drivers -----------------------------------------------------

    _STOP = object()

    def _drive(self) -> None:
        while True:
            item = self._queue.get()
            if item[2] is self._STOP:
                return
            _, _, request, ticket, admitted_at, deadline = item
            counters = self._counters
            with counters.lock:
                track_shared(
                    self._track, write=True, locks=(counters.lock,)
                )
                counters.inflight += 1
                counters.max_inflight_seen = max(
                    counters.max_inflight_seen, counters.inflight
                )
            try:
                outcome = self._execute(request, admitted_at, deadline)
            except BaseException as error:  # repro: noqa[REP006] driver must survive; error reaches the caller via the ticket
                outcome = QueryOutcome(tag=ticket.tag, ok=False, error=error)
            with counters.lock:
                track_shared(
                    self._track, write=True, locks=(counters.lock,)
                )
                counters.inflight -= 1
                if outcome.ok:
                    counters.completed += 1
                elif isinstance(outcome.error, QueryTimeoutError):
                    counters.timed_out += 1
                else:
                    counters.failed += 1
            outcome.tag = ticket.tag
            ticket._complete(outcome)

    def _execute(
        self, request: QueryRequest, admitted_at: float, deadline: float | None
    ) -> QueryOutcome:
        started = wall_clock()
        queue_seconds = started - admitted_at
        if deadline is not None and started > deadline:
            return QueryOutcome(
                tag=request.tag,
                ok=False,
                error=QueryTimeoutError(
                    f"deadline expired after {queue_seconds:.3f}s in the "
                    "admission queue",
                    elapsed=queue_seconds,
                    timeout=request.timeout,
                    where="queued",
                ),
                queue_seconds=queue_seconds,
                total_seconds=started - admitted_at,
            )
        entry, hit = self.cache.get_or_compile(
            request.plan, fuse_rekey=self.fuse_rekey
        )
        num_nodes = self._num_nodes(request.plan)
        cluster = Cluster(num_nodes, executor=self.pool.lease())
        context = RunContext(
            executor=cluster.executor,
            join_stats=entry.context.join_stats,
            deadline=deadline,
        )
        context.epoch_signature = entry.context.epoch_signature
        try:
            result = entry.physical.run(
                cluster,
                request.spec,
                operator_retries=request.operator_retries,
                context=context,
            )
        except Exception as error:  # repro: noqa[REP006] failure is this query's terminal outcome, not the service's
            finished = wall_clock()
            return QueryOutcome(
                tag=request.tag,
                ok=False,
                error=error,
                cache_hit=hit,
                fingerprint=entry.fingerprint,
                queue_seconds=queue_seconds,
                run_seconds=finished - started,
                total_seconds=finished - admitted_at,
            )
        # Persist the (possibly re-pinned) epoch signature so the next
        # run of this entry reuses the statistics without re-checking.
        entry.context.epoch_signature = context.epoch_signature
        finished = wall_clock()
        return QueryOutcome(
            tag=request.tag,
            ok=True,
            result=result,
            cache_hit=hit,
            fingerprint=entry.fingerprint,
            queue_seconds=queue_seconds,
            run_seconds=finished - started,
            total_seconds=finished - admitted_at,
        )

    def _num_nodes(self, plan: PlanNode) -> int:
        """Partition count shared by every table the plan scans."""
        counts: set[int] = set()
        stack = [plan]
        from ..query.plan import Aggregate, Join, Rekey, Scan

        while stack:
            node = stack.pop()
            if isinstance(node, Scan):
                counts.add(node.table.num_nodes)
            elif isinstance(node, Join):
                stack.extend((node.left, node.right))
            elif isinstance(node, (Rekey, Aggregate)):
                stack.append(node.child)
        if len(counts) != 1:
            raise ValidationError(
                f"plan scans tables with inconsistent partition counts: "
                f"{sorted(counts)}"
            )
        return counts.pop()

    # -- lifecycle and reporting ----------------------------------------

    def drain(self, tickets, timeout: float | None = None) -> list[QueryOutcome]:
        """Wait for every ticket; outcomes in submission order."""
        return [ticket.outcome(timeout) for ticket in tickets]

    def stats(self) -> dict:
        """Service, cache, and pool counters in one snapshot."""
        counters = self._counters
        with counters.lock:
            track_shared(
                self._track, write=False, locks=(counters.lock,)
            )
            service = {
                "admitted": counters.admitted,
                "rejected": counters.rejected,
                "completed": counters.completed,
                "failed": counters.failed,
                "timed_out": counters.timed_out,
                "inflight": counters.inflight,
                "max_inflight_seen": counters.max_inflight_seen,
                "queued": self._queue.qsize(),
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
            }
        return {
            "service": service,
            "cache": self.cache.stats(),
            "pool": self.pool.stats(),
        }

    def close(self, wait: bool = True) -> None:
        """Stop admitting, let queued queries finish, release the pool."""
        with self._counters.lock:
            track_shared(
                self._track, write=True, locks=(self._counters.lock,)
            )
            if self._closed:
                return
            self._closed = True
        # Stop sentinels sort after every real priority, so queued
        # queries drain before the drivers exit.
        for _ in self._drivers:
            self._queue.put((float("inf"), next(self._sequence), self._STOP, None, 0.0, None))
        if wait:
            for driver in self._drivers:
                driver.join()
        self.cache.close()
        self.pool.shutdown()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
