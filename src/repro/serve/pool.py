"""Warm executor pool: spawn phase workers once, reuse across queries.

Before the serve layer existed, every query paid worker-pool
construction on its critical path: each :class:`~repro.cluster.cluster.Cluster`
resolved its own :class:`~repro.parallel.executor.PhaseExecutor`, so a
thread or process pool was spawned per query and torn down with it.
:class:`WarmExecutorPool` lifts that ownership out of per-query
lifetimes: the pool resolves and warms one executor at service start,
and every query's cluster borrows it through a :class:`SharedExecutor`
handle whose ``close()`` is a no-op — per-query dispatch cost drops to
task submission.

The underlying executor keeps all of its own supervision: a
:class:`~repro.parallel.executor.ProcessExecutor` leased through the
pool still respawns broken worker pools and resubmits unfinished
batches exactly as it does when privately owned.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable

from ..analysis.sanitizer import shared_key, track_shared
from ..errors import ParallelError
from ..parallel.executor import PhaseExecutor, ProcessExecutor, resolve_executor

__all__ = ["SharedExecutor", "WarmExecutorPool"]


class SharedExecutor(PhaseExecutor):
    """Borrowed view of a pooled executor.

    Delegates :meth:`map` to the pool's executor but neuters
    ``close()``: a cluster that swaps executors (``set_workers``) or a
    query that finishes must never tear down workers other queries are
    using.  Only :meth:`WarmExecutorPool.shutdown` releases the real
    pool.

    Process pools serialize their ``map`` calls under a lock —
    :class:`~repro.parallel.executor.ProcessExecutor`'s respawn
    supervision mutates pool state and is not re-entrant.  Thread and
    serial backends dispatch lock-free, so concurrent queries multiplex
    onto one worker set.
    """

    def __init__(self, inner: PhaseExecutor):
        self._inner = inner
        self._lock = (
            threading.Lock() if isinstance(inner, ProcessExecutor) else None
        )
        self._dispatch_lock = threading.Lock()
        self._track = shared_key("serve.pool.dispatch")
        self.dispatches = 0
        self.tasks = 0

    @property
    def workers(self) -> int:  # type: ignore[override]
        return self._inner.workers

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        with self._dispatch_lock:
            track_shared(
                self._track, write=True, locks=(self._dispatch_lock,)
            )
            self.dispatches += 1
            self.tasks += len(items)
        if self._lock is None:
            return self._inner.map(fn, items)
        with self._lock:
            return self._inner.map(fn, items)

    def snapshot(self) -> tuple[int, int]:
        """(dispatches, tasks) read atomically under the dispatch lock.

        Concurrent drivers increment both counters under
        ``_dispatch_lock``; reading them bare could observe one counter
        from before a dispatch and the other from after it (REP009).
        """
        with self._dispatch_lock:
            track_shared(
                self._track, write=False, locks=(self._dispatch_lock,)
            )
            return self.dispatches, self.tasks

    def close(self) -> None:
        """No-op: the owning :class:`WarmExecutorPool` releases workers."""


class WarmExecutorPool:
    """A spawn-once :class:`PhaseExecutor` shared by many queries.

    Parameters
    ----------
    workers:
        Worker count, resolved exactly like a cluster's (``None`` uses
        the process default / ``REPRO_WORKERS``).
    backend:
        ``"thread"`` or ``"process"`` for ``workers > 1``; one worker
        resolves to the inline serial executor (queries then run their
        phases inline on whichever service thread drives them, which is
        the fastest configuration for small queries — concurrency comes
        from the service's in-flight query drivers instead).
    warm:
        Pre-spawn the workers at construction (default) so the first
        query never pays pool start-up; ``False`` defers to first use.

    The pool is a context manager; leaving the ``with`` block shuts the
    real executor down.
    """

    def __init__(
        self, workers: int | None = None, backend: str = "thread", warm: bool = True
    ):
        self._inner = resolve_executor(workers, backend)
        self.backend = backend
        self.executor = SharedExecutor(self._inner)
        self._lease_lock = threading.Lock()
        self._track = shared_key("serve.pool.leases")
        self.leases = 0
        self._closed = False
        if warm:
            self.warm()

    @property
    def workers(self) -> int:
        """Worker count of the pooled executor."""
        return self._inner.workers

    def warm(self) -> None:
        """Force worker spawn now, off any query's critical path."""
        # Pools spawn lazily on first submission; one trivial task per
        # worker makes the executor build its full worker set.
        self._inner.map(_noop, range(self._inner.workers))

    def lease(self) -> SharedExecutor:
        """Borrow the shared executor for one query (or cluster)."""
        # The closed check shares the lease lock: a lease racing a
        # shutdown either sees _closed and raises, or wins the lock
        # first and hands out the executor before close() runs (REP009).
        with self._lease_lock:
            track_shared(self._track, write=True, locks=(self._lease_lock,))
            if self._closed:
                raise ParallelError(
                    "cannot lease from a shut-down WarmExecutorPool"
                )
            self.leases += 1
        return self.executor

    def stats(self) -> dict:
        """Dispatch accounting: leases, phase dispatches, tasks run."""
        with self._lease_lock:
            track_shared(
                self._track, write=False, locks=(self._lease_lock,)
            )
            leases = self.leases
        dispatches, tasks = self.executor.snapshot()
        return {
            "workers": self.workers,
            "backend": self.backend,
            "leases": leases,
            "dispatches": dispatches,
            "tasks": tasks,
        }

    def shutdown(self) -> None:
        """Release the real worker pool (idempotent)."""
        with self._lease_lock:
            track_shared(self._track, write=True, locks=(self._lease_lock,))
            self._closed = True
        self._inner.close()

    def __enter__(self) -> "WarmExecutorPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def _noop(_: int) -> None:
    """Warm-up task body (module-level so process pools can pickle it)."""
    return None
