"""Throughput benchmark of the concurrent query service.

Drives ``queries`` requests drawn from a fixed mixed workload (filter
scans, fixed- and auto-algorithm joins, join+aggregate plans over two
resident tables) through two configurations:

- **baseline** — one-at-a-time cold execution: every query compiles its
  plan from scratch, measures its own join statistics, and builds its
  own cluster and executor, exactly like a standalone
  :func:`repro.query.execute` call;
- **serve** — the same request stream through a
  :class:`~repro.serve.service.QueryService` with the plan cache and
  warm executor pool on and ``clients`` in-flight drivers.

Reported per side: wall-clock, queries/sec, and p50/p99 latency;
plus the serve side's plan-cache hit rate and pool accounting, and a
cross-check that every serve outcome matched the baseline's output
rows and network bytes for the same plan (the deep byte-identity proof
lives in the isolation test suite).

The 3x speedup acceptance gate is core-gated like the scaling bench:
one physical core cannot demonstrate a concurrency win, so the gate
records why it was skipped instead of failing (`host_cpus` is in the
report).  The smoke checks (:func:`check_serve`) assert what any host
can deliver: serve at least matches the baseline within tolerance
(plan-cache savings alone cover thread overhead), a generous absolute
p99 bound, and a nonzero cache hit rate.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from ..cluster.cluster import Cluster
from ..joins.base import JoinSpec
from ..query.executor import compile_plan
from ..query.aggregate import AggregateSpec
from ..query.plan import Aggregate, Join, PlanNode, Scan
from ..query.predicates import ColumnPredicate
from ..storage.placement import random_uniform
from ..storage.schema import Column, Schema
from ..storage.table import DistributedTable
from ..timing.clock import wall_clock
from .service import QueryRequest, QueryService

__all__ = [
    "SERVE_GATE_CPUS",
    "SERVE_GATE_SPEEDUP",
    "bench_serve",
    "bench_serve_report",
    "check_serve",
    "serve_query_mix",
    "serve_tables",
]

#: The 3x concurrency gate needs at least this many physical cores.
SERVE_GATE_CPUS = 4
#: Required serve-vs-baseline throughput ratio on a provisioned host.
SERVE_GATE_SPEEDUP = 3.0
#: Smoke tolerance: serve throughput must stay within this factor of
#: the one-at-a-time baseline even on a single core (cache savings
#: must at least pay for scheduling overhead).
SERVE_SMOKE_TOLERANCE = 0.85
#: Smoke bound on serve p99 latency, generous enough for shared CI.
SERVE_SMOKE_P99_SECONDS = 30.0


def serve_tables(
    num_nodes: int = 8, scaled_tuples: int = 20_000, seed: int = 0
) -> dict[str, DistributedTable]:
    """Two resident tables (orders R, items S) the query mix runs over."""
    rng = np.random.default_rng(seed)
    cluster = Cluster(num_nodes)
    distinct = max(1, scaled_tuples // 8)
    schema_r = Schema(
        (Column("key", bits=32),),
        (Column("amount", bits=64), Column("cust", bits=64)),
    )
    table_r = cluster.table_from_assignment(
        "serve_orders",
        schema_r,
        rng.integers(0, distinct, scaled_tuples).astype(np.int64),
        random_uniform(scaled_tuples, num_nodes, seed=seed * 19 + 1),
        columns={
            "amount": rng.integers(1, 100, scaled_tuples).astype(np.int64),
            "cust": rng.integers(0, 200, scaled_tuples).astype(np.int64),
        },
    )
    schema_s = Schema((Column("key", bits=32),), (Column("qty", bits=64),))
    rows_s = scaled_tuples + scaled_tuples // 2
    table_s = cluster.table_from_assignment(
        "serve_items",
        schema_s,
        rng.integers(0, distinct, rows_s).astype(np.int64),
        random_uniform(rows_s, num_nodes, seed=seed * 19 + 2),
        columns={"qty": rng.integers(1, 10, rows_s).astype(np.int64)},
    )
    return {table_r.name: table_r, table_s.name: table_s}


def serve_query_mix(tables: dict[str, DistributedTable]) -> list[PlanNode]:
    """The distinct plan shapes the benchmark cycles through.

    A realistic mix: cheap filter scans, joins with fixed and cost-model
    algorithm choice (some over filtered inputs), and join+aggregate
    plans.  Joins dominate the list because they are where the plan
    cache pays twice — skipped compilation *and* skipped statistics.
    """
    orders = tables["serve_orders"]
    items = tables["serve_items"]
    return [
        Scan(orders, ColumnPredicate("amount", "<", 50)),
        Scan(items, ColumnPredicate("qty", ">=", 5)),
        Join(Scan(orders), Scan(items), algorithm="HJ"),
        Join(Scan(orders), Scan(items)),
        Join(Scan(orders), Scan(items), algorithm="2TJ-R"),
        Join(Scan(orders, ColumnPredicate("amount", "<", 25)), Scan(items)),
        Join(Scan(orders), Scan(items, ColumnPredicate("qty", ">=", 8))),
        Aggregate(
            Join(Scan(orders), Scan(items), algorithm="HJ"),
            aggregates=(AggregateSpec("total_qty", "sum", "s.qty"),),
        ),
        Aggregate(
            Join(Scan(orders, ColumnPredicate("amount", ">=", 50)), Scan(items)),
            aggregates=(AggregateSpec("n", "count", "s.qty"),),
        ),
    ]


def _latency_stats(seconds: list[float]) -> dict:
    values = np.asarray(seconds, dtype=np.float64)
    return {
        "p50_seconds": float(np.percentile(values, 50)),
        "p99_seconds": float(np.percentile(values, 99)),
        "mean_seconds": float(values.mean()),
    }


def bench_serve(
    queries: int = 100,
    clients: int | None = None,
    num_nodes: int = 8,
    scaled_tuples: int = 20_000,
    seed: int = 0,
    workers: int = 1,
    backend: str = "thread",
) -> dict:
    """One-at-a-time baseline vs the concurrent service, same stream.

    ``clients`` bounds the service's in-flight queries (driver
    threads); the default scales with the host — two per core, capped
    at 8 — because drivers beyond the physical cores only add GIL and
    cache contention.  ``workers``/``backend`` configure the warm pool
    (the default single warm worker runs each query's phases inline on
    its driver thread, so inter-query concurrency comes from
    ``clients``).
    """
    tables = serve_tables(num_nodes, scaled_tuples, seed)
    mix = serve_query_mix(tables)
    plan_of = [i % len(mix) for i in range(queries)]
    spec = JoinSpec()
    host_cpus = os.cpu_count() or 1
    if clients is None:
        clients = max(2, min(8, 2 * host_cpus))

    # Baseline: cold compile + fresh cluster + fresh executor per query.
    baseline_latencies: list[float] = []
    baseline_rows: list[int] = []
    baseline_bytes: list[float] = []
    baseline_start = wall_clock()
    for index in plan_of:
        start = wall_clock()
        result = compile_plan(mix[index]).run(Cluster(num_nodes), spec)
        baseline_latencies.append(wall_clock() - start)
        baseline_rows.append(result.output_rows)
        baseline_bytes.append(result.network_bytes)
    baseline_seconds = wall_clock() - baseline_start

    # Serve: warm pool + plan cache + admission-controlled drivers.
    with QueryService(
        tables,
        workers=workers,
        backend=backend,
        max_inflight=clients,
        max_queue=queries,
    ) as service:
        serve_start = wall_clock()
        tickets = service.submit_many(
            QueryRequest(plan=mix[index], spec=spec, tag=f"q{i}")
            for i, index in enumerate(plan_of)
        )
        outcomes = service.drain(tickets)
        serve_seconds = wall_clock() - serve_start
        stats = service.stats()

    mismatches = 0
    for i, outcome in enumerate(outcomes):
        if not outcome.ok:
            raise AssertionError(
                f"serve query {outcome.tag} failed: {outcome.error!r}"
            )
        if (
            outcome.result.output_rows != baseline_rows[i]
            or outcome.result.network_bytes != baseline_bytes[i]
        ):
            mismatches += 1
    if mismatches:
        raise AssertionError(
            f"{mismatches} serve outcome(s) diverged from the one-at-a-time "
            "baseline (rows or network bytes)"
        )

    baseline_qps = queries / baseline_seconds if baseline_seconds > 0 else float("inf")
    serve_qps = queries / serve_seconds if serve_seconds > 0 else float("inf")
    speedup = serve_qps / baseline_qps if baseline_qps > 0 else float("inf")
    report = {
        "host_cpus": host_cpus,
        "config": {
            "queries": queries,
            "clients": clients,
            "num_nodes": num_nodes,
            "scaled_tuples": scaled_tuples,
            "seed": seed,
            "workers": workers,
            "backend": backend,
            "distinct_plans": len(mix),
        },
        "baseline": {
            "seconds": baseline_seconds,
            "queries_per_second": baseline_qps,
            **_latency_stats(baseline_latencies),
        },
        "serve": {
            "seconds": serve_seconds,
            "queries_per_second": serve_qps,
            **_latency_stats([o.total_seconds for o in outcomes]),
            "run_p50_seconds": float(
                np.percentile([o.run_seconds for o in outcomes], 50)
            ),
        },
        "speedup": speedup,
        "cache": stats["cache"],
        "pool": stats["pool"],
        "service": stats["service"],
        "outputs_match_baseline": True,
        "gate": _serve_gate(speedup, host_cpus),
    }
    return report


def _serve_gate(speedup: float, host_cpus: int) -> dict:
    """The 3x concurrency gate, skipped on under-provisioned hosts."""
    gate: dict = {
        "threshold": SERVE_GATE_SPEEDUP,
        "min_cpus": SERVE_GATE_CPUS,
        "speedup": speedup,
    }
    if host_cpus < SERVE_GATE_CPUS:
        gate.update(
            checked=False,
            reason=(
                f"host has {host_cpus} core(s); concurrent throughput is "
                "core-bound, not service-bound"
            ),
        )
        return gate
    gate.update(checked=True, passed=speedup >= SERVE_GATE_SPEEDUP)
    return gate


def check_serve(report: dict, tolerance: float = SERVE_SMOKE_TOLERANCE) -> list[str]:
    """Smoke failures of one :func:`bench_serve` report.

    Host-independent assertions: serve throughput within ``tolerance``
    of the one-at-a-time baseline, p99 under the absolute bound, a
    nonzero plan-cache hit rate, outputs matching the baseline, and the
    core-gated 3x check when it ran.
    """
    failures: list[str] = []
    speedup = report["speedup"]
    if speedup < tolerance:
        failures.append(
            f"serve throughput is {speedup:.2f}x the one-at-a-time baseline, "
            f"below the {tolerance:.2f}x smoke tolerance"
        )
    p99 = report["serve"]["p99_seconds"]
    if p99 > SERVE_SMOKE_P99_SECONDS:
        failures.append(
            f"serve p99 latency {p99:.2f}s exceeds the "
            f"{SERVE_SMOKE_P99_SECONDS:.0f}s smoke bound"
        )
    if report["cache"]["hit_rate"] <= 0.0:
        failures.append("plan cache recorded no hits over the benchmark mix")
    if not report.get("outputs_match_baseline"):
        failures.append("serve outputs diverged from the baseline")
    gate = report.get("gate", {})
    if gate.get("checked") and not gate.get("passed"):
        failures.append(
            f"serve speedup {gate['speedup']:.2f}x is below the required "
            f"{gate['threshold']:.2f}x on a {report['host_cpus']}-core host"
        )
    return failures


def bench_serve_report(
    out_path: str | Path = "BENCH_joins.json",
    **kwargs,
) -> int:
    """Run :func:`bench_serve`, merge a ``"serve"`` section, gate it.

    Other keys of an existing ``BENCH_joins.json`` (kernels, joins,
    scaling, chaos) are preserved.  Returns non-zero when
    :func:`check_serve` finds a failure.
    """
    from ..perf.bench import write_report

    report = bench_serve(**kwargs)
    out_file = Path(out_path)
    payload = {}
    if out_file.exists() and out_file.read_text().strip():
        payload = json.loads(out_file.read_text())
    payload["serve"] = report
    write_report(out_file, payload)
    print(f"wrote {out_path} (host_cpus={report['host_cpus']})")
    baseline = report["baseline"]
    serve = report["serve"]
    print(
        f"  baseline  {baseline['queries_per_second']:8.1f} q/s  "
        f"p50 {baseline['p50_seconds'] * 1e3:7.1f}ms  "
        f"p99 {baseline['p99_seconds'] * 1e3:7.1f}ms"
    )
    print(
        f"  serve     {serve['queries_per_second']:8.1f} q/s  "
        f"p50 {serve['p50_seconds'] * 1e3:7.1f}ms  "
        f"p99 {serve['p99_seconds'] * 1e3:7.1f}ms  "
        f"({report['speedup']:.2f}x, cache hit rate "
        f"{report['cache']['hit_rate']:.2f})"
    )
    gate = report["gate"]
    if gate.get("checked"):
        verdict = "pass" if gate["passed"] else "FAIL"
        print(
            f"  gate: {gate['speedup']:.2f}x >= {gate['threshold']:.2f}x "
            f"... {verdict}"
        )
    else:
        print(f"  gate skipped: {gate.get('reason')}")
    failures = check_serve(report)
    for failure in failures:
        print(f"REGRESSION {failure}")
    return 1 if failures else 0
