"""Shared machinery of the exchange operators.

Every distributed operator in the library moves data through the same
handful of communication patterns — hash scatter, replication, directed
(location-driven) sends, consolidation, and barrier drains.  The classes
in :mod:`repro.exchange` package those patterns as first-class
*exchange operators*; this module holds what they share:

- :func:`account_transfer` — the uniform profile attribution of one
  send: local sends are "Local copy ..." steps, remote sends are
  network-transfer steps (the paper separates the two in Tables 3-4);
- :func:`send_rows` — ship one tuple batch with wire-size accounting
  (``rows × width``) under a :class:`~repro.cluster.network.MessageClass`;
- :func:`send_split` — the per-destination batch list produced by
  ``LocalPartition.split_by``/``hash_split`` sent as one message per
  destination, with the accounting for each.

All sends go through :meth:`Network.send`, so inside an open cluster
phase they are staged in the calling task's
:class:`~repro.cluster.network.SendLane` and committed deterministically
at the barrier — exchange operators never bypass the staging contract.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..cluster.cluster import Cluster
from ..cluster.network import MessageClass
from ..storage.table import LocalPartition
from ..timing.profile import ExecutionProfile

__all__ = ["account_transfer", "send_rows", "send_split"]


def account_transfer(
    profile: ExecutionProfile,
    src: int,
    dst: int,
    nbytes: float,
    transfer_step: str,
    local_step: str,
) -> None:
    """Attribute one send to the profile: local copy or network transfer."""
    if src == dst:
        profile.add_local(local_step, src, nbytes)
    else:
        profile.add_net_at(transfer_step, src, nbytes)


def send_rows(
    cluster: Cluster,
    profile: ExecutionProfile,
    category: MessageClass,
    src: int,
    dst: int,
    rows: LocalPartition,
    width: float,
    transfer_step: str,
    local_step: str,
) -> float:
    """Ship one batch of tuples; returns the accounted wire size."""
    nbytes = rows.num_rows * width
    cluster.network.send(src, dst, category, nbytes, payload=rows)
    account_transfer(profile, src, dst, nbytes, transfer_step, local_step)
    return nbytes


def send_split(
    cluster: Cluster,
    profile: ExecutionProfile,
    category: MessageClass,
    src: int,
    batches: Sequence[LocalPartition | None],
    width: float,
    transfer_step: str,
    local_step: str,
    payload_of: Callable[[LocalPartition], Any] | None = None,
) -> list[tuple[int, float]]:
    """Send one scatter's per-destination batch list, accounting each.

    ``batches`` is indexed by destination node (the shape produced by
    ``LocalPartition.split_by``); ``None`` entries are skipped.  With
    ``payload_of`` the wire payload is derived from each batch (e.g. the
    MapReduce engine tags batches with their channel name); otherwise
    batches travel zero-copy through
    :meth:`~repro.cluster.network.Network.send_batches`.

    Returns ``(dst, nbytes)`` per message, in destination order.
    """
    if payload_of is None:
        sent = cluster.network.send_batches(src, category, batches, width)
        for dst, nbytes in sent:
            account_transfer(profile, src, dst, nbytes, transfer_step, local_step)
        return sent
    sent = []
    for dst, batch in enumerate(batches):
        if batch is None:
            continue
        nbytes = batch.num_rows * width
        cluster.network.send(src, dst, category, nbytes, payload=payload_of(batch))
        account_transfer(profile, src, dst, nbytes, transfer_step, local_step)
        sent.append((dst, nbytes))
    return sent
