"""Exchange operators: the communication layer of every distributed join.

The paper frames distributed joins as per-key transfer *schedules*
executed by a small set of generic move primitives (Sections 2.2-2.5).
This package makes those primitives first-class: each exchange operator
encapsulates one communication pattern — the send-lane staging, the
per-:class:`~repro.cluster.network.MessageClass` byte accounting, and
the profile attribution that the operators previously each hand-rolled.

=====================  =====================================================
Operator               Pattern
=====================  =====================================================
:class:`Shuffle`       hash scatter of full tuples (Grace hash join)
:class:`KeyShuffle`    hash scatter of keys with implicit rids (Sec 3.2)
:class:`Broadcast`     full replication of one side (``BJ-R``/``BJ-S``)
:func:`replicate_size` accounting-only broadcast of a fixed-size blob
:class:`SelectiveBroadcast`  location-directed tuple sends (Sec 2.2)
:class:`Migrate`       consolidation moves of 4-phase track join (Sec 2.5)
:class:`ShardedMigrate`  heavy-hitter splits across several destinations
:class:`LocationExchange`    (key, node) scheduler instruction streams
:class:`Gather`        barrier drains of per-node inboxes
=====================  =====================================================

All sends go through :meth:`Network.send`, so inside a cluster phase
they stage in the calling task's ``SendLane`` and commit
deterministically at the barrier — ledgers, profiles, and arrival
orders are bit-identical for any worker count.
"""

from .base import account_transfer, send_rows, send_split
from .broadcast import Broadcast, replicate_size
from .gather import Gather, absorb_received, drain_category, drain_payloads, flush
from .locations import LocationExchange
from .migrate import Migrate, ShardedMigrate
from .selective import SelectiveBroadcast
from .shuffle import KeyShuffle, Shuffle

__all__ = [
    "Shuffle",
    "KeyShuffle",
    "Broadcast",
    "SelectiveBroadcast",
    "Migrate",
    "ShardedMigrate",
    "LocationExchange",
    "Gather",
    "account_transfer",
    "send_rows",
    "send_split",
    "replicate_size",
    "drain_category",
    "drain_payloads",
    "absorb_received",
    "flush",
]
