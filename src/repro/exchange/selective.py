"""SelectiveBroadcast: location-directed sends — the heart of track join.

Where a plain broadcast replicates everything everywhere, the selective
broadcast of Section 2.2 ships each holder's matching tuples only to the
nodes the schedule says have matches: the scheduling nodes deliver
(key, destination) location pairs, each holder joins them against its
local fragment, and the matched tuples scatter directly to their
per-pair destinations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.network import MessageClass
from ..fastpath import fused_enabled
from ..joins.local import join_indices
from ..storage.table import LocalPartition
from ..timing.profile import ExecutionProfile
from ..util import stable_argsort_bounded
from .base import send_split

__all__ = ["SelectiveBroadcast"]


@dataclass
class SelectiveBroadcast:
    """Send each holder's matching tuples to per-(key, destination) targets.

    Parameters
    ----------
    category:
        Message class of the tuple transfers.
    width:
        Wire bytes per shipped tuple.
    match_width:
        Bytes of one location pair (key + node id) — the per-pair term
        of the translate step's CPU accounting.
    transfer_step / copy_step:
        Profile attribution of remote sends and self-sends.
    translate_step:
        CPU step covering the pair → tuple translation and the
        partition-by-destination scatter.
    """

    category: MessageClass
    width: float
    match_width: float
    transfer_step: str
    copy_step: str
    translate_step: str

    def run(
        self,
        cluster: Cluster,
        profile: ExecutionProfile,
        sources: Sequence[LocalPartition],
        pair_src: np.ndarray,
        pair_dst: np.ndarray,
        pair_key: np.ndarray,
    ) -> None:
        """One phase: each source node translates its pairs and sends.

        ``pair_src``/``pair_dst``/``pair_key`` are parallel arrays of
        location pairs: the holder node, the destination node, and the
        key whose tuples move.  Pairs are grouped by holder with one
        stable sort so every holder's pairs keep their global order.
        """
        num_nodes = cluster.num_nodes
        if fused_enabled():
            order = stable_argsort_bounded(pair_src, num_nodes)
        else:
            order = np.argsort(pair_src, kind="stable")
        bounds = np.searchsorted(pair_src[order], np.arange(num_nodes + 1))

        def broadcast_holder(src: int) -> None:
            rows = order[bounds[src] : bounds[src + 1]]
            if len(rows) == 0:
                return
            keys_here = pair_key[rows]
            dst_here = pair_dst[rows]
            local = sources[src]
            right_partition = local if fused_enabled() and local.num_rows else None
            pair_pos, local_rows = join_indices(
                keys_here, local.keys, right_partition=right_partition
            )
            profile.add_cpu_at(
                self.translate_step,
                "merge",
                src,
                len(rows) * self.match_width + len(local_rows) * self.width,
            )
            if len(local_rows) == 0:
                return
            # One gather routes the matched tuples straight to their
            # destination slices — no per-destination take() copies and
            # no intermediate full materialization of the matched batch.
            destinations = dst_here[pair_pos]
            batches = local.split_by(destinations, num_nodes, rows=local_rows)
            send_split(
                cluster, profile, self.category, src, batches, self.width,
                self.transfer_step, self.copy_step,
            )

        cluster.run_phase(broadcast_holder, profile=profile)
