"""LocationExchange: (key, node) instruction streams of the scheduler.

Scheduling nodes steer both migrations and selective broadcasts with
streams of (key, node) pairs — "move this key's tuples there" / "send
this key's tuples there".  The pairs are accounted per (sender,
receiver) link at their wire size (:func:`location_message_bytes`,
including the Section 2.4 grouped-by-node and delta-key encodings), and
pairs addressed to the scheduling node itself are free — the paper's
``i != self`` exclusion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.network import MessageClass
from ..fastpath import fused_enabled
from ..timing.profile import ExecutionProfile

__all__ = ["LocationExchange"]


@dataclass
class LocationExchange:
    """Account per-link (key, node) location messages.

    Parameters
    ----------
    step:
        Net step name of remote sends; self-sends fall under the shared
        ``Local copy keys, nodes`` step.
    key_width:
        Wire bytes per key.
    location_width:
        ``M`` of the paper: bytes of one node identifier.
    group_by_node:
        Section 2.4 optimization: amortize each node id over the keys
        sharing it instead of repeating it per pair.
    """

    step: str
    key_width: float
    location_width: float
    group_by_node: bool = False

    def run(
        self,
        cluster: Cluster,
        profile: ExecutionProfile,
        senders: np.ndarray,
        receivers: np.ndarray,
        node_values: np.ndarray,
    ) -> None:
        """Send one sized message per active (sender, receiver) link.

        ``senders``/``receivers``/``node_values`` are parallel pair
        arrays: the scheduling node, the holder it instructs, and the
        node id the pair carries.  Per link the message size depends on
        the pair count and (for grouped encodings) the distinct node
        values, so both are reduced here in one vectorized pass.
        """
        # Deferred: repro.core's package init pulls in the track join
        # operators, which import this package — a top-level import here
        # would close that cycle during interpreter start-up.
        from ..core.messages import location_message_bytes

        if len(senders) == 0:
            return
        n = cluster.num_nodes
        if fused_enabled() and n * n * n <= (1 << 20):
            # The (sender, receiver, value) triple domain is tiny: count
            # every triple with one bincount pass and read link totals
            # and per-link distinct values straight off the table — no
            # sort.
            composite = (senders * n + receivers) * n + node_values
            triple_counts = np.bincount(composite, minlength=n * n * n).reshape(n * n, n)
            link_counts = triple_counts.sum(axis=1)
            link_distinct = np.count_nonzero(triple_counts, axis=1)
            links = np.flatnonzero(link_counts)
            counts = link_counts[links]
            distinct_counts = link_distinct[links]
            group_src = links // n
            group_dst = links % n
        elif fused_enabled() and n * n * n <= (1 << 62):
            # Grouped distinct counting in one pass: sort the packed
            # (sender, receiver, value) triple, find link-group
            # boundaries, and count value changes per group — no
            # per-group np.unique.
            composite = (senders * n + receivers) * n + node_values
            if n * n * n <= (1 << 16):
                order = np.argsort(composite.astype(np.uint16), kind="stable")
            else:
                order = np.argsort(composite, kind="stable")
            c_sorted = composite[order]
            link = c_sorted // n
            change = np.empty(len(order), dtype=bool)
            change[0] = True
            np.not_equal(link[1:], link[:-1], out=change[1:])
            starts = np.flatnonzero(change)
            counts = np.diff(np.append(starts, len(order)))
            value_change = np.empty(len(order), dtype=bool)
            value_change[0] = True
            np.not_equal(c_sorted[1:], c_sorted[:-1], out=value_change[1:])
            # Per-group change totals via one cumsum pass (reduceat walks
            # element-by-element; there are only ~n^2 groups).
            cumulative = np.cumsum(value_change)
            ends = np.append(starts[1:], len(order))
            distinct_counts = cumulative[ends - 1] - cumulative[starts] + 1
            group_src = link[starts] // n
            group_dst = link[starts] % n
        else:
            order = np.lexsort((node_values, receivers, senders))
            s_sorted = senders[order]
            r_sorted = receivers[order]
            v_sorted = node_values[order]
            change = np.empty(len(order), dtype=bool)
            change[0] = True
            np.logical_or(
                s_sorted[1:] != s_sorted[:-1],
                r_sorted[1:] != r_sorted[:-1],
                out=change[1:],
            )
            starts = np.flatnonzero(change)
            counts = np.diff(np.append(starts, len(order)))
            distinct_counts = np.array(
                [
                    len(np.unique(v_sorted[start : start + count]))
                    for start, count in zip(starts, counts)
                ],
                dtype=np.int64,
            )
            group_src = s_sorted[starts]
            group_dst = r_sorted[starts]
        for src, dst, group_count, distinct in zip(
            group_src, group_dst, counts, distinct_counts
        ):
            src = int(src)
            dst = int(dst)
            nbytes = location_message_bytes(
                int(group_count),
                int(distinct),
                self.key_width,
                self.location_width,
                group_by_node=self.group_by_node,
            )
            cluster.network.send(src, dst, MessageClass.KEYS_NODES, nbytes, payload=None)
            if src == dst:
                profile.add_local("Local copy keys, nodes", src, nbytes)
            else:
                profile.add_net_at(self.step, src, nbytes)
            # Receivers merge the incoming pair lists before acting on
            # them.
            profile.add_cpu_at("Merge rec. keys, nodes", "merge", dst, nbytes)
