"""Shuffle: hash scatter of tuples or key streams across the cluster.

The partitioned-everywhere primitive of Grace/Gamma-style algorithms:
every node hash-partitions its fragment on the join key and ships each
bucket to its hash node.  Two flavors exist:

- :class:`Shuffle` — full tuples travel (Grace hash join, the paper's
  ``HJ`` baseline): wire size is ``rows × tuple width``.
- :class:`KeyShuffle` — only keys travel, with implicit record ids
  (Section 3.2's rid-based joins): arrivals carry ``node``/``pos``
  origin columns identifying each key's source tuple, but only the key
  column is accounted on the wire — rids are implicit in message origin
  and order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.network import MessageClass
from ..fastpath import fused_enabled
from ..storage.table import LocalPartition
from ..timing.profile import ExecutionProfile
from ..util import hash_partition
from .base import send_split
from .gather import Gather

__all__ = ["Shuffle", "KeyShuffle"]


@dataclass
class Shuffle:
    """Hash-scatter full tuples; every bucket travels to its hash node.

    Parameters
    ----------
    category:
        Message class the shuffled bytes are accounted under.
    width:
        Wire bytes per tuple.
    step:
        Step-name stem; sends are attributed to ``Transfer {step}`` /
        ``Local copy {step}`` and the partitioning CPU work to
        ``Hash partition {step}``.
    hash_seed:
        Seed of the placement hash.
    """

    category: MessageClass
    width: float
    step: str
    hash_seed: int = 0

    def scatter(
        self,
        cluster: Cluster,
        profile: ExecutionProfile,
        partitions: Sequence[LocalPartition],
    ) -> None:
        """One phase: every node hash-splits its fragment and sends."""
        transfer_step = f"Transfer {self.step}"
        local_step = f"Local copy {self.step}"

        def scatter_node(src: int) -> None:
            fragment = partitions[src]
            profile.add_cpu_at(
                f"Hash partition {self.step}",
                "partition",
                src,
                fragment.num_rows * self.width,
            )
            batches = fragment.hash_split(cluster.num_nodes, self.hash_seed)
            send_split(
                cluster, profile, self.category, src, batches, self.width,
                transfer_step, local_step,
            )

        cluster.run_phase(scatter_node, profile=profile)

    def run(
        self,
        cluster: Cluster,
        profile: ExecutionProfile,
        partitions: Sequence[LocalPartition],
        empty_names: tuple[str, ...] = (),
    ) -> list[LocalPartition]:
        """Scatter, then gather each node's arrivals into one partition."""
        self.scatter(cluster, profile, partitions)
        return Gather(self.category, empty_names).run(cluster, profile)


@dataclass
class KeyShuffle:
    """Hash-scatter (key, implicit rid) streams.

    Arrivals carry ``node``/``pos`` columns recording each key's origin
    tuple; only ``key_width`` bytes per row are accounted on the wire.
    """

    key_width: float
    step: str
    hash_seed: int = 0
    category: MessageClass = MessageClass.RIDS

    def scatter(
        self,
        cluster: Cluster,
        profile: ExecutionProfile,
        partitions: Sequence[LocalPartition],
    ) -> None:
        """One phase: every node scatters its key column with origins."""
        transfer_step = f"Transfer {self.step}"
        local_step = f"Local copy {self.step}"

        def scatter_node(src: int) -> None:
            partition = partitions[src]
            profile.add_cpu_at(
                f"Hash partition {self.step}",
                "partition",
                src,
                partition.num_rows * self.key_width,
            )
            if partition.num_rows == 0:
                return
            if fused_enabled():
                plan = partition.hash_scatter_plan(cluster.num_nodes, self.hash_seed)
                order, bounds = plan.order, plan.bounds
                gathered_keys = partition.keys[order]
            else:
                destinations = hash_partition(
                    partition.keys, cluster.num_nodes, self.hash_seed
                )
                order = np.argsort(destinations, kind="stable")
                bounds = np.searchsorted(
                    destinations[order], np.arange(cluster.num_nodes + 1)
                )
                gathered_keys = None
            for dst in range(cluster.num_nodes):
                lo, hi = bounds[dst], bounds[dst + 1]
                rows = order[lo:hi]
                if len(rows) == 0:
                    continue
                payload = LocalPartition(
                    keys=(
                        gathered_keys[lo:hi]
                        if gathered_keys is not None
                        else partition.keys[rows]
                    ),
                    columns={
                        "node": np.full(len(rows), src, dtype=np.int64),
                        "pos": rows.astype(np.int64),
                    },
                )
                nbytes = len(rows) * self.key_width
                cluster.network.send(src, dst, self.category, nbytes, payload=payload)
                if src == dst:
                    profile.add_local(local_step, src, nbytes)
                else:
                    profile.add_net_at(transfer_step, src, nbytes)

        cluster.run_phase(scatter_node, profile=profile)

    def run(
        self,
        cluster: Cluster,
        profile: ExecutionProfile,
        partitions: Sequence[LocalPartition],
    ) -> list[LocalPartition]:
        """Scatter, then gather; empty nodes get ``node``/``pos`` columns."""
        self.scatter(cluster, profile, partitions)
        return Gather(None, ("node", "pos")).run(cluster, profile)
