"""Migrate: consolidation moves of the 4-phase track join (Section 2.5).

Holders told to consolidate extract their matching tuples, ship them to
the designated destination, and keep the rest; the moved tuples join
the destination's local fragment at the next barrier
(:func:`repro.exchange.gather.absorb_received`), shrinking the set of
locations the subsequent selective broadcast must reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import MutableSequence

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.network import MessageClass
from ..fastpath import fused_enabled
from ..joins.local import join_indices
from ..storage.table import LocalPartition
from ..timing.profile import ExecutionProfile
from ..util import stable_argsort_bounded
from .base import send_split

__all__ = ["Migrate", "ShardedMigrate"]


@dataclass
class Migrate:
    """Move each holder's matching tuples to their consolidation target.

    Parameters
    ----------
    category:
        Message class of the migrated tuples.
    width:
        Wire bytes per migrated tuple.
    transfer_step / copy_step:
        Profile attribution of remote moves and (theoretical)
        self-moves; schedules never consolidate a key onto a node it
        already occupies, so ``copy_step`` stays empty in practice.
    """

    category: MessageClass
    width: float
    transfer_step: str
    copy_step: str

    def run(
        self,
        cluster: Cluster,
        profile: ExecutionProfile,
        holders: MutableSequence[LocalPartition],
        keys: np.ndarray,
        nodes: np.ndarray,
        dests: np.ndarray,
    ) -> None:
        """One phase: each instructed holder extracts, keeps, and sends.

        ``keys``/``nodes``/``dests`` are parallel migration-instruction
        arrays: move the tuples of ``keys[i]`` held at ``nodes[i]`` to
        ``dests[i]``.  ``holders`` is mutated in place — each migrating
        node's entry is replaced by its kept remainder; arrivals are
        absorbed later at the consolidation barrier.
        """
        if fused_enabled():
            # One radix sort splits the instructions by holder instead
            # of one boolean scan per distinct holder; stability keeps
            # each holder's instructions in the identical order.
            order = stable_argsort_bounded(nodes, cluster.num_nodes)
            bounds = np.searchsorted(nodes[order], np.arange(cluster.num_nodes + 1))
            node_groups = [
                (node, order[bounds[node] : bounds[node + 1]])
                for node in range(cluster.num_nodes)
                if bounds[node + 1] > bounds[node]
            ]
        else:
            node_groups = [
                (int(node), np.flatnonzero(nodes == node)) for node in np.unique(nodes)
            ]

        def migrate_holder(group: int) -> None:
            node, rows_sel = node_groups[group]
            keys_here = keys[rows_sel]
            dest_here = dests[rows_sel]
            local = holders[node]
            right_partition = local if fused_enabled() and local.num_rows else None
            pair_pos, rows = join_indices(
                keys_here, local.keys, right_partition=right_partition
            )
            if len(rows) == 0:
                return
            destinations = dest_here[pair_pos]
            keep = np.ones(local.num_rows, dtype=bool)
            keep[rows] = False
            batches = local.split_by(destinations, cluster.num_nodes, rows=rows)
            holders[node] = local.take(np.flatnonzero(keep))
            send_split(
                cluster, profile, self.category, int(node), batches, self.width,
                self.transfer_step, self.copy_step,
            )

        # Crash recovery must know which node each task simulates: this
        # phase runs one task per *instructed holder*, not per node.
        cluster.run_phase(
            migrate_holder,
            tasks=len(node_groups),
            profile=profile,
            task_nodes=[node for node, _ in node_groups],
        )


@dataclass
class ShardedMigrate:
    """Split each holder's matching tuples across several destinations.

    The heavy-hitter extension of :class:`Migrate`: where a plain
    migration consolidates a (key, holder)'s tuples at one node, a
    sharded migration deals them round-robin over the key's shard
    destination list, so no single node absorbs a hot key's whole build
    side.  Row order within the holder decides the deal, making the
    split deterministic for every worker count.
    """

    category: MessageClass
    width: float
    transfer_step: str
    copy_step: str

    def run(
        self,
        cluster: Cluster,
        profile: ExecutionProfile,
        holders: MutableSequence[LocalPartition],
        keys: np.ndarray,
        nodes: np.ndarray,
        dest_offsets: np.ndarray,
        dest_nodes: np.ndarray,
    ) -> None:
        """One phase: each instructed holder deals its rows to the shards.

        ``keys``/``nodes`` are parallel instruction arrays; instruction
        ``i`` moves the tuples of ``keys[i]`` held at ``nodes[i]`` to
        the destinations ``dest_nodes[dest_offsets[i]:dest_offsets[i +
        1]]``, one row at a time in cyclic order.  ``holders`` is
        mutated in place like :meth:`Migrate.run`; a destination that is
        the holder itself keeps its deal as a local copy.
        """
        order = np.argsort(nodes, kind="stable")
        bounds = np.searchsorted(nodes[order], np.arange(cluster.num_nodes + 1))
        node_groups = [
            (node, order[bounds[node] : bounds[node + 1]])
            for node in range(cluster.num_nodes)
            if bounds[node + 1] > bounds[node]
        ]

        def shard_holder(group: int) -> None:
            node, instr_sel = node_groups[group]
            keys_here = keys[instr_sel]
            local = holders[node]
            right_partition = local if fused_enabled() and local.num_rows else None
            pair_pos, rows = join_indices(
                keys_here, local.keys, right_partition=right_partition
            )
            if len(rows) == 0:
                return
            # Group the matched rows by instruction, keeping their
            # relative order, then deal each group cyclically over its
            # destination list.
            grouping = np.argsort(pair_pos, kind="stable")
            grouped_pos = pair_pos[grouping]
            group_starts = np.flatnonzero(
                np.r_[True, grouped_pos[1:] != grouped_pos[:-1]]
            )
            within = np.arange(len(grouped_pos)) - np.repeat(
                group_starts, np.diff(np.append(group_starts, len(grouped_pos)))
            )
            instr = instr_sel[grouped_pos]
            num_dests = (dest_offsets[instr + 1] - dest_offsets[instr]).astype(
                np.int64
            )
            destinations = dest_nodes[dest_offsets[instr] + within % num_dests]
            keep = np.ones(local.num_rows, dtype=bool)
            keep[rows] = False
            batches = local.split_by(
                destinations, cluster.num_nodes, rows=rows[grouping]
            )
            holders[node] = local.take(np.flatnonzero(keep))
            send_split(
                cluster, profile, self.category, int(node), batches, self.width,
                self.transfer_step, self.copy_step,
            )

        cluster.run_phase(
            shard_holder,
            tasks=len(node_groups),
            profile=profile,
            task_nodes=[node for node, _ in node_groups],
        )
