"""Gather: barrier drains of per-node inboxes.

The receiving half of every exchange: at a phase barrier each node
drains its inbox and keeps the payloads of the message classes it is
consuming.  Three idioms recur across the operators and are all covered
here:

- :func:`drain_category` — keep one class, put everything else back on
  the inbox via :meth:`~repro.cluster.network.Network.requeue` (the
  receiver-side contract of mixed-class inboxes);
- :class:`Gather` — a full drain *phase*: one task per node, each
  concatenating its arrivals into one partition;
- :func:`absorb_received` — consolidation drains (post-migration): the
  arrivals of each class are appended to an existing per-node fragment
  list in place;
- :func:`flush` — discard accounting-only messages (payload ``None``)
  left by size-only exchanges.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.cluster import Cluster
from ..cluster.network import MessageClass
from ..storage.table import LocalPartition
from ..timing.profile import ExecutionProfile

__all__ = ["drain_category", "drain_payloads", "Gather", "absorb_received", "flush"]


def drain_category(cluster: Cluster, dst: int, category: MessageClass) -> list:
    """Drain node ``dst``'s inbox, keeping payloads of one category.

    Messages of other categories survive the drain: they go back on the
    inbox tail through :meth:`Network.requeue` (they were accounted when
    first sent, so requeueing never double-counts).
    """
    kept = []
    requeue = []
    for msg in cluster.network.deliver(dst):
        if msg.category == category:
            kept.append(msg.payload)
        else:
            requeue.append(msg)
    if requeue:
        cluster.network.requeue(dst, requeue)
    return kept


def drain_payloads(cluster: Cluster, dst: int) -> list:
    """Drain node ``dst``'s inbox unconditionally, returning all payloads."""
    return [msg.payload for msg in cluster.network.deliver(dst)]


@dataclass
class Gather:
    """Concatenate each node's arrivals of one message class.

    Parameters
    ----------
    category:
        Message class to keep; ``None`` drains every arrival (used by
        exchanges whose inbox is known to be homogeneous).
    empty_names:
        Payload column names of the zero-row partition produced for
        nodes that received nothing.
    """

    category: MessageClass | None
    empty_names: tuple[str, ...] = ()

    def drain_node(self, cluster: Cluster, node: int) -> list[LocalPartition]:
        """One node's arrivals (payload list), category-filtered."""
        if self.category is None:
            return drain_payloads(cluster, node)
        return drain_category(cluster, node, self.category)

    def run(
        self,
        cluster: Cluster,
        profile: ExecutionProfile | None = None,
    ) -> list[LocalPartition]:
        """Drain every node behind a phase barrier; one partition per node."""

        def gather_node(node: int) -> LocalPartition:
            parts = self.drain_node(cluster, node)
            return (
                LocalPartition.concat(parts)
                if parts
                else LocalPartition.empty(self.empty_names)
            )

        return cluster.run_phase(gather_node, profile=profile)


def absorb_received(
    cluster: Cluster, targets: dict[MessageClass, list[LocalPartition]]
) -> None:
    """Barrier drain appending arrivals to existing per-node fragments.

    ``targets`` maps each expected message class to a per-node partition
    list; arrivals of that class at node ``i`` are concatenated onto
    ``targets[cls][i]`` in place.  This is the consolidation barrier of
    the migration exchange: moved tuples join the destination's local
    fragment before the selective broadcast runs against it.
    """

    def absorb(node: int) -> None:
        extra: dict[MessageClass, list[LocalPartition]] = {
            category: [] for category in targets
        }
        for msg in cluster.network.deliver(node):
            if msg.category in extra:
                extra[msg.category].append(msg.payload)
        for category, fragments in targets.items():
            if extra[category]:
                fragments[node] = LocalPartition.concat(
                    [fragments[node]] + extra[category]
                )

    cluster.run_phase(absorb)


def flush(cluster: Cluster) -> None:
    """Drain and discard all pending messages (accounting-only exchanges)."""
    for _node, _messages in cluster.network.deliver_all():
        pass
