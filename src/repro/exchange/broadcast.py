"""Broadcast: replicate one stream to every other node.

Full replication is the cheapest plan when one input is tiny (the
``BJ-R``/``BJ-S`` baselines) and the transport of per-node summary
structures (Section 3.3's Bloom filters).  Two shapes:

- :class:`Broadcast` — every node ships its local fragment to all other
  nodes, so afterwards each node can assemble the full table;
- :func:`replicate_size` — an accounting-only broadcast of a
  fixed-size blob (e.g. a filter) from one node to all others.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..cluster.cluster import Cluster
from ..cluster.network import MessageClass
from ..storage.table import LocalPartition
from ..timing.profile import ExecutionProfile
from .base import send_rows

__all__ = ["Broadcast", "replicate_size"]


@dataclass
class Broadcast:
    """Ship every node's fragment to all other nodes.

    Parameters
    ----------
    category:
        Message class the replicated bytes are accounted under.
    width:
        Wire bytes per tuple.
    step:
        Step-name stem; scanning is ``Scan local {step}`` and sends are
        ``Transfer {step}`` / ``Local copy {step}``.
    """

    category: MessageClass
    width: float
    step: str

    def scatter(
        self,
        cluster: Cluster,
        profile: ExecutionProfile,
        partitions: Sequence[LocalPartition],
    ) -> None:
        """One phase: each node sends its whole fragment to every peer."""
        transfer_step = f"Transfer {self.step}"
        local_step = f"Local copy {self.step}"

        def scatter_node(src: int) -> None:
            fragment = partitions[src]
            profile.add_cpu_at(
                f"Scan local {self.step}",
                "partition",
                src,
                fragment.num_rows * self.width,
            )
            for dst in range(cluster.num_nodes):
                if dst == src:
                    continue
                send_rows(
                    cluster, profile, self.category, src, dst, fragment,
                    self.width, transfer_step, local_step,
                )

        cluster.run_phase(scatter_node, profile=profile)


def replicate_size(
    cluster: Cluster,
    profile: ExecutionProfile,
    category: MessageClass,
    src: int,
    nbytes: float,
    transfer_step: str,
) -> None:
    """Broadcast an accounting-only blob of ``nbytes`` from one node.

    The messages carry no payload (the receiver-side structure is
    reconstructed from shared state in the simulation); self-sends are
    skipped entirely, matching the paper's ``i != self`` exclusion.
    """
    for dst in range(cluster.num_nodes):
        if dst == src:
            continue
        cluster.network.send(src, dst, category, nbytes, payload=None)
        profile.add_net_at(transfer_step, src, nbytes)
