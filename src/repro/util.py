"""Shared numeric utilities: key hashing and segmented array operations.

The simulator routes tuples and scheduling work by hashing join keys, and
the vectorized schedule generator relies on segmented (group-by style)
reductions over sorted arrays.  Both live here so every subsystem hashes
and segments identically.
"""

from __future__ import annotations

import numpy as np

from .fastpath import fused_enabled
from .errors import ValidationError

__all__ = [
    "hash_partition",
    "mix64",
    "stable_argsort_auto",
    "stable_argsort_bounded",
    "stable_sort_with_order",
    "segment_boundaries",
    "segment_sum",
    "segment_count",
    "segment_max_position",
    "segment_ids",
    "segmented_cartesian",
    "pack_composite_keys",
    "unpack_composite_keys",
]

# splitmix64 multiplication constants; the full finalizer is applied so that
# consecutive integer keys (common in synthetic workloads) spread uniformly
# across nodes instead of landing on ``key % N``.
_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)


def mix64(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Apply the splitmix64 finalizer to an integer array.

    Parameters
    ----------
    values:
        Integer array; interpreted as unsigned 64-bit.
    seed:
        Optional stream selector so different routing decisions (e.g. hash
        join destinations vs. random shuffles) are decorrelated.

    Returns
    -------
    numpy.ndarray
        ``uint64`` array of well-mixed hash values.
    """
    x = values.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x += _SPLITMIX_GAMMA * np.uint64(seed + 1)
        x ^= x >> np.uint64(30)
        x *= _MIX_1
        x ^= x >> np.uint64(27)
        x *= _MIX_2
        x ^= x >> np.uint64(31)
    return x


def hash_partition(keys: np.ndarray, num_nodes: int, seed: int = 0) -> np.ndarray:
    """Map each key to its hash-designated node in ``[0, num_nodes)``.

    This is the ``hash(k) mod N`` of the paper: it determines both the
    Grace hash join destination and the scheduling (``processT``) node of
    track join for every distinct key.
    """
    if num_nodes <= 0:
        raise ValidationError(f"num_nodes must be positive, got {num_nodes}")
    mixed = mix64(keys, seed)
    if num_nodes & (num_nodes - 1) == 0:
        # Power-of-two cluster sizes mask instead of dividing; identical
        # values (x % 2**k == x & (2**k - 1) for unsigned x).
        return (mixed & np.uint64(num_nodes - 1)).astype(np.int64)
    return (mixed % np.uint64(num_nodes)).astype(np.int64)


def stable_argsort_bounded(values: np.ndarray, upper: int) -> np.ndarray:
    """Stable argsort of non-negative ints known to be below ``upper``.

    Produces the exact permutation of ``np.argsort(values, kind="stable")``
    but casts to the narrowest sufficient unsigned dtype first, which lets
    numpy use radix sort (several times faster than mergesort on int64 for
    the destination arrays scatters sort, whose domain is ``num_nodes``).
    """
    if upper <= (1 << 8):
        return np.argsort(values.astype(np.uint8), kind="stable")
    if upper <= (1 << 16):
        return np.argsort(values.astype(np.uint16), kind="stable")
    if upper <= (1 << 32):
        return np.argsort(values.astype(np.uint32), kind="stable")
    return np.argsort(values, kind="stable")


def stable_argsort_auto(values: np.ndarray) -> np.ndarray:
    """Stable argsort that narrows the sort dtype from the value range.

    Produces the exact permutation of ``np.argsort(values, kind="stable")``:
    shifting by the minimum and casting to the narrowest sufficient
    unsigned dtype is a strictly monotonic transform, so ordering and
    stability are preserved while numpy's radix sort runs half (or
    fewer) passes.  The two O(n) range scans are far cheaper than the
    sort itself; values whose span needs 64 bits fall through to the
    plain stable argsort.
    """
    n = len(values)
    if n == 0:
        return np.empty(0, dtype=np.intp)
    lo = int(values.min())
    span = int(values.max()) - lo
    if span < (1 << 8):
        return np.argsort((values - lo).astype(np.uint8), kind="stable")
    if span < (1 << 16):
        return np.argsort((values - lo).astype(np.uint16), kind="stable")
    if span < (1 << 32):
        return np.argsort((values - lo).astype(np.uint32), kind="stable")
    return np.argsort(values, kind="stable")


def stable_sort_with_order(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(order, values[order])`` for a stable sort of ``values``.

    When the value span fits in 31 bits and there are fewer than 2**32
    rows, the shifted value and the row index are packed into one int64
    (value in the high bits, index in the low bits) and *value*-sorted:
    equal values then order by index, which is exactly stability, and a
    direct sort skips the indirect gather passes an argsort pays for —
    several times faster.  Unpacking recovers both the permutation and
    the sorted values.  Wider inputs fall back to
    :func:`stable_argsort_auto` plus a gather.  Either way the result
    is bit-identical to ``order = np.argsort(values, kind="stable")``
    and ``values[order]``.
    """
    n = len(values)
    if n == 0:
        empty_order = np.empty(0, dtype=np.int64)
        return empty_order, np.empty(0, dtype=values.dtype if hasattr(values, "dtype") else np.int64)
    lo = int(values.min())
    span = int(values.max()) - lo
    if span < (1 << 31) and n < (1 << 32):
        # Imported lazily: util is a leaf module for most of the
        # library and the chunk engine is only needed on this path.
        from .parallel import chunks

        slices = chunks.chunked_slices(n)
        if slices is None:
            packed = ((values - lo) << np.int64(32)) | np.arange(n, dtype=np.int64)
            packed.sort()
        else:
            # Chunked index build: pack per chunk, sort chunk slices in
            # parallel, merge.  The packed values are pairwise distinct
            # (unique index in the low bits), so the merged sequence is
            # the unique ascending order — bit-identical to the direct
            # in-place sort above for any chunk size or worker count.
            packed = chunks.chunked_build(
                lambda start, stop: (
                    (values[start:stop] - lo) << np.int64(32)
                )
                | np.arange(start, stop, dtype=np.int64),
                n,
                np.int64,
            )
            packed = chunks.chunked_sort_unique(packed)
        order = packed & np.int64(0xFFFFFFFF)
        sorted_values = ((packed >> np.int64(32)) + lo).astype(values.dtype, copy=False)
        return order, sorted_values
    order = stable_argsort_auto(values)
    return order, values[order]


def segment_boundaries(sorted_group_keys: np.ndarray) -> np.ndarray:
    """Return start offsets of each run of equal values in a sorted array.

    The returned array always starts with 0; an empty input yields an
    empty offsets array.  Offsets are suitable for ``np.add.reduceat``.
    """
    n = len(sorted_group_keys)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    change = np.empty(n, dtype=bool)
    change[0] = True
    np.not_equal(sorted_group_keys[1:], sorted_group_keys[:-1], out=change[1:])
    return np.flatnonzero(change).astype(np.int64)


def segment_sum(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Sum ``values`` within segments given by ``starts`` offsets."""
    if len(starts) == 0:
        return np.empty(0, dtype=values.dtype)
    return np.add.reduceat(values, starts)


def segment_count(starts: np.ndarray, total: int) -> np.ndarray:
    """Length of each segment, given segment start offsets and total size."""
    if len(starts) == 0:
        return np.empty(0, dtype=np.int64)
    return np.diff(np.append(starts, total))


def segment_ids(starts: np.ndarray, total: int) -> np.ndarray:
    """Expand segment starts into a per-element segment index array."""
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ids = np.zeros(total, dtype=np.int64)
    ids[starts[1:]] = 1
    return np.cumsum(ids)


def segmented_cartesian(a_seg: np.ndarray, b_seg: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment cartesian product of two segment-sorted sequences.

    Given two arrays of (sorted, non-negative) segment ids, return index
    pairs ``(ia, ib)`` such that every element of ``a`` is paired with
    every element of ``b`` belonging to the same segment.  Used to
    expand per-key broadcaster/destination lists into location-message
    pairs.
    """
    if len(a_seg) == 0 or len(b_seg) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if fused_enabled() and len(b_seg) and bool((b_seg[1:] > b_seg[:-1]).all()):
        # Unique segments on the b side: every a element pairs with at
        # most one b element, so the expansion degenerates to a sorted
        # intersection.  Identical pairs in identical order either way.
        nseg = int(max(int(a_seg[-1]), int(b_seg[-1]))) + 1
        if nseg <= 4 * (len(a_seg) + len(b_seg)) + 1024:
            # Dense segment ids: a direct-address rank table turns the
            # intersection into one scatter and one gather, several
            # times faster than per-element binary search.
            b_rank = np.full(nseg, -1, dtype=np.int64)
            b_rank[b_seg] = np.arange(len(b_seg), dtype=np.int64)
            pos = b_rank[a_seg]
            ia = np.flatnonzero(pos >= 0)
            return ia, pos[ia]
        pos = np.searchsorted(b_seg, a_seg, side="left")
        clipped = np.minimum(pos, len(b_seg) - 1)
        found = b_seg[clipped] == a_seg
        ia = np.flatnonzero(found)
        return ia, clipped[ia]
    nseg = int(max(a_seg.max(), b_seg.max())) + 1
    count_b = np.bincount(b_seg, minlength=nseg)
    rep = count_b[a_seg]
    total = int(rep.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    ia = np.repeat(np.arange(len(a_seg), dtype=np.int64), rep)
    b_start = np.cumsum(count_b) - count_b
    start_of_pair = np.repeat(b_start[a_seg], rep)
    within = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(rep) - rep, rep)
    ib = start_of_pair + within
    return ia, ib


def segment_max_position(values: np.ndarray, starts: np.ndarray, total: int) -> np.ndarray:
    """Position (global index) of the maximum of each segment.

    Ties resolve to the *first* position with the maximal value inside the
    segment, which makes schedule generation deterministic.
    """
    if len(starts) == 0:
        return np.empty(0, dtype=np.int64)
    seg = segment_ids(starts, total)
    maxima = np.maximum.reduceat(values, starts)
    is_max = values == maxima[seg]
    positions = np.flatnonzero(is_max)
    first_of_segment = segment_boundaries(seg[positions])
    return positions[first_of_segment]


def pack_composite_keys(columns: list[np.ndarray], bits: list[int]) -> np.ndarray:
    """Pack a multi-column join key into one int64 per row.

    The paper's ``wk`` covers "the join key columns used in conjunctive
    equality conditions" — multi-column keys.  The simulator routes by a
    single int64, so composite keys are bit-packed: column ``i`` gets
    ``bits[i]`` bits, most-significant first.  The packing is injective
    (equal packed values iff all columns equal), so every join algorithm
    works on composite keys unchanged; the schema still accounts the
    width of all key columns.

    Raises ``ValueError`` if the widths exceed 63 bits or any value
    overflows its column's width.
    """
    if len(columns) != len(bits):
        raise ValidationError(f"{len(columns)} columns but {len(bits)} widths")
    if not columns:
        raise ValidationError("composite key needs at least one column")
    if sum(bits) > 63:
        raise ValidationError(f"composite key of {sum(bits)} bits exceeds 63")
    packed = np.zeros(len(columns[0]), dtype=np.int64)
    for values, width in zip(columns, bits):
        values = np.asarray(values, dtype=np.int64)
        if len(values) != len(packed):
            raise ValidationError("key columns must have equal length")
        if width <= 0:
            raise ValidationError(f"column width must be positive, got {width}")
        if len(values) and (values.min() < 0 or values.max() >= (1 << width)):
            raise ValidationError(f"value out of range for a {width}-bit key column")
        packed = (packed << np.int64(width)) | values
    return packed


def unpack_composite_keys(packed: np.ndarray, bits: list[int]) -> list[np.ndarray]:
    """Inverse of :func:`pack_composite_keys`."""
    packed = np.asarray(packed, dtype=np.int64)
    columns: list[np.ndarray] = []
    remaining = packed.copy()
    for width in reversed(bits):
        mask = np.int64((1 << width) - 1)
        columns.append(remaining & mask)
        remaining >>= np.int64(width)
    return list(reversed(columns))
