"""Workload container shared by all generators.

A :class:`Workload` bundles everything one traffic experiment needs: a
cluster, both distributed input tables, and the factor that scales
measured traffic back up to the paper's full cardinalities (traffic is
linear in table size for every algorithm under study, so scaled runs
are exact up to per-node discretization).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.cluster import Cluster
from ..storage.table import DistributedTable

__all__ = ["Workload"]


@dataclass
class Workload:
    """One generated join experiment input."""

    name: str
    cluster: Cluster
    table_r: DistributedTable
    table_s: DistributedTable
    #: Multiply measured traffic by this to express it at paper scale.
    scale: float = 1.0
    #: Expected join output rows at the generated (scaled) size, when
    #: the generator can derive it; used by integration tests.
    expected_output_rows: int | None = None
    notes: str = ""

    @property
    def num_nodes(self) -> int:
        """Cluster size of the workload."""
        return self.cluster.num_nodes

    def paper_gb(self, measured_bytes: float) -> float:
        """Measured traffic scaled to paper-size GB."""
        return measured_bytes * self.scale / 1e9
