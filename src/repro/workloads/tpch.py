"""A TPC-H-flavoured schema generator for multi-join experiments.

The paper motivates track join with large-scale analytical workloads
whose expensive queries join many relations.  The proprietary X and Y
surrogates reproduce the paper's measurements; this module provides an
*open* analytical schema in the familiar TPC-H shape (customer /
orders / lineitem with realistic cardinality ratios and key
relationships) so examples and downstream users can exercise the query
substrate on data whose structure they can inspect.

Cardinalities follow TPC-H's scale-factor convention: ``SF = 1`` means
150k customers, 1.5M orders, ~6M lineitems.  Foreign keys are
distributed uniformly; lineitems per order follow TPC-H's 1-7 uniform
distribution.
"""

from __future__ import annotations

import numpy as np

from ..cluster.cluster import Cluster
from ..errors import WorkloadError
from ..storage.placement import random_uniform
from ..storage.schema import Column, Schema
from ..storage.table import DistributedTable

__all__ = ["TPCH_BASE_ROWS", "tpch_tables"]

#: Rows per relation at scale factor 1.
TPCH_BASE_ROWS = {"customer": 150_000, "orders": 1_500_000}

#: Lineitems per order: uniform 1..7 (TPC-H's distribution), mean 4.

CUSTOMER_SCHEMA = Schema(
    (Column("c_custkey", bits=24),),
    (
        Column("c_nationkey", bits=5),
        Column("c_acctbal", bits=20),
        Column("c_mktsegment", bits=3),
    ),
)
ORDERS_SCHEMA = Schema(
    (Column("o_orderkey", bits=32),),
    (
        Column("o_custkey", bits=24),
        Column("o_orderdate", bits=12),
        Column("o_totalprice", bits=24),
        Column("o_orderpriority", bits=3),
    ),
)
LINEITEM_SCHEMA = Schema(
    (Column("l_orderkey", bits=32),),
    (
        Column("l_quantity", bits=6),
        Column("l_extendedprice", bits=24),
        Column("l_discount", bits=4),
        Column("l_shipdate", bits=12),
    ),
)


def tpch_tables(
    cluster: Cluster, scale_factor: float = 0.01, seed: int = 0
) -> dict[str, DistributedTable]:
    """Generate customer, orders, and lineitem on ``cluster``.

    Returns a dict of distributed tables keyed by relation name; rows
    are placed uniformly at random (no pre-existing locality, track
    join's worst case).
    """
    if scale_factor <= 0:
        raise WorkloadError(f"scale factor must be positive, got {scale_factor}")
    rng = np.random.default_rng(seed)
    num_nodes = cluster.num_nodes
    num_customers = max(1, round(TPCH_BASE_ROWS["customer"] * scale_factor))
    num_orders = max(1, round(TPCH_BASE_ROWS["orders"] * scale_factor))

    customer = cluster.table_from_assignment(
        "customer",
        CUSTOMER_SCHEMA,
        np.arange(num_customers, dtype=np.int64),
        random_uniform(num_customers, num_nodes, seed=seed * 31 + 1),
        columns={
            "c_nationkey": rng.integers(0, 25, num_customers),
            "c_acctbal": rng.integers(0, 1_000_000, num_customers),
            "c_mktsegment": rng.integers(0, 5, num_customers),
        },
    )
    orders = cluster.table_from_assignment(
        "orders",
        ORDERS_SCHEMA,
        np.arange(num_orders, dtype=np.int64),
        random_uniform(num_orders, num_nodes, seed=seed * 31 + 2),
        columns={
            "o_custkey": rng.integers(0, num_customers, num_orders),
            "o_orderdate": rng.integers(0, 2406, num_orders),
            "o_totalprice": rng.integers(1_000, 10_000_000, num_orders),
            "o_orderpriority": rng.integers(0, 5, num_orders),
        },
    )
    lineitems_per_order = rng.integers(1, 8, num_orders)
    l_orderkey = np.repeat(np.arange(num_orders, dtype=np.int64), lineitems_per_order)
    num_lineitems = len(l_orderkey)
    lineitem = cluster.table_from_assignment(
        "lineitem",
        LINEITEM_SCHEMA,
        l_orderkey,
        random_uniform(num_lineitems, num_nodes, seed=seed * 31 + 3),
        columns={
            "l_quantity": rng.integers(1, 51, num_lineitems),
            "l_extendedprice": rng.integers(1_000, 100_000, num_lineitems),
            "l_discount": rng.integers(0, 11, num_lineitems),
            "l_shipdate": rng.integers(0, 2557, num_lineitems),
        },
    )
    return {"customer": customer, "orders": orders, "lineitem": lineitem}
