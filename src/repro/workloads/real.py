"""Surrogates for the paper's commercial workloads X and Y.

The originals are proprietary ("extracted from a corpus of commercial
analytical workloads"), so we synthesize inputs matching every published
statistic:

* **Workload X** (Figures 7-9, Tables 1-4): the slowest join of the five
  slowest queries.  Table 1 gives exact cardinalities and minimum-bit
  dictionary widths for every column of Q1; Q2-Q5 share the same key
  columns and differ in payload width (total bits 79:145, 67:120,
  60:126, 67:131, 69:145).  Keys are almost entirely unique on both
  sides and ~95% of R rows find a match (output 730,073,001).

* **Workload Y** (Figures 10-11): 57,119,489 x 141,312,688 tuples with
  1,068,159,117 output rows — heavy key repetition (output is 5.4x the
  input cardinality, uniformly per key), 37/47-byte variable-byte
  tuples dominated by a 23-byte character column.

"Original tuple ordering" exhibits partial pre-existing collocation of
matching tuples, modeled by anchoring each key on a node (hashed with a
seed *different* from the join's hash seed, so hash join gains nothing)
and placing each row there with probability ``locality``.  "Shuffled"
runs place every row uniformly at random, exactly like the paper's
shuffle that removes all locality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.cluster import Cluster
from ..errors import WorkloadError
from ..storage.schema import Column, Schema
from ..util import hash_partition
from .base import Workload

__all__ = [
    "X_PAPER",
    "Y_PAPER",
    "XColumnStat",
    "workload_x",
    "workload_y",
    "x_query_schemas",
]

#: Seed stream for key anchoring; deliberately distinct from the default
#: join hash seed (0) so "original ordering" locality is invisible to
#: hash join, matching Figures 7 vs 8 where HJ traffic is unchanged.
_ANCHOR_SEED = 0xA17C


@dataclass(frozen=True)
class XColumnStat:
    """One row of the paper's Table 1."""

    name: str
    distinct: int
    bits: int
    decimal_digits: int
    is_key: bool = False


#: Table 1 of the paper, plus plausible decimal digit counts for the
#: uncompressed base-100 representation (the paper states the raw values
#: exceed the 32-bit range, hence keys at ~12 digits).
X_TABLE1_R: tuple[XColumnStat, ...] = (
    XColumnStat("J.ID", 769_785_856, 30, 12, is_key=True),
    XColumnStat("T.ID", 53, 6, 2),
    XColumnStat("J.T.AMT", 9_824_256, 24, 9),
    XColumnStat("T.C.ID", 297_952, 19, 7),
)
X_TABLE1_S: tuple[XColumnStat, ...] = (
    XColumnStat("J.ID", 788_463_616, 30, 12, is_key=True),
    XColumnStat("T.ID", 53, 6, 2),
    XColumnStat("S.B.ID", 95, 7, 2),
    XColumnStat("O.U.AMT", 26_308_608, 25, 9),
    XColumnStat("C.ID", 359, 9, 3),
    XColumnStat("T.B.C.ID", 233_040, 18, 7),
    XColumnStat("S.C.AMT", 11_278_336, 24, 9),
    XColumnStat("M.U.AMT", 54_407_160, 26, 10),
)

#: Published top-level statistics of both workloads.
X_PAPER = {
    "tuples_r": 769_845_120,
    "tuples_s": 790_963_741,
    "distinct_r": 769_785_856,
    "distinct_s": 788_463_616,
    "output": 730_073_001,
    # Total dictionary bits per tuple (R:S) for queries Q1-Q5 (Fig 9).
    "query_bits": {1: (79, 145), 2: (67, 120), 3: (60, 126), 4: (67, 131), 5: (69, 145)},
}
Y_PAPER = {
    "tuples_r": 57_119_489,
    "tuples_s": 141_312_688,
    "output": 1_068_159_117,
    "row_bytes_r": 37,
    "row_bytes_s": 47,
}


def x_query_schemas(query: int) -> tuple[Schema, Schema]:
    """Schemas of the X join for query ``query`` (1-5).

    Q1 carries the full Table 1 column set; Q2-Q5 share Q1's key column
    and aggregate their payloads into one column with the published
    total width.
    """
    if query not in X_PAPER["query_bits"]:
        raise WorkloadError(f"workload X has queries 1-5, got {query}")
    if query == 1:
        r_cols = tuple(
            Column(c.name, bits=c.bits, decimal_digits=c.decimal_digits)
            for c in X_TABLE1_R
        )
        s_cols = tuple(
            Column(c.name, bits=c.bits, decimal_digits=c.decimal_digits)
            for c in X_TABLE1_S
        )
        return (
            Schema(key_columns=(r_cols[0],), payload_columns=r_cols[1:]),
            Schema(key_columns=(s_cols[0],), payload_columns=s_cols[1:]),
        )
    bits_r, bits_s = X_PAPER["query_bits"][query]
    key = Column("J.ID", bits=30, decimal_digits=12)
    return (
        Schema((key,), (Column("payload", bits=bits_r - 30),)),
        Schema((key,), (Column("payload", bits=bits_s - 30),)),
    )


def _implementation_schema(key_bytes: int, payload_bytes: int) -> Schema:
    """Fixed-width schema of the paper's C++ implementation (Sec 4.2)."""
    return Schema.with_widths(key_bytes * 8, payload_bytes * 8)


def _locality_assignment(
    keys: np.ndarray, num_nodes: int, locality: float, seed: int
) -> np.ndarray:
    """Uniform placement with a ``locality`` fraction pinned to key anchors."""
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, num_nodes, size=len(keys), dtype=np.int64)
    if locality > 0:
        pinned = rng.random(len(keys)) < locality
        anchors = hash_partition(keys, num_nodes, seed=_ANCHOR_SEED)
        assignment[pinned] = anchors[pinned]
    return assignment


def _scaled_distinct(paper_distinct: int, fraction: float) -> int:
    """Scale a column's distinct count; small dimensions keep theirs."""
    if paper_distinct <= 1000:
        return paper_distinct
    return max(1000, round(paper_distinct * fraction))


def _payload_columns(
    stats: tuple[XColumnStat, ...], num_rows: int, fraction: float, rng
) -> dict[str, np.ndarray]:
    """Generate payload column values with scaled distinct counts."""
    columns: dict[str, np.ndarray] = {}
    for stat in stats:
        if stat.is_key:
            continue
        domain = _scaled_distinct(stat.distinct, fraction)
        columns[stat.name] = rng.integers(0, domain, size=num_rows, dtype=np.int64)
    return columns


def workload_x(
    query: int = 1,
    num_nodes: int = 16,
    scale_denominator: int = 512,
    ordering: str = "original",
    locality: float = 0.85,
    seed: int = 0,
    implementation_widths: bool = False,
) -> Workload:
    """The slowest join of workload X's query ``query`` (1-5).

    Parameters
    ----------
    ordering:
        ``"original"`` applies ``locality`` collocation of matching
        tuples; ``"shuffled"`` places rows uniformly at random.
    implementation_widths:
        Use the C++ implementation's fixed widths (4-byte keys, 7/18
        byte payloads — Section 4.2) instead of the Table 1 schemas;
        for the Table 2-4 timing reproductions on 4 nodes.
    """
    if ordering not in ("original", "shuffled"):
        raise WorkloadError(f"ordering must be 'original' or 'shuffled', got {ordering!r}")
    fraction = 1.0 / scale_denominator
    tuples_r = round(X_PAPER["tuples_r"] * fraction)
    tuples_s = round(X_PAPER["tuples_s"] * fraction)
    distinct_r = round(X_PAPER["distinct_r"] * fraction)
    distinct_s = round(X_PAPER["distinct_s"] * fraction)
    matched = round(X_PAPER["output"] * fraction)
    if matched > min(distinct_r, distinct_s):
        raise WorkloadError("inconsistent scaled cardinalities for workload X")

    rng = np.random.default_rng(seed)
    # Key universe: [0, matched) match on both sides; then R-only and
    # S-only ranges.  Duplicated rows draw uniformly from each table's
    # distinct set, preserving the tiny key repetition of the original.
    r_distinct_keys = np.arange(distinct_r, dtype=np.int64)
    s_only = np.arange(distinct_s - matched, dtype=np.int64) + distinct_r
    s_distinct_keys = np.concatenate([np.arange(matched, dtype=np.int64), s_only])
    keys_r = np.concatenate(
        [r_distinct_keys, rng.choice(r_distinct_keys, tuples_r - distinct_r)]
    )
    keys_s = np.concatenate(
        [s_distinct_keys, rng.choice(s_distinct_keys, tuples_s - distinct_s)]
    )
    rng.shuffle(keys_r)
    rng.shuffle(keys_s)

    if implementation_widths:
        schema_r = _implementation_schema(4, 7)
        schema_s = _implementation_schema(4, 18)
        columns_r: dict[str, np.ndarray] | None = None
        columns_s: dict[str, np.ndarray] | None = None
    else:
        schema_r, schema_s = x_query_schemas(query)
        if query == 1:
            columns_r = _payload_columns(X_TABLE1_R, len(keys_r), fraction, rng)
            columns_s = _payload_columns(X_TABLE1_S, len(keys_s), fraction, rng)
        else:
            columns_r = {"payload": rng.integers(0, 1 << 31, len(keys_r), dtype=np.int64)}
            columns_s = {"payload": rng.integers(0, 1 << 31, len(keys_s), dtype=np.int64)}

    effective_locality = locality if ordering == "original" else 0.0
    cluster = Cluster(num_nodes)
    table_r = cluster.table_from_assignment(
        "R",
        schema_r,
        keys_r,
        _locality_assignment(keys_r, num_nodes, effective_locality, seed * 3 + 1),
        columns=columns_r,
    )
    table_s = cluster.table_from_assignment(
        "S",
        schema_s,
        keys_s,
        _locality_assignment(keys_s, num_nodes, effective_locality, seed * 3 + 2),
        columns=columns_s,
    )
    return Workload(
        name=f"X-Q{query}-{ordering}",
        cluster=cluster,
        table_r=table_r,
        table_s=table_s,
        scale=scale_denominator,
        expected_output_rows=None,
        notes=(
            f"workload X Q{query} surrogate at 1/{scale_denominator} scale, "
            f"{ordering} ordering (locality={effective_locality})"
        ),
    )


def _two_anchor_assignment(
    keys: np.ndarray,
    num_nodes: int,
    locality: float,
    primary_share: float,
    seed: int,
) -> np.ndarray:
    """Placement concentrating each key's tuples on two anchor nodes.

    A ``locality`` fraction of rows lands on the key's primary anchor
    (with probability ``primary_share``) or secondary anchor; the rest
    are uniform.  Workload Y's original ordering behaves this way: all
    track join variants perform alike because each key already occupies
    very few nodes and migration cannot consolidate further.
    """
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, num_nodes, size=len(keys), dtype=np.int64)
    if locality <= 0 or num_nodes == 1:
        return assignment
    primary = hash_partition(keys, num_nodes, seed=_ANCHOR_SEED)
    if num_nodes > 1:
        offset = (hash_partition(keys, num_nodes - 1, seed=_ANCHOR_SEED + 1) + 1).astype(
            np.int64
        )
        secondary = (primary + offset) % num_nodes
    else:  # pragma: no cover - guarded above
        secondary = primary
    pinned = rng.random(len(keys)) < locality
    use_primary = rng.random(len(keys)) < primary_share
    anchors = np.where(use_primary, primary, secondary)
    assignment[pinned] = anchors[pinned]
    return assignment


def workload_y(
    num_nodes: int = 16,
    scale_denominator: int = 128,
    ordering: str = "original",
    locality: float = 0.95,
    primary_share: float = 0.7,
    seed: int = 0,
    implementation_widths: bool = False,
    repeats_r: int = 11,
    repeats_s: int = 27,
) -> Workload:
    """The slowest join of workload Y's slowest query.

    The paper describes Y as a high-output-selectivity join (output is
    5.4x the input cardinality, "which also applies per distinct join
    key") whose 2-phase selective broadcast degenerates to almost a full
    broadcast when shuffled, while 4-phase still beats hash join by 28%.
    The published cardinalities admit that behaviour only with *partial
    input selectivity*: a core of matched keys repeating heavily on both
    sides, plus unmatched single-occurrence keys in each table.  We use
    ``repeats_r x repeats_s`` matched multiplicities (defaults 12 x 30,
    preserving the tables' 1:2.47 size ratio); the matched key count
    follows from the published output, and the unmatched remainders fill
    each table to its published cardinality.
    """
    if ordering not in ("original", "shuffled"):
        raise WorkloadError(f"ordering must be 'original' or 'shuffled', got {ordering!r}")
    fraction = 1.0 / scale_denominator
    matched_keys = max(1, round(Y_PAPER["output"] / (repeats_r * repeats_s) * fraction))
    tuples_r = round(Y_PAPER["tuples_r"] * fraction)
    tuples_s = round(Y_PAPER["tuples_s"] * fraction)
    unmatched_r = tuples_r - matched_keys * repeats_r
    unmatched_s = tuples_s - matched_keys * repeats_s
    if unmatched_r < 0 or unmatched_s < 0:
        raise WorkloadError(
            f"matched multiplicities {repeats_r}x{repeats_s} exceed the "
            "published table cardinalities"
        )

    matched = np.arange(matched_keys, dtype=np.int64)
    keys_r = np.concatenate(
        [
            np.repeat(matched, repeats_r),
            np.arange(unmatched_r, dtype=np.int64) + matched_keys,
        ]
    )
    keys_s = np.concatenate(
        [
            np.repeat(matched, repeats_s),
            np.arange(unmatched_s, dtype=np.int64) + matched_keys + unmatched_r,
        ]
    )
    expected_output = matched_keys * repeats_r * repeats_s

    if implementation_widths:
        schema_r = _implementation_schema(4, 33)
        schema_s = _implementation_schema(4, 43)
    else:
        key = Column("key", bits=27, decimal_digits=8)
        schema_r = Schema(
            (key,),
            (
                Column("name", char_length=23),
                Column("amt1", bits=30, decimal_digits=9),
                Column("amt2", bits=30, decimal_digits=9),
            ),
        )
        schema_s = Schema(
            (key,),
            (
                Column("name", char_length=23),
                Column("amt1", bits=30, decimal_digits=9),
                Column("amt2", bits=30, decimal_digits=9),
                Column("amt3", bits=30, decimal_digits=9),
                Column("amt4", bits=30, decimal_digits=9),
            ),
        )

    effective_locality = locality if ordering == "original" else 0.0
    cluster = Cluster(num_nodes)
    table_r = cluster.table_from_assignment(
        "R",
        schema_r,
        keys_r,
        _two_anchor_assignment(
            keys_r, num_nodes, effective_locality, primary_share, seed * 5 + 1
        ),
    )
    table_s = cluster.table_from_assignment(
        "S",
        schema_s,
        keys_s,
        _two_anchor_assignment(
            keys_s, num_nodes, effective_locality, primary_share, seed * 5 + 2
        ),
    )
    return Workload(
        name=f"Y-{ordering}",
        cluster=cluster,
        table_r=table_r,
        table_s=table_s,
        scale=scale_denominator,
        expected_output_rows=expected_output,
        notes=(
            f"workload Y surrogate at 1/{scale_denominator} scale, {ordering} "
            f"ordering (locality={effective_locality}), {matched_keys} matched keys "
            f"at {repeats_r}x{repeats_s} repeats"
        ),
    )
