"""Synthetic workload generators for Figures 3-6.

Figure 3 joins two billion-tuple tables with almost entirely unique
keys at three payload-width ratios.  Figures 4-6 probe locality: keys
repeat five times per table and the repeats are placed according to a
pattern (``5,0,0,...`` fully collocated, ``2,2,1,0,...`` partially,
``1,1,1,1,1,0,...`` fully spread), with Figure 5 collocating repeats
within each table independently (*intra*) and Figure 6 additionally
collocating the two tables' groups on the same nodes (*inter & intra*).

All generators run at a reduced cardinality and report the linear
``scale`` factor back to paper size.
"""

from __future__ import annotations

import numpy as np

from ..cluster.cluster import Cluster
from ..errors import WorkloadError
from ..storage.placement import pattern_nodes, random_uniform
from ..storage.schema import Schema
from .base import Workload

__all__ = [
    "unique_keys_workload",
    "single_side_pattern_workload",
    "both_sides_pattern_workload",
    "zipf_workload",
    "hot_key_workload",
    "PATTERN_COLLOCATED",
    "PATTERN_PARTIAL",
    "PATTERN_SPREAD",
]

#: The three placement patterns of Figures 4-6.
PATTERN_COLLOCATED: tuple[int, ...] = (5,)
PATTERN_PARTIAL: tuple[int, ...] = (2, 2, 1)
PATTERN_SPREAD: tuple[int, ...] = (1, 1, 1, 1, 1)


def _schema_for_row_bytes(row_bytes: int, key_bytes: int = 4) -> Schema:
    """Schema with a ``key_bytes`` key and payload filling ``row_bytes``."""
    if row_bytes < key_bytes:
        raise WorkloadError(f"row of {row_bytes} bytes cannot hold a {key_bytes}-byte key")
    return Schema.with_widths(key_bytes * 8, (row_bytes - key_bytes) * 8)


def unique_keys_workload(
    num_nodes: int = 16,
    paper_tuples: int = 10**9,
    row_bytes_r: int = 20,
    row_bytes_s: int = 60,
    scaled_tuples: int = 1_000_000,
    seed: int = 0,
) -> Workload:
    """Figure 3: equal-cardinality tables with almost entirely unique keys.

    Both tables share the same key set (high selectivity), each key
    appearing exactly once per table, and tuples are placed uniformly
    at random — the no-locality worst case for track join.
    """
    cluster = Cluster(num_nodes)
    keys = np.arange(scaled_tuples, dtype=np.int64)
    table_r = cluster.table_from_assignment(
        "R",
        _schema_for_row_bytes(row_bytes_r),
        keys,
        random_uniform(scaled_tuples, num_nodes, seed=seed * 7 + 1),
    )
    table_s = cluster.table_from_assignment(
        "S",
        _schema_for_row_bytes(row_bytes_s),
        keys,
        random_uniform(scaled_tuples, num_nodes, seed=seed * 7 + 2),
    )
    return Workload(
        name=f"fig3-{row_bytes_r}v{row_bytes_s}",
        cluster=cluster,
        table_r=table_r,
        table_s=table_s,
        scale=paper_tuples / scaled_tuples,
        expected_output_rows=scaled_tuples,
        notes=(
            f"{paper_tuples:.0e} vs {paper_tuples:.0e} tuples, unique keys, "
            f"{row_bytes_r}/{row_bytes_s}-byte rows, simulated at {scaled_tuples} tuples"
        ),
    )


def single_side_pattern_workload(
    pattern: tuple[int, ...],
    num_nodes: int = 16,
    paper_unique_tuples: int = 200_000_000,
    scaled_keys: int = 200_000,
    row_bytes_r: int = 30,
    row_bytes_s: int = 60,
    seed: int = 0,
) -> Workload:
    """Figure 4: unique-key R joins S whose keys repeat 5x per ``pattern``.

    R has one 30-byte tuple per key placed uniformly; S repeats every
    key five times, splitting the repeats across nodes according to the
    placement pattern (this is *intra-table* collocation of a single
    side; R's placement is independent of S's).
    """
    if sum(pattern) != 5:
        raise WorkloadError(f"Figure 4 patterns distribute 5 repeats, got {pattern}")
    cluster = Cluster(num_nodes)
    keys = np.arange(scaled_keys, dtype=np.int64)
    table_r = cluster.table_from_assignment(
        "R",
        _schema_for_row_bytes(row_bytes_r),
        keys,
        random_uniform(scaled_keys, num_nodes, seed=seed * 11 + 1),
    )
    key_index, node, _pool = pattern_nodes(
        scaled_keys, pattern, num_nodes, seed=seed * 11 + 2
    )
    table_s = cluster.table_from_assignment(
        "S", _schema_for_row_bytes(row_bytes_s), keys[key_index], node
    )
    return Workload(
        name=f"fig4-{','.join(map(str, pattern))}",
        cluster=cluster,
        table_r=table_r,
        table_s=table_s,
        scale=paper_unique_tuples / scaled_keys,
        expected_output_rows=scaled_keys * 5,
        notes=(
            f"2e8 unique R vs 1e9 S tuples, S repeats per pattern {pattern}, "
            f"simulated at {scaled_keys} keys"
        ),
    )


def both_sides_pattern_workload(
    pattern: tuple[int, ...],
    inter_collocated: bool,
    num_nodes: int = 16,
    paper_keys: int = 40_000_000,
    scaled_keys: int = 40_000,
    row_bytes_r: int = 30,
    row_bytes_s: int = 60,
    seed: int = 0,
) -> Workload:
    """Figures 5-6: both tables repeat every key 5x per ``pattern``.

    With ``inter_collocated=False`` (Figure 5) each table draws its own
    host nodes per key — repeats collocate within a table only.  With
    ``True`` (Figure 6) both tables' groups land on the same nodes, so
    matching tuples across tables are collocated too and, under the
    fully-collocated pattern, track join eliminates all payload
    transfers.
    """
    if sum(pattern) != 5:
        raise WorkloadError(f"Figure 5/6 patterns distribute 5 repeats, got {pattern}")
    cluster = Cluster(num_nodes)
    keys = np.arange(scaled_keys, dtype=np.int64)
    key_index_r, node_r, pool = pattern_nodes(
        scaled_keys, pattern, num_nodes, seed=seed * 13 + 1
    )
    if inter_collocated:
        key_index_s, node_s, _ = pattern_nodes(
            scaled_keys, pattern, num_nodes, node_pool=pool
        )
    else:
        key_index_s, node_s, _ = pattern_nodes(
            scaled_keys, pattern, num_nodes, seed=seed * 13 + 2
        )
    table_r = cluster.table_from_assignment(
        "R", _schema_for_row_bytes(row_bytes_r), keys[key_index_r], node_r
    )
    table_s = cluster.table_from_assignment(
        "S", _schema_for_row_bytes(row_bytes_s), keys[key_index_s], node_s
    )
    figure = "fig6" if inter_collocated else "fig5"
    return Workload(
        name=f"{figure}-{','.join(map(str, pattern))}",
        cluster=cluster,
        table_r=table_r,
        table_s=table_s,
        scale=paper_keys / scaled_keys,
        expected_output_rows=scaled_keys * 25,
        notes=(
            f"2e8 vs 2e8 tuples, 4e7 keys repeated 5x each side, pattern {pattern}, "
            f"{'inter+intra' if inter_collocated else 'intra'} collocation, "
            f"simulated at {scaled_keys} keys"
        ),
    )


def zipf_workload(
    num_nodes: int = 16,
    tuples_per_table: int = 200_000,
    distinct_keys: int = 20_000,
    skew: float = 1.0,
    row_bytes_r: int = 30,
    row_bytes_s: int = 60,
    seed: int = 0,
) -> Workload:
    """Skewed key frequencies: an extension workload beyond the paper.

    Keys are drawn from a Zipf-like distribution (frequency of the
    rank-``i`` key proportional to ``1 / i**skew``), placed uniformly at
    random.  Heavy hitters stress both hash join (all copies of the hot
    key meet at one hash node) and the track join scheduler (many
    holders per key); the skew ablation benchmark measures who degrades
    and how per-node balance behaves.

    ``skew = 0`` recovers uniform key frequencies.
    """
    if skew < 0:
        raise WorkloadError(f"zipf skew must be non-negative, got {skew}")
    if distinct_keys <= 0:
        raise WorkloadError("need at least one distinct key")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, distinct_keys + 1, dtype=np.float64)
    weights = ranks**-skew
    probabilities = weights / weights.sum()
    keys_r = rng.choice(distinct_keys, size=tuples_per_table, p=probabilities)
    keys_s = rng.choice(distinct_keys, size=tuples_per_table, p=probabilities)
    cluster = Cluster(num_nodes)
    table_r = cluster.table_from_assignment(
        "R",
        _schema_for_row_bytes(row_bytes_r),
        keys_r.astype(np.int64),
        random_uniform(tuples_per_table, num_nodes, seed=seed * 17 + 1),
    )
    table_s = cluster.table_from_assignment(
        "S",
        _schema_for_row_bytes(row_bytes_s),
        keys_s.astype(np.int64),
        random_uniform(tuples_per_table, num_nodes, seed=seed * 17 + 2),
    )
    return Workload(
        name=f"zipf-{skew}",
        cluster=cluster,
        table_r=table_r,
        table_s=table_s,
        scale=1.0,
        notes=(
            f"{tuples_per_table} tuples per table over {distinct_keys} keys, "
            f"zipf skew {skew}"
        ),
    )


def hot_key_workload(
    num_nodes: int = 16,
    tuples_per_table: int = 100_000,
    distinct_keys: int = 10_000,
    skew: float = 1.2,
    hot_threshold: float = 0.02,
    probe_factor: float = 3.0,
    row_bytes_r: int = 30,
    row_bytes_s: int = 60,
    seed: int = 0,
) -> Workload:
    """Heavy hitters that the 4-phase scheduler *consolidates*.

    The build side ``S`` draws keys from a Zipf(``skew``) distribution,
    so a handful of keys dominate it.  The probe side ``R`` is uniform
    background **plus** ``probe_factor / num_nodes`` of each hot key's
    build count as probe rows — enough probe bytes that migrating the
    hot key's build tuples beats replicating the probes (Theorem 1), so
    plain 4TJ piles each hot key onto a single destination.  This is
    the skew ablation's worst case: minimal total traffic with maximal
    per-node received bytes, the regime heavy-hitter sharding
    (:class:`~repro.core.skew.SkewShardTrackJoin`) is built for.

    ``hot_threshold`` is the build-frequency fraction above which a key
    gets probe amplification; all draws are deterministic per ``seed``.
    """
    if skew < 0:
        raise WorkloadError(f"zipf skew must be non-negative, got {skew}")
    if distinct_keys <= 0:
        raise WorkloadError("need at least one distinct key")
    if not 0.0 < hot_threshold < 1.0:
        raise WorkloadError(f"hot_threshold must be in (0, 1), got {hot_threshold}")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, distinct_keys + 1, dtype=np.float64)
    weights = ranks**-skew
    probabilities = weights / weights.sum()
    keys_s = rng.choice(distinct_keys, size=tuples_per_table, p=probabilities)
    counts_s = np.bincount(keys_s, minlength=distinct_keys)
    hot = np.flatnonzero(counts_s > hot_threshold * tuples_per_table)
    keys_r_background = rng.integers(0, distinct_keys, size=tuples_per_table)
    probe_rows = [
        np.full(
            int(np.ceil(probe_factor * counts_s[key] / num_nodes)), key, dtype=np.int64
        )
        for key in hot
    ]
    keys_r = np.concatenate([keys_r_background.astype(np.int64)] + probe_rows)
    cluster = Cluster(num_nodes)
    table_r = cluster.table_from_assignment(
        "R",
        _schema_for_row_bytes(row_bytes_r),
        keys_r,
        random_uniform(len(keys_r), num_nodes, seed=seed * 17 + 1),
    )
    table_s = cluster.table_from_assignment(
        "S",
        _schema_for_row_bytes(row_bytes_s),
        keys_s.astype(np.int64),
        random_uniform(tuples_per_table, num_nodes, seed=seed * 17 + 2),
    )
    return Workload(
        name=f"hot-key-{skew}",
        cluster=cluster,
        table_r=table_r,
        table_s=table_s,
        scale=1.0,
        notes=(
            f"{tuples_per_table} build tuples over {distinct_keys} keys, "
            f"zipf skew {skew}, {len(hot)} hot keys amplified on the probe side"
        ),
    )
