"""Workload generators for the paper's synthetic and real evaluations."""

from .base import Workload
from .real import (
    X_PAPER,
    X_TABLE1_R,
    X_TABLE1_S,
    XColumnStat,
    Y_PAPER,
    workload_x,
    workload_y,
    x_query_schemas,
)
from .tpch import TPCH_BASE_ROWS, tpch_tables
from .synthetic import (
    PATTERN_COLLOCATED,
    PATTERN_PARTIAL,
    PATTERN_SPREAD,
    both_sides_pattern_workload,
    hot_key_workload,
    single_side_pattern_workload,
    unique_keys_workload,
    zipf_workload,
)

__all__ = [
    "Workload",
    "unique_keys_workload",
    "single_side_pattern_workload",
    "both_sides_pattern_workload",
    "zipf_workload",
    "hot_key_workload",
    "tpch_tables",
    "TPCH_BASE_ROWS",
    "PATTERN_COLLOCATED",
    "PATTERN_PARTIAL",
    "PATTERN_SPREAD",
    "workload_x",
    "workload_y",
    "x_query_schemas",
    "X_PAPER",
    "Y_PAPER",
    "X_TABLE1_R",
    "X_TABLE1_S",
    "XColumnStat",
]
