"""Exception hierarchy for the track join reproduction library.

Every error raised by this package derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A schema definition is invalid or inconsistent with the data."""


class PlacementError(ReproError):
    """A tuple placement request cannot be satisfied."""


class NetworkError(ReproError):
    """A message was sent to an invalid node or with invalid accounting."""


class JoinConfigError(ReproError):
    """A distributed join was configured with incompatible inputs."""


class ScheduleError(ReproError):
    """Per-key schedule generation received malformed tracking input."""


class CostModelError(ReproError):
    """The analytic cost model was queried with inconsistent statistics."""


class WorkloadError(ReproError):
    """A workload generator was asked for an unsatisfiable configuration."""


class ParallelError(ReproError):
    """The parallel execution engine was misconfigured or misused."""


class ValidationError(ReproError, ValueError):
    """An argument or configuration value is out of its legal domain.

    Derives from :class:`ValueError` as well as :class:`ReproError` so
    callers that guard with ``except ValueError`` keep working while the
    whole library stays catchable under one hierarchy (the REP004 lint
    rule bans raising bare builtins from library code).
    """


class UnknownKeyError(ReproError, KeyError):
    """A registry or lookup was asked for an id it does not contain.

    Derives from :class:`KeyError` for backwards compatibility with
    callers that catch the builtin.  Note the :class:`KeyError` quirk:
    ``str(exc)`` is the ``repr`` of the message; use ``exc.args[0]`` for
    the human-readable text.
    """


class AnalysisError(ReproError):
    """The static-analysis engine was given an unreadable or invalid input."""


class RaceError(AnalysisError):
    """The runtime race sanitizer observed an unsynchronized conflict.

    Raised deterministically at the *second* access of a cross-thread
    write/write or read/write pair on a registered shared object when
    the two accesses hold no lock in common.  ``key`` names the shared
    object, ``kind`` the conflicting access pair (``"write/write"`` or
    ``"read/write"``), and ``threads`` the two thread names involved.
    """

    def __init__(
        self,
        message: str,
        *,
        key: str | None = None,
        kind: str | None = None,
        threads: tuple[str, str] | None = None,
    ):
        super().__init__(message)
        self.key = key
        self.kind = kind
        self.threads = threads


class ServeError(ReproError):
    """Base class of the concurrent query-service subsystem."""


class AdmissionError(ServeError):
    """A query was rejected at admission (queue full or service closed).

    Carries the admission state so callers can implement backpressure:
    ``queued`` is how many queries were waiting and ``limit`` the
    service's configured queue bound (``None`` for a closed service).
    """

    def __init__(
        self,
        message: str,
        *,
        queued: int | None = None,
        limit: int | None = None,
    ):
        super().__init__(message)
        self.queued = queued
        self.limit = limit


class QueryTimeoutError(ServeError):
    """A query missed its deadline while queued or between operators.

    ``elapsed`` is the wall-clock seconds since admission and
    ``timeout`` the budget the request declared; ``where`` says whether
    the deadline expired in the admission queue (``"queued"``) or at an
    operator boundary mid-run (``"running"``).
    """

    def __init__(
        self,
        message: str,
        *,
        elapsed: float | None = None,
        timeout: float | None = None,
        where: str = "running",
    ):
        super().__init__(message)
        self.elapsed = elapsed
        self.timeout = timeout
        self.where = where


class FaultError(ReproError):
    """Base class of the fault-injection and recovery subsystem."""


class NodeCrashError(FaultError):
    """An injected node crash (fail-stop at phase entry).

    Raised inside a phase task by the fault injector; the phase
    supervisor in :func:`repro.parallel.run_phase` catches it and
    re-executes the crashed node's work from the last barrier, so this
    error normally never reaches user code.
    """

    def __init__(self, message: str, *, node: int | None = None, phase: int | None = None):
        super().__init__(message)
        self.node = node
        self.phase = phase


class FaultExhaustedError(FaultError):
    """A fault survived the full retry/restart budget.

    Carries enough context for graceful degradation: ``category`` is the
    :class:`~repro.cluster.network.MessageClass` whose retransmits were
    exhausted (``None`` for crash-restart exhaustion), ``link`` the
    ``(src, dst)`` pair, ``node`` the unrecoverable node, and
    ``attempts`` how many deliveries or restarts were tried.
    """

    def __init__(
        self,
        message: str,
        *,
        category=None,
        link: tuple[int, int] | None = None,
        node: int | None = None,
        attempts: int | None = None,
    ):
        super().__init__(message)
        self.category = category
        self.link = link
        self.node = node
        self.attempts = attempts
