"""Public testing utilities for downstream users of the library.

Anyone extending the library with a new distributed join needs the
same two checks the internal suite uses everywhere: *build comparable
tables quickly* and *assert two algorithms produced the identical
output multiset*.  These helpers are exported so extensions can reuse
them instead of re-deriving canonicalization logic.
"""

from __future__ import annotations

import numpy as np

from .cluster.cluster import Cluster
from .joins.base import JoinResult
from .storage.placement import random_uniform
from .storage.schema import Schema
from .storage.table import DistributedTable

__all__ = ["scatter_tables", "canonical_output", "assert_same_output"]


def scatter_tables(
    cluster: Cluster,
    keys_r: np.ndarray,
    keys_s: np.ndarray,
    payload_bits_r: int = 64,
    payload_bits_s: int = 128,
    seed: int = 0,
) -> tuple[DistributedTable, DistributedTable]:
    """Scatter two key arrays uniformly over a cluster with rid payloads.

    Each table carries a ``rid`` column identifying its original rows,
    which is what makes outputs comparable across algorithms.
    """
    schema_r = Schema.with_widths(32, payload_bits_r)
    schema_s = Schema.with_widths(32, payload_bits_s)
    table_r = cluster.table_from_assignment(
        "R",
        schema_r,
        np.asarray(keys_r, dtype=np.int64),
        random_uniform(len(keys_r), cluster.num_nodes, seed=seed * 2 + 1),
    )
    table_s = cluster.table_from_assignment(
        "S",
        schema_s,
        np.asarray(keys_s, dtype=np.int64),
        random_uniform(len(keys_s), cluster.num_nodes, seed=seed * 2 + 2),
    )
    return table_r, table_s


def canonical_output(result: JoinResult) -> np.ndarray:
    """Sorted ``(key, r.rid, s.rid)`` matrix of a join result.

    Requires the inputs to have carried ``rid`` payload columns (as
    :func:`scatter_tables` produces).
    """
    output = result.gathered_output()
    matrix = np.stack(
        [output.keys, output.columns["r.rid"], output.columns["s.rid"]]
    )
    order = np.lexsort(matrix)
    return matrix[:, order]


def assert_same_output(result_a: JoinResult, result_b: JoinResult) -> None:
    """Raise ``AssertionError`` unless both joins produced the same rows."""
    a = canonical_output(result_a)
    b = canonical_output(result_b)
    assert a.shape == b.shape, (
        f"{result_a.algorithm} produced {a.shape[1]} rows, "
        f"{result_b.algorithm} produced {b.shape[1]}"
    )
    assert np.array_equal(a, b), (
        f"{result_a.algorithm} and {result_b.algorithm} disagree on output rows"
    )
