"""Cluster: N nodes plus the network fabric that connects them.

A :class:`Cluster` is the execution context every distributed join runs
in.  It owns the :class:`~repro.cluster.network.Network` (and therefore
the traffic ledger), a :class:`~repro.cluster.node.Node` per machine,
and the :class:`~repro.parallel.executor.PhaseExecutor` that decides
how each phase's per-node work is scheduled (serial by default, thread
workers when ``workers > 1``).  Helper constructors build distributed
tables directly onto the cluster.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Callable, Sequence

import numpy as np

from ..errors import JoinConfigError, ValidationError
from ..parallel.executor import (
    PhaseExecutor,
    resolve_executor,
    run_fused_phases,
    run_phase,
)
from ..storage.schema import Schema
from ..storage.table import DistributedTable
from ..timing.profile import ExecutionProfile
from .network import Network
from .node import Node

__all__ = ["Cluster", "default_pipeline_depth", "PIPELINE_ENV"]

#: Environment variable consulted for the default pipeline depth.
PIPELINE_ENV = "REPRO_PIPELINE"


def default_pipeline_depth() -> int:
    """Pipeline depth new clusters use when none is given.

    Resolution: the ``REPRO_PIPELINE`` environment variable, else 1
    (strict barriers — the reference the golden suites pin).  A
    malformed or non-positive value falls back to 1 with a warning,
    mirroring :func:`repro.parallel.default_workers`.
    """
    env = os.environ.get(PIPELINE_ENV, "").strip()
    if not env:
        return 1
    try:
        depth = int(env)
    except ValueError:
        warnings.warn(
            f"{PIPELINE_ENV}={env!r} is not an integer; "
            "falling back to strict (depth 1) barriers",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1
    if depth < 1:
        warnings.warn(
            f"{PIPELINE_ENV} must be >= 1, got {depth}; "
            "falling back to strict (depth 1) barriers",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1
    return depth


def _check_depth(depth) -> int:
    if isinstance(depth, bool) or not isinstance(depth, int):
        raise ValidationError(f"pipeline depth must be an integer, got {depth!r}")
    if depth < 1:
        raise ValidationError(f"pipeline depth must be >= 1, got {depth}")
    return depth


class Cluster:
    """A fully connected cluster of ``num_nodes`` simulated machines.

    Parameters
    ----------
    workers:
        Worker count for phase execution.  ``None`` uses the process
        default (:func:`repro.parallel.set_default_workers` or the
        ``REPRO_WORKERS`` environment variable, else 1 = serial).
    executor:
        Pre-built executor, overriding ``workers``.
    fault_plan:
        Optional seeded :class:`~repro.faults.plan.FaultPlan`; when
        given (and not null), every join on this cluster runs under
        deterministic fault injection with phase-level recovery.
    pipeline_depth:
        How many consecutive exchange phases a
        :meth:`pipelined_phases` window may fuse under one barrier.
        ``None`` uses :func:`default_pipeline_depth` (the
        ``REPRO_PIPELINE`` environment variable, else 1 = strict
        barriers).  Depth 1 is the byte-exact reference mode; higher
        depths keep ledger sums, inbox order, and join outputs
        identical but may renumber message sequence ids and reorder
        profile steps.
    """

    def __init__(
        self,
        num_nodes: int,
        workers: int | None = None,
        executor: PhaseExecutor | None = None,
        fault_plan=None,
        pipeline_depth: int | None = None,
    ):
        self.network = Network(num_nodes)
        self.nodes = [Node(i) for i in range(num_nodes)]
        self.executor = executor if executor is not None else resolve_executor(workers)
        self.pipeline_depth = (
            default_pipeline_depth() if pipeline_depth is None else _check_depth(pipeline_depth)
        )
        self._deferred: list[tuple] | None = None
        if fault_plan is not None:
            self.network.set_fault_plan(fault_plan)

    def set_fault_plan(self, fault_plan) -> None:
        """Install (or clear, with ``None``) a fault-injection plan."""
        self.network.set_fault_plan(fault_plan)

    @property
    def num_nodes(self) -> int:
        """Number of machines in the cluster."""
        return self.network.num_nodes

    @property
    def workers(self) -> int:
        """Worker count of the cluster's phase executor."""
        return self.executor.workers

    def set_workers(self, workers: int) -> None:
        """Replace the phase executor with one of ``workers`` workers."""
        self.executor.close()
        self.executor = resolve_executor(workers)

    def set_pipeline_depth(self, depth: int) -> None:
        """Set how many phases a :meth:`pipelined_phases` window may fuse."""
        self.pipeline_depth = _check_depth(depth)

    def pipeline_active(self) -> bool:
        """True when pipelined windows actually fuse phases.

        Requires depth > 1 *and* no installed fault plan: the fault
        injector's phase-numbered crash/drop/duplicate schedule assumes
        strict per-phase sequencing, so pipelining silently falls back
        to strict barriers whenever faults are on.
        """
        return self.pipeline_depth > 1 and self.network.faults is None

    def run_phase(
        self,
        fn: Callable[[int], object],
        tasks: Sequence[int] | int | None = None,
        profile: ExecutionProfile | None = None,
        task_nodes: Sequence[int] | None = None,
    ) -> list | None:
        """Run one phase of per-node work on this cluster's executor.

        See :func:`repro.parallel.run_phase`: each task gets a private
        network send lane (and profile lane), committed in task order at
        the closing barrier, so results are deterministic for any worker
        count.  ``task_nodes`` maps task positions to the node each task
        simulates when ``tasks`` is not already one-task-per-node
        (fault-injected crash recovery needs the mapping).

        Inside an active :meth:`pipelined_phases` window the phase is
        *deferred* — buffered and later fused with its neighbours under
        one barrier — and this method returns ``None`` instead of task
        results.  Only call sites that ignore the results may run
        inside such a window.
        """
        if self._deferred is not None:
            self._deferred.append((fn, tasks, profile, task_nodes))
            return None
        return run_phase(self, fn, tasks=tasks, profile=profile, task_nodes=task_nodes)

    @contextmanager
    def pipelined_phases(self):
        """Window that overlaps consecutive exchange phases.

        While the window is open, :meth:`run_phase` calls are buffered;
        on exit they are flushed in windows of at most
        ``pipeline_depth`` consecutive phases (splitting whenever the
        profile object changes), each window running under one shared
        barrier via :func:`repro.parallel.run_fused_phases`.  Phase N's
        sends thus overlap phase N+1's local work, and both commit —
        in original phase order — at the window's single barrier.

        Correctness contract for callers: phases deferred into one
        window must not read each other's results (``run_phase``
        returns ``None`` inside the window) or each other's delivered
        messages (delivery happens at the window barrier).

        When pipelining is inactive (depth 1, a fault plan installed,
        or a window already open) this is a no-op and every phase runs
        strictly.
        """
        if not self.pipeline_active() or self._deferred is not None:
            yield
            return
        deferred: list[tuple] = []
        self._deferred = deferred
        try:
            yield
        except BaseException:
            self._deferred = None
            raise
        self._deferred = None
        self._flush_deferred(deferred)

    def _flush_deferred(self, deferred: list[tuple]) -> None:
        """Run buffered phases in fused windows of ``pipeline_depth``."""
        window: list[tuple] = []
        window_profile: ExecutionProfile | None = None
        for entry in deferred:
            _, _, profile, _ = entry
            if window and (
                len(window) >= self.pipeline_depth or profile is not window_profile
            ):
                self._run_window(window, window_profile)
                window = []
            window.append(entry)
            window_profile = profile
        if window:
            self._run_window(window, window_profile)

    def _run_window(
        self, window: list[tuple], profile: ExecutionProfile | None
    ) -> None:
        if len(window) == 1:
            fn, tasks, profile, task_nodes = window[0]
            run_phase(self, fn, tasks=tasks, profile=profile, task_nodes=task_nodes)
            return
        stages = [(fn, tasks, task_nodes) for fn, tasks, _, task_nodes in window]
        run_fused_phases(self, stages, profile=profile)

    def reset(self) -> None:
        """Clear node scratch state, inboxes, and start a fresh ledger.

        Rewinds the fault injector too (same seed, phase 1 again), so
        every join on a fault-injected cluster — including a degraded
        re-run after :class:`~repro.errors.FaultExhaustedError` — sees
        the identical, reproducible fault sequence.
        """
        for node in self.nodes:
            node.clear()
        self.network.clear_inboxes()
        self.network.reset_ledger()
        if self.network.faults is not None:
            self.network.faults.reset()

    def check_table(self, table: DistributedTable) -> None:
        """Validate that a table is partitioned for this cluster."""
        if table.num_nodes != self.num_nodes:
            raise JoinConfigError(
                f"table {table.name!r} has {table.num_nodes} partitions, "
                f"cluster has {self.num_nodes} nodes"
            )

    def table_from_assignment(
        self,
        name: str,
        schema: Schema,
        keys: np.ndarray,
        node_of_row: np.ndarray,
        columns: dict[str, np.ndarray] | None = None,
    ) -> DistributedTable:
        """Scatter rows onto this cluster (see ``DistributedTable.from_assignment``)."""
        return DistributedTable.from_assignment(
            name, schema, keys, node_of_row, self.num_nodes, columns=columns
        )
