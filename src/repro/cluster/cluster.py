"""Cluster: N nodes plus the network fabric that connects them.

A :class:`Cluster` is the execution context every distributed join runs
in.  It owns the :class:`~repro.cluster.network.Network` (and therefore
the traffic ledger) and a :class:`~repro.cluster.node.Node` per machine.
Helper constructors build distributed tables directly onto the cluster.
"""

from __future__ import annotations

import numpy as np

from ..errors import JoinConfigError
from ..storage.schema import Schema
from ..storage.table import DistributedTable
from .network import Network
from .node import Node

__all__ = ["Cluster"]


class Cluster:
    """A fully connected cluster of ``num_nodes`` simulated machines."""

    def __init__(self, num_nodes: int):
        self.network = Network(num_nodes)
        self.nodes = [Node(i) for i in range(num_nodes)]

    @property
    def num_nodes(self) -> int:
        """Number of machines in the cluster."""
        return self.network.num_nodes

    def reset(self) -> None:
        """Clear node scratch state and start a fresh traffic ledger."""
        for node in self.nodes:
            node.clear()
        self.network.reset_ledger()

    def check_table(self, table: DistributedTable) -> None:
        """Validate that a table is partitioned for this cluster."""
        if table.num_nodes != self.num_nodes:
            raise JoinConfigError(
                f"table {table.name!r} has {table.num_nodes} partitions, "
                f"cluster has {self.num_nodes} nodes"
            )

    def table_from_assignment(
        self,
        name: str,
        schema: Schema,
        keys: np.ndarray,
        node_of_row: np.ndarray,
        columns: dict[str, np.ndarray] | None = None,
    ) -> DistributedTable:
        """Scatter rows onto this cluster (see ``DistributedTable.from_assignment``)."""
        return DistributedTable.from_assignment(
            name, schema, keys, node_of_row, self.num_nodes, columns=columns
        )
