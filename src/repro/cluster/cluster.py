"""Cluster: N nodes plus the network fabric that connects them.

A :class:`Cluster` is the execution context every distributed join runs
in.  It owns the :class:`~repro.cluster.network.Network` (and therefore
the traffic ledger), a :class:`~repro.cluster.node.Node` per machine,
and the :class:`~repro.parallel.executor.PhaseExecutor` that decides
how each phase's per-node work is scheduled (serial by default, thread
workers when ``workers > 1``).  Helper constructors build distributed
tables directly onto the cluster.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import JoinConfigError
from ..parallel.executor import PhaseExecutor, resolve_executor, run_phase
from ..storage.schema import Schema
from ..storage.table import DistributedTable
from ..timing.profile import ExecutionProfile
from .network import Network
from .node import Node

__all__ = ["Cluster"]


class Cluster:
    """A fully connected cluster of ``num_nodes`` simulated machines.

    Parameters
    ----------
    workers:
        Worker count for phase execution.  ``None`` uses the process
        default (:func:`repro.parallel.set_default_workers` or the
        ``REPRO_WORKERS`` environment variable, else 1 = serial).
    executor:
        Pre-built executor, overriding ``workers``.
    fault_plan:
        Optional seeded :class:`~repro.faults.plan.FaultPlan`; when
        given (and not null), every join on this cluster runs under
        deterministic fault injection with phase-level recovery.
    """

    def __init__(
        self,
        num_nodes: int,
        workers: int | None = None,
        executor: PhaseExecutor | None = None,
        fault_plan=None,
    ):
        self.network = Network(num_nodes)
        self.nodes = [Node(i) for i in range(num_nodes)]
        self.executor = executor if executor is not None else resolve_executor(workers)
        if fault_plan is not None:
            self.network.set_fault_plan(fault_plan)

    def set_fault_plan(self, fault_plan) -> None:
        """Install (or clear, with ``None``) a fault-injection plan."""
        self.network.set_fault_plan(fault_plan)

    @property
    def num_nodes(self) -> int:
        """Number of machines in the cluster."""
        return self.network.num_nodes

    @property
    def workers(self) -> int:
        """Worker count of the cluster's phase executor."""
        return self.executor.workers

    def set_workers(self, workers: int) -> None:
        """Replace the phase executor with one of ``workers`` workers."""
        self.executor.close()
        self.executor = resolve_executor(workers)

    def run_phase(
        self,
        fn: Callable[[int], object],
        tasks: Sequence[int] | int | None = None,
        profile: ExecutionProfile | None = None,
        task_nodes: Sequence[int] | None = None,
    ) -> list:
        """Run one phase of per-node work on this cluster's executor.

        See :func:`repro.parallel.run_phase`: each task gets a private
        network send lane (and profile lane), committed in task order at
        the closing barrier, so results are deterministic for any worker
        count.  ``task_nodes`` maps task positions to the node each task
        simulates when ``tasks`` is not already one-task-per-node
        (fault-injected crash recovery needs the mapping).
        """
        return run_phase(self, fn, tasks=tasks, profile=profile, task_nodes=task_nodes)

    def reset(self) -> None:
        """Clear node scratch state, inboxes, and start a fresh ledger.

        Rewinds the fault injector too (same seed, phase 1 again), so
        every join on a fault-injected cluster — including a degraded
        re-run after :class:`~repro.errors.FaultExhaustedError` — sees
        the identical, reproducible fault sequence.
        """
        for node in self.nodes:
            node.clear()
        self.network.clear_inboxes()
        self.network.reset_ledger()
        if self.network.faults is not None:
            self.network.faults.reset()

    def check_table(self, table: DistributedTable) -> None:
        """Validate that a table is partitioned for this cluster."""
        if table.num_nodes != self.num_nodes:
            raise JoinConfigError(
                f"table {table.name!r} has {table.num_nodes} partitions, "
                f"cluster has {self.num_nodes} nodes"
            )

    def table_from_assignment(
        self,
        name: str,
        schema: Schema,
        keys: np.ndarray,
        node_of_row: np.ndarray,
        columns: dict[str, np.ndarray] | None = None,
    ) -> DistributedTable:
        """Scatter rows onto this cluster (see ``DistributedTable.from_assignment``)."""
        return DistributedTable.from_assignment(
            name, schema, keys, node_of_row, self.num_nodes, columns=columns
        )
