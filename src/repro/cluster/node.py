"""A simulated cluster node.

Nodes are deliberately thin: they identify one participant of the
cluster and provide a scratch ``state`` dictionary that join operators
use for per-node intermediate structures (tracking tables, received
fragments, schedules).  All persistent relation data lives in
:class:`~repro.storage.table.DistributedTable` partitions, which the
cluster hands to each node by index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Node"]


@dataclass
class Node:
    """One logical machine of the simulated cluster."""

    index: int
    state: dict[str, Any] = field(default_factory=dict)

    def clear(self) -> None:
        """Drop all scratch state (called between joins)."""
        self.state.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.index} state={list(self.state)}>"
