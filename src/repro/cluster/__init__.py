"""Cluster simulator: nodes, network fabric, and traffic accounting."""

from .cluster import Cluster
from .network import Message, MessageClass, Network, TrafficLedger
from .node import Node

__all__ = ["Cluster", "Network", "Node", "Message", "MessageClass", "TrafficLedger"]
