"""Simulated cluster interconnect with exact per-message byte accounting.

The paper measures distributed joins primarily by the *network traffic*
they generate, broken down by message class (Figures 3-11 stack the bars
as "Keys & Counts", "Keys & Nodes", "R Tuples", "S Tuples").  This module
provides the fabric those experiments run on: every transfer between two
simulated nodes goes through :meth:`Network.send`, which delivers the
payload to the destination inbox and records its encoded size in a
:class:`TrafficLedger`.

Local sends (``src == dst``) are delivered but accounted separately, the
same way the paper's implementation separates "local copy" from "transfer"
steps (Tables 3 and 4).

Concurrent senders
------------------
The parallel engine runs many nodes' phase work at once, so accounting
must stay deterministic under arbitrary thread interleaving.  During an
open *phase* (:meth:`Network.begin_phase`), each task binds its own
:class:`SendLane`: sends are staged into the lane's private message list
and private ledger instead of touching shared state.  The phase barrier
(:meth:`Network.end_phase`) commits lanes in task order — merging lane
ledgers via :meth:`TrafficLedger.merge` and appending staged messages to
the destination inboxes — so byte totals, ``by_link`` entries, and inbox
ordering are bit-identical for every worker count and interleaving.
Messages staged inside a phase only become visible to :meth:`deliver`
after the barrier, which is exactly the paper's non-pipelined phase
semantics.

Zero-copy payloads
------------------
Payloads are handed to :meth:`send` by reference: operators pass numpy
views (e.g. the slices produced by ``LocalPartition.split_by``) and the
network never copies them.  The copy-on-conflict rule: a sender must not
mutate a payload's underlying buffers after handing it to ``send``; a
sender that intends to reuse or mutate the buffers passes ``copy=True``
(or copies itself) so the network materializes a private snapshot at
send time.  Receivers own what they are handed and must likewise treat
it as immutable (they concatenate into fresh arrays when merging).

Fault injection
---------------
With a :class:`~repro.faults.plan.FaultPlan` installed
(:meth:`Network.set_fault_plan`), the phase barrier additionally runs
every committed message through the plan's
:class:`~repro.faults.injector.FaultInjector`: messages may be dropped
(and retransmitted with backoff on a virtual clock), duplicated,
delayed, or reordered within a link, and :meth:`deliver` becomes
idempotent (sequence-number sort plus duplicate elimination).  Goodput
accounting is untouched — recovery overhead lands in the ledger's
separate retransmit counters — and with no plan installed none of these
code paths run at all.
"""

from __future__ import annotations

import enum
import math
import threading
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from ..errors import NetworkError

__all__ = ["MessageClass", "Message", "TrafficLedger", "SendLane", "Network"]


class MessageClass(enum.Enum):
    """Classification of network messages, matching the paper's figures."""

    #: Tracking-phase messages: projected join keys, optionally with
    #: per-node match counts (2TJ sends bare keys; 3TJ/4TJ add counts).
    KEYS_COUNTS = "keys_counts"
    #: Scheduling messages: (key, node) pairs carrying selective-broadcast
    #: destinations or migration targets.
    KEYS_NODES = "keys_nodes"
    #: Tuples of table R (key + R payload).
    R_TUPLES = "r_tuples"
    #: Tuples of table S (key + S payload).
    S_TUPLES = "s_tuples"
    #: Bloom filters broadcast for semi-join reduction (Section 3.3).
    FILTER = "filter"
    #: Record-identifier messages of the tracking-aware hash join (Sec 3.2).
    RIDS = "rids"
    #: Partial aggregates exchanged by distributed group-by operators.
    AGGREGATES = "aggregates"


@dataclass
class Message:
    """A single delivered message.

    Attributes
    ----------
    src, dst:
        Node indices.
    category:
        The :class:`MessageClass` the bytes are accounted under.
    nbytes:
        Encoded wire size.  May be fractional: dictionary encodings are
        accounted at bit granularity (e.g. a 30-bit key is 3.75 bytes),
        exactly as the paper's simulations do.
    payload:
        Arbitrary python/numpy content consumed by the receiving operator.
        Handed over zero-copy; see the module notes for the
        copy-on-conflict rule.
    seq:
        Globally monotonic sequence number, assigned by the network in
        deterministic commit order (immediate sends at send time, staged
        sends at the barrier in lane order).  Fault-free inbox order is
        always ascending in ``seq``, which is what lets the fault
        injector's receivers (:mod:`repro.faults`) restore exact
        fault-free delivery order by sorting and dedup duplicates
        idempotently.  ``-1`` until committed.
    """

    src: int
    dst: int
    category: MessageClass
    nbytes: float
    payload: Any
    seq: int = -1


@dataclass
class TrafficLedger:
    """Byte counters aggregated by message class and by (src, dst) link.

    Goodput (first-transmission) bytes live in ``by_class``/``by_link``;
    recovery overhead — retransmissions and wire duplicates injected by
    a :class:`~repro.faults.plan.FaultPlan` — is accounted separately in
    ``retransmit_by_class``, so fault-injected runs keep a goodput
    ledger byte-identical to the fault-free run while the recovery cost
    stays measurable alongside the paper's byte breakdowns.  On the
    fault-free fast path the retransmit counters are provably zero
    (nothing ever records into them).
    """

    by_class: dict[MessageClass, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    by_link: dict[tuple[int, int], float] = field(default_factory=lambda: defaultdict(float))
    sent_by_node: dict[int, float] = field(default_factory=lambda: defaultdict(float))
    received_by_node: dict[int, float] = field(default_factory=lambda: defaultdict(float))
    local_bytes: float = 0.0
    message_count: int = 0
    retransmit_by_class: dict[MessageClass, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    retransmit_count: int = 0

    def record(self, msg: Message) -> None:
        """Account one message; local messages only bump ``local_bytes``."""
        self.message_count += 1
        if msg.src == msg.dst:
            self.local_bytes += msg.nbytes
            return
        self.by_class[msg.category] += msg.nbytes
        self.by_link[(msg.src, msg.dst)] += msg.nbytes
        self.sent_by_node[msg.src] += msg.nbytes
        self.received_by_node[msg.dst] += msg.nbytes

    def record_retransmit(self, category: MessageClass, nbytes: float) -> None:
        """Account one retransmitted (or duplicated) wire copy.

        Kept apart from :meth:`record`: retransmissions are recovery
        overhead, not goodput, and must never perturb ``total_bytes``
        or the per-class breakdowns the paper's figures compare.
        """
        self.retransmit_by_class[category] += nbytes
        self.retransmit_count += 1

    @property
    def total_bytes(self) -> float:
        """Total bytes that crossed the network (local copies excluded)."""
        return float(sum(self.by_class.values()))

    @property
    def retransmit_bytes(self) -> float:
        """Recovery overhead bytes (retransmissions and duplicates)."""
        return float(sum(self.retransmit_by_class.values()))

    @property
    def max_received_bytes(self) -> float:
        """Goodput bytes received by the most loaded node.

        The skew metric of Section 5: minimal total traffic can still
        concentrate transfers on one node; this is the concentration.
        """
        return float(max(self.received_by_node.values(), default=0.0))

    @property
    def max_sent_bytes(self) -> float:
        """Goodput bytes sent by the most loaded node."""
        return float(max(self.sent_by_node.values(), default=0.0))

    def class_bytes(self, category: MessageClass) -> float:
        """Bytes accounted under one message class."""
        return float(self.by_class.get(category, 0.0))

    def breakdown(self) -> dict[str, float]:
        """Human-readable byte breakdown keyed by message-class value."""
        return {c.value: float(self.by_class.get(c, 0.0)) for c in MessageClass}

    def retransmit_breakdown(self) -> dict[str, float]:
        """Recovery-overhead bytes keyed by message-class value."""
        return {
            c.value: float(self.retransmit_by_class.get(c, 0.0)) for c in MessageClass
        }

    def merge(self, other: "TrafficLedger") -> "TrafficLedger":
        """Accumulate ``other`` into this ledger in place; returns ``self``.

        Merging is order-insensitive for the dyadic-rational sizes the
        encodings produce (all sums are exact in float64), which is what
        lets the phase barrier combine per-worker ledgers into totals
        identical to a serial run.
        """
        for category, nbytes in other.by_class.items():
            self.by_class[category] += nbytes
        for link, nbytes in other.by_link.items():
            self.by_link[link] += nbytes
        for node, nbytes in other.sent_by_node.items():
            self.sent_by_node[node] += nbytes
        for node, nbytes in other.received_by_node.items():
            self.received_by_node[node] += nbytes
        self.local_bytes += other.local_bytes
        self.message_count += other.message_count
        for category, nbytes in other.retransmit_by_class.items():
            self.retransmit_by_class[category] += nbytes
        self.retransmit_count += other.retransmit_count
        return self

    def merged_with(self, other: "TrafficLedger") -> "TrafficLedger":
        """Return a new ledger combining this one and ``other``."""
        return TrafficLedger().merge(self).merge(other)


class SendLane:
    """Per-task staging buffer used while a network phase is open.

    A lane collects one task's outgoing messages and their byte
    accounting privately, so concurrent tasks never contend on shared
    state; the phase barrier commits lanes in task order.
    """

    __slots__ = ("messages", "ledger")

    def __init__(self) -> None:
        self.messages: list[Message] = []
        self.ledger = TrafficLedger()


class Network:
    """Message fabric connecting ``num_nodes`` simulated nodes.

    The fabric is symmetric and fully connected (every node can send to
    all others, all links have the same performance), mirroring the
    cluster assumptions of Section 2.  Operators send with :meth:`send`
    and drain destination inboxes at phase boundaries with
    :meth:`deliver`, which mimics the barrier-synchronised, non-pipelined
    implementation the paper evaluates in Section 4.2.
    """

    def __init__(self, num_nodes: int):
        if num_nodes <= 0:
            raise NetworkError(f"a cluster needs at least one node, got {num_nodes}")
        self.num_nodes = num_nodes
        self.ledger = TrafficLedger()
        self._inboxes: list[list[Message]] = [[] for _ in range(num_nodes)]
        self._phase_lanes: list[SendLane] | None = None
        self._tls = threading.local()
        #: Active fault injector, or ``None`` for the fault-free fast
        #: path (which stays byte-for-byte the pre-fault code path).
        self.faults = None
        self._next_seq = 0

    def set_fault_plan(self, plan) -> None:
        """Install (or clear, with ``None``) a seeded fault-injection plan.

        A null plan (``plan.is_null()``) installs no injector: the
        fault-free fast path must stay untouched so golden-equivalence
        ledgers remain byte-identical.
        """
        if plan is None or plan.is_null():
            self.faults = None
            return
        from ..faults.injector import FaultInjector

        self.faults = FaultInjector(plan)

    def _assign_seq(self, msg: Message) -> None:
        """Stamp the next global sequence number (commit order)."""
        msg.seq = self._next_seq
        self._next_seq += 1

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise NetworkError(
                f"node index {node} out of range for {self.num_nodes}-node cluster"
            )

    # -- phases and lanes ------------------------------------------------

    def begin_phase(self, num_lanes: int) -> list[SendLane]:
        """Open a phase with ``num_lanes`` staging lanes (one per task).

        While the phase is open, sends from a thread bound to a lane
        (:meth:`bind_lane`) are staged in that lane; unbound sends (the
        coordinating thread) keep immediate semantics, which is safe
        because the coordinator is single-threaded and runs at fixed
        points relative to the barrier.
        """
        if self._phase_lanes is not None:
            raise NetworkError("a network phase is already open (missing barrier?)")
        self._phase_lanes = [SendLane() for _ in range(num_lanes)]
        if self.faults is not None:
            self.faults.begin_phase()
        return self._phase_lanes

    @contextmanager
    def bind_lane(self, lane: SendLane):
        """Route this thread's sends into ``lane`` for the duration."""
        previous = getattr(self._tls, "lane", None)
        self._tls.lane = lane
        try:
            yield lane
        finally:
            self._tls.lane = previous

    def end_phase(self) -> None:
        """Barrier: commit all lanes in task order and close the phase.

        Lane ledgers merge into the master ledger and staged messages
        append to the destination inboxes, both in lane (= task) order,
        making the committed state independent of execution order.
        """
        lanes = self._phase_lanes
        if lanes is None:
            raise NetworkError("no network phase is open")
        self._phase_lanes = None
        if self.faults is None:
            for lane in lanes:
                self.ledger.merge(lane.ledger)
                for msg in lane.messages:
                    self._assign_seq(msg)
                    self._inboxes[msg.dst].append(msg)
            return
        # Fault-injected barrier: goodput accounting is identical (lane
        # ledgers merge unchanged), then every destination's staged
        # batch runs through the injector on this (coordinator) thread
        # in deterministic lane order, so drops, retransmissions,
        # duplicates, and reorders are bit-identical across worker
        # counts.  A retry budget exhaustion raises FaultExhaustedError
        # with the phase already closed; callers unwind via abort_phase.
        staged: dict[int, list[Message]] = {}
        for lane in lanes:
            self.ledger.merge(lane.ledger)
            for msg in lane.messages:
                self._assign_seq(msg)
                staged.setdefault(msg.dst, []).append(msg)
        for dst in sorted(staged):
            self._inboxes[dst].extend(
                self.faults.commit_batch(dst, staged[dst], self.ledger)
            )
        self.faults.barrier()

    def abort_phase(self) -> None:
        """Discard all staged lanes (error path; accounting unwinds)."""
        self._phase_lanes = None

    # -- sending ---------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        category: MessageClass,
        nbytes: float,
        payload: Any = None,
    ) -> None:
        """Send one message from ``src`` to ``dst`` and account its size.

        The payload is handed over zero-copy (see the module notes for
        the copy-on-conflict rule).  Inside an open phase with a bound
        lane, the message is staged and becomes visible at the barrier.
        """
        self._check_node(src)
        self._check_node(dst)
        if not math.isfinite(nbytes) or nbytes < 0:
            raise NetworkError(
                f"message size must be finite and non-negative, got {nbytes}"
            )
        msg = Message(src=src, dst=dst, category=category, nbytes=float(nbytes), payload=payload)
        lane: SendLane | None = getattr(self._tls, "lane", None)
        if lane is not None:
            lane.ledger.record(msg)
            lane.messages.append(msg)
            return
        self.ledger.record(msg)
        self._assign_seq(msg)
        if self.faults is not None and src != dst:
            # Immediate (coordinator) sends run the fault model at send
            # time; the coordinator is single-threaded, so draw order
            # stays deterministic.
            self._inboxes[dst].extend(self.faults.transmit(msg, self.ledger))
            return
        self._inboxes[dst].append(msg)

    def send_batches(
        self,
        src: int,
        category: MessageClass,
        batches: Sequence[Any],
        width: float,
        copy: bool = False,
    ) -> list[tuple[int, float]]:
        """Coalesced per-destination send of one scatter's batch list.

        ``batches`` is indexed by destination (the shape produced by
        ``LocalPartition.split_by``); ``None`` entries are skipped and
        each remaining batch becomes exactly one message of
        ``batch.num_rows * width`` bytes.  Payloads are handed off as
        zero-copy views unless ``copy=True``, which snapshots each batch
        for senders that will mutate the underlying buffers afterwards
        (the copy-on-conflict rule).

        Returns ``(dst, nbytes)`` for every message sent, in destination
        order, so callers can account profile work without re-deriving
        sizes.
        """
        sent: list[tuple[int, float]] = []
        for dst, batch in enumerate(batches):
            if batch is None:
                continue
            nbytes = batch.num_rows * width
            self.send(src, dst, category, nbytes, payload=batch.copy() if copy else batch)
            sent.append((dst, nbytes))
        return sent

    # -- delivery --------------------------------------------------------

    def deliver(self, dst: int) -> list[Message]:
        """Drain and return all messages queued for node ``dst``.

        Called by operators at a barrier: everything sent during the
        preceding phase becomes visible at once.  Messages still staged
        in an open phase's lanes are not included — they appear after
        :meth:`end_phase`.  Concurrent delivery is safe for distinct
        destinations (each inbox belongs to one node's task).

        Under an active fault plan, delivery is idempotent: the drained
        messages are sorted by sequence number (restoring exact
        fault-free arrival order after reorders and requeues) and wire
        duplicates are dropped.
        """
        self._check_node(dst)
        messages, self._inboxes[dst] = self._inboxes[dst], []
        if self.faults is not None and messages:
            messages = self.faults.dedup_and_order(messages)
        return messages

    def deliver_all(self) -> Iterator[tuple[int, list[Message]]]:
        """Drain every inbox, yielding ``(node, messages)`` pairs."""
        for node in range(self.num_nodes):
            messages = self.deliver(node)
            if messages:
                yield node, messages

    def requeue(self, dst: int, messages: Sequence[Message]) -> None:
        """Put selectively-drained messages back on ``dst``'s inbox tail.

        For receivers that :meth:`deliver` a full inbox but consume only
        one message category: undrained messages return through this
        accessor instead of the private inbox list, so the REP003 lint
        rule can hold everything else to the SendLane staging contract.
        Requeued messages were already accounted when first sent.
        """
        self._check_node(dst)
        self._inboxes[dst].extend(messages)

    def clear_inboxes(self) -> int:
        """Discard every undelivered message; returns how many were dropped.

        Recovery hook: after a join aborts mid-phase (e.g. a
        :class:`~repro.errors.FaultExhaustedError` escaped the retry
        budget), committed-but-undrained messages linger in the inboxes.
        ``Cluster.reset`` calls this so the next join — including an
        optimizer's degraded fallback run — starts from a clean fabric.
        """
        dropped = 0
        for inbox in self._inboxes:
            dropped += len(inbox)
            inbox.clear()
        return dropped

    def pending_messages(self) -> int:
        """Number of sent-but-undelivered messages (should be 0 after a join).

        Counts both committed inbox messages and messages staged in an
        open phase's lanes.
        """
        pending = sum(len(inbox) for inbox in self._inboxes)
        if self._phase_lanes is not None:
            pending += sum(len(lane.messages) for lane in self._phase_lanes)
        return pending

    def reset_ledger(self) -> TrafficLedger:
        """Swap in a fresh ledger and return the old one.

        Refuses while a phase is open: the old ledger would be missing
        the staged lanes' bytes.
        """
        if self._phase_lanes is not None:
            raise NetworkError("cannot reset the ledger while a phase is open")
        old, self.ledger = self.ledger, TrafficLedger()
        return old
