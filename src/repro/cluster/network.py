"""Simulated cluster interconnect with exact per-message byte accounting.

The paper measures distributed joins primarily by the *network traffic*
they generate, broken down by message class (Figures 3-11 stack the bars
as "Keys & Counts", "Keys & Nodes", "R Tuples", "S Tuples").  This module
provides the fabric those experiments run on: every transfer between two
simulated nodes goes through :meth:`Network.send`, which delivers the
payload to the destination inbox and records its encoded size in a
:class:`TrafficLedger`.

Local sends (``src == dst``) are delivered but accounted separately, the
same way the paper's implementation separates "local copy" from "transfer"
steps (Tables 3 and 4).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import NetworkError

__all__ = ["MessageClass", "Message", "TrafficLedger", "Network"]


class MessageClass(enum.Enum):
    """Classification of network messages, matching the paper's figures."""

    #: Tracking-phase messages: projected join keys, optionally with
    #: per-node match counts (2TJ sends bare keys; 3TJ/4TJ add counts).
    KEYS_COUNTS = "keys_counts"
    #: Scheduling messages: (key, node) pairs carrying selective-broadcast
    #: destinations or migration targets.
    KEYS_NODES = "keys_nodes"
    #: Tuples of table R (key + R payload).
    R_TUPLES = "r_tuples"
    #: Tuples of table S (key + S payload).
    S_TUPLES = "s_tuples"
    #: Bloom filters broadcast for semi-join reduction (Section 3.3).
    FILTER = "filter"
    #: Record-identifier messages of the tracking-aware hash join (Sec 3.2).
    RIDS = "rids"
    #: Partial aggregates exchanged by distributed group-by operators.
    AGGREGATES = "aggregates"


@dataclass
class Message:
    """A single delivered message.

    Attributes
    ----------
    src, dst:
        Node indices.
    category:
        The :class:`MessageClass` the bytes are accounted under.
    nbytes:
        Encoded wire size.  May be fractional: dictionary encodings are
        accounted at bit granularity (e.g. a 30-bit key is 3.75 bytes),
        exactly as the paper's simulations do.
    payload:
        Arbitrary python/numpy content consumed by the receiving operator.
    """

    src: int
    dst: int
    category: MessageClass
    nbytes: float
    payload: Any


@dataclass
class TrafficLedger:
    """Byte counters aggregated by message class and by (src, dst) link."""

    by_class: dict[MessageClass, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    by_link: dict[tuple[int, int], float] = field(default_factory=lambda: defaultdict(float))
    sent_by_node: dict[int, float] = field(default_factory=lambda: defaultdict(float))
    received_by_node: dict[int, float] = field(default_factory=lambda: defaultdict(float))
    local_bytes: float = 0.0
    message_count: int = 0

    def record(self, msg: Message) -> None:
        """Account one message; local messages only bump ``local_bytes``."""
        self.message_count += 1
        if msg.src == msg.dst:
            self.local_bytes += msg.nbytes
            return
        self.by_class[msg.category] += msg.nbytes
        self.by_link[(msg.src, msg.dst)] += msg.nbytes
        self.sent_by_node[msg.src] += msg.nbytes
        self.received_by_node[msg.dst] += msg.nbytes

    @property
    def total_bytes(self) -> float:
        """Total bytes that crossed the network (local copies excluded)."""
        return float(sum(self.by_class.values()))

    def class_bytes(self, category: MessageClass) -> float:
        """Bytes accounted under one message class."""
        return float(self.by_class.get(category, 0.0))

    def breakdown(self) -> dict[str, float]:
        """Human-readable byte breakdown keyed by message-class value."""
        return {c.value: float(self.by_class.get(c, 0.0)) for c in MessageClass}

    def merged_with(self, other: "TrafficLedger") -> "TrafficLedger":
        """Return a new ledger combining this one and ``other``."""
        merged = TrafficLedger()
        for ledger in (self, other):
            for category, nbytes in ledger.by_class.items():
                merged.by_class[category] += nbytes
            for link, nbytes in ledger.by_link.items():
                merged.by_link[link] += nbytes
            for node, nbytes in ledger.sent_by_node.items():
                merged.sent_by_node[node] += nbytes
            for node, nbytes in ledger.received_by_node.items():
                merged.received_by_node[node] += nbytes
            merged.local_bytes += ledger.local_bytes
            merged.message_count += ledger.message_count
        return merged


class Network:
    """Message fabric connecting ``num_nodes`` simulated nodes.

    The fabric is symmetric and fully connected (every node can send to
    all others, all links have the same performance), mirroring the
    cluster assumptions of Section 2.  Operators send with :meth:`send`
    and drain destination inboxes at phase boundaries with
    :meth:`deliver`, which mimics the barrier-synchronised, non-pipelined
    implementation the paper evaluates in Section 4.2.
    """

    def __init__(self, num_nodes: int):
        if num_nodes <= 0:
            raise NetworkError(f"a cluster needs at least one node, got {num_nodes}")
        self.num_nodes = num_nodes
        self.ledger = TrafficLedger()
        self._inboxes: list[list[Message]] = [[] for _ in range(num_nodes)]

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise NetworkError(
                f"node index {node} out of range for {self.num_nodes}-node cluster"
            )

    def send(
        self,
        src: int,
        dst: int,
        category: MessageClass,
        nbytes: float,
        payload: Any = None,
    ) -> None:
        """Send one message from ``src`` to ``dst`` and account its size."""
        self._check_node(src)
        self._check_node(dst)
        if nbytes < 0:
            raise NetworkError(f"message size must be non-negative, got {nbytes}")
        msg = Message(src=src, dst=dst, category=category, nbytes=float(nbytes), payload=payload)
        self.ledger.record(msg)
        self._inboxes[dst].append(msg)

    def deliver(self, dst: int) -> list[Message]:
        """Drain and return all messages queued for node ``dst``.

        Called by operators at a barrier: everything sent during the
        preceding phase becomes visible at once.
        """
        self._check_node(dst)
        messages, self._inboxes[dst] = self._inboxes[dst], []
        return messages

    def deliver_all(self) -> Iterator[tuple[int, list[Message]]]:
        """Drain every inbox, yielding ``(node, messages)`` pairs."""
        for node in range(self.num_nodes):
            messages = self.deliver(node)
            if messages:
                yield node, messages

    def pending_messages(self) -> int:
        """Number of sent-but-undelivered messages (should be 0 after a join)."""
        return sum(len(inbox) for inbox in self._inboxes)

    def reset_ledger(self) -> TrafficLedger:
        """Swap in a fresh ledger and return the old one."""
        old, self.ledger = self.ledger, TrafficLedger()
        return old
