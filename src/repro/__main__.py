"""Command-line entry point: reproduce paper experiments.

Usage::

    python -m repro list                 # show registered experiments
    python -m repro fig3                 # run one experiment
    python -m repro fig4 bars=1          # render as ASCII stacked bars
    python -m repro all                  # run everything (slow)
    python -m repro bench-smoke          # tiny perf gate -> BENCH_joins.json
    python -m repro bench-scaling        # 1->N worker scaling curve
    python -m repro bench-skew           # skew ablation: 4TJ vs sharded 4TJ
    python -m repro serve-bench          # concurrent query-service throughput
    python -m repro lint                 # REP static analysis over src/repro
    python -m repro lint --dataflow      # + whole-package REP007-REP011 pass
    python -m repro lint src tests format=json
    python -m repro lint --dataflow --format sarif --no-cache
    python -m repro chaos --seed 3       # fault-injection matrix, one seed
    python -m repro chaos seeds=0,1,2 workers=1,4

Options after the experiment id are forwarded as ``key=value`` pairs,
e.g. ``python -m repro fig3 scaled_tuples=50000``; any other trailing
argument is an error (exit code 2).  The special ``workers=N`` option
sets the default worker count for phase execution (equivalent to the
``REPRO_WORKERS`` environment variable).

``lint`` instead treats bare arguments as files/directories to scan
(default ``src/repro``) and accepts ``--dataflow``, ``--format
text|json|sarif``, ``--baseline FILE``, ``--write-baseline FILE``, and
``--no-cache`` (each also spellable as ``key=value``).
"""

from __future__ import annotations

import sys

from .experiments import EXPERIMENTS, render, render_bars, run_experiment

#: Every non-experiment subcommand with its one-line description, in
#: help order.  Experiment ids (``python -m repro list``) are accepted
#: as commands too; anything else exits 2 with this table.
SUBCOMMANDS: dict[str, str] = {
    "list": "show every registered experiment id",
    "all": "run every registered experiment (slow)",
    "<experiment-id>": "run one experiment (e.g. fig3; add bars=1 for ASCII bars)",
    "bench-smoke": "tiny-scale perf + chaos gate, writes BENCH_joins.json",
    "bench-scaling": "1->N worker scaling curve, merged into BENCH_joins.json",
    "bench-skew": "4TJ vs sharded 4TJ on a hot-key workload, merged into BENCH_joins.json",
    "serve-bench": "concurrent query-service throughput vs one-at-a-time baseline",
    "lint": (
        "REP static analysis (paths..., --dataflow, --format text|json|sarif, "
        "--baseline FILE, --write-baseline FILE, --no-cache)"
    ),
    "chaos": "seeded fault-injection matrix (seed=N, seeds=0,1, workers=1,4)",
    "help": "show this help",
}


def _render_subcommands() -> str:
    width = max(len(name) for name in SUBCOMMANDS)
    return "\n".join(
        f"  {name:<{width}}  {description}"
        for name, description in SUBCOMMANDS.items()
    )


def _parse_value(raw: str):
    for caster in (int, float):
        try:
            return caster(raw)
        except ValueError:
            continue
    return raw


#: Lint flags that take no value.
_LINT_FLAGS = {"--dataflow": "dataflow", "--no-cache": "no-cache"}
#: Lint flags whose value is the next argument (``--format sarif``).
_LINT_VALUED = {
    "--format": "format",
    "--baseline": "baseline",
    "--write-baseline": "write-baseline",
    "--cache-dir": "cache-dir",
}


def _run_lint(args: list[str]) -> int:
    """The ``lint`` subcommand: REP static analysis.

    Bare arguments are files/directories to scan (default
    ``src/repro``).  ``--dataflow`` adds the whole-package REP007–REP011
    pass; ``--format text|json|sarif`` selects the reporter;
    ``--baseline FILE`` absorbs grandfathered findings;
    ``--write-baseline FILE`` records the current findings and exits 0;
    ``--no-cache`` disables the ``.repro-lint-cache/`` result cache
    (``--cache-dir DIR`` relocates it).  ``key=value`` spellings of the
    same options are accepted.  Exit codes: 0 clean, 1 findings, 2
    malformed invocation.
    """
    from .analysis import DEFAULT_TARGET, lint_paths, write_baseline
    from .errors import AnalysisError

    paths: list[str] = []
    options: dict[str, str] = {}
    booleans: set[str] = set()
    position = 0
    while position < len(args):
        arg = args[position]
        if arg in _LINT_FLAGS:
            booleans.add(_LINT_FLAGS[arg])
            position += 1
        elif arg in _LINT_VALUED and position + 1 < len(args):
            options[_LINT_VALUED[arg]] = args[position + 1]
            position += 2
        elif arg.startswith("--") and "=" in arg:
            key, value = arg[2:].split("=", 1)
            options[key] = value
            position += 1
        elif "=" in arg and not arg.startswith("-"):
            key, value = arg.split("=", 1)
            options[key] = value
            position += 1
        elif arg.startswith("-"):
            print(f"error: unknown lint option {arg!r}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
            position += 1

    truthy = ("1", "true", "yes", "on")
    fmt = options.pop("format", "text")
    baseline = options.pop("baseline", None)
    write_to = options.pop("write-baseline", options.pop("write_baseline", None))
    cache_dir = options.pop("cache-dir", options.pop("cache_dir", ".repro-lint-cache"))
    dataflow = "dataflow" in booleans or str(
        options.pop("dataflow", "")
    ).lower() in truthy
    no_cache = "no-cache" in booleans or str(
        options.pop("no-cache", options.pop("no_cache", ""))
    ).lower() in truthy
    if options:
        print(f"error: unknown lint option(s): {sorted(options)}", file=sys.stderr)
        return 2
    if fmt not in ("text", "json", "sarif"):
        print(
            f"error: format must be 'text', 'json', or 'sarif', got {fmt!r}",
            file=sys.stderr,
        )
        return 2
    try:
        report = lint_paths(
            paths or [DEFAULT_TARGET],
            dataflow=dataflow,
            baseline=baseline,
            cache_dir=None if no_cache else cache_dir,
        )
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if write_to is not None:
        write_baseline(report, write_to)
        print(f"wrote {len(report.diagnostics)} finding(s) to baseline {write_to}")
        return 0
    if fmt == "json":
        print(report.render_json())
    elif fmt == "sarif":
        print(report.render_sarif())
    else:
        print(report.render_text())
    return 0 if report.clean else 1


def _run_chaos(args: list[str]) -> int:
    """The ``chaos`` subcommand: seeded fault-injection matrix.

    Accepts ``seed=N`` / ``--seed N`` (one seed), ``seeds=0,1,2``,
    ``nodes=N``, and ``workers=1,4`` (the worker counts of the matrix).
    Exits 1 when any run violates the row-identical-output or
    goodput-ledger invariant, 2 on malformed options.
    """
    from .faults.chaos import DEFAULT_SEEDS, run_chaos

    normalized: list[str] = []
    position = 0
    while position < len(args):
        arg = args[position]
        if arg.startswith("--") and "=" not in arg and position + 1 < len(args):
            normalized.append(f"{arg[2:]}={args[position + 1]}")
            position += 2
            continue
        normalized.append(arg.lstrip("-"))
        position += 1
    malformed = [arg for arg in normalized if "=" not in arg]
    if malformed:
        print(
            f"error: unrecognized chaos argument {malformed[0]!r}; "
            "use seed=N, seeds=0,1,2, nodes=N, workers=1,4",
            file=sys.stderr,
        )
        return 2
    options = dict(arg.split("=", 1) for arg in normalized)
    try:
        if "seed" in options:
            seeds: tuple[int, ...] = (int(options.pop("seed")),)
        elif "seeds" in options:
            seeds = tuple(int(seed) for seed in options.pop("seeds").split(","))
        else:
            seeds = DEFAULT_SEEDS
        num_nodes = int(options.pop("nodes", 4))
        worker_counts = tuple(
            int(workers) for workers in str(options.pop("workers", "1")).split(",")
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if options:
        print(f"error: unknown chaos option(s): {sorted(options)}", file=sys.stderr)
        return 2
    report = run_chaos(seeds=seeds, num_nodes=num_nodes, worker_counts=worker_counts)
    print(
        f"chaos: {report['runs']} runs over seeds {report['seeds']} "
        f"x workers {report['worker_counts']} "
        f"({len(report['algorithms'])} algorithms, {num_nodes} nodes)"
    )
    faults = report["faults"]
    print(
        f"faults injected: {faults.get('faults_injected', 0):.0f} "
        f"(crashes: {faults.get('crashes', 0):.0f}, "
        f"restarts: {faults.get('restarts', 0):.0f}); "
        f"retransmitted: {report['retransmit_bytes']:.0f} bytes"
    )
    for failure in report["failures"]:
        print(f"FAIL {failure}", file=sys.stderr)
    print("ok" if report["ok"] else "FAILED")
    return 0 if report["ok"] else 1


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help", "help"):
        print(__doc__)
        print("Subcommands:\n" + _render_subcommands())
        return 0
    command = argv[0]
    if command == "lint":
        return _run_lint(argv[1:])
    if command == "chaos":
        return _run_chaos(argv[1:])
    if command not in SUBCOMMANDS and command not in EXPERIMENTS:
        print(
            f"error: unknown subcommand {command!r}; available subcommands:\n"
            + _render_subcommands(),
            file=sys.stderr,
        )
        return 2
    malformed = [arg for arg in argv[1:] if "=" not in arg]
    if malformed:
        print(
            f"error: unrecognized argument {malformed[0]!r}; "
            "options must be key=value pairs",
            file=sys.stderr,
        )
        return 2
    kwargs = dict(pair.split("=", 1) for pair in argv[1:])
    kwargs = {key: _parse_value(value) for key, value in kwargs.items()}
    if "workers" in kwargs:
        from .errors import ValidationError
        from .parallel import set_default_workers

        try:
            set_default_workers(kwargs.pop("workers"))
        except ValidationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if command == "bench-smoke":
        from .perf import bench_smoke

        return bench_smoke(**kwargs)
    if command == "bench-scaling":
        from .perf import bench_scaling_report

        return bench_scaling_report(**kwargs)
    if command == "bench-skew":
        from .perf import bench_skew_report

        return bench_skew_report(**kwargs)
    if command == "serve-bench":
        from .serve import bench_serve_report

        return bench_serve_report(**kwargs)
    if command == "list":
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0
    if command == "all":
        for experiment_id in EXPERIMENTS:
            print(render(run_experiment(experiment_id)))
            print()
        return 0
    as_bars = bool(kwargs.pop("bars", False))
    try:
        result = run_experiment(command, **kwargs)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(render_bars(result) if as_bars else render(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
