"""The fault injector: applies a :class:`FaultPlan` at phase barriers.

One injector instance attaches to a :class:`~repro.cluster.network.Network`
(via ``Network.set_fault_plan``) and implements the delivery protocol the
exchange layer relies on:

Sequence numbers and idempotent delivery
    Every committed message carries a globally monotonic sequence
    number (assigned by the network in deterministic barrier order).
    Receivers restore fault-free arrival order by sorting on it and
    drop duplicate sequence numbers, so duplication, reordering, and
    retransmission are all invisible to operator logic.

Barrier acks and retransmission
    A dropped or delayed message misses its ack at the phase barrier;
    the sender retransmits with capped exponential backoff charged to a
    *virtual* clock (no wall time anywhere — REP002 stays clean).  Each
    retransmission is accounted in the ledger's separate retransmit
    counters, never in the goodput byte classes, so the goodput ledger
    of a faulty run stays byte-identical to the fault-free run.  Past
    ``max_retries`` the sender raises
    :class:`~repro.errors.FaultExhaustedError` instead of hanging.

Crashes and stragglers
    Crashes are fail-stop at phase entry (:meth:`maybe_crash` raises
    :class:`~repro.errors.NodeCrashError` before the node's phase task
    runs, so no partial side effects exist to roll back); the phase
    supervisor in :func:`repro.parallel.run_phase` restarts the node
    and re-executes its work from the last barrier.  Stragglers charge
    their delay to the virtual clock at the barrier.

Determinism
    All message-level draws happen on the coordinator thread, in
    barrier commit order, from one sequential RNG seeded by the plan;
    crash draws use substreams keyed by ``(seed, phase, node, attempt)``.
    Fault sequences are therefore bit-identical across worker counts.
"""

from __future__ import annotations

import threading

import numpy as np

from ..cluster.network import Message, TrafficLedger
from ..errors import FaultExhaustedError, NodeCrashError
from .plan import FaultPlan, FaultStats

__all__ = ["FaultInjector"]

#: Substream tag separating crash draws from the sequential message RNG.
_CRASH_STREAM = 0xC0A5


class FaultInjector:
    """Applies one :class:`FaultPlan` to a network's message flow."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.stats = FaultStats()
        #: Virtual clock (seconds): backoff and straggler time accumulates
        #: here; nothing in this package ever reads a wall clock.
        self.clock = 0.0
        #: 1-based barrier counter; phase ``p`` is the ``p``-th
        #: ``begin_phase`` since the last :meth:`reset`.
        self.phase = 0
        self._rng = np.random.default_rng(plan.seed)
        self._lock = threading.Lock()
        #: (node, phase) -> entry attempts, for scripted-crash consumption
        #: and the keyed probabilistic crash substream.
        self._crash_attempts: dict[tuple[int, int], int] = {}

    # -- lifecycle -------------------------------------------------------

    def reset(self) -> None:
        """Rewind to the start of a join (called by ``Cluster.reset``).

        Reseeds the sequential RNG and rewinds the phase counter so
        every join on the cluster sees the identical fault sequence;
        cumulative counters (stats, virtual clock) are preserved so a
        chaos run can report recovery cost across joins.
        """
        self.phase = 0
        self._rng = np.random.default_rng(self.plan.seed)
        with self._lock:
            self._crash_attempts.clear()

    def begin_phase(self) -> None:
        """Advance the barrier counter (one call per ``Network.begin_phase``)."""
        self.phase += 1

    def barrier(self) -> None:
        """Apply this phase's straggler events to the virtual clock.

        The barrier waits for the slowest node, so concurrent
        stragglers cost the maximum of their delays, not the sum.
        """
        fired = [
            event for event in self.plan.stragglers if event.phase == self.phase
        ]
        if fired:
            delay = max(event.delay for event in fired)
            # stats is also mutated from task threads (dedup, crashes)
            # under the lock; coordinator-side updates take it too so
            # every access shape shares the guard (REP009).
            with self._lock:
                self.stats.stragglers += len(fired)
                self.clock += delay
                self.stats.virtual_time += delay

    # -- message protocol (coordinator thread only) ----------------------

    def _retransmit(self, msg: Message, retry: int, ledger: TrafficLedger) -> None:
        """Account one retransmission: bytes, retry count, backoff time."""
        backoff = min(self.plan.backoff_cap, self.plan.backoff_base * 2 ** (retry - 1))
        with self._lock:
            self.stats.retries += 1
            self.stats.retransmit_bytes += msg.nbytes
            self.clock += backoff
            self.stats.virtual_time += backoff
        ledger.record_retransmit(msg.category, msg.nbytes)

    def transmit(self, msg: Message, ledger: TrafficLedger) -> list[Message]:
        """Deliver one remote message through the fault model.

        Returns the inbox entries the message produces (the delivered
        copy plus any duplicate or late-arriving copies, all sharing its
        sequence number).  Raises
        :class:`~repro.errors.FaultExhaustedError` when every allowed
        transmission attempt is dropped.
        """
        plan = self.plan
        rates = plan.rates_for(msg.category, msg.src, msg.dst)
        retries = 0
        while rates.drop and self._rng.random() < rates.drop:
            with self._lock:
                self.stats.drops += 1
            if retries >= plan.max_retries:
                raise FaultExhaustedError(
                    f"{msg.category.value} message {msg.src}->{msg.dst} "
                    f"({msg.nbytes:g} bytes) dropped {retries + 1} times; "
                    f"retry budget of {plan.max_retries} exhausted",
                    category=msg.category,
                    link=(msg.src, msg.dst),
                    attempts=retries + 1,
                )
            retries += 1
            self._retransmit(msg, retries, ledger)
        out = [msg]
        if rates.delay and self._rng.random() < rates.delay:
            # The original misses the barrier ack; the sender pays one
            # retransmission, and the delayed original still arrives
            # late as a duplicate the receiver dedups away.
            with self._lock:
                self.stats.delays += 1
            retries += 1
            self._retransmit(msg, retries, ledger)
            out.append(self._copy(msg))
        if rates.duplicate and self._rng.random() < rates.duplicate:
            with self._lock:
                self.stats.duplicates += 1
                self.stats.retransmit_bytes += msg.nbytes
            ledger.record_retransmit(msg.category, msg.nbytes)
            out.append(self._copy(msg))
        return out

    @staticmethod
    def _copy(msg: Message) -> Message:
        """A wire duplicate: same payload reference, same sequence number."""
        return Message(
            src=msg.src,
            dst=msg.dst,
            category=msg.category,
            nbytes=msg.nbytes,
            payload=msg.payload,
            seq=msg.seq,
        )

    def commit_batch(
        self, dst: int, messages: list[Message], ledger: TrafficLedger
    ) -> list[Message]:
        """Run one destination's barrier batch through the fault model.

        Local messages (``src == dst``) bypass the model; remote ones go
        through :meth:`transmit`, then each source link's surviving
        batch may be reordered in place (the receiver's sequence-number
        sort undoes it).
        """
        out: list[Message] = []
        for msg in messages:
            if msg.src == msg.dst:
                out.append(msg)
            else:
                out.extend(self.transmit(msg, ledger))
        by_src: dict[int, list[int]] = {}
        for position, msg in enumerate(out):
            if msg.src != dst:
                by_src.setdefault(msg.src, []).append(position)
        for src in sorted(by_src):
            positions = by_src[src]
            rate = self.plan.reorder_rate_for(src, dst)
            if len(positions) >= 2 and rate and self._rng.random() < rate:
                with self._lock:
                    self.stats.reorders += 1
                permutation = self._rng.permutation(len(positions))
                batch = [out[position] for position in positions]
                for position, source in zip(positions, permutation):
                    out[position] = batch[source]
        return out

    # -- receiver side (any thread) --------------------------------------

    def dedup_and_order(self, messages: list[Message]) -> list[Message]:
        """Idempotent delivery: sort by sequence number, drop duplicates.

        Fault-free inbox order is always ascending in sequence number
        (immediate sends and lane commits both assign in append order),
        so the sort restores the exact fault-free arrival order after
        any mix of reordering, duplication, and retransmission.
        """
        ordered = sorted(messages, key=lambda msg: msg.seq)
        out: list[Message] = []
        seen: set[int] = set()
        dropped = 0
        for msg in ordered:
            if msg.seq in seen:
                dropped += 1
                continue
            seen.add(msg.seq)
            out.append(msg)
        if dropped:
            with self._lock:
                self.stats.deduped += dropped
        return out

    # -- crashes (called from phase tasks on any thread) -----------------

    def maybe_crash(self, node: int) -> None:
        """Raise :class:`NodeCrashError` if ``node`` dies entering this phase.

        Crash decisions are keyed by ``(node, phase, attempt)`` — the
        first ``count`` scripted entries crash, and the probabilistic
        ``crash_rate`` uses a keyed RNG substream — so they never depend
        on thread scheduling or worker count.
        """
        phase = self.phase
        with self._lock:
            attempt = self._crash_attempts.get((node, phase), 0) + 1
            self._crash_attempts[(node, phase)] = attempt
        crash = attempt <= self.plan.crash_count(node, phase)
        if not crash and self.plan.crash_rate:
            substream = np.random.default_rng(
                (self.plan.seed, _CRASH_STREAM, phase, node, attempt)
            )
            crash = substream.random() < self.plan.crash_rate
        if crash:
            with self._lock:
                self.stats.crashes += 1
            raise NodeCrashError(
                f"node {node} crashed entering phase {phase} (attempt {attempt})",
                node=node,
                phase=phase,
            )

    def record_restart(self, node: int) -> None:
        """Count one supervisor-driven node restart."""
        with self._lock:
            self.stats.restarts += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultInjector seed={self.plan.seed} phase={self.phase}>"
