"""Deterministic fault injection and phase-level recovery.

The package has three pieces:

:mod:`repro.faults.plan`
    :class:`FaultPlan` and friends — seeded, declarative descriptions of
    what goes wrong (message drops/duplicates/reorders/delays, scripted
    node crashes and stragglers) plus the recovery budget.

:mod:`repro.faults.injector`
    :class:`FaultInjector` — applies a plan at the network's phase
    barriers and implements sequence-numbered idempotent delivery,
    retransmission with capped virtual-clock backoff, and keyed
    fail-stop crash draws.

:mod:`repro.faults.chaos`
    The chaos harness: runs every registered join algorithm under
    seeded fault plans and checks the headline invariant — output
    row-identical to the fault-free run, goodput ledger byte-identical.

Install a plan with ``Cluster(..., fault_plan=FaultPlan(seed=7, ...))``
or ``cluster.set_fault_plan(plan)``; a ``None`` or null plan leaves the
fault-free fast path completely untouched.
"""

from .injector import FaultInjector
from .plan import CrashEvent, FaultPlan, FaultRates, FaultStats, StragglerEvent

__all__ = [
    "FaultPlan",
    "FaultRates",
    "FaultStats",
    "CrashEvent",
    "StragglerEvent",
    "FaultInjector",
]
