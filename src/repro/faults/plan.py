"""Fault plans: seeded, declarative descriptions of injected failures.

A :class:`FaultPlan` is the single configuration object of the fault
subsystem.  It is consumed by the
:class:`~repro.faults.injector.FaultInjector` that the
:class:`~repro.cluster.network.Network` consults at every phase barrier,
and it describes *what* goes wrong, never *how* recovery works:

- message-level rates (:class:`FaultRates`): probabilities that a staged
  message is dropped, duplicated, delayed past the barrier ack, or that
  a link's barrier batch is reordered — globally, per message class, or
  per ``(src, dst)`` link;
- scripted node crashes (:class:`CrashEvent`): "node 3 dies entering
  phase 2", fail-stop at phase entry, optionally several times in a
  row; plus an optional probabilistic ``crash_rate``;
- scripted stragglers (:class:`StragglerEvent`): a node that holds the
  phase barrier back for ``delay`` virtual seconds;
- the recovery budget: ``max_retries`` per message, ``max_node_restarts``
  per crashed node and phase, and the capped exponential backoff
  schedule (``backoff_base``/``backoff_cap``) paid on the injector's
  virtual clock (never a wall clock; REP002 applies to this package).

Everything flows from ``seed``: two runs with the same plan, workload,
and cluster inject byte-identical fault sequences for any worker count,
because every random draw happens on the coordinator thread in
deterministic barrier order (crash draws use per-``(node, phase,
attempt)`` keyed substreams, so they are schedule-independent too).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..cluster.network import MessageClass
from ..errors import ValidationError

__all__ = ["FaultRates", "CrashEvent", "StragglerEvent", "FaultPlan", "FaultStats"]


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultRates:
    """Per-message fault probabilities for one class/link scope."""

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0

    def __post_init__(self):
        for name in ("drop", "duplicate", "reorder", "delay"):
            _check_probability(name, getattr(self, name))


@dataclass(frozen=True)
class CrashEvent:
    """Scripted fail-stop: ``node`` dies entering ``phase``, ``count`` times.

    Phases are numbered from 1 in the order the join opens them
    (one per ``run_phase`` barrier).  With ``count`` larger than the
    plan's ``max_node_restarts`` the node never comes back and the
    phase raises :class:`~repro.errors.FaultExhaustedError`.
    """

    node: int
    phase: int
    count: int = 1

    def __post_init__(self):
        if self.node < 0:
            raise ValidationError(f"crash node must be >= 0, got {self.node}")
        if self.phase < 1:
            raise ValidationError(f"crash phase numbers start at 1, got {self.phase}")
        if self.count < 1:
            raise ValidationError(f"crash count must be >= 1, got {self.count}")


@dataclass(frozen=True)
class StragglerEvent:
    """Scripted straggler: ``node`` delays the ``phase`` barrier by ``delay``.

    The delay is charged to the injector's virtual clock (the phase
    barrier waits for the slowest node), never to wall time.
    """

    node: int
    phase: int
    delay: float = 1.0

    def __post_init__(self):
        if self.node < 0:
            raise ValidationError(f"straggler node must be >= 0, got {self.node}")
        if self.phase < 1:
            raise ValidationError(
                f"straggler phase numbers start at 1, got {self.phase}"
            )
        if self.delay <= 0:
            raise ValidationError(f"straggler delay must be > 0, got {self.delay}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic description of injected cluster faults.

    Parameters
    ----------
    seed:
        Seed of the injector's sequential RNG and of the keyed crash
        substreams; the sole source of randomness.
    drop, duplicate, reorder, delay:
        Base per-message fault probabilities (``reorder`` applies per
        link and barrier batch, the rest per message).
    class_rates / link_rates:
        Scoped overrides.  Resolution is most-specific-wins and whole:
        a link override replaces a class override replaces the base
        rates (fields are not merged).
    crashes / stragglers:
        Scripted node events; see :class:`CrashEvent` and
        :class:`StragglerEvent`.
    crash_rate:
        Optional probabilistic crash chance per (node, phase, attempt),
        drawn from a keyed substream so it is schedule-independent.
    max_retries:
        Retransmissions allowed per message before the sender raises
        :class:`~repro.errors.FaultExhaustedError`.
    max_node_restarts:
        Times a crashed node may be restarted within one phase before
        the phase raises :class:`~repro.errors.FaultExhaustedError`.
    backoff_base / backoff_cap:
        Capped exponential backoff of retransmissions, in virtual
        seconds: retry ``k`` waits ``min(cap, base * 2**(k-1))``.
    """

    seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0
    class_rates: Mapping[MessageClass, FaultRates] = field(default_factory=dict)
    link_rates: Mapping[tuple[int, int], FaultRates] = field(default_factory=dict)
    crashes: tuple[CrashEvent, ...] = ()
    stragglers: tuple[StragglerEvent, ...] = ()
    crash_rate: float = 0.0
    max_retries: int = 8
    max_node_restarts: int = 2
    backoff_base: float = 1.0
    backoff_cap: float = 64.0

    def __post_init__(self):
        for name in ("drop", "duplicate", "reorder", "delay", "crash_rate"):
            _check_probability(name, getattr(self, name))
        for scope, rates in dict(self.class_rates).items():
            if not isinstance(scope, MessageClass) or not isinstance(rates, FaultRates):
                raise ValidationError(
                    "class_rates maps MessageClass -> FaultRates, got "
                    f"{scope!r} -> {rates!r}"
                )
        for scope, rates in dict(self.link_rates).items():
            if not isinstance(rates, FaultRates):
                raise ValidationError(
                    f"link_rates maps (src, dst) -> FaultRates, got {rates!r}"
                )
        if self.max_retries < 0:
            raise ValidationError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.max_node_restarts < 0:
            raise ValidationError(
                f"max_node_restarts must be >= 0, got {self.max_node_restarts}"
            )
        if self.backoff_base <= 0 or self.backoff_cap < self.backoff_base:
            raise ValidationError(
                "backoff must satisfy 0 < backoff_base <= backoff_cap, got "
                f"base={self.backoff_base}, cap={self.backoff_cap}"
            )

    @property
    def base_rates(self) -> FaultRates:
        """The unscoped fault rates."""
        return FaultRates(self.drop, self.duplicate, self.reorder, self.delay)

    def rates_for(self, category: MessageClass, src: int, dst: int) -> FaultRates:
        """Effective rates for one message: link beats class beats base."""
        link = self.link_rates.get((src, dst))
        if link is not None:
            return link
        scoped = self.class_rates.get(category)
        if scoped is not None:
            return scoped
        return self.base_rates

    def reorder_rate_for(self, src: int, dst: int) -> float:
        """Per-barrier reorder probability of one link's batch."""
        link = self.link_rates.get((src, dst))
        if link is not None:
            return link.reorder
        return self.reorder

    def crash_count(self, node: int, phase: int) -> int:
        """Scripted crashes of ``node`` entering ``phase``."""
        return sum(
            event.count
            for event in self.crashes
            if event.node == node and event.phase == phase
        )

    def is_null(self) -> bool:
        """True when the plan injects nothing (fault-free fast path)."""
        return (
            self.drop == self.duplicate == self.reorder == self.delay == 0.0
            and self.crash_rate == 0.0
            and not self.class_rates
            and not self.link_rates
            and not self.crashes
            and not self.stragglers
        )


@dataclass
class FaultStats:
    """Injection and recovery counters accumulated by one injector.

    ``retransmit_bytes`` mirrors the
    :class:`~repro.cluster.network.TrafficLedger` retransmit counters
    but survives ledger resets, so a chaos run can report recovery cost
    across many joins.  ``virtual_time`` is the backoff/straggler time
    charged to the injector's virtual clock.
    """

    drops: int = 0
    duplicates: int = 0
    delays: int = 0
    reorders: int = 0
    retries: int = 0
    deduped: int = 0
    crashes: int = 0
    restarts: int = 0
    stragglers: int = 0
    retransmit_bytes: float = 0.0
    virtual_time: float = 0.0

    @property
    def faults_injected(self) -> int:
        """Total injected fault events of every kind."""
        return (
            self.drops
            + self.duplicates
            + self.delays
            + self.reorders
            + self.crashes
            + self.stragglers
        )

    def as_dict(self) -> dict:
        """JSON-friendly counter snapshot."""
        return {
            "drops": self.drops,
            "duplicates": self.duplicates,
            "delays": self.delays,
            "reorders": self.reorders,
            "retries": self.retries,
            "deduped": self.deduped,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "stragglers": self.stragglers,
            "faults_injected": self.faults_injected,
            "retransmit_bytes": self.retransmit_bytes,
            "virtual_time": self.virtual_time,
        }
