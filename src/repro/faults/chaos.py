"""Chaos harness: every registered join under seeded fault plans.

The headline invariant of the fault subsystem is checked here, end to
end: for every operator in :data:`repro.joins.registry.ALGORITHMS`,
every seed, and every worker count, a run under a mixed fault plan
(drops, duplicates, reorders, delays, a scripted crash, a straggler)
must produce output *row-identical* to the fault-free run, and its
goodput traffic ledger must be *byte-identical* — all recovery overhead
lands in the separate retransmit counters.

:func:`run_chaos` executes one such matrix and returns a JSON-friendly
summary (also consumed by ``python -m repro chaos`` and the bench-smoke
payload); any invariant violation or budget exhaustion is reported as a
failure entry rather than an exception, so one bad cell never hides the
rest of the matrix.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.network import TrafficLedger
from ..errors import FaultError
from ..joins.base import JoinResult, JoinSpec
from ..joins.registry import algorithm_names, create
from ..testing import canonical_output, scatter_tables
from .plan import CrashEvent, FaultPlan, StragglerEvent

__all__ = ["default_plan", "run_chaos", "chaos_summary"]

#: Default seed matrix of the ``make test-chaos`` / CI job.
DEFAULT_SEEDS = (0, 1, 2)


def default_plan(seed: int, num_nodes: int) -> FaultPlan:
    """The standard mixed chaos plan for one seed.

    Moderate message-fault rates plus one scripted crash (the node and
    phase rotate with the seed) and one early straggler; the budgets are
    sized so a correct recovery path always survives the plan — any
    :class:`~repro.errors.FaultExhaustedError` under this plan is a bug.
    """
    return FaultPlan(
        seed=seed,
        drop=0.10,
        duplicate=0.08,
        reorder=0.25,
        delay=0.05,
        crashes=(CrashEvent(node=seed % num_nodes, phase=1 + seed % 2),),
        stragglers=(StragglerEvent(node=(seed + 1) % num_nodes, phase=1, delay=0.5),),
        max_retries=16,
        max_node_restarts=2,
    )


def _workload(seed: int, rows_r: int, rows_s: int) -> tuple[np.ndarray, np.ndarray]:
    """A small skewed workload with repeated keys on both sides."""
    rng = np.random.default_rng(seed)
    universe = max(16, rows_r // 2)
    keys_r = rng.integers(0, universe, size=rows_r)
    keys_s = rng.integers(0, universe, size=rows_s)
    return keys_r, keys_s


def _goodput_fingerprint(ledger: TrafficLedger):
    """Everything the goodput-identity invariant compares, hashably."""
    return (
        float(ledger.total_bytes),
        float(ledger.local_bytes),
        int(ledger.message_count),
        tuple(sorted((k.value, v) for k, v in ledger.by_class.items() if v)),
        tuple(sorted((link, v) for link, v in ledger.by_link.items() if v)),
    )


def _run_baselines(
    names: Sequence[str],
    num_nodes: int,
    keys_r: np.ndarray,
    keys_s: np.ndarray,
    spec: JoinSpec,
) -> dict[str, tuple[np.ndarray, tuple]]:
    """Fault-free serial reference runs, one per algorithm."""
    cluster = Cluster(num_nodes, workers=1)
    table_r, table_s = scatter_tables(cluster, keys_r, keys_s)
    baselines: dict[str, tuple[np.ndarray, tuple]] = {}
    for name in names:
        result: JoinResult = create(name).run(cluster, table_r, table_s, spec)
        baselines[name] = (
            canonical_output(result),
            _goodput_fingerprint(result.traffic),
        )
    return baselines


def run_chaos(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    num_nodes: int = 4,
    worker_counts: Sequence[int] = (1,),
    algorithms: Sequence[str] | None = None,
    rows_r: int = 240,
    rows_s: int = 360,
    workload_seed: int = 7,
) -> dict:
    """Run the chaos matrix and return its JSON-friendly summary.

    For every ``(seed, workers, algorithm)`` cell the fault-injected run
    is compared against the fault-free baseline: output rows must be
    identical and the goodput ledger byte-identical.  Violations, and
    any :class:`~repro.errors.FaultError` escaping a run, are collected
    under ``"failures"``; ``"ok"`` is True when the list is empty.
    """
    names = list(algorithms) if algorithms is not None else list(algorithm_names())
    keys_r, keys_s = _workload(workload_seed, rows_r, rows_s)
    spec = JoinSpec()
    baselines = _run_baselines(names, num_nodes, keys_r, keys_s, spec)

    runs = 0
    failures: list[dict] = []
    retransmit_bytes = 0.0
    faults: dict[str, float] = {}
    for seed in seeds:
        plan = default_plan(seed, num_nodes)
        for workers in worker_counts:
            cluster = Cluster(num_nodes, workers=workers, fault_plan=plan)
            table_r, table_s = scatter_tables(cluster, keys_r, keys_s)
            for name in names:
                cell = {"seed": int(seed), "workers": int(workers), "algorithm": name}
                runs += 1
                try:
                    result = create(name).run(cluster, table_r, table_s, spec)
                except FaultError as error:
                    failures.append(
                        dict(cell, reason=f"{type(error).__name__}: {error}")
                    )
                    cluster.reset()
                    continue
                retransmit_bytes += result.traffic.retransmit_bytes
                baseline_output, baseline_goodput = baselines[name]
                if not np.array_equal(canonical_output(result), baseline_output):
                    failures.append(
                        dict(cell, reason="output differs from fault-free run")
                    )
                if _goodput_fingerprint(result.traffic) != baseline_goodput:
                    failures.append(
                        dict(cell, reason="goodput ledger differs from fault-free run")
                    )
            # The injector's stats survive per-join resets; fold this
            # cluster's cumulative counters into the matrix totals.
            for key, value in cluster.network.faults.stats.as_dict().items():
                faults[key] = faults.get(key, 0) + value
            cluster.executor.close()

    return {
        "seeds": [int(seed) for seed in seeds],
        "num_nodes": int(num_nodes),
        "worker_counts": [int(w) for w in worker_counts],
        "algorithms": names,
        "runs": runs,
        "failures": failures,
        "faults": faults,
        "retransmit_bytes": retransmit_bytes,
        "ok": not failures,
    }


def chaos_summary(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    num_nodes: int = 4,
    worker_counts: Sequence[int] = (1, 4),
) -> dict:
    """Compact chaos report for benchmark payloads and CI logs."""
    report = run_chaos(seeds=seeds, num_nodes=num_nodes, worker_counts=worker_counts)
    return {
        "seeds_run": report["seeds"],
        "worker_counts": report["worker_counts"],
        "runs": report["runs"],
        "faults_injected": report["faults"].get("faults_injected", 0),
        "retransmit_bytes": report["retransmit_bytes"],
        "failures": len(report["failures"]),
        "ok": report["ok"],
    }
