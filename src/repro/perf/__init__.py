"""Performance measurement and regression gating for the fast path."""

from .bench import (
    bench_joins,
    bench_kernels,
    bench_scaling,
    bench_scaling_report,
    bench_smoke,
    best_time,
    check_regressions,
    lint_summary,
    peak_alloc,
    write_report,
)

__all__ = [
    "bench_joins",
    "bench_kernels",
    "bench_scaling",
    "bench_scaling_report",
    "bench_smoke",
    "best_time",
    "check_regressions",
    "lint_summary",
    "peak_alloc",
    "write_report",
]
