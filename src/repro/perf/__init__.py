"""Performance measurement and regression gating for the fast path."""

from .bench import (
    bench_joins,
    bench_kernels,
    bench_scaling,
    bench_scaling_report,
    bench_skew,
    bench_skew_report,
    bench_smoke,
    best_time,
    check_regressions,
    check_scaling,
    check_skew,
    lint_summary,
    peak_alloc,
    peak_rss_bytes,
    write_report,
)

__all__ = [
    "bench_joins",
    "bench_kernels",
    "bench_scaling",
    "bench_scaling_report",
    "bench_skew",
    "bench_skew_report",
    "bench_smoke",
    "best_time",
    "check_regressions",
    "check_scaling",
    "check_skew",
    "lint_summary",
    "peak_alloc",
    "peak_rss_bytes",
    "write_report",
]
