"""Perf-regression harness for the vectorized scatter fast path.

The fast path (:mod:`repro.fastpath`) exists purely for wall-clock, so
its gains have to be measured against the loop reference it replaced
and defended against regressions.  This module provides both:

* :func:`bench_kernels` — microbenchmarks of the storage primitives in
  both modes (bounded-dtype argsort, index build, ``split_by``,
  ``hash_split``, ``join_indices``).
* :func:`bench_joins` — end-to-end wall-clock and peak allocation of
  whole join algorithms on the Figure 3 workload, loop vs fused, with a
  byte-exactness check that both modes produced the identical
  per-message-class traffic.
* :func:`bench_scaling` — end-to-end wall-clock of whole joins across
  worker counts (the parallel engine's 1 → n cores curve), with a
  ledger-identity check proving every worker count produced
  byte-identical traffic.
* :func:`bench_smoke` — the tiny-scale CI gate behind
  ``python -m repro bench-smoke``: writes ``BENCH_joins.json`` and
  fails when any fused kernel runs more than ``threshold`` times
  slower than the committed baseline.

Timing is best-of-N after warmup because the benchmark box is shared
and noisy; peak allocation is measured in a separate tracemalloc pass
so instrumentation never pollutes the wall-clock numbers.
"""

from __future__ import annotations

import json
import os
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

from ..encoding import DictionaryEncoding
from ..fastpath import FUSED, LOOP, use_scatter_mode
from ..joins.base import JoinSpec
from ..joins.local import join_indices
from ..joins.registry import create
from ..storage.table import LocalPartition
from ..util import hash_partition, stable_argsort_bounded
from ..workloads.synthetic import unique_keys_workload

__all__ = [
    "best_time",
    "peak_alloc",
    "peak_rss_bytes",
    "bench_kernels",
    "bench_joins",
    "bench_scaling",
    "bench_scaling_report",
    "bench_skew",
    "bench_skew_report",
    "bench_smoke",
    "check_regressions",
    "check_scaling",
    "check_skew",
    "lint_summary",
    "write_report",
]

#: Algorithms the end-to-end bench compares, in report order.  The
#: report labels are fixed (they key the committed baseline JSON); the
#: operators come from the registry.
BENCH_ALGORITHMS = (
    ("HJ", lambda: create("HJ")),
    ("2TJ-RS", lambda: create("2TJ-R")),
    ("2TJ-SR", lambda: create("2TJ-S")),
    ("3TJ", lambda: create("3TJ")),
    ("4TJ", lambda: create("4TJ")),
    ("BJ-R", lambda: create("BJ-R")),
)


def best_time(fn, repeats: int = 3, warmup: int = 1) -> float:
    """Best wall-clock seconds of ``fn`` over ``repeats`` timed runs."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def peak_alloc(fn) -> int:
    """Peak traced allocation bytes of one ``fn()`` call."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def _bench_spec() -> JoinSpec:
    """The figure-reproduction spec the end-to-end bench runs under."""
    return JoinSpec(
        encoding=DictionaryEncoding(), materialize=False, group_locations=True
    )


# -- kernel microbenchmarks ---------------------------------------------


def _kernel_cases(scaled_tuples: int, num_nodes: int, seed: int):
    """(name, loop_fn, fused_fn) closures over one synthetic partition."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, max(1, scaled_tuples // 2), scaled_tuples).astype(np.int64)
    part = LocalPartition(
        keys=keys, columns={"rid": np.arange(scaled_tuples, dtype=np.int64)}
    )
    destinations = hash_partition(keys, num_nodes, seed)
    probe = rng.permutation(keys)[: scaled_tuples // 4]

    def argsort_loop():
        np.argsort(destinations, kind="stable")

    def argsort_fused():
        stable_argsort_bounded(destinations, num_nodes)

    def index_build_loop():
        order = np.argsort(part.keys, kind="stable")
        part.keys[order]

    def index_build_fused():
        part.invalidate_caches()
        part.key_index()

    def distinct_loop():
        np.unique(part.keys, return_counts=True)

    def distinct_fused():
        part.invalidate_caches()
        part.distinct_with_counts()

    def split_loop():
        with use_scatter_mode(LOOP):
            part.split_by(destinations, num_nodes)

    def split_fused():
        with use_scatter_mode(FUSED):
            part.split_by(destinations, num_nodes)

    def hash_split_loop():
        with use_scatter_mode(LOOP):
            part.hash_split(num_nodes, seed)

    def hash_split_fused():
        with use_scatter_mode(FUSED):
            part.hash_split(num_nodes, seed)

    def join_loop():
        with use_scatter_mode(LOOP):
            join_indices(probe, part.keys)

    def join_fused():
        with use_scatter_mode(FUSED):
            join_indices(probe, part.keys, right_index=part.key_index())

    return [
        ("stable_argsort", argsort_loop, argsort_fused),
        ("index_build", index_build_loop, index_build_fused),
        ("distinct_with_counts", distinct_loop, distinct_fused),
        ("split_by", split_loop, split_fused),
        ("hash_split", hash_split_loop, hash_split_fused),
        ("join_indices", join_loop, join_fused),
    ]


def bench_kernels(
    scaled_tuples: int = 200_000,
    num_nodes: int = 16,
    seed: int = 0,
    repeats: int = 3,
    warmup: int = 1,
) -> dict:
    """Time every storage kernel in loop and fused mode."""
    kernels = {}
    for name, loop_fn, fused_fn in _kernel_cases(scaled_tuples, num_nodes, seed):
        loop_s = best_time(loop_fn, repeats, warmup)
        fused_s = best_time(fused_fn, repeats, warmup)
        kernels[name] = {
            "loop_seconds": loop_s,
            "fused_seconds": fused_s,
            "speedup": loop_s / fused_s if fused_s > 0 else float("inf"),
        }
    return kernels


# -- end-to-end join benchmarks -----------------------------------------


def bench_joins(
    scaled_tuples: int = 250_000,
    num_nodes: int = 16,
    seed: int = 0,
    repeats: int = 3,
    warmup: int = 1,
    measure_memory: bool = True,
    algorithms=BENCH_ALGORITHMS,
) -> dict:
    """Wall-clock loop vs fused for whole joins on the Fig. 3 workload.

    Each mode gets its own workload instance (so fused-path caches never
    leak into the loop baseline) but identical keys, placement, and
    spec.  Timed repeats alternate between the modes so slow drifts of
    the benchmark box hit both equally instead of biasing the ratio.
    Both modes must produce byte-identical per-class traffic; a
    mismatch raises instead of reporting a meaningless speedup.
    """
    spec = _bench_spec()
    results = {}
    for label, factory in algorithms:
        runners = {}
        per_mode = {}
        for mode in (LOOP, FUSED):
            with use_scatter_mode(mode):
                workload = unique_keys_workload(
                    num_nodes=num_nodes, scaled_tuples=scaled_tuples, seed=seed
                )

                def run(workload=workload):
                    return factory().run(
                        workload.cluster, workload.table_r, workload.table_s, spec
                    )

                runners[mode] = run
                for _ in range(warmup):
                    run()
                per_mode[mode] = {"seconds": float("inf")}
        for _ in range(repeats):
            for mode in (LOOP, FUSED):
                with use_scatter_mode(mode):
                    start = time.perf_counter()
                    runners[mode]()
                    elapsed = time.perf_counter() - start
                per_mode[mode]["seconds"] = min(per_mode[mode]["seconds"], elapsed)
        for mode in (LOOP, FUSED):
            with use_scatter_mode(mode):
                result = runners[mode]()
                traffic = {
                    category.name: nbytes
                    for category, nbytes in sorted(
                        result.traffic.by_class.items(),
                        key=lambda kv: kv[0].name,
                    )
                }
                retransmit = float(result.traffic.retransmit_bytes)
                peak = peak_alloc(runners[mode]) if measure_memory else None
            per_mode[mode]["peak_bytes"] = peak
            per_mode[mode]["traffic"] = traffic
            per_mode[mode]["retransmit_bytes"] = retransmit
        if per_mode[LOOP]["traffic"] != per_mode[FUSED]["traffic"]:
            raise AssertionError(
                f"{label}: fused traffic diverged from loop reference: "
                f"{per_mode[FUSED]['traffic']} != {per_mode[LOOP]['traffic']}"
            )
        for mode in (LOOP, FUSED):
            # The benches run without a fault plan, so any retransmitted
            # byte means the fault-free fast path is paying recovery
            # overhead it must provably never pay.
            if per_mode[mode]["retransmit_bytes"] != 0.0:
                raise AssertionError(
                    f"{label}: fault-free run accounted "
                    f"{per_mode[mode]['retransmit_bytes']} retransmitted bytes"
                )
        results[label] = {
            "loop_seconds": per_mode[LOOP]["seconds"],
            "fused_seconds": per_mode[FUSED]["seconds"],
            "speedup": per_mode[LOOP]["seconds"] / per_mode[FUSED]["seconds"],
            "loop_peak_bytes": per_mode[LOOP]["peak_bytes"],
            "fused_peak_bytes": per_mode[FUSED]["peak_bytes"],
            "traffic_by_class": per_mode[FUSED]["traffic"],
            "retransmit_bytes": per_mode[FUSED]["retransmit_bytes"],
        }
    return results


#: Algorithms the scaling curve times (the Fig. 3 headliners).
SCALING_ALGORITHMS = (
    ("4TJ", lambda: create("4TJ")),
    ("HJ", lambda: create("HJ")),
)

#: Required end-to-end speedup at :data:`SCALING_GATE_WORKERS` workers,
#: enforced only on hosts with at least that many cores.
SCALING_GATE_WORKERS = 4
SCALING_GATE_THRESHOLDS = {"4TJ": 2.0, "HJ": 1.5}


def bench_scaling(
    scaled_tuples: int = 250_000,
    num_nodes: int = 16,
    seed: int = 0,
    repeats: int = 3,
    warmup: int = 1,
    worker_counts=(1, 2, 4, 8),
    algorithms=SCALING_ALGORITHMS,
    pipeline_depth: int = 2,
) -> dict:
    """Wall-clock scaling curve of whole joins across worker counts.

    Each algorithm runs the Fig. 3 workload once per worker count (best
    of ``repeats``), on the fused path with kernel chunking matched to
    the worker count and exchange pipelining at ``pipeline_depth``
    (serial runs keep strict barriers as the reference).  Every run's
    traffic ledger — per-class and per-link — and its output row count
    must be identical to the serial (1-worker) reference; a divergence
    raises, because a scaling number for a run that computed something
    different is meaningless.

    ``host_cpus`` is recorded alongside the curve, and
    ``effective_parallelism`` annotates how many of each run's workers
    can actually execute concurrently: speedups are bounded by the
    physical cores of the benchmark box, so a 1-core host reports a
    flat curve no matter how sound the engine is.  The per-algorithm
    ``scaling_gate`` entry therefore only demands its threshold
    speedup when the host has at least :data:`SCALING_GATE_WORKERS`
    cores; otherwise the gate records why it was skipped.

    Each worker count also records the final run's wall-clock phase
    breakdown (dispatch / kernel / barrier-wait / commit seconds from
    :meth:`~repro.timing.profile.ExecutionProfile.timing_totals`) under
    ``phase_breakdown``.
    """
    from ..parallel import chunks

    spec = _bench_spec()
    host_cpus = os.cpu_count() or 1
    report: dict = {
        "host_cpus": host_cpus,
        "worker_counts": [int(w) for w in worker_counts],
        "pipeline_depth": pipeline_depth,
        "effective_parallelism": {
            str(int(w)): min(int(w), host_cpus) for w in worker_counts
        },
        "config": {
            "scaled_tuples": scaled_tuples,
            "num_nodes": num_nodes,
            "seed": seed,
            "repeats": repeats,
            "warmup": warmup,
        },
        "algorithms": {},
    }
    with use_scatter_mode(FUSED):
        for label, factory in algorithms:
            workload = unique_keys_workload(
                num_nodes=num_nodes, scaled_tuples=scaled_tuples, seed=seed
            )
            seconds: dict[str, float] = {}
            breakdown: dict[str, dict] = {}
            reference_ledger = None
            reference_rows = None
            try:
                for workers in worker_counts:
                    workers = int(workers)
                    workload.cluster.set_workers(workers)
                    # Serial runs keep strict barriers and serial
                    # kernels: they are the reference the parallel
                    # runs must reproduce byte-for-byte.
                    workload.cluster.set_pipeline_depth(
                        pipeline_depth if workers > 1 else 1
                    )
                    chunks.set_kernel_workers(workers)

                    def run():
                        return factory().run(
                            workload.cluster, workload.table_r, workload.table_s, spec
                        )

                    seconds[str(workers)] = best_time(run, repeats, warmup)
                    result = run()
                    breakdown[str(workers)] = result.profile.timing_totals()
                    ledger = (
                        sorted(
                            (c.name, b) for c, b in result.traffic.by_class.items()
                        ),
                        sorted(result.traffic.by_link.items()),
                    )
                    if reference_ledger is None:
                        reference_ledger = ledger
                        reference_rows = result.output_rows
                    elif ledger != reference_ledger:
                        raise AssertionError(
                            f"{label}: ledger with {workers} workers diverged "
                            "from the serial reference"
                        )
                    elif result.output_rows != reference_rows:
                        raise AssertionError(
                            f"{label}: {workers}-worker run produced "
                            f"{result.output_rows} rows, serial reference "
                            f"produced {reference_rows}"
                        )
            finally:
                workload.cluster.set_workers(1)
                workload.cluster.set_pipeline_depth(1)
                chunks.set_kernel_workers(None)
            base = seconds[str(int(worker_counts[0]))]
            speedups = {
                w: (base / s if s > 0 else float("inf")) for w, s in seconds.items()
            }
            report["algorithms"][label] = {
                "seconds": seconds,
                "speedup_vs_1": speedups,
                "ledger_identical": True,
                "output_rows": reference_rows,
                "phase_breakdown": breakdown,
                "scaling_gate": _scaling_gate(label, speedups, host_cpus),
            }
    return report


def _scaling_gate(label: str, speedups: dict[str, float], host_cpus: int) -> dict:
    """Per-algorithm speedup gate, skipped on under-provisioned hosts."""
    workers = SCALING_GATE_WORKERS
    threshold = SCALING_GATE_THRESHOLDS.get(label)
    gate: dict = {"workers": workers, "threshold": threshold}
    if threshold is None:
        gate.update(checked=False, reason=f"no threshold registered for {label}")
        return gate
    if str(workers) not in speedups:
        gate.update(
            checked=False, reason=f"{workers} workers not in the measured curve"
        )
        return gate
    gate["speedup"] = speedups[str(workers)]
    if host_cpus < workers:
        gate.update(
            checked=False,
            reason=(
                f"host has {host_cpus} core(s); "
                f"{workers}-worker speedup is core-bound, not engine-bound"
            ),
        )
        return gate
    gate.update(checked=True, passed=gate["speedup"] >= threshold)
    return gate


#: Phase-breakdown fields every scaling run must report.
PHASE_BREAKDOWN_FIELDS = (
    "dispatch_seconds",
    "kernel_seconds",
    "barrier_wait_seconds",
    "commit_seconds",
)


def check_scaling(scaling: dict) -> list[str]:
    """Gate failures of one :func:`bench_scaling` report.

    Checks that every curve kept ledger identity, that the per-phase
    wall-clock breakdown fields are present for every worker count, and
    that each checked ``scaling_gate`` met its threshold (gates skipped
    on under-provisioned hosts are not failures — the recorded reason
    says why).
    """
    failures: list[str] = []
    for label, row in scaling.get("algorithms", {}).items():
        if not row.get("ledger_identical"):
            failures.append(f"{label}: scaling runs did not keep ledger identity")
        for workers, totals in row.get("phase_breakdown", {}).items():
            missing = [f for f in PHASE_BREAKDOWN_FIELDS if f not in totals]
            if missing:
                failures.append(
                    f"{label}: {workers}-worker phase breakdown is missing "
                    f"{', '.join(missing)}"
                )
        gate = row.get("scaling_gate", {})
        if gate.get("checked") and not gate.get("passed"):
            failures.append(
                f"{label}: speedup {gate['speedup']:.2f}x at "
                f"{gate['workers']} workers is below the required "
                f"{gate['threshold']:.2f}x"
            )
    return failures


def bench_scaling_report(
    out_path: str | Path = "BENCH_joins.json",
    **kwargs,
) -> int:
    """Run :func:`bench_scaling` and merge the curve into ``out_path``.

    Other keys of an existing report (kernels, joins) are preserved, so
    ``bench-smoke`` followed by ``bench-scaling`` yields one combined
    ``BENCH_joins.json``.  Returns non-zero when :func:`check_scaling`
    finds a gate failure.
    """
    if isinstance(kwargs.get("worker_counts"), str):
        # CLI form: bench-scaling worker_counts=1,2,4
        kwargs["worker_counts"] = tuple(
            int(w) for w in kwargs["worker_counts"].split(",")
        )
    elif isinstance(kwargs.get("worker_counts"), int):
        kwargs["worker_counts"] = (kwargs["worker_counts"],)
    scaling = bench_scaling(**kwargs)
    out_file = Path(out_path)
    payload = {}
    if out_file.exists() and out_file.read_text().strip():
        payload = json.loads(out_file.read_text())
    payload["scaling"] = scaling
    write_report(out_file, payload)
    print(f"wrote {out_path} (host_cpus={scaling['host_cpus']})")
    for label, row in scaling["algorithms"].items():
        curve = "  ".join(
            f"{w}w {row['seconds'][w]:.4f}s ({row['speedup_vs_1'][w]:.2f}x)"
            for w in row["seconds"]
        )
        print(f"  {label:7s} {curve}")
        gate = row["scaling_gate"]
        if gate.get("checked"):
            verdict = "pass" if gate["passed"] else "FAIL"
            print(
                f"          gate: {gate['speedup']:.2f}x >= "
                f"{gate['threshold']:.2f}x @ {gate['workers']}w ... {verdict}"
            )
        else:
            print(f"          gate skipped: {gate.get('reason')}")
    failures = check_scaling(scaling)
    for failure in failures:
        print(f"REGRESSION {failure}")
    return 1 if failures else 0


#: Skew ablation gate: sharding must cut the peak per-node received
#: bytes at least this much ...
SKEW_GATE_MAX_LOAD_GAIN = 2.0
#: ... while total traffic stays within this factor of plain 4TJ.
SKEW_GATE_TRAFFIC_RATIO = 1.25


def bench_skew(
    scaled_tuples: int = 50_000,
    num_nodes: int = 16,
    distinct_keys: int = 5_000,
    skew: float = 1.2,
    hot_fraction: float = 0.05,
    seed: int = 0,
) -> dict:
    """Skew ablation: plain 4TJ vs heavy-hitter sharding on hot keys.

    Runs both operators on the identical Zipf hot-key workload
    (:func:`~repro.workloads.synthetic.hot_key_workload`) and records
    each ledger's total and per-node-peak bytes.  The gate asserts the
    point of sharding: ``max_received_bytes`` drops by at least
    :data:`SKEW_GATE_MAX_LOAD_GAIN` while total traffic stays within
    :data:`SKEW_GATE_TRAFFIC_RATIO` of the traffic-optimal plan — and
    both runs produce the same output cardinality.
    """
    from ..core.skew import SkewShardTrackJoin
    from ..workloads.synthetic import hot_key_workload

    spec = _bench_spec()
    cases = (
        ("4TJ", lambda: create("4TJ")),
        ("4TJ-shard", lambda: SkewShardTrackJoin(hot_fraction=hot_fraction)),
    )
    rows: dict[str, dict] = {}
    for label, factory in cases:
        workload = hot_key_workload(
            num_nodes=num_nodes,
            tuples_per_table=scaled_tuples,
            distinct_keys=distinct_keys,
            skew=skew,
            seed=seed,
        )
        result = factory().run(
            workload.cluster, workload.table_r, workload.table_s, spec
        )
        ledger = result.traffic
        rows[label] = {
            "output_rows": result.output_rows,
            "total_bytes": ledger.total_bytes,
            "max_received_bytes": ledger.max_received_bytes,
            "max_sent_bytes": ledger.max_sent_bytes,
            "receive_skew": result.node_balance()["receive_skew"],
        }
    base, shard = rows["4TJ"], rows["4TJ-shard"]
    max_load_gain = (
        base["max_received_bytes"] / shard["max_received_bytes"]
        if shard["max_received_bytes"]
        else float("inf")
    )
    traffic_ratio = (
        shard["total_bytes"] / base["total_bytes"] if base["total_bytes"] else 1.0
    )
    rows_match = base["output_rows"] == shard["output_rows"]
    return {
        "config": {
            "scaled_tuples": scaled_tuples,
            "num_nodes": num_nodes,
            "distinct_keys": distinct_keys,
            "skew": skew,
            "hot_fraction": hot_fraction,
            "seed": seed,
        },
        "algorithms": rows,
        "max_load_gain": max_load_gain,
        "traffic_ratio": traffic_ratio,
        "rows_match": rows_match,
        "skew_gate": {
            "max_load_gain_threshold": SKEW_GATE_MAX_LOAD_GAIN,
            "traffic_ratio_threshold": SKEW_GATE_TRAFFIC_RATIO,
            "passed": (
                rows_match
                and max_load_gain >= SKEW_GATE_MAX_LOAD_GAIN
                and traffic_ratio <= SKEW_GATE_TRAFFIC_RATIO
            ),
        },
    }


def check_skew(report: dict) -> list[str]:
    """Gate failures of one :func:`bench_skew` report (empty = pass)."""
    failures = []
    if not report["rows_match"]:
        rows = {k: v["output_rows"] for k, v in report["algorithms"].items()}
        failures.append(f"skew: output cardinality diverged ({rows})")
    gate = report["skew_gate"]
    if report["max_load_gain"] < gate["max_load_gain_threshold"]:
        failures.append(
            f"skew: max-load gain {report['max_load_gain']:.2f}x below "
            f"{gate['max_load_gain_threshold']:.2f}x"
        )
    if report["traffic_ratio"] > gate["traffic_ratio_threshold"]:
        failures.append(
            f"skew: traffic ratio {report['traffic_ratio']:.3f}x above "
            f"{gate['traffic_ratio_threshold']:.2f}x"
        )
    return failures


def bench_skew_report(
    out_path: str | Path = "BENCH_joins.json",
    **kwargs,
) -> int:
    """Run :func:`bench_skew` and merge the ablation into ``out_path``.

    Other keys of an existing report (kernels, joins, scaling) are
    preserved, mirroring :func:`bench_scaling_report`.  Returns
    non-zero when :func:`check_skew` finds a gate failure.
    """
    skew = bench_skew(**kwargs)
    out_file = Path(out_path)
    payload = {}
    if out_file.exists() and out_file.read_text().strip():
        payload = json.loads(out_file.read_text())
    payload["skew"] = skew
    write_report(out_file, payload)
    print(f"wrote {out_path}")
    for label, row in skew["algorithms"].items():
        print(
            f"  {label:9s} total {row['total_bytes']:.3e}B  "
            f"max-recv {row['max_received_bytes']:.3e}B  "
            f"recv-skew {row['receive_skew']:.2f}"
        )
    print(
        f"  gate: max-load gain {skew['max_load_gain']:.2f}x "
        f"(>= {SKEW_GATE_MAX_LOAD_GAIN}x), traffic "
        f"{skew['traffic_ratio']:.3f}x (<= {SKEW_GATE_TRAFFIC_RATIO}x)"
    )
    failures = check_skew(skew)
    for failure in failures:
        print(f"REGRESSION {failure}")
    return 1 if failures else 0


def write_report(path: str | Path, payload: dict) -> None:
    """Write one benchmark payload as pretty-printed JSON."""
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def lint_summary() -> dict:
    """Static-health summary of the package source (rule counts, files).

    Recorded into ``BENCH_joins.json`` under ``"analysis"`` so the
    growth trajectory tracks determinism/aliasing lint state alongside
    perf.  The scan targets the installed package directory, so it works
    from any working directory, and includes the whole-package dataflow
    pass (``"dataflow"``: module/function/call-edge counts, inferred
    task-context sizes, and analysis wall time).
    """
    from ..analysis import lint_paths

    package_dir = Path(__file__).resolve().parents[1]
    return lint_paths([package_dir], dataflow=True).summary()


def peak_rss_bytes() -> int | None:
    """Peak resident-set size of this process, or ``None`` if unknown.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; the monotone
    high-water mark covers the whole process lifetime, so it brackets
    every bench run executed so far.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def check_regressions(
    kernels: dict,
    baseline: dict,
    threshold: float = 2.0,
    joins: dict | None = None,
) -> list[str]:
    """Fused kernels/joins worse than ``threshold``x their baseline.

    Covers wall-clock for every baseline kernel and — when both sides
    measured it — fused peak allocation for every baseline join, so a
    change that trades the traffic ledger's determinism-friendly
    materializations for bloated intermediates fails the same gate as a
    slowdown.  Null peaks (benches run with ``measure_memory=False``)
    skip the memory comparison rather than failing it.
    """
    failures = []
    for name, entry in baseline.get("kernels", {}).items():
        current = kernels.get(name)
        if current is None:
            failures.append(f"{name}: kernel missing from current run")
            continue
        limit = entry["fused_seconds"] * threshold
        if current["fused_seconds"] > limit:
            failures.append(
                f"{name}: fused {current['fused_seconds']:.6f}s exceeds "
                f"{threshold}x baseline {entry['fused_seconds']:.6f}s"
            )
    if joins is not None:
        for name, entry in baseline.get("joins", {}).items():
            base_peak = entry.get("fused_peak_bytes")
            current = joins.get(name)
            if base_peak is None or current is None:
                continue
            peak = current.get("fused_peak_bytes")
            if peak is None:
                failures.append(
                    f"{name}: baseline has fused_peak_bytes but the current "
                    "run did not measure memory"
                )
            elif peak > base_peak * threshold:
                failures.append(
                    f"{name}: fused peak {peak} bytes exceeds {threshold}x "
                    f"baseline {base_peak} bytes"
                )
    return failures


def bench_smoke(
    out_path: str | Path = "BENCH_joins.json",
    baseline_path: str | Path = "benchmarks/bench_baseline.json",
    scaled_tuples: int = 60_000,
    num_nodes: int = 16,
    seed: int = 0,
    repeats: int = 3,
    warmup: int = 1,
    threshold: float = 2.0,
    measure_memory: bool = True,
) -> int:
    """Tiny-scale gate: bench kernels + joins, write JSON, check baseline."""
    from ..faults.chaos import chaos_summary

    kernels = bench_kernels(scaled_tuples, num_nodes, seed, repeats, warmup)
    joins = bench_joins(
        scaled_tuples, num_nodes, seed, repeats, warmup,
        measure_memory=measure_memory,
    )
    scaling = bench_scaling(
        scaled_tuples, num_nodes, seed, repeats, warmup, worker_counts=(1, 2, 4)
    )
    chaos = chaos_summary(seeds=(0, 1), num_nodes=4, worker_counts=(1, 2))
    payload = {
        "config": {
            "scaled_tuples": scaled_tuples,
            "num_nodes": num_nodes,
            "seed": seed,
            "repeats": repeats,
            "warmup": warmup,
        },
        "kernels": kernels,
        "joins": joins,
        "scaling": scaling,
        "chaos": chaos,
        "peak_rss_bytes": peak_rss_bytes(),
        "analysis": lint_summary(),
    }
    write_report(out_path, payload)
    print(f"wrote {out_path}")
    for label, row in joins.items():
        peak = row["fused_peak_bytes"]
        peak_note = f"  peak {peak / 1e6:.1f}MB" if peak is not None else ""
        print(
            f"  {label:7s} loop {row['loop_seconds']:.4f}s  "
            f"fused {row['fused_seconds']:.4f}s  ({row['speedup']:.2f}x)"
            f"{peak_note}"
        )
    print(
        f"  chaos   {chaos['runs']} runs, "
        f"{chaos['faults_injected']:.0f} faults injected, "
        f"{chaos['retransmit_bytes']:.0f} bytes retransmitted"
    )
    failures = []
    if not chaos["ok"]:
        failures.append(f"chaos: {chaos['failures']} run(s) violated invariants")
    # bench_joins already hard-fails on any fault-free retransmitted
    # byte; re-assert here so the gate is visible in one place.
    failures.extend(
        f"{label}: fault-free retransmit_bytes = {row['retransmit_bytes']}"
        for label, row in joins.items()
        if row["retransmit_bytes"] != 0.0
    )
    failures.extend(check_scaling(scaling))
    baseline_file = Path(baseline_path)
    if not baseline_file.exists() or not baseline_file.read_text().strip():
        print(f"no baseline at {baseline_path}; skipping regression check")
    else:
        failures.extend(
            check_regressions(
                kernels,
                json.loads(baseline_file.read_text()),
                threshold,
                joins=joins if measure_memory else None,
            )
        )
    for failure in failures:
        print(f"REGRESSION {failure}")
    if not failures:
        print(f"all kernels within {threshold}x of baseline; chaos ok")
    return 1 if failures else 0
