"""Fixed-byte encoding: each column rounds up to 1, 2, 4, or 8 bytes.

This is the "fixed byte (1, 2 or 4 byte) codes" scheme of Figure 7.  A
column whose dictionary code needs ``b`` bits is stored in the smallest
power-of-two byte width that fits it; character columns are stored raw.
The array codec packs values into little-endian unsigned integers of
that width.
"""

from __future__ import annotations

import numpy as np

from ..errors import SchemaError
from ..storage.schema import Column
from .base import Encoding

__all__ = ["FixedByteEncoding"]

_ALLOWED_WIDTHS = (1, 2, 4, 8)
_DTYPES = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


def _bytes_for_bits(bits: int) -> int:
    for width in _ALLOWED_WIDTHS:
        if bits <= width * 8:
            return width
    raise SchemaError(f"fixed-byte encoding cannot store {bits}-bit values")


class FixedByteEncoding(Encoding):
    """Round every column up to a machine-friendly byte width."""

    name = "fixed"

    def __init__(self, value_bits: int = 32):
        #: Default width (in bits) assumed for the array codec when values
        #: are encoded without an accompanying column definition.
        self.value_bits = value_bits

    def column_width_bytes(self, column: Column) -> float:
        if column.is_char:
            return float(column.char_length)
        return float(_bytes_for_bits(column.bits))

    def encode(self, values: np.ndarray) -> bytes:
        width = _bytes_for_bits(self.value_bits)
        return values.astype(_DTYPES[width]).tobytes()

    def decode(self, data: bytes, count: int) -> np.ndarray:
        width = _bytes_for_bits(self.value_bits)
        values = np.frombuffer(data, dtype=_DTYPES[width], count=count)
        return values.astype(np.int64)
