"""Value encodings: wire-width accounting plus real array codecs.

The three schemes evaluated in Figures 7-8 (:class:`FixedByteEncoding`,
:class:`VarByteEncoding`, :class:`DictionaryEncoding`) plus the Section
2.4 traffic-compression techniques (:class:`DeltaEncoding`, radix-prefix
grouping).
"""

from .base import Encoding
from .delta import DeltaEncoding, delta_encoded_size
from .dictionary import DictionaryEncoding, min_bits, pack_bits, unpack_bits
from .fixed import FixedByteEncoding
from .prefix import PrefixCodec, prefix_partitioned_size
from .varbyte import VarByteEncoding

__all__ = [
    "Encoding",
    "FixedByteEncoding",
    "VarByteEncoding",
    "DictionaryEncoding",
    "DeltaEncoding",
    "PrefixCodec",
    "min_bits",
    "pack_bits",
    "unpack_bits",
    "delta_encoded_size",
    "prefix_partitioned_size",
]
