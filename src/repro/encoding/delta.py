"""Delta encoding of sorted key streams (Section 2.4).

Track join imposes no message order within a phase, so senders are free
to sort outgoing key columns and transmit first-order deltas, which are
small and compress well.  We implement the codec as sort + delta +
variable-length (LEB128-style) packing and expose the achieved wire size
so the compression ablation can report real byte counts.
"""

from __future__ import annotations

import numpy as np

from .base import Encoding
from ..storage.schema import Column
from ..errors import ValidationError

__all__ = ["DeltaEncoding", "delta_encoded_size"]


def _leb128_sizes(values: np.ndarray) -> np.ndarray:
    """Bytes each value needs under 7-bit-per-byte varint packing."""
    sizes = np.ones(len(values), dtype=np.int64)
    remaining = values >> 7
    while np.any(remaining > 0):
        sizes += (remaining > 0).astype(np.int64)
        remaining >>= 7
    return sizes


def delta_encoded_size(keys: np.ndarray) -> int:
    """Wire bytes for a key set sent sorted + delta + varint encoded."""
    if len(keys) == 0:
        return 0
    ordered = np.sort(keys.astype(np.int64))
    deltas = np.empty_like(ordered)
    deltas[0] = ordered[0]
    np.subtract(ordered[1:], ordered[:-1], out=deltas[1:])
    return int(_leb128_sizes(deltas).sum())


class DeltaEncoding(Encoding):
    """Sorted-delta varint codec for integer key streams."""

    name = "delta"

    def column_width_bytes(self, column: Column) -> float:
        # Average width is data dependent; callers should use
        # :func:`delta_encoded_size` on the actual values.  As a schema
        # level estimate we assume dense keys, whose deltas fit one byte.
        if column.is_char:
            return float(column.char_length)
        return 1.0

    def encode(self, values: np.ndarray) -> bytes:
        ordered = np.sort(values.astype(np.int64))
        deltas = np.empty_like(ordered)
        if len(ordered):
            deltas[0] = ordered[0]
            np.subtract(ordered[1:], ordered[:-1], out=deltas[1:])
        out = bytearray()
        for delta in deltas.tolist():
            if delta < 0:
                raise ValidationError("delta codec needs non-negative sorted input")
            while True:
                byte = delta & 0x7F
                delta >>= 7
                if delta:
                    out.append(byte | 0x80)
                else:
                    out.append(byte)
                    break
        return bytes(out)

    def decode(self, data: bytes, count: int) -> np.ndarray:
        values = np.empty(count, dtype=np.int64)
        pos = 0
        running = 0
        for i in range(count):
            shift = 0
            delta = 0
            while True:
                byte = data[pos]
                pos += 1
                delta |= (byte & 0x7F) << shift
                if not byte & 0x80:
                    break
                shift += 7
            running += delta
            values[i] = running
        return values
