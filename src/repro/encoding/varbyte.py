"""Variable-byte base-100 encoding.

Workloads X and Y store uncompressed values in the commercial system's
``number`` type, which the paper footnotes as "base 100 encoding": each
byte carries two decimal digits.  A value with ``g`` decimal digits thus
occupies ``ceil(g / 2)`` bytes.  Character columns are stored raw.

Width accounting uses the column's declared decimal-digit count (the
*average* width of the column on the wire); the array codec implements
the real per-value variable-length format with a digit-count header
nibble so round-trips are exact.
"""

from __future__ import annotations

import math

import numpy as np

from ..storage.schema import Column
from ..errors import ValidationError
from .base import Encoding

__all__ = ["VarByteEncoding"]


class VarByteEncoding(Encoding):
    """Base-100 variable byte codes (two decimal digits per byte)."""

    name = "varbyte"

    def column_width_bytes(self, column: Column) -> float:
        if column.is_char:
            return float(column.char_length)
        digits = column.effective_decimal_digits()
        return float(math.ceil(digits / 2))

    def encode(self, values: np.ndarray) -> bytes:
        out = bytearray()
        for value in values.tolist():
            if value < 0:
                raise ValidationError("base-100 codec stores non-negative values only")
            digits = len(str(value))
            nbytes = max(1, math.ceil(digits / 2))
            out.append(nbytes)  # 1-byte length header
            remaining = value
            body = bytearray()
            for _ in range(nbytes):
                body.append(remaining % 100)
                remaining //= 100
            out.extend(reversed(body))
        return bytes(out)

    def decode(self, data: bytes, count: int) -> np.ndarray:
        values = np.empty(count, dtype=np.int64)
        pos = 0
        for i in range(count):
            nbytes = data[pos]
            pos += 1
            value = 0
            for b in data[pos : pos + nbytes]:
                value = value * 100 + b
            values[i] = value
            pos += nbytes
        return values

    @staticmethod
    def wire_bytes_for_value(value: int) -> int:
        """Size of one value in the headerless base-100 format.

        Used for exact per-value accounting when a column's values have
        heterogeneous digit counts.
        """
        digits = len(str(int(value)))
        return max(1, math.ceil(digits / 2))
