"""Radix-prefix compression: partition at the source to share prefixes.

Section 2.4 describes partitioning outgoing values on their first ``p``
bits so each partition transmits one shared ``p``-bit prefix plus packed
``(w - p)``-bit suffixes.  More partition passes widen the prefix and
improve the rate at the cost of CPU work, which is the trade-off the
compression ablation sweeps.
"""

from __future__ import annotations

import math

import numpy as np

from .dictionary import pack_bits, unpack_bits
from ..errors import ValidationError

__all__ = ["prefix_partitioned_size", "PrefixCodec"]


def prefix_partitioned_size(values: np.ndarray, value_bits: int, prefix_bits: int) -> float:
    """Wire bytes for ``values`` sent as prefix groups + packed suffixes.

    Each *occupied* prefix group costs the prefix itself plus a group
    length (assumed ``ceil(value_bits/8)`` bytes); every value then costs
    only its ``value_bits - prefix_bits`` suffix.
    """
    if prefix_bits < 0 or prefix_bits > value_bits:
        raise ValidationError(f"prefix_bits {prefix_bits} out of range for {value_bits}-bit values")
    if len(values) == 0:
        return 0.0
    if prefix_bits == 0:
        return len(values) * value_bits / 8.0
    prefixes = np.unique(values.astype(np.uint64) >> np.uint64(value_bits - prefix_bits))
    group_header = prefix_bits / 8.0 + math.ceil(value_bits / 8)
    suffix_bytes = len(values) * (value_bits - prefix_bits) / 8.0
    return len(prefixes) * group_header + suffix_bytes


class PrefixCodec:
    """Real codec for the prefix-partitioned format (exact round-trip)."""

    def __init__(self, value_bits: int, prefix_bits: int):
        if not 0 < prefix_bits < value_bits <= 63:
            raise ValidationError("need 0 < prefix_bits < value_bits <= 63")
        self.value_bits = value_bits
        self.prefix_bits = prefix_bits

    def encode(self, values: np.ndarray) -> bytes:
        suffix_bits = self.value_bits - self.prefix_bits
        shifted = values.astype(np.uint64) >> np.uint64(suffix_bits)
        mask = (np.uint64(1) << np.uint64(suffix_bits)) - np.uint64(1)
        suffixes = values.astype(np.uint64) & mask
        order = np.argsort(shifted, kind="stable")
        prefixes, starts = np.unique(shifted[order], return_index=True)
        counts = np.diff(np.append(starts, len(values)))
        out = bytearray()
        out += np.array([len(prefixes), len(values)], dtype=np.int64).tobytes()
        out += prefixes.astype(np.int64).tobytes()
        out += counts.astype(np.int64).tobytes()
        out += pack_bits(suffixes[order], suffix_bits)
        return bytes(out)

    def decode(self, data: bytes) -> np.ndarray:
        num_groups, count = np.frombuffer(data, dtype=np.int64, count=2)
        offset = 16
        prefixes = np.frombuffer(data, dtype=np.int64, count=int(num_groups), offset=offset)
        offset += int(num_groups) * 8
        counts = np.frombuffer(data, dtype=np.int64, count=int(num_groups), offset=offset)
        offset += int(num_groups) * 8
        suffix_bits = self.value_bits - self.prefix_bits
        suffixes = unpack_bits(data[offset:], suffix_bits, int(count))
        expanded_prefixes = np.repeat(prefixes, counts)
        return (expanded_prefixes.astype(np.int64) << suffix_bits) | suffixes
