"""Minimum-bit dictionary encoding.

The paper's best-compressed results (Figure 9) re-encode every column of
the intermediate relation with a dictionary using "the minimum number of
bits required to encode the distinct values".  Width accounting therefore
charges ``bits / 8`` bytes per value — fractional widths are intentional
and match the paper's bit-level totals (e.g. 79-bit R tuples for Q1).

The array codec builds a real sorted dictionary over the input, packs the
indexes at the minimal bit width, and restores original values exactly on
decode.  Dictionary *dereference* traffic is omitted, as in the paper
("the join can proceed solely on compressed data").
"""

from __future__ import annotations

import math

import numpy as np

from ..storage.schema import Column
from ..errors import ValidationError
from .base import Encoding

__all__ = ["DictionaryEncoding", "min_bits", "pack_bits", "unpack_bits"]


def min_bits(distinct_values: int) -> int:
    """Bits needed to index ``distinct_values`` dictionary entries."""
    if distinct_values <= 1:
        return 1
    return math.ceil(math.log2(distinct_values))


def pack_bits(values: np.ndarray, bits: int) -> bytes:
    """Pack non-negative integers below ``2**bits`` into a dense bitstream."""
    if bits <= 0 or bits > 64:
        raise ValidationError(f"bit width out of range: {bits}")
    if len(values) == 0:
        return b""
    as_bits = (
        (values[:, None].astype(np.uint64) >> np.arange(bits, dtype=np.uint64)) & np.uint64(1)
    ).astype(np.uint8)
    return np.packbits(as_bits.reshape(-1), bitorder="little").tobytes()


def unpack_bits(data: bytes, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`."""
    if count == 0:
        return np.empty(0, dtype=np.int64)
    raw = np.unpackbits(np.frombuffer(data, dtype=np.uint8), bitorder="little")
    raw = raw[: count * bits].reshape(count, bits).astype(np.uint64)
    weights = np.uint64(1) << np.arange(bits, dtype=np.uint64)
    return (raw * weights).sum(axis=1).astype(np.int64)


class DictionaryEncoding(Encoding):
    """Minimum-bit dictionary codes (optimal compression of Figure 9)."""

    name = "dictionary"

    def column_width_bytes(self, column: Column) -> float:
        if column.is_char:
            # Character columns are dictionary-coded too when bits are
            # declared; otherwise they stay raw.
            return float(column.char_length)
        return column.bits / 8.0

    def encode(self, values: np.ndarray) -> bytes:
        dictionary, indexes = np.unique(values, return_inverse=True)
        bits = min_bits(len(dictionary))
        header = np.array([len(dictionary), bits, len(values)], dtype=np.int64).tobytes()
        return header + dictionary.astype(np.int64).tobytes() + pack_bits(indexes, bits)

    def decode(self, data: bytes, count: int) -> np.ndarray:
        dict_size, bits, stored = np.frombuffer(data, dtype=np.int64, count=3)
        if stored != count:
            raise ValidationError(f"stream holds {stored} values, caller expected {count}")
        offset = 3 * 8
        dictionary = np.frombuffer(data, dtype=np.int64, count=int(dict_size), offset=offset)
        offset += int(dict_size) * 8
        indexes = unpack_bits(data[offset:], int(bits), count)
        return dictionary[indexes]
