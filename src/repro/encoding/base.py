"""Encoding interface: logical columns to wire widths and byte streams.

Encodings play two roles in the reproduction:

1. **Width accounting** — every encoding maps a :class:`~repro.storage.schema.Column`
   to a per-value wire width in bytes (possibly fractional for bit-packed
   dictionary codes).  All network traffic in the simulator is derived
   from these widths, matching how the paper evaluates the same join under
   fixed-byte, variable-byte, and dictionary codes (Figures 7-8).

2. **Real codecs** — the integer encodings also implement ``encode`` /
   ``decode`` on numpy arrays so that the compression claims are backed
   by runnable code (tested for exact round-trips).
"""

from __future__ import annotations

import abc

import numpy as np

from ..storage.schema import Column

__all__ = ["Encoding"]


class Encoding(abc.ABC):
    """Abstract value encoding.

    Subclasses define :meth:`column_width_bytes`; encodings that operate
    on integer arrays additionally override :meth:`encode` and
    :meth:`decode` with real codecs.
    """

    #: Short identifier used in reports ("fixed", "varbyte", "dictionary").
    name: str = "abstract"

    @abc.abstractmethod
    def column_width_bytes(self, column: Column) -> float:
        """Per-value wire width of ``column`` in bytes (may be fractional)."""

    def encode(self, values: np.ndarray) -> bytes:
        """Encode an integer array to a byte string."""
        raise NotImplementedError(f"{self.name} encoding has no array codec")

    def decode(self, data: bytes, count: int) -> np.ndarray:
        """Decode ``count`` values previously produced by :meth:`encode`."""
        raise NotImplementedError(f"{self.name} encoding has no array codec")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
