"""The operator registry: one table of distributed join algorithms.

Single source of truth for algorithm name → operator construction,
paper table label, and analytic cost estimate.  The query executor
(`repro.query.executor`), the cost-model optimizer
(:func:`repro.costmodel.optimizer.rank_algorithms`), and the experiment
tables (`repro.experiments.tables`) all consume this registry instead
of carrying their own name tables.

Registry order is part of the contract: :func:`rank_algorithms` sorts
the entries stably by estimated cost, so on ties the earlier entry wins
— the order below reproduces the optimizer's historical tie-breaking
(broadcast before hash before track variants).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..errors import UnknownKeyError
from .base import DistributedJoin
from .broadcast import BroadcastJoin
from .grace_hash import GraceHashJoin

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..costmodel.formulas import CorrelationClasses
    from ..costmodel.stats import JoinStats

__all__ = ["AlgorithmInfo", "ALGORITHMS", "algorithm", "algorithm_names", "create"]

#: An analytic traffic estimate: (stats, correlation classes) → bytes.
CostFn = Callable[["JoinStats", "CorrelationClasses | None"], float]


@dataclass(frozen=True)
class AlgorithmInfo:
    """One registered distributed join algorithm.

    Parameters
    ----------
    name:
        Canonical identifier ("HJ", "2TJ-R", ...) used by query plans,
        reports, and the optimizer.
    description:
        One-line summary for docs and CLI listings.
    factory:
        Zero-argument constructor of a fresh operator instance.
    cost:
        Analytic network-cost estimate of Section 3, or ``None`` for
        operators the optimizer does not rank.
    paper_label:
        Row label in the paper's Tables 2-4 for the variants the
        implementation study measures, ``None`` otherwise.
    tracking:
        True for operators with a tracking phase (the track-join
        family).  Graceful degradation keys on this: when tracking
        traffic exhausts its fault budget, the executor falls back to
        the cheapest non-tracking entry.
    skew_resistant:
        True for operators that keep per-node received bytes bounded
        under heavy key skew (load-aware destinations, heavy-hitter
        sharding).  The optimizer's load-weighted ranking penalizes
        entries without it when statistics report a heavy hitter.
    """

    name: str
    description: str
    factory: Callable[[], DistributedJoin]
    cost: CostFn | None = None
    paper_label: str | None = None
    tracking: bool = False
    skew_resistant: bool = False


def _formulas():
    # Deferred: repro.costmodel's package init imports the optimizer,
    # which consumes this registry — a top-level import here would close
    # that cycle during interpreter start-up.
    from ..costmodel import formulas

    return formulas


def _track_join():
    # Deferred for the same reason: repro.core's package init pulls in
    # operators that import repro.joins.
    from ..core import track_join

    return track_join


def _balance():
    from ..core import balance

    return balance


def _skew():
    from ..core import skew

    return skew


#: Registry order matters: it is the optimizer's tie-break (see module
#: docstring) and the row order of the experiment tables.
ALGORITHMS: tuple[AlgorithmInfo, ...] = (
    AlgorithmInfo(
        "BJ-R",
        "broadcast join, replicating R to all S locations",
        lambda: BroadcastJoin("R"),
        cost=lambda stats, classes: _formulas().broadcast_cost(stats, "R"),
    ),
    AlgorithmInfo(
        "BJ-S",
        "broadcast join, replicating S to all R locations",
        lambda: BroadcastJoin("S"),
        cost=lambda stats, classes: _formulas().broadcast_cost(stats, "S"),
    ),
    AlgorithmInfo(
        "HJ",
        "Grace hash join, hash-partitioning both inputs",
        GraceHashJoin,
        cost=lambda stats, classes: _formulas().hash_join_cost(stats),
        paper_label="HJ",
    ),
    AlgorithmInfo(
        "2TJ-R",
        "2-phase track join, selectively broadcasting R to S locations",
        lambda: _track_join().TrackJoin2("RS"),
        cost=lambda stats, classes: _formulas().track2_cost(stats, "RS"),
        paper_label="2TJ",
        tracking=True,
    ),
    AlgorithmInfo(
        "2TJ-S",
        "2-phase track join, selectively broadcasting S to R locations",
        lambda: _track_join().TrackJoin2("SR"),
        cost=lambda stats, classes: _formulas().track2_cost(stats, "SR"),
        tracking=True,
    ),
    AlgorithmInfo(
        "3TJ",
        "3-phase track join, choosing the cheaper direction per key",
        lambda: _track_join().TrackJoin3(),
        cost=lambda stats, classes: _formulas().track3_cost(stats, classes),
        paper_label="3TJ",
        tracking=True,
    ),
    AlgorithmInfo(
        "4TJ",
        "4-phase track join, adding per-key migrations",
        lambda: _track_join().TrackJoin4(),
        cost=lambda stats, classes: _formulas().track4_cost(stats, classes),
        paper_label="4TJ",
        tracking=True,
    ),
    # Extensions beyond the paper's measured variants (Section 5 future
    # work): appended after the paper rows so tie-breaks and table
    # order stay historical.
    AlgorithmInfo(
        "4TJ-bal",
        "4-phase track join with load-balanced destination choices",
        lambda: _balance().BalanceAwareTrackJoin(),
        # At zero tolerance the balancer only re-picks cost-equivalent
        # destinations, so its traffic estimate is the plain 4-phase one.
        cost=lambda stats, classes: _formulas().track4_cost(stats, classes),
        tracking=True,
        skew_resistant=True,
    ),
    AlgorithmInfo(
        "4TJ-shard",
        "4-phase track join with heavy-hitter sharding",
        lambda: _skew().SkewShardTrackJoin(),
        cost=lambda stats, classes: _formulas().track4_shard_cost(stats, classes),
        tracking=True,
        skew_resistant=True,
    ),
)

_BY_NAME: dict[str, AlgorithmInfo] = {info.name: info for info in ALGORITHMS}


def algorithm_names() -> tuple[str, ...]:
    """All registered algorithm names, in registry order."""
    return tuple(info.name for info in ALGORITHMS)


def algorithm(name: str) -> AlgorithmInfo:
    """Look one algorithm up by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise UnknownKeyError(
            f"unknown join algorithm {name!r}; registered: {sorted(_BY_NAME)}"
        ) from None


def create(name: str) -> DistributedJoin:
    """Construct a fresh operator instance by name."""
    return algorithm(name).factory()
