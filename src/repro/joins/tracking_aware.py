"""Rid-based hash joins: late materialization and the tracking-aware variant.

Section 3.2 compares track join against hash joins that defer payload
access by carrying record identifiers (rids):

* :class:`LateMaterializationHashJoin` — keys are hashed with implicit
  rids, the join happens at the hash nodes, and payloads are fetched at
  output cardinality (cost ``(tR+tS)*wk + tRS*(wR+wS+log tR+log tS)``).

* :class:`TrackingAwareHashJoin` — the rid's node component is used as
  free tracking information: the joined result migrates to the location
  of the wider-payload tuple and only the narrower payload crosses the
  network (cost ``(tR+tS)*wk + tRS*(min(wR,wS)+wk+log tR+log tS)``).

The paper proves 2-phase track join subsumes the tracking-aware variant
(it deduplicates keys during tracking and resends keys, which compress
better than rids); these operators exist so that claim is measurable.
"""

from __future__ import annotations

import math

import numpy as np

from ..cluster.cluster import Cluster
from ..cluster.network import MessageClass
from ..exchange.base import send_rows
from ..exchange.gather import flush
from ..exchange.shuffle import KeyShuffle
from ..storage.table import DistributedTable, LocalPartition
from ..timing.profile import ExecutionProfile
from .base import DistributedJoin, JoinSpec
from .local import join_indices

__all__ = ["LateMaterializationHashJoin", "TrackingAwareHashJoin", "rid_width"]


def rid_width(total_rows: int) -> float:
    """Bytes of a local record identifier addressing ``total_rows``."""
    return math.ceil(math.log2(max(2, total_rows)) / 8)


def _scatter_keys(
    cluster: Cluster,
    table: DistributedTable,
    spec: JoinSpec,
    profile: ExecutionProfile,
    side: str,
) -> list[LocalPartition]:
    """Hash-scatter (key, implicit rid) streams; returns per-node arrivals.

    The returned partitions carry ``node``/``pos`` columns identifying
    each tuple's origin, but only the key column is accounted on the
    wire — rids are implicit in message origin and order.
    """
    key_width = table.schema.key_width(spec.encoding)
    shuffle = KeyShuffle(key_width, f"{side} keys", hash_seed=spec.hash_seed)
    return shuffle.run(cluster, profile, table.partitions)


def _rid_pairs(
    cluster: Cluster,
    recv_r: list[LocalPartition],
    recv_s: list[LocalPartition],
    profile: ExecutionProfile,
    key_width: float,
) -> list[LocalPartition]:
    """Join the scattered key streams at every hash node into rid pairs."""

    def pair_node(node: int) -> LocalPartition:
        r_part, s_part = recv_r[node], recv_s[node]
        idx_r, idx_s = join_indices(r_part.keys, s_part.keys)
        profile.add_cpu_at(
            "Join keys into rid pairs",
            "merge",
            node,
            (r_part.num_rows + s_part.num_rows + len(idx_r)) * key_width,
        )
        return LocalPartition(
            keys=r_part.keys[idx_r],
            columns={
                "r_node": r_part.columns["node"][idx_r],
                "r_pos": r_part.columns["pos"][idx_r],
                "s_node": s_part.columns["node"][idx_s],
                "s_pos": s_part.columns["pos"][idx_s],
            },
        )

    return cluster.run_phase(pair_node, profile=profile)


class LateMaterializationHashJoin(DistributedJoin):
    """Hash join on keys + rids, fetching payloads at output cardinality."""

    name = "LMHJ"

    def _execute(
        self,
        cluster: Cluster,
        table_r: DistributedTable,
        table_s: DistributedTable,
        spec: JoinSpec,
        profile: ExecutionProfile,
    ) -> list[LocalPartition]:
        recv_r = _scatter_keys(cluster, table_r, spec, profile, "R")
        recv_s = _scatter_keys(cluster, table_s, spec, profile, "S")
        key_width = table_r.schema.key_width(spec.encoding)
        pairs = _rid_pairs(cluster, recv_r, recv_s, profile, key_width)

        rid_r = rid_width(table_r.total_rows)
        rid_s = rid_width(table_s.total_rows)

        def fetch_node(node: int) -> LocalPartition:
            pair = pairs[node]
            columns: dict[str, np.ndarray] = {}
            for side, table, rid_bytes, category in (
                ("r", table_r, rid_r, MessageClass.R_TUPLES),
                ("s", table_s, rid_s, MessageClass.S_TUPLES),
            ):
                payload_width = table.schema.payload_width(spec.encoding)
                origin = pair.columns[f"{side}_node"]
                pos = pair.columns[f"{side}_pos"]
                fetched = {
                    name: np.empty(pair.num_rows, dtype=values.dtype)
                    for name, values in table.partitions[0].columns.items()
                }
                for src in np.unique(origin):
                    sel = np.flatnonzero(origin == src)
                    # Fetch request: one rid per output tuple.
                    cluster.network.send(
                        node, int(src), MessageClass.RIDS, len(sel) * rid_bytes
                    )
                    # Response: the payload columns, in request order.
                    cluster.network.send(
                        int(src), node, category, len(sel) * payload_width
                    )
                    if int(src) != node:
                        profile.add_net_at(
                            f"Fetch {side.upper()} payloads",
                            node,
                            len(sel) * rid_bytes,
                        )
                        profile.add_net_at(
                            f"Return {side.upper()} payloads",
                            int(src),
                            len(sel) * payload_width,
                        )
                    rows = table.partitions[int(src)].take(pos[sel])
                    for name, values in rows.columns.items():
                        fetched[name][sel] = values
                for name, values in fetched.items():
                    columns[f"{side}.{name}"] = values
            return LocalPartition(keys=pair.keys, columns=columns)

        output = cluster.run_phase(fetch_node, profile=profile)
        # Request/response messages carry no payloads; drain them at the
        # phase barrier (the serial loop drained per node as it went).
        flush(cluster)
        return output


class TrackingAwareHashJoin(DistributedJoin):
    """Rid-based hash join exploiting the rid's implicit location (Sec 3.2).

    The result migrates to the wider-payload tuple's node; only the
    narrower payload (plus the key and rids) crosses the network.
    """

    name = "TAHJ"

    def _execute(
        self,
        cluster: Cluster,
        table_r: DistributedTable,
        table_s: DistributedTable,
        spec: JoinSpec,
        profile: ExecutionProfile,
    ) -> list[LocalPartition]:
        recv_r = _scatter_keys(cluster, table_r, spec, profile, "R")
        recv_s = _scatter_keys(cluster, table_s, spec, profile, "S")
        key_width = table_r.schema.key_width(spec.encoding)
        pairs = _rid_pairs(cluster, recv_r, recv_s, profile, key_width)

        wide_is_r = table_r.schema.payload_width(spec.encoding) >= table_s.schema.payload_width(
            spec.encoding
        )
        wide, narrow = ("r", "s") if wide_is_r else ("s", "r")
        wide_table = table_r if wide_is_r else table_s
        narrow_table = table_s if wide_is_r else table_r
        rid_wide = rid_width(wide_table.total_rows)
        rid_narrow = rid_width(narrow_table.total_rows)
        narrow_width = key_width + narrow_table.schema.payload_width(spec.encoding)
        narrow_category = (
            MessageClass.S_TUPLES if wide_is_r else MessageClass.R_TUPLES
        )

        # Per (narrow rid, wide node) send-once bookkeeping, and per wide
        # node the set of wide rids participating in the join.
        def schedule_t_node(t_node: int):
            pair = pairs[t_node]
            if pair.num_rows == 0:
                return [], []
            n_node = pair.columns[f"{narrow}_node"]
            n_pos = pair.columns[f"{narrow}_pos"]
            w_node = pair.columns[f"{wide}_node"]
            w_pos = pair.columns[f"{wide}_pos"]
            # Dedup (narrow tuple, destination) so each narrow tuple
            # crosses once per wide node; the rejoin by key restores the
            # full output at the destination.
            combo = np.stack([n_node, n_pos, w_node], axis=1)
            unique_send = np.unique(combo, axis=0)
            profile.add_cpu_at(
                "Deduplicate rid pairs", "aggregate", t_node, pair.num_rows * 16.0
            )
            jobs: list[tuple[int, int, np.ndarray, np.ndarray]] = []
            wides: list[tuple[int, np.ndarray]] = []
            for src in np.unique(unique_send[:, 0]):
                sel = unique_send[unique_send[:, 0] == src]
                # Instruction to the narrow node: (local rid, destination).
                nbytes = len(sel) * (rid_narrow + spec.location_width)
                cluster.network.send(t_node, int(src), MessageClass.RIDS, nbytes)
                if int(src) != t_node:
                    profile.add_net_at("Send narrow rids", t_node, nbytes)
                jobs.append((int(src), t_node, sel[:, 1], sel[:, 2]))
            combo_w = np.stack([w_node, w_pos], axis=1)
            unique_wide = np.unique(combo_w, axis=0)
            for dst in np.unique(unique_wide[:, 0]):
                sel = unique_wide[unique_wide[:, 0] == dst]
                # The wide node learns which of its rids participate.
                nbytes = len(sel) * rid_wide
                cluster.network.send(t_node, int(dst), MessageClass.RIDS, nbytes)
                if int(dst) != t_node:
                    profile.add_net_at("Send wide rids", t_node, nbytes)
                wides.append((int(dst), sel[:, 1]))
            return jobs, wides

        scheduled = cluster.run_phase(schedule_t_node, profile=profile)
        send_jobs: dict[int, list[tuple[int, np.ndarray, np.ndarray]]] = {}
        wide_rows: dict[int, list[np.ndarray]] = {}
        for jobs, wides in scheduled:
            for src, t_node, positions, destinations in jobs:
                send_jobs.setdefault(src, []).append((t_node, positions, destinations))
            for dst, positions in wides:
                wide_rows.setdefault(dst, []).append(positions)
        flush(cluster)

        # Narrow nodes ship (key + narrow payload) to each destination.
        # Each job's destination split is computed once (a single fused
        # gather) and reused by the send pass and the arrivals pass.
        job_sources = list(send_jobs.items())

        def split_jobs(index: int) -> list[tuple[int, int, LocalPartition]]:
            src, jobs = job_sources[index]
            partition = narrow_table.partitions[src]
            batches_here: list[tuple[int, int, LocalPartition]] = []
            for _t_node, positions, destinations in jobs:
                batches = partition.split_by(
                    destinations, cluster.num_nodes, rows=positions
                )
                for dst, batch in enumerate(batches):
                    if batch is None:
                        continue
                    batches_here.append((src, dst, batch))
            return batches_here

        job_batches: list[tuple[int, int, LocalPartition]] = []
        for batches_here in cluster.run_phase(
            split_jobs,
            tasks=len(job_sources),
            profile=profile,
            task_nodes=[src for src, _ in job_sources],
        ):
            job_batches.extend(batches_here)
        for src, dst, batch in job_batches:
            send_rows(
                cluster, profile, narrow_category, src, dst, batch, narrow_width,
                "Transfer narrow tuples", "Local copy narrow tuples",
            )
        flush(cluster)
        arrivals: dict[int, list[LocalPartition]] = {}
        for _src, dst, batch in job_batches:
            arrivals.setdefault(dst, []).append(batch)

        # Rejoin at the wide nodes: selected local tuples vs arrivals.
        empty_names = tuple("r." + n for n in table_r.payload_names) + tuple(
            "s." + n for n in table_s.payload_names
        )

        def rejoin_node(node: int) -> LocalPartition:
            received = arrivals.get(node, [])
            if not received or node not in wide_rows:
                return LocalPartition.empty(empty_names)
            narrow_part = LocalPartition.concat(received)
            positions = np.unique(np.concatenate(wide_rows[node]))
            wide_part = wide_table.partitions[node].take(positions)
            idx_w, idx_n = join_indices(wide_part.keys, narrow_part.keys)
            profile.add_cpu_at(
                "Rejoin at wide node",
                "merge",
                node,
                (wide_part.num_rows + narrow_part.num_rows + len(idx_w)) * narrow_width,
            )
            columns: dict[str, np.ndarray] = {}
            for name, values in wide_part.columns.items():
                columns[f"{wide}.{name}"] = values[idx_w]
            for name, values in narrow_part.columns.items():
                columns[f"{narrow}.{name}"] = values[idx_n]
            return LocalPartition(keys=wide_part.keys[idx_w], columns=columns)

        return cluster.run_phase(rejoin_node, profile=profile)
