"""Broadcast join: replicate one table to every node.

The cheapest plan when one input is tiny, and one of the seven
algorithms compared throughout the paper's Figures 3-11 (``BJ-R``
broadcasts table R, ``BJ-S`` broadcasts S).  Every node ships its local
fragment of the broadcast side to all other nodes and then joins the
full broadcast table against its local fragment of the other side.
"""

from __future__ import annotations

from ..cluster.cluster import Cluster
from ..cluster.network import MessageClass
from ..errors import ValidationError
from ..exchange.broadcast import Broadcast
from ..exchange.gather import drain_category
from ..fastpath import fused_enabled
from ..storage.table import DistributedTable, LocalPartition
from ..timing.profile import ExecutionProfile
from .base import DistributedJoin, JoinSpec
from .local import local_join

__all__ = ["BroadcastJoin"]


class BroadcastJoin(DistributedJoin):
    """Broadcast R to all S locations, or S to all R locations."""

    def __init__(self, broadcast: str = "R"):
        if broadcast not in ("R", "S"):
            raise ValidationError(f"broadcast side must be 'R' or 'S', got {broadcast!r}")
        self.broadcast = broadcast
        self.name = f"BJ-{broadcast}"

    def _execute(
        self,
        cluster: Cluster,
        table_r: DistributedTable,
        table_s: DistributedTable,
        spec: JoinSpec,
        profile: ExecutionProfile,
    ) -> list[LocalPartition]:
        if self.broadcast == "R":
            moving, staying = table_r, table_s
            category = MessageClass.R_TUPLES
            step = "R tuples"
        else:
            moving, staying = table_s, table_r
            category = MessageClass.S_TUPLES
            step = "S tuples"
        width = moving.schema.tuple_width(spec.encoding)
        Broadcast(category, width, step).scatter(cluster, profile, moving.partitions)

        # On the fused path every node joins the same broadcast multiset,
        # so the full table (and, via local_join, its key index) is
        # assembled once and shared instead of re-concatenated and
        # re-sorted per node.  The index is built here, before the join
        # phase fans out, so concurrent node tasks only ever read it.
        # Inboxes are still drained per node so the network sees
        # identical deliveries.
        shared_moving = (
            LocalPartition.concat(list(moving.partitions)) if fused_enabled() else None
        )
        if shared_moving is not None and shared_moving.num_rows and self.broadcast == "S":
            # Only BJ-S probes the shared table as the join's right side.
            shared_moving.key_index()

        def join_node(node: int) -> LocalPartition:
            received = drain_category(cluster, node, category)
            if shared_moving is not None:
                full_moving = shared_moving
            else:
                full_moving = LocalPartition.concat([moving.partitions[node]] + received)
            local = staying.partitions[node]
            if self.broadcast == "R":
                joined = local_join(full_moving, local, "r.", "s.")
            else:
                joined = local_join(local, full_moving, "r.", "s.")
            in_bytes = full_moving.num_rows * width + local.num_rows * staying.schema.tuple_width(spec.encoding)
            out_bytes = joined.num_rows * (
                table_r.schema.tuple_width(spec.encoding)
                + table_s.schema.payload_width(spec.encoding)
            )
            profile.add_cpu_at("Final merge-join", "merge", node, in_bytes + out_bytes)
            if not spec.materialize:
                joined = LocalPartition(keys=joined.keys)
            return joined

        return cluster.run_phase(join_node, profile=profile)
