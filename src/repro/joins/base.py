"""Distributed join interface: configuration, results, shared machinery.

Every algorithm (broadcast, Grace hash, tracking-aware hash, and the
three track join variants) implements :class:`DistributedJoin` and
returns a :class:`JoinResult` carrying the materialized output, the
byte-exact traffic ledger, and the execution profile used by the timing
model.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ..cluster.cluster import Cluster
from ..cluster.network import MessageClass, TrafficLedger
from ..encoding.base import Encoding
from ..encoding.dictionary import DictionaryEncoding
from ..errors import JoinConfigError
from ..storage.table import DistributedTable, LocalPartition
from ..timing.profile import ExecutionProfile

__all__ = ["JoinSpec", "JoinResult", "DistributedJoin"]


@dataclass(frozen=True)
class JoinSpec:
    """Tunable parameters shared by all distributed joins.

    Parameters
    ----------
    encoding:
        Wire encoding used for every column (Figures 7-8 sweep this).
    location_width:
        ``M`` of the paper: bytes of a node identifier inside location
        and migration messages.  1 byte suffices for up to 256 nodes.
    count_width_r / count_width_s:
        Bytes of the per-node match counters carried by 3/4-phase
        tracking messages (the paper uses 1 byte for workload X, 2 for
        Y; counts that overflow are aggregated at the destination).
    hash_seed:
        Seed of the key-hash that places scheduling/hash-join work.
    materialize:
        When False, joins compute output cardinality but skip building
        output payload arrays (large-scale traffic runs).
    group_locations:
        Section 2.4 optimization: batch location messages by node so
        the node id is amortized over many keys instead of repeated
        per key.
    delta_keys:
        Section 2.4 optimization: account tracking key streams at their
        sorted-delta-varint size instead of the plain key width.
    """

    encoding: Encoding = field(default_factory=DictionaryEncoding)
    location_width: float = 1.0
    count_width_r: float = 1.0
    count_width_s: float = 1.0
    hash_seed: int = 0
    materialize: bool = True
    group_locations: bool = False
    delta_keys: bool = False


@dataclass
class JoinResult:
    """Outcome of one distributed join execution."""

    algorithm: str
    output_rows: int
    output: list[LocalPartition] | None
    traffic: TrafficLedger
    profile: ExecutionProfile

    @property
    def network_bytes(self) -> float:
        """Total bytes that crossed the network."""
        return self.traffic.total_bytes

    def class_bytes(self, category: MessageClass) -> float:
        """Bytes of one message class (for stacked-bar reproductions)."""
        return self.traffic.class_bytes(category)

    def breakdown(self) -> dict[str, float]:
        """Traffic by message class, keyed by class value."""
        return self.traffic.breakdown()

    def network_gb(self, scale: float = 1.0) -> float:
        """Traffic in GB, optionally scaled up to paper-size cardinality."""
        return self.network_bytes * scale / 1e9

    def node_balance(self) -> dict[str, float]:
        """Send/receive imbalance diagnostics (Section 5 future work)."""
        sent = self.traffic.sent_by_node
        received = self.traffic.received_by_node
        max_sent = max(sent.values(), default=0.0)
        mean_sent = (sum(sent.values()) / len(sent)) if sent else 0.0
        max_recv = max(received.values(), default=0.0)
        mean_recv = (sum(received.values()) / len(received)) if received else 0.0
        return {
            "max_sent": max_sent,
            "mean_sent": mean_sent,
            "send_skew": (max_sent / mean_sent) if mean_sent else 1.0,
            "max_received": max_recv,
            "mean_received": mean_recv,
            "receive_skew": (max_recv / mean_recv) if mean_recv else 1.0,
        }

    def gathered_output(self) -> LocalPartition:
        """All output rows as one partition (verification aid)."""
        if self.output is None:
            raise JoinConfigError(
                f"{self.algorithm} ran with materialize=False; no output rows kept"
            )
        return LocalPartition.concat(self.output)


class DistributedJoin(abc.ABC):
    """Base class of all distributed equi-join operators."""

    #: Short identifier used in reports ("HJ", "2TJ-R", "4TJ", ...).
    name: str = "abstract"

    def run(
        self,
        cluster: Cluster,
        table_r: DistributedTable,
        table_s: DistributedTable,
        spec: JoinSpec | None = None,
    ) -> JoinResult:
        """Execute the join on ``cluster`` and return its result.

        The cluster's scratch state and traffic ledger are reset first,
        so the returned ledger contains exactly this join's traffic.
        """
        spec = spec or JoinSpec()
        cluster.check_table(table_r)
        cluster.check_table(table_s)
        cluster.reset()
        profile = ExecutionProfile(cluster.num_nodes)
        output = self._execute(cluster, table_r, table_s, spec, profile)
        if cluster.network.pending_messages():
            raise JoinConfigError(
                f"{self.name}: {cluster.network.pending_messages()} messages "
                "left undelivered after the join"
            )
        output_rows = sum(p.num_rows for p in output)
        profile.record_network_load(cluster.network.ledger)
        return JoinResult(
            algorithm=self.name,
            output_rows=output_rows,
            output=output if spec.materialize else None,
            traffic=cluster.network.reset_ledger(),
            profile=profile,
        )

    @abc.abstractmethod
    def _execute(
        self,
        cluster: Cluster,
        table_r: DistributedTable,
        table_s: DistributedTable,
        spec: JoinSpec,
        profile: ExecutionProfile,
    ) -> list[LocalPartition]:
        """Algorithm body; returns per-node output partitions.

        When ``spec.materialize`` is False implementations may return
        key-only partitions (payload columns dropped) — the row counts
        are still exact.

        Communication happens through the exchange operators
        (:mod:`repro.exchange`), which carry the send-lane staging, byte
        accounting, and profile attribution shared by every algorithm.
        """
