"""MSB radix sorting of join keys.

The paper's implementation uses sort-merge-join with MSB radix sort for
all local joins (Section 4.2), citing the partitioning work it builds
on [25, 29, 34].  This module provides a real radix sort — recursive
most-significant-byte partitioning with a counting-sort per pass and an
insertion threshold that falls back to comparison sorting — so the
local-join substrate matches the paper's description rather than only
``np.argsort``.

Correctness is property-tested against numpy's sort for arbitrary
64-bit inputs, including negative values (handled by flipping the sign
bit into an unsigned ordering, as hardware radix sorts do).
"""

from __future__ import annotations

import numpy as np

__all__ = ["radix_argsort", "radix_sort", "msb_byte_histogram"]

#: Below this size a partition is comparison-sorted directly.
_SMALL_PARTITION = 64


def msb_byte_histogram(keys: np.ndarray, shift: int) -> np.ndarray:
    """256-bin histogram of ``(keys >> shift) & 0xFF`` (one radix pass)."""
    unsigned = np.asarray(keys, dtype=np.int64).astype(np.uint64) ^ np.uint64(1 << 63)
    digits = (unsigned >> np.uint64(shift)) & np.uint64(0xFF)
    return np.bincount(digits.astype(np.int64), minlength=256)


def _radix_pass(unsigned: np.ndarray, order: np.ndarray, shift: int) -> None:
    """Recursively order ``order`` (indices into ``unsigned``) in place."""
    if len(order) <= _SMALL_PARTITION or shift < 0:
        order[:] = order[np.argsort(unsigned[order], kind="stable")]
        return
    digits = ((unsigned[order] >> np.uint64(shift)) & np.uint64(0xFF)).astype(np.int64)
    counts = np.bincount(digits, minlength=256)
    # Counting sort by the current byte (stable).
    order[:] = order[np.argsort(digits, kind="stable")]
    # Recurse into each occupied bucket on the next byte.
    offsets = np.concatenate([[0], np.cumsum(counts)])
    for bucket in np.flatnonzero(counts):
        lo, hi = offsets[bucket], offsets[bucket + 1]
        if hi - lo > 1:
            _radix_pass(unsigned, order[lo:hi], shift - 8)


def radix_argsort(keys: np.ndarray) -> np.ndarray:
    """Indices that sort ``keys`` ascending, via MSB radix partitioning."""
    keys = np.asarray(keys, dtype=np.int64)
    if len(keys) == 0:
        return np.empty(0, dtype=np.int64)
    # Map to unsigned order: int64 min .. max -> 0 .. 2^64-1.
    unsigned = keys.astype(np.uint64) ^ np.uint64(1 << 63)
    order = np.arange(len(keys), dtype=np.int64)
    _radix_pass(unsigned, order, shift=56)
    return order


def radix_sort(keys: np.ndarray) -> np.ndarray:
    """Sorted copy of ``keys`` via :func:`radix_argsort`."""
    keys = np.asarray(keys, dtype=np.int64)
    return keys[radix_argsort(keys)]
