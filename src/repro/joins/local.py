"""Node-local join kernels.

Every distributed algorithm in the library ends with (or is built from)
node-local equi-joins between key arrays.  The kernel here is a
vectorized sort/merge join with full cartesian expansion per key — the
same local strategy as the paper's implementation, which uses MSB radix
sort followed by merge-join for all local joins.

The kernels accept an optional cached :class:`~repro.storage.table.KeyIndex`
so a partition that participates in several phases (tracking, broadcast
matching, final merge-join) is sorted once and probed many times.  With
the fused scatter path disabled (``repro.fastpath``), they fall back to
the reference implementation that re-sorts on every call.
"""

from __future__ import annotations

import threading

import numpy as np

from ..fastpath import fused_enabled
from ..storage.table import KeyIndex, LocalPartition

__all__ = [
    "join_indices",
    "local_join",
    "join_cardinality",
    "distinct_with_counts",
    "match_mask",
]


#: Direct addressing is attempted when the right key range is at most
#: this many times the right row count (plus slack for tiny inputs).
_DENSE_SPAN_FACTOR = 32
#: Hard cap on the scratch lookup table (int32 entries).
_DENSE_SPAN_CAP = 1 << 27

#: Reusable lookup scratch; every entry is -1 between calls, so a call
#: only pays to scatter its own right keys in and back out instead of
#: clearing the whole table with a fresh ``np.full``.  One scratch per
#: thread: phase workers run local joins concurrently, and a shared
#: table would let one thread's scatter corrupt another's probe.
_dense_tls = threading.local()


def _dense_unique_join(
    keys_left: np.ndarray, keys_right: np.ndarray
) -> tuple[np.ndarray, np.ndarray] | None:
    """Direct-address probe for dense, duplicate-free right keys.

    When the right key range is close to the right cardinality, one
    scatter into a positional lookup table plus one gather replaces
    both the sort and the binary search.  Returns the exact arrays the
    sorted unique-right path would produce, or ``None`` when the keys
    are too sparse or contain duplicates.
    """
    base = int(keys_right.min())
    span = int(keys_right.max()) - base + 1
    if span > min(_DENSE_SPAN_FACTOR * len(keys_right) + 1024, _DENSE_SPAN_CAP):
        return None
    scratch = getattr(_dense_tls, "scratch", None)
    if scratch is None or len(scratch) < span:
        scratch = np.full(
            max(span, 2 * len(scratch) if scratch is not None else 0),
            -1,
            dtype=np.int32,
        )
        _dense_tls.scratch = scratch
    lookup = scratch[:span]
    shifted_right = keys_right - base
    right_ids = np.arange(len(keys_right), dtype=np.int32)
    lookup[shifted_right] = right_ids
    # Duplicate right keys overwrite each other's slot; detecting the
    # mismatch on read-back is one small gather instead of a scan of
    # the whole span.
    if not bool((lookup[shifted_right] == right_ids).all()):
        lookup[shifted_right] = -1
        return None
    shifted = keys_left - base
    in_range = (shifted >= 0) & (shifted < span)
    candidate = lookup[np.where(in_range, shifted, 0)]
    hit = in_range & (candidate >= 0)
    left_idx = np.flatnonzero(hit)
    right_idx = candidate[left_idx].astype(np.int64)
    lookup[shifted_right] = -1
    return left_idx, right_idx


def join_indices(
    keys_left: np.ndarray,
    keys_right: np.ndarray,
    right_index: KeyIndex | None = None,
    right_partition: "LocalPartition | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """All index pairs ``(i, j)`` with ``keys_left[i] == keys_right[j]``.

    Implements the cartesian product per key: a key appearing ``a`` times
    on the left and ``b`` times on the right yields ``a*b`` pairs, which
    is the semantics of the general equi-join the paper targets (no
    foreign-key assumptions).

    Parameters
    ----------
    right_index:
        Optional cached index of ``keys_right`` (it must have been built
        from the same array); reused instead of re-sorting.  Only
        consulted on the fused path.
    right_partition:
        Optional partition owning ``keys_right``; lets the fused path
        first try direct addressing and only then build (and cache) the
        partition's key index.  Only consulted on the fused path.

    Returns
    -------
    (left_idx, right_idx)
        Parallel ``int64`` arrays; ``len`` equals the join output size.
    """
    keys_left = np.asarray(keys_left, dtype=np.int64)
    keys_right = np.asarray(keys_right, dtype=np.int64)
    if len(keys_left) == 0 or len(keys_right) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if not fused_enabled():
        right_index = None
        right_partition = None
    if right_index is None:
        dense = _dense_unique_join(keys_left, keys_right) if fused_enabled() else None
        if dense is not None:
            return dense
        if right_partition is not None:
            right_index = right_partition.key_index()
    if right_index is not None:
        order_right = right_index.order
        sorted_right = right_index.sorted_keys
        right_unique = right_index.unique
    else:
        order_right = np.argsort(keys_right, kind="stable")
        sorted_right = keys_right[order_right]
        right_unique = fused_enabled() and (
            len(sorted_right) <= 1 or bool((sorted_right[1:] != sorted_right[:-1]).all())
        )
    if right_unique:
        # Single-probe path: each left key matches at most one right row,
        # so one searchsorted plus an equality check replaces the
        # lo/hi/repeat expansion machinery.
        lo = np.searchsorted(sorted_right, keys_left, side="left")
        clipped = np.minimum(lo, len(sorted_right) - 1)
        hit = sorted_right[clipped] == keys_left
        left_idx = np.flatnonzero(hit)
        right_idx = order_right[clipped[left_idx]]
        return left_idx, right_idx
    lo = np.searchsorted(sorted_right, keys_left, side="left")
    hi = np.searchsorted(sorted_right, keys_left, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left_idx = np.repeat(np.arange(len(keys_left), dtype=np.int64), counts)
    run_starts = np.repeat(lo, counts)
    # Offset of each output row inside its match run.
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    right_idx = order_right[run_starts + offsets]
    return left_idx, right_idx


def local_join(
    left: LocalPartition,
    right: LocalPartition,
    left_prefix: str = "r.",
    right_prefix: str = "s.",
) -> LocalPartition:
    """Materialized equi-join of two local partitions.

    Output columns are the join key plus both sides' payload columns,
    name-prefixed to avoid collisions.  On the fused path the right
    partition's cached key index is (built and) reused, so joining the
    same partition repeatedly never re-sorts it.
    """
    right_partition = None
    if fused_enabled() and right.num_rows and left.num_rows:
        right_partition = right
    left_idx, right_idx = join_indices(
        left.keys, right.keys, right_partition=right_partition
    )
    columns: dict[str, np.ndarray] = {}
    for name, values in left.columns.items():
        columns[left_prefix + name] = values[left_idx]
    for name, values in right.columns.items():
        columns[right_prefix + name] = values[right_idx]
    return LocalPartition(keys=left.keys[left_idx], columns=columns)


def join_cardinality(keys_left: np.ndarray, keys_right: np.ndarray) -> int:
    """Output size of the equi-join without materializing index pairs."""
    keys_left = np.asarray(keys_left, dtype=np.int64)
    keys_right = np.asarray(keys_right, dtype=np.int64)
    if len(keys_left) == 0 or len(keys_right) == 0:
        return 0
    sorted_right = np.sort(keys_right)
    lo = np.searchsorted(sorted_right, keys_left, side="left")
    hi = np.searchsorted(sorted_right, keys_left, side="right")
    return int((hi - lo).sum())


def distinct_with_counts(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Distinct keys of a partition with their local repeat counts.

    This is the tracking-phase projection: duplicates are redundant and
    eliminated before keys are sent to the scheduling nodes.
    """
    return np.unique(np.asarray(keys, dtype=np.int64), return_counts=True)


def match_mask(
    keys: np.ndarray,
    probe: np.ndarray,
    probe_index: KeyIndex | None = None,
) -> np.ndarray:
    """Boolean mask of ``keys`` entries that appear in ``probe``.

    ``probe_index`` optionally supplies ``probe``'s cached sorted keys so
    repeated membership tests against one partition skip the sort.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if len(probe) == 0:
        return np.zeros(len(keys), dtype=bool)
    if fused_enabled() and probe_index is not None:
        sorted_probe = probe_index.sorted_keys
    else:
        sorted_probe = np.sort(np.asarray(probe, dtype=np.int64))
    positions = np.searchsorted(sorted_probe, keys, side="left")
    positions = np.minimum(positions, len(sorted_probe) - 1)
    return sorted_probe[positions] == keys
