"""Node-local join kernels.

Every distributed algorithm in the library ends with (or is built from)
node-local equi-joins between key arrays.  The kernel here is a
vectorized sort/merge join with full cartesian expansion per key — the
same local strategy as the paper's implementation, which uses MSB radix
sort followed by merge-join for all local joins.

The kernels accept an optional cached :class:`~repro.storage.table.KeyIndex`
so a partition that participates in several phases (tracking, broadcast
matching, final merge-join) is sorted once and probed many times.  With
the fused scatter path disabled (``repro.fastpath``), they fall back to
the reference implementation that re-sorts on every call.

On the fused path the probe side is chunk-parallel: the right side's
lookup structure (direct-address table or sorted index) is built once
on the calling thread, then left-key chunks probe it concurrently
through :mod:`repro.parallel.chunks`.  Every probe path emits its pairs
in ascending left order, so concatenating per-chunk results in chunk
order reproduces the serial output bit for bit.
"""

from __future__ import annotations

import threading

import numpy as np

from ..fastpath import fused_enabled
from ..parallel import chunks
from ..storage.table import KeyIndex, LocalPartition
from ..util import segment_boundaries, segment_count

__all__ = [
    "join_indices",
    "local_join",
    "join_cardinality",
    "distinct_with_counts",
    "match_mask",
]


#: Direct addressing is attempted when the right key range is at most
#: this many times the right row count (plus slack for tiny inputs).
_DENSE_SPAN_FACTOR = 32
#: Hard cap on the scratch lookup tables (entries).
_DENSE_SPAN_CAP = 1 << 27

#: Reusable lookup scratch, one set per thread: phase workers run local
#: joins concurrently, and a shared table would let one thread's scatter
#: corrupt another's probe.  Chunked probes are safe against the owning
#: thread's scratch because the tables are read-only while kernel
#: subtasks probe them: build and reset both happen on the calling
#: thread, before and after the chunk dispatch.
_dense_tls = threading.local()


def _dense_span(keys_right_min: int, keys_right_max: int, rows: int) -> int | None:
    """Admissible direct-address span, or ``None`` when too sparse."""
    span = keys_right_max - keys_right_min + 1
    if span > min(_DENSE_SPAN_FACTOR * rows + 1024, _DENSE_SPAN_CAP):
        return None
    return span


def _scratch(name: str, span: int, fill, dtype) -> np.ndarray:
    """Thread-local scratch table of at least ``span`` entries.

    Every entry holds ``fill`` between calls, so a call only pays to
    scatter its own entries in and back out instead of clearing the
    whole table.
    """
    table = getattr(_dense_tls, name, None)
    if table is None or len(table) < span:
        table = np.full(
            max(span, 2 * len(table) if table is not None else 0), fill, dtype=dtype
        )
        setattr(_dense_tls, name, table)
    return table[:span]


def _probe_in_chunks(probe, n_left: int) -> tuple[np.ndarray, np.ndarray]:
    """Dispatch ``probe(start, stop)`` over left-key chunks.

    ``probe`` returns ``(left_idx, right_idx)`` with *global* left
    indices for the given slice.  All probe paths emit pairs in
    ascending left order, so per-chunk results concatenated in chunk
    order equal the serial ``probe(0, n_left)`` bit for bit.
    """
    slices = chunks.chunked_slices(n_left)
    if slices is None:
        return probe(0, n_left)
    parts = chunks.run_chunks(lambda bounds: probe(bounds[0], bounds[1]), slices)
    return (
        np.concatenate([left for left, _ in parts]),
        np.concatenate([right for _, right in parts]),
    )


def _dense_unique_join(
    keys_left: np.ndarray, keys_right: np.ndarray
) -> tuple[np.ndarray, np.ndarray] | None:
    """Direct-address probe for dense, duplicate-free right keys.

    When the right key range is close to the right cardinality, one
    scatter into a positional lookup table plus one gather replaces
    both the sort and the binary search.  Returns the exact arrays the
    sorted unique-right path would produce, or ``None`` when the keys
    are too sparse or contain duplicates.
    """
    base = int(keys_right.min())
    span = _dense_span(base, int(keys_right.max()), len(keys_right))
    if span is None:
        return None
    lookup = _scratch("scratch", span, -1, np.int32)
    shifted_right = keys_right - base
    right_ids = np.arange(len(keys_right), dtype=np.int32)
    lookup[shifted_right] = right_ids
    # Duplicate right keys overwrite each other's slot; detecting the
    # mismatch on read-back is one small gather instead of a scan of
    # the whole span.
    if not bool((lookup[shifted_right] == right_ids).all()):
        lookup[shifted_right] = -1
        return None

    def probe(start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        shifted = keys_left[start:stop] - base
        in_range = (shifted >= 0) & (shifted < span)
        candidate = lookup[np.where(in_range, shifted, 0)]
        hit = in_range & (candidate >= 0)
        left_idx = np.flatnonzero(hit)
        right_idx = candidate[left_idx].astype(np.int64)
        return left_idx + start, right_idx

    try:
        return _probe_in_chunks(probe, len(keys_left))
    finally:
        lookup[shifted_right] = -1


def _dense_indexed_join(
    keys_left: np.ndarray, order_right: np.ndarray, sorted_right: np.ndarray
) -> tuple[np.ndarray, np.ndarray] | None:
    """Direct-address probe against a sorted right index with duplicates.

    Run-start positions and run lengths of the sorted right keys scatter
    into two span-sized tables, replacing both binary searches of the
    general path with one gather each.  The emitted pairs match the
    searchsorted path exactly: for a present key the tables hold the
    ``lo`` offset and ``hi - lo`` count that path would compute, and the
    expansion enumerates the run in the same sorted-right order.
    Returns ``None`` when the right keys are too sparse.
    """
    base = int(sorted_right[0])
    span = _dense_span(base, int(sorted_right[-1]), len(sorted_right))
    if span is None:
        return None
    run_starts = segment_boundaries(sorted_right)
    run_counts = segment_count(run_starts, len(sorted_right))
    distinct_shifted = sorted_right[run_starts] - base
    start_table = _scratch("run_starts", span, 0, np.int64)
    count_table = _scratch("run_counts", span, 0, np.int64)
    start_table[distinct_shifted] = run_starts
    count_table[distinct_shifted] = run_counts

    def probe(start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        chunk = keys_left[start:stop]
        shifted = chunk - base
        in_range = (shifted >= 0) & (shifted < span)
        safe = np.where(in_range, shifted, 0)
        counts = np.where(in_range, count_table[safe], 0)
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        left_local = np.repeat(np.arange(len(chunk), dtype=np.int64), counts)
        offsets = np.arange(total, dtype=np.int64) - (
            np.cumsum(counts) - counts
        )[left_local]
        right_idx = order_right[start_table[safe][left_local] + offsets]
        return left_local + start, right_idx

    try:
        return _probe_in_chunks(probe, len(keys_left))
    finally:
        count_table[distinct_shifted] = 0


def _probe_unique_sorted(
    keys_left: np.ndarray, order_right: np.ndarray, sorted_right: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Single-probe path: each left key matches at most one right row,
    so one searchsorted plus an equality check replaces the
    lo/hi/repeat expansion machinery."""

    def probe(start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        chunk = keys_left[start:stop]
        lo = np.searchsorted(sorted_right, chunk, side="left")
        clipped = np.minimum(lo, len(sorted_right) - 1)
        hit = sorted_right[clipped] == chunk
        left_idx = np.flatnonzero(hit)
        right_idx = order_right[clipped[left_idx]]
        return left_idx + start, right_idx

    return _probe_in_chunks(probe, len(keys_left))


def _probe_general_sorted(
    keys_left: np.ndarray, order_right: np.ndarray, sorted_right: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """General sorted-probe path with per-key cartesian expansion.

    The expansion uses one ``repeat`` plus gathers by the expanded left
    id instead of the three-``repeat`` formulation of the loop
    reference: ``repeat(lo, counts) == lo[left_local]`` and
    ``repeat(cumsum(counts) - counts, counts) == (cumsum(counts) -
    counts)[left_local]``, so the emitted pairs are bit-identical while
    the two widest materializations become cache-friendly gathers.
    """

    def probe(start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        chunk = keys_left[start:stop]
        lo = np.searchsorted(sorted_right, chunk, side="left")
        hi = np.searchsorted(sorted_right, chunk, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        left_local = np.repeat(np.arange(len(chunk), dtype=np.int64), counts)
        offsets = np.arange(total, dtype=np.int64) - (
            np.cumsum(counts) - counts
        )[left_local]
        right_idx = order_right[lo[left_local] + offsets]
        return left_local + start, right_idx

    return _probe_in_chunks(probe, len(keys_left))


def join_indices(
    keys_left: np.ndarray,
    keys_right: np.ndarray,
    right_index: KeyIndex | None = None,
    right_partition: "LocalPartition | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """All index pairs ``(i, j)`` with ``keys_left[i] == keys_right[j]``.

    Implements the cartesian product per key: a key appearing ``a`` times
    on the left and ``b`` times on the right yields ``a*b`` pairs, which
    is the semantics of the general equi-join the paper targets (no
    foreign-key assumptions).

    Parameters
    ----------
    right_index:
        Optional cached index of ``keys_right`` (it must have been built
        from the same array); reused instead of re-sorting.  Only
        consulted on the fused path.
    right_partition:
        Optional partition owning ``keys_right``; lets the fused path
        first try direct addressing and only then build (and cache) the
        partition's key index.  Only consulted on the fused path.

    Returns
    -------
    (left_idx, right_idx)
        Parallel ``int64`` arrays; ``len`` equals the join output size.
    """
    keys_left = np.asarray(keys_left, dtype=np.int64)
    keys_right = np.asarray(keys_right, dtype=np.int64)
    if len(keys_left) == 0 or len(keys_right) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if not fused_enabled():
        return _reference_join(keys_left, keys_right)
    if right_index is None:
        dense = _dense_unique_join(keys_left, keys_right)
        if dense is not None:
            return dense
        if right_partition is not None:
            right_index = right_partition.key_index()
    if right_index is not None:
        order_right = right_index.order
        sorted_right = right_index.sorted_keys
        right_unique = right_index.unique
    else:
        order_right = np.argsort(keys_right, kind="stable")
        sorted_right = keys_right[order_right]
        right_unique = len(sorted_right) <= 1 or bool(
            (sorted_right[1:] != sorted_right[:-1]).all()
        )
    if right_unique:
        return _probe_unique_sorted(keys_left, order_right, sorted_right)
    dense = _dense_indexed_join(keys_left, order_right, sorted_right)
    if dense is not None:
        return dense
    return _probe_general_sorted(keys_left, order_right, sorted_right)


def _reference_join(
    keys_left: np.ndarray, keys_right: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Loop-mode reference: re-sort and expand with explicit repeats.

    Deliberately kept as the simplest correct formulation; every fused
    path above must reproduce its output row set exactly (the
    equivalence suites compare against this).
    """
    order_right = np.argsort(keys_right, kind="stable")
    sorted_right = keys_right[order_right]
    lo = np.searchsorted(sorted_right, keys_left, side="left")
    hi = np.searchsorted(sorted_right, keys_left, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left_idx = np.repeat(np.arange(len(keys_left), dtype=np.int64), counts)
    run_starts = np.repeat(lo, counts)
    # Offset of each output row inside its match run.
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    right_idx = order_right[run_starts + offsets]
    return left_idx, right_idx


def local_join(
    left: LocalPartition,
    right: LocalPartition,
    left_prefix: str = "r.",
    right_prefix: str = "s.",
) -> LocalPartition:
    """Materialized equi-join of two local partitions.

    Output columns are the join key plus both sides' payload columns,
    name-prefixed to avoid collisions.  On the fused path the right
    partition's cached key index is (built and) reused, so joining the
    same partition repeatedly never re-sorts it; payload gathers chunk
    over the output rows when kernel parallelism is on.
    """
    right_partition = None
    if fused_enabled() and right.num_rows and left.num_rows:
        right_partition = right
    left_idx, right_idx = join_indices(
        left.keys, right.keys, right_partition=right_partition
    )
    columns: dict[str, np.ndarray] = {}
    for name, values in left.columns.items():
        columns[left_prefix + name] = chunks.chunked_gather(values, left_idx)
    for name, values in right.columns.items():
        columns[right_prefix + name] = chunks.chunked_gather(values, right_idx)
    return LocalPartition(
        keys=chunks.chunked_gather(left.keys, left_idx), columns=columns
    )


def join_cardinality(keys_left: np.ndarray, keys_right: np.ndarray) -> int:
    """Output size of the equi-join without materializing index pairs."""
    keys_left = np.asarray(keys_left, dtype=np.int64)
    keys_right = np.asarray(keys_right, dtype=np.int64)
    if len(keys_left) == 0 or len(keys_right) == 0:
        return 0
    sorted_right = np.sort(keys_right)
    lo = np.searchsorted(sorted_right, keys_left, side="left")
    hi = np.searchsorted(sorted_right, keys_left, side="right")
    return int((hi - lo).sum())


def distinct_with_counts(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Distinct keys of a partition with their local repeat counts.

    This is the tracking-phase projection: duplicates are redundant and
    eliminated before keys are sent to the scheduling nodes.
    """
    return np.unique(np.asarray(keys, dtype=np.int64), return_counts=True)


def match_mask(
    keys: np.ndarray,
    probe: np.ndarray,
    probe_index: KeyIndex | None = None,
) -> np.ndarray:
    """Boolean mask of ``keys`` entries that appear in ``probe``.

    ``probe_index`` optionally supplies ``probe``'s cached sorted keys so
    repeated membership tests against one partition skip the sort.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if len(probe) == 0:
        return np.zeros(len(keys), dtype=bool)
    if fused_enabled() and probe_index is not None:
        sorted_probe = probe_index.sorted_keys
    else:
        sorted_probe = np.sort(np.asarray(probe, dtype=np.int64))
    positions = np.searchsorted(sorted_probe, keys, side="left")
    positions = np.minimum(positions, len(sorted_probe) - 1)
    return sorted_probe[positions] == keys
