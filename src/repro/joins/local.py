"""Node-local join kernels.

Every distributed algorithm in the library ends with (or is built from)
node-local equi-joins between key arrays.  The kernel here is a
vectorized sort/merge join with full cartesian expansion per key — the
same local strategy as the paper's implementation, which uses MSB radix
sort followed by merge-join for all local joins.
"""

from __future__ import annotations

import numpy as np

from ..storage.table import LocalPartition

__all__ = ["join_indices", "local_join", "distinct_with_counts", "match_mask"]


def join_indices(keys_left: np.ndarray, keys_right: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """All index pairs ``(i, j)`` with ``keys_left[i] == keys_right[j]``.

    Implements the cartesian product per key: a key appearing ``a`` times
    on the left and ``b`` times on the right yields ``a*b`` pairs, which
    is the semantics of the general equi-join the paper targets (no
    foreign-key assumptions).

    Returns
    -------
    (left_idx, right_idx)
        Parallel ``int64`` arrays; ``len`` equals the join output size.
    """
    keys_left = np.asarray(keys_left, dtype=np.int64)
    keys_right = np.asarray(keys_right, dtype=np.int64)
    if len(keys_left) == 0 or len(keys_right) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order_right = np.argsort(keys_right, kind="stable")
    sorted_right = keys_right[order_right]
    lo = np.searchsorted(sorted_right, keys_left, side="left")
    hi = np.searchsorted(sorted_right, keys_left, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left_idx = np.repeat(np.arange(len(keys_left), dtype=np.int64), counts)
    run_starts = np.repeat(lo, counts)
    # Offset of each output row inside its match run.
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    right_idx = order_right[run_starts + offsets]
    return left_idx, right_idx


def local_join(
    left: LocalPartition,
    right: LocalPartition,
    left_prefix: str = "r.",
    right_prefix: str = "s.",
) -> LocalPartition:
    """Materialized equi-join of two local partitions.

    Output columns are the join key plus both sides' payload columns,
    name-prefixed to avoid collisions.
    """
    left_idx, right_idx = join_indices(left.keys, right.keys)
    columns: dict[str, np.ndarray] = {}
    for name, values in left.columns.items():
        columns[left_prefix + name] = values[left_idx]
    for name, values in right.columns.items():
        columns[right_prefix + name] = values[right_idx]
    return LocalPartition(keys=left.keys[left_idx], columns=columns)


def join_cardinality(keys_left: np.ndarray, keys_right: np.ndarray) -> int:
    """Output size of the equi-join without materializing index pairs."""
    keys_left = np.asarray(keys_left, dtype=np.int64)
    keys_right = np.asarray(keys_right, dtype=np.int64)
    if len(keys_left) == 0 or len(keys_right) == 0:
        return 0
    sorted_right = np.sort(keys_right)
    lo = np.searchsorted(sorted_right, keys_left, side="left")
    hi = np.searchsorted(sorted_right, keys_left, side="right")
    return int((hi - lo).sum())


def distinct_with_counts(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Distinct keys of a partition with their local repeat counts.

    This is the tracking-phase projection: duplicates are redundant and
    eliminated before keys are sent to the scheduling nodes.
    """
    return np.unique(np.asarray(keys, dtype=np.int64), return_counts=True)


def match_mask(keys: np.ndarray, probe: np.ndarray) -> np.ndarray:
    """Boolean mask of ``keys`` entries that appear in ``probe``."""
    keys = np.asarray(keys, dtype=np.int64)
    if len(probe) == 0:
        return np.zeros(len(keys), dtype=bool)
    sorted_probe = np.sort(np.asarray(probe, dtype=np.int64))
    positions = np.searchsorted(sorted_probe, keys, side="left")
    positions = np.minimum(positions, len(sorted_probe) - 1)
    return sorted_probe[positions] == keys
