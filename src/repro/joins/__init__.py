"""Distributed join operators: baselines and shared infrastructure."""

from .base import DistributedJoin, JoinResult, JoinSpec
from .broadcast import BroadcastJoin
from .grace_hash import GraceHashJoin
from .local import distinct_with_counts, join_indices, local_join, match_mask
from .registry import ALGORITHMS, AlgorithmInfo, algorithm, algorithm_names, create
from .semijoin import SemiJoinFilteredJoin
from .tracking_aware import LateMaterializationHashJoin, TrackingAwareHashJoin, rid_width

__all__ = [
    "DistributedJoin",
    "JoinResult",
    "JoinSpec",
    "ALGORITHMS",
    "AlgorithmInfo",
    "algorithm",
    "algorithm_names",
    "create",
    "BroadcastJoin",
    "GraceHashJoin",
    "SemiJoinFilteredJoin",
    "LateMaterializationHashJoin",
    "TrackingAwareHashJoin",
    "rid_width",
    "join_indices",
    "local_join",
    "distinct_with_counts",
    "match_mask",
]
