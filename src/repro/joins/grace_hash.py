"""Grace hash join over the network: the paper's baseline.

Both tables are hash-partitioned on the join key across the ``N`` nodes
(the Grace/Gamma scheme [9, 17] applied to a network instead of disks).
Each tuple crosses the network unless its key happens to hash to the
node it already lives on (probability ``1/N``), so the algorithm moves
almost the full size of both tables — the inefficiency track join
attacks.

The step structure mirrors Table 3 of the paper: hash-partition R and S,
transfer the fragments, sort the received runs, and merge-join locally.
Each step runs as one cluster phase (:meth:`Cluster.run_phase`), so the
per-node work parallelizes across the cluster's workers while traffic
accounting stays byte-identical to the serial run.
"""

from __future__ import annotations

from ..cluster.cluster import Cluster
from ..cluster.network import MessageClass
from ..exchange.gather import Gather
from ..exchange.shuffle import Shuffle
from ..storage.table import DistributedTable, LocalPartition
from ..timing.profile import ExecutionProfile
from .base import DistributedJoin, JoinSpec
from .local import local_join

__all__ = ["GraceHashJoin"]


class GraceHashJoin(DistributedJoin):
    """Distributed hash join (hash-partition both inputs, join locally)."""

    name = "HJ"

    def _execute(
        self,
        cluster: Cluster,
        table_r: DistributedTable,
        table_s: DistributedTable,
        spec: JoinSpec,
        profile: ExecutionProfile,
    ) -> list[LocalPartition]:
        if cluster.pipeline_active():
            # Pipelined mode fuses the two scatters under one barrier —
            # R's sends overlap S's hash-partitioning — then gathers
            # each category strictly (gathers drain shared inboxes and
            # must not run concurrently).  Each gather pulls only its
            # own message class, so arrivals are identical to the
            # strict scatter/gather interleaving.
            with cluster.pipelined_phases():
                self._shuffle(table_r, spec, MessageClass.R_TUPLES, "R tuples").scatter(
                    cluster, profile, table_r.partitions
                )
                self._shuffle(table_s, spec, MessageClass.S_TUPLES, "S tuples").scatter(
                    cluster, profile, table_s.partitions
                )
            received_r = Gather(MessageClass.R_TUPLES, table_r.payload_names).run(
                cluster, profile
            )
            received_s = Gather(MessageClass.S_TUPLES, table_s.payload_names).run(
                cluster, profile
            )
        else:
            received_r = self._repartition(
                cluster, table_r, spec, profile, MessageClass.R_TUPLES, "R tuples"
            )
            received_s = self._repartition(
                cluster, table_s, spec, profile, MessageClass.S_TUPLES, "S tuples"
            )

        width_r = table_r.schema.tuple_width(spec.encoding)
        width_s = table_s.schema.tuple_width(spec.encoding)
        out_width = width_r + table_s.schema.payload_width(spec.encoding)

        def join_node(node: int) -> LocalPartition:
            part_r = received_r[node]
            part_s = received_s[node]
            profile.add_cpu_at(
                "Sort received R tuples", "sort", node, part_r.num_rows * width_r
            )
            profile.add_cpu_at(
                "Sort received S tuples", "sort", node, part_s.num_rows * width_s
            )
            joined = local_join(part_r, part_s, "r.", "s.")
            profile.add_cpu_at(
                "Final merge-join",
                "merge",
                node,
                part_r.num_rows * width_r
                + part_s.num_rows * width_s
                + joined.num_rows * out_width,
            )
            if not spec.materialize:
                joined = LocalPartition(keys=joined.keys)
            return joined

        return cluster.run_phase(join_node, profile=profile)

    def _shuffle(
        self,
        table: DistributedTable,
        spec: JoinSpec,
        category: MessageClass,
        step: str,
    ) -> Shuffle:
        width = table.schema.tuple_width(spec.encoding)
        return Shuffle(category, width, step, hash_seed=spec.hash_seed)

    def _repartition(
        self,
        cluster: Cluster,
        table: DistributedTable,
        spec: JoinSpec,
        profile: ExecutionProfile,
        category: MessageClass,
        step: str,
    ) -> list[LocalPartition]:
        """Hash-partition one table; returns the received fragments per node."""
        return self._shuffle(table, spec, category, step).run(
            cluster, profile, table.partitions, empty_names=table.payload_names
        )
