"""Semi-join filtering: Bloom-filtered variants of any distributed join.

Section 3.3 analyzes joins coupled with selective predicates: every node
builds a Bloom filter over its qualifying local keys, the filters are
broadcast (the ``(tR*sR + tS*sS) * N * wbf`` term of the paper's cost
formulas), and each node prunes local tuples that cannot match before
the inner join runs.  False positives survive filtering and are only
eliminated by the join itself — with hash join they cross the network in
vain, whereas track join discards them during tracking.

:class:`SemiJoinFilteredJoin` wraps an arbitrary inner
:class:`~repro.joins.base.DistributedJoin`, so both filtered hash join
and filtered track join of the paper's comparison are expressible.
"""

from __future__ import annotations

import numpy as np

from ..bloom.filter import BloomFilter
from ..cluster.cluster import Cluster
from ..cluster.network import MessageClass
from ..exchange.broadcast import replicate_size
from ..exchange.gather import flush
from ..storage.table import DistributedTable, LocalPartition
from ..timing.profile import ExecutionProfile
from .base import DistributedJoin, JoinSpec

__all__ = ["SemiJoinFilteredJoin"]


class SemiJoinFilteredJoin(DistributedJoin):
    """Two-way Bloom semi-join reduction around an inner join.

    Parameters
    ----------
    inner:
        The join executed on the filtered inputs.
    false_positive_rate:
        Target error rate the per-node filters are sized for.
    """

    def __init__(self, inner: DistributedJoin, false_positive_rate: float = 0.01):
        self.inner = inner
        self.false_positive_rate = false_positive_rate
        self.name = f"BF+{inner.name}"

    def _execute(
        self,
        cluster: Cluster,
        table_r: DistributedTable,
        table_s: DistributedTable,
        spec: JoinSpec,
        profile: ExecutionProfile,
    ) -> list[LocalPartition]:
        filter_r = self._broadcast_filters(cluster, table_r, profile, "R")
        filter_s = self._broadcast_filters(cluster, table_s, profile, "S")

        filtered_r = self._filtered(cluster, table_r, filter_s, spec, profile, "R")
        filtered_s = self._filtered(cluster, table_s, filter_r, spec, profile, "S")
        return self.inner._execute(cluster, filtered_r, filtered_s, spec, profile)

    def _broadcast_filters(
        self,
        cluster: Cluster,
        table: DistributedTable,
        profile: ExecutionProfile,
        side: str,
    ) -> list[BloomFilter]:
        """Build and broadcast per-node filters; receivers keep them
        separate and probe all of them (a union of filters each sized
        for one fragment would saturate)."""
        filters = []
        for node, partition in enumerate(table.partitions):
            bloom = BloomFilter.for_capacity(
                max(1, partition.num_rows), self.false_positive_rate
            )
            bloom.add(partition.keys)
            filters.append(bloom)
            profile.add_cpu_at(
                f"Build {side} filter", "aggregate", node, partition.num_rows * 8.0
            )
            replicate_size(
                cluster, profile, MessageClass.FILTER, node, bloom.wire_bytes,
                f"Broadcast {side} filters",
            )
        flush(cluster)
        return filters

    def _filtered(
        self,
        cluster: Cluster,
        table: DistributedTable,
        other_filters: list[BloomFilter],
        spec: JoinSpec,
        profile: ExecutionProfile,
        side: str,
    ) -> DistributedTable:
        """Prune local tuples whose keys every remote filter rejects."""
        partitions = []
        for node, partition in enumerate(table.partitions):
            keep = np.zeros(partition.num_rows, dtype=bool)
            for bloom in other_filters:
                keep |= bloom.contains(partition.keys)
            profile.add_cpu_at(
                f"Probe filters on {side}",
                "aggregate",
                node,
                partition.num_rows * 8.0 * len(other_filters),
            )
            partitions.append(partition.take(keep))
        return DistributedTable(table.name, table.schema, partitions)
