"""A vectorized open-addressing hash table over 64-bit keys.

The sort-merge kernel (:mod:`repro.joins.local`) is the default local
join, as in the paper's implementation; this module provides the
classic alternative — a linear-probing hash table built and probed
with vectorized rounds (each round resolves one probe distance for all
pending lookups at once), in the spirit of the main-memory join kernels
the paper cites [3, 15].

`hash_join_indices` is a drop-in equivalent of
:func:`repro.joins.local.join_indices` and is property-tested against
it; the local-join ablation benchmark compares their throughput.
"""

from __future__ import annotations

import numpy as np

from ..util import mix64
from ..errors import ValidationError

__all__ = ["HashTable", "hash_join_indices"]

_EMPTY = np.int64(-1)


class HashTable:
    """Linear-probing multimap from int64 keys to build-side positions.

    Duplicate keys are chained through an overflow list so probes can
    enumerate every match (joins need the full cartesian product).
    """

    def __init__(self, keys: np.ndarray, load_factor: float = 0.5):
        keys = np.asarray(keys, dtype=np.int64)
        if not 0.0 < load_factor < 1.0:
            raise ValidationError(f"load factor must be in (0, 1), got {load_factor}")
        capacity = 8
        while capacity * load_factor < max(1, len(keys)):
            capacity *= 2
        self._mask = np.uint64(capacity - 1)
        #: slot -> first build position with this key, or -1.
        self._head = np.full(capacity, _EMPTY, dtype=np.int64)
        #: build position -> next build position with the same key, or -1.
        self._next = np.full(len(keys), _EMPTY, dtype=np.int64)
        self._keys = keys
        self._build()

    @property
    def capacity(self) -> int:
        """Number of slots."""
        return len(self._head)

    def _slots(self, keys: np.ndarray) -> np.ndarray:
        return (mix64(keys, seed=0xB0B) & self._mask).astype(np.int64)

    def _build(self) -> None:
        keys = self._keys
        if len(keys) == 0:
            return
        pending = np.arange(len(keys), dtype=np.int64)
        slots = self._slots(keys)
        mask = np.int64(self._mask)
        while len(pending):
            current = slots[pending]
            occupant = self._head[current]
            free = occupant == _EMPTY
            same_key = ~free & (self._keys[occupant] == keys[pending])
            other_key = ~free & ~same_key

            # Chain entries whose slot already heads their key.  When
            # several same-key entries land this round, prepend them
            # sequentially (short Python loop; duplicates per round are
            # rare) so every entry stays reachable.
            chain_positions = np.flatnonzero(same_key)
            for position in chain_positions.tolist():
                entry = pending[position]
                slot = current[position]
                self._next[entry] = self._head[slot]
                self._head[slot] = entry

            # Claim free slots: the first pending entry per slot (in
            # stable order) wins; losers retry the same slot next round
            # and will either chain (same key) or probe on.
            settled = same_key.copy()
            free_positions = np.flatnonzero(free)
            if len(free_positions):
                claim_slots = current[free_positions]
                order = np.argsort(claim_slots, kind="stable")
                sorted_slots = claim_slots[order]
                is_first = np.empty(len(order), dtype=bool)
                is_first[0] = True
                np.not_equal(sorted_slots[1:], sorted_slots[:-1], out=is_first[1:])
                winners = free_positions[order[is_first]]
                self._head[current[winners]] = pending[winners]
                settled[winners] = True

            # Entries blocked by a different key probe the next slot.
            advance = np.flatnonzero(other_key)
            slot_view = slots[pending[advance]]
            slots[pending[advance]] = (slot_view + 1) & mask
            pending = pending[~settled]
            # (claim losers keep their slot; other-key entries advanced.)

    def probe_first(self, keys: np.ndarray) -> np.ndarray:
        """First matching build position per probe key (-1 if none)."""
        keys = np.asarray(keys, dtype=np.int64)
        result = np.full(len(keys), _EMPTY, dtype=np.int64)
        if len(keys) == 0 or len(self._keys) == 0:
            return result
        pending = np.arange(len(keys), dtype=np.int64)
        slots = self._slots(keys)
        while len(pending):
            current = slots[pending]
            occupant = self._head[current]
            empty = occupant == _EMPTY
            match = ~empty & (self._keys[occupant] == keys[pending])
            result[pending[match]] = occupant[match]
            # Empty slot or match terminates the probe; otherwise step on.
            continue_mask = ~empty & ~match
            still = pending[continue_mask]
            slots[still] = (slots[still] + 1) & np.int64(self._mask)
            pending = still
        return result

    def matches_of(self, position: int) -> list[int]:
        """All build positions sharing ``position``'s key (chain walk)."""
        matches = []
        current = position
        while current != _EMPTY:
            matches.append(int(current))
            current = self._next[current]
        return matches


def hash_join_indices(
    keys_left: np.ndarray, keys_right: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All matching (left, right) index pairs via hash build + probe.

    Builds on the right side, probes with the left; chains expand to
    the full cartesian product per key.  Equivalent to
    :func:`repro.joins.local.join_indices` (up to pair order).
    """
    keys_left = np.asarray(keys_left, dtype=np.int64)
    keys_right = np.asarray(keys_right, dtype=np.int64)
    if len(keys_left) == 0 or len(keys_right) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    table = HashTable(keys_right)
    first = table.probe_first(keys_left)
    hits = np.flatnonzero(first != _EMPTY)
    left_out: list[np.ndarray] = []
    right_out: list[np.ndarray] = []
    # Expand chains; vectorized by chain depth (most keys have depth 1).
    current = first[hits]
    left_ids = hits
    while len(left_ids):
        left_out.append(left_ids)
        right_out.append(current)
        nxt = table._next[current]
        alive = nxt != _EMPTY
        left_ids = left_ids[alive]
        current = nxt[alive]
    if not left_out:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(left_out), np.concatenate(right_out)
