PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-exchange test-chaos lint bench bench-smoke bench-scaling bench-scaling-smoke bench-serve bench-serve-smoke bench-skew bench-skew-smoke bench-full

test:
	$(PYTHON) -m pytest -x -q

# Exchange-layer gate: lint the communication primitives, then run
# their unit tests plus the golden-equivalence suite that pins every
# operator's traffic ledger byte-for-byte.
test-exchange:
	$(PYTHON) -m repro lint src/repro/exchange
	$(PYTHON) -m pytest tests/test_exchange.py tests/test_exchange_golden.py -q

# Chaos gate: the fault-injection unit suite, then the full matrix —
# every registry operator, a small seed set, serial and threaded —
# checking row-identical output and byte-identical goodput ledgers.
test-chaos:
	$(PYTHON) -m pytest tests/test_chaos.py -q
	$(PYTHON) -m repro chaos seeds=0,1,2 workers=1,4

# Static analysis: the project's REP determinism/aliasing rules plus
# the whole-package REP007-REP011 dataflow pass always run; ruff and
# mypy run when installed (pip install -e .[dev]) and are mandatory in
# CI.
lint:
	$(PYTHON) -m repro lint --dataflow
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src; \
	else \
		echo "ruff not installed; skipping (pip install -e '.[dev]')"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping (pip install -e '.[dev]')"; \
	fi

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Tiny-scale perf gate: writes BENCH_joins.json and fails if any fused
# kernel regresses more than 2x against benchmarks/bench_baseline.json.
bench-smoke:
	$(PYTHON) -m repro bench-smoke

# End-to-end wall-clock scaling curve (1 -> 8 workers) for the Fig. 3
# workload; merges a "scaling" section into BENCH_joins.json.
bench-scaling:
	$(PYTHON) -m repro bench-scaling

# CI-sized scaling gate: tiny workload at 1/2/4 workers.  Fails on any
# ledger divergence, missing phase-breakdown field, or (on hosts with
# >= 4 cores) a below-threshold speedup; 1-core runners skip only the
# speedup gate and still verify determinism.
bench-scaling-smoke:
	$(PYTHON) -m repro bench-scaling scaled_tuples=60000 repeats=2 warmup=1 worker_counts=1,2,4

# Concurrent query-service throughput: 100 mixed queries, one-at-a-time
# baseline vs warm pool + plan cache; merges a "serve" section into
# BENCH_joins.json with q/s, p50/p99 latency, and cache hit rate.
bench-serve:
	$(PYTHON) -m repro serve-bench

# CI-sized serve gate: fails when serve throughput drops below the
# one-at-a-time baseline (within tolerance), p99 exceeds the smoke
# bound, or the plan cache records no hits.  The 3x concurrency gate is
# core-gated: 1-core runners record why it was skipped.
bench-serve-smoke:
	$(PYTHON) -m repro serve-bench queries=40 scaled_tuples=6000 num_nodes=4 clients=4

# Skew ablation: plain 4TJ vs heavy-hitter-sharded 4TJ on the hot-key
# Zipf workload; merges a "skew" section into BENCH_joins.json.
bench-skew:
	$(PYTHON) -m repro bench-skew

# CI-sized skew gate: fails when sharding wins less than a 2x reduction
# in max bytes received at any node, spends more than 1.25x the total
# traffic of plain 4TJ, or the two operators' outputs diverge.  The
# smaller table pairs with a finer hot-key threshold so the gate stays
# sharp at reduced scale.
bench-skew-smoke:
	$(PYTHON) -m repro bench-skew scaled_tuples=30000 distinct_keys=3000 hot_fraction=0.02

# Full Figure 3 workload at 1/256 paper scale (slow, ~minutes).
bench-full:
	$(PYTHON) -m repro bench-smoke scaled_tuples=3906250 repeats=2 warmup=1 baseline_path=/dev/null
