PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke bench-full

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Tiny-scale perf gate: writes BENCH_joins.json and fails if any fused
# kernel regresses more than 2x against benchmarks/bench_baseline.json.
bench-smoke:
	$(PYTHON) -m repro bench-smoke

# Full Figure 3 workload at 1/256 paper scale (slow, ~minutes).
bench-full:
	$(PYTHON) -m repro bench-smoke scaled_tuples=3906250 repeats=2 warmup=1 baseline_path=/dev/null
