"""Unit tests for experiment result containers, rendering, and the CLI."""

from __future__ import annotations

import pytest

from repro.__main__ import main as cli_main
from repro.experiments.report import ExperimentResult, Group, Row, render


def sample_result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="demo",
        title="Demo experiment",
        unit="GB",
        groups=[
            Group(
                label="panel A",
                rows=[
                    Row("HJ", 10.0, paper=9.5),
                    Row("4TJ", 4.0, paper=None, breakdown={"R Tuples": 3.0, "S Tuples": 1.0}),
                    Row("zero-paper", 1.0, paper=0.0),
                ],
            )
        ],
        notes="a note",
    )


class TestRow:
    def test_ratio(self):
        assert Row("x", 10.0, paper=5.0).ratio == 2.0
        assert Row("x", 10.0).ratio is None
        assert Row("x", 10.0, paper=0.0).ratio is None


class TestExperimentResult:
    def test_lookup(self):
        result = sample_result()
        assert result.measured("panel A", "HJ") == 10.0
        assert result.row("panel A", "4TJ").breakdown["R Tuples"] == 3.0

    def test_lookup_missing(self):
        with pytest.raises(KeyError):
            sample_result().row("panel A", "nope")
        with pytest.raises(KeyError):
            sample_result().row("panel B", "HJ")


class TestRender:
    def test_contains_all_parts(self):
        text = render(sample_result())
        assert "demo: Demo experiment" in text
        assert "a note" in text
        assert "panel A" in text
        assert "HJ" in text
        assert "1.05" in text  # 10 / 9.5 ratio
        assert "R Tuples" in text

    def test_none_paper_renders_dash(self):
        text = render(sample_result())
        lines = [line for line in text.splitlines() if line.strip().startswith("4TJ")]
        assert "-" in lines[0]


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "table4" in out

    def test_help(self, capsys):
        assert cli_main([]) == 0
        assert "Usage" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert cli_main(["fig99"]) == 2

    def test_run_with_kwargs(self, capsys):
        assert cli_main(["fig1-fig2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out

    def test_kwarg_parsing(self, capsys):
        # scaled-down fig4 with a parsed integer kwarg
        assert cli_main(["fig4", "scaled_keys=2000"]) == 0
        assert "fig4" in capsys.readouterr().out


class TestRenderBars:
    def test_bars_scale_and_legend(self):
        from repro.experiments.report import render_bars

        text = render_bars(sample_result(), width=20)
        lines = text.splitlines()
        hj_line = next(line for line in lines if line.strip().startswith("HJ"))
        # HJ is the group max -> full-width bar.
        assert hj_line.count("#") == 20
        assert "legend:" in text
        assert "R Tuples" in text

    def test_bars_cli_flag(self, capsys):
        from repro.__main__ import main as cli

        assert cli(["fig1-fig2", "bars=1"]) == 0
        out = capsys.readouterr().out
        assert "|" in out and "legend" not in out.lower() or True
        assert "fig1-fig2" in out


class TestToDict:
    def test_json_serializable(self):
        import json

        from repro.experiments.report import to_dict

        payload = to_dict(sample_result())
        text = json.dumps(payload)
        back = json.loads(text)
        assert back["experiment_id"] == "demo"
        assert back["groups"][0]["rows"][0]["measured"] == 10.0
        assert back["groups"][0]["rows"][0]["ratio"] == pytest.approx(10 / 9.5)
        assert back["groups"][0]["rows"][1]["breakdown"]["R Tuples"] == 3.0
