"""Tests for the query substrate: predicates, aggregation, plan execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Cluster, JoinSpec, Schema, random_uniform
from repro.errors import ReproError
from repro.query import (
    Aggregate,
    AggregateSpec,
    And,
    ColumnPredicate,
    Join,
    Or,
    Scan,
    execute,
    run_aggregation,
    table_stats,
)
from repro.storage import LocalPartition


def build_table(cluster, name, keys, columns, payload_bits=64, seed=0):
    schema = Schema.with_widths(32, payload_bits, payload_name=list(columns)[0])
    if len(columns) > 1:
        from repro.storage import Column

        schema = Schema(
            schema.key_columns,
            tuple(Column(c, bits=payload_bits) for c in columns),
        )
    return cluster.table_from_assignment(
        name,
        schema,
        np.asarray(keys, dtype=np.int64),
        random_uniform(len(keys), cluster.num_nodes, seed=seed),
        columns={c: np.asarray(v, dtype=np.int64) for c, v in columns.items()},
    )


class TestPredicates:
    def _partition(self):
        return LocalPartition(
            keys=np.array([1, 2, 3, 4]),
            columns={"v": np.array([10, 20, 30, 40])},
        )

    def test_column_ops(self):
        part = self._partition()
        assert ColumnPredicate("v", "<", 25).mask(part).tolist() == [True, True, False, False]
        assert ColumnPredicate("v", "==", 30).mask(part).tolist() == [False, False, True, False]
        assert ColumnPredicate("key", ">=", 3).mask(part).tolist() == [False, False, True, True]

    def test_and_or(self):
        part = self._partition()
        both = ColumnPredicate("v", ">", 10) & ColumnPredicate("v", "<", 40)
        assert both.mask(part).tolist() == [False, True, True, False]
        either = ColumnPredicate("v", "==", 10) | ColumnPredicate("v", "==", 40)
        assert either.mask(part).tolist() == [True, False, False, True]

    def test_unknown_column(self):
        with pytest.raises(ReproError):
            ColumnPredicate("missing", "<", 1).mask(self._partition())

    def test_unknown_operator(self):
        with pytest.raises(ReproError):
            ColumnPredicate("v", "~", 1)


class TestAggregation:
    def test_sum_count_min_max(self):
        cluster = Cluster(3)
        keys = np.array([1, 1, 2, 2, 2, 3])
        values = np.array([10, 20, 1, 2, 3, 99])
        table = build_table(cluster, "T", keys, {"v": values}, seed=1)
        result = run_aggregation(
            cluster,
            table,
            [
                AggregateSpec("total", "sum", "v"),
                AggregateSpec("n", "count", "v"),
                AggregateSpec("lo", "min", "v"),
                AggregateSpec("hi", "max", "v"),
            ],
            JoinSpec(),
        )
        out = result.table.gathered()
        order = np.argsort(out.keys)
        assert out.keys[order].tolist() == [1, 2, 3]
        assert out.columns["total"][order].tolist() == [30, 6, 99]
        assert out.columns["n"][order].tolist() == [2, 3, 1]
        assert out.columns["lo"][order].tolist() == [10, 1, 99]
        assert out.columns["hi"][order].tolist() == [20, 3, 99]

    def test_groups_end_at_hash_node(self):
        cluster = Cluster(4)
        keys = np.repeat(np.arange(100), 3)
        table = build_table(cluster, "T", keys, {"v": np.ones(300)}, seed=2)
        result = run_aggregation(
            cluster, table, [AggregateSpec("n", "count", "v")], JoinSpec()
        )
        # Each group appears exactly once in the final output.
        out = result.table.gathered()
        assert len(np.unique(out.keys)) == len(out.keys) == 100

    def test_preaggregation_reduces_traffic(self):
        """Heavy repetition: exchanged bytes scale with groups, not rows."""
        cluster = Cluster(4)
        keys = np.repeat(np.arange(50), 100)  # 5000 rows, 50 groups
        table = build_table(cluster, "T", keys, {"v": np.ones(5000)}, seed=3)
        spec = JoinSpec()
        result = run_aggregation(cluster, table, [AggregateSpec("n", "count", "v")], spec)
        # At most num_groups x num_nodes partials cross the network.
        per_partial = table.schema.key_width(spec.encoding) + 8.0
        assert result.network_bytes <= 50 * 4 * per_partial

    def test_requires_specs(self):
        cluster = Cluster(2)
        table = build_table(cluster, "T", [1], {"v": [1]})
        with pytest.raises(ReproError):
            run_aggregation(cluster, table, [], JoinSpec())

    def test_invalid_function(self):
        with pytest.raises(ReproError):
            AggregateSpec("x", "median", "v")


class TestTableStats:
    def test_measured_selectivities(self):
        cluster = Cluster(2)
        table_r = build_table(cluster, "R", np.arange(0, 100), {"v": np.zeros(100)})
        table_s = build_table(cluster, "S", np.arange(80, 180), {"v": np.zeros(100)}, seed=5)
        stats = table_stats(table_r, table_s, JoinSpec())
        assert stats.selectivity_r == pytest.approx(0.2)
        assert stats.selectivity_s == pytest.approx(0.2)
        assert stats.distinct_r == 100


class TestExecute:
    def _tables(self, cluster):
        rng = np.random.default_rng(8)
        orders = build_table(
            cluster,
            "orders",
            rng.integers(0, 500, 3000),
            {"amount": rng.integers(1, 100, 3000), "cust": rng.integers(0, 200, 3000)},
            seed=1,
        )
        items = build_table(
            cluster,
            "items",
            rng.integers(0, 500, 5000),
            {"qty": rng.integers(1, 10, 5000)},
            seed=2,
        )
        return orders, items

    def test_scan_filter(self):
        cluster = Cluster(4)
        orders, _ = self._tables(cluster)
        result = execute(Scan(orders, ColumnPredicate("amount", "<", 50)), cluster)
        assert result.network_bytes == 0.0
        out = result.table.gathered()
        assert (out.columns["amount"] < 50).all()
        assert result.operators[0].operator == "scan+filter"

    def test_join_matches_direct_run(self):
        cluster = Cluster(4)
        orders, items = self._tables(cluster)
        from repro import GraceHashJoin

        plan = Join(Scan(orders), Scan(items), algorithm="HJ")
        result = execute(plan, cluster)
        direct = GraceHashJoin().run(cluster, orders, items)
        assert result.output_rows == direct.output_rows
        assert result.network_bytes == pytest.approx(direct.network_bytes)

    def test_auto_join_picks_and_notes(self):
        cluster = Cluster(4)
        orders, items = self._tables(cluster)
        result = execute(Join(Scan(orders), Scan(items)), cluster)
        join_ops = [op for op in result.operators if op.operator.startswith("join")]
        assert len(join_ops) == 1
        assert join_ops[0].note.startswith("auto:")

    def test_join_then_aggregate(self):
        cluster = Cluster(4)
        orders, items = self._tables(cluster)
        plan = Aggregate(
            Join(Scan(orders), Scan(items), algorithm="4TJ"),
            aggregates=(AggregateSpec("total_qty", "sum", "s.qty"),),
        )
        result = execute(plan, cluster)
        # One output row per matched key.
        matched = np.intersect1d(orders.all_keys(), items.all_keys())
        assert result.output_rows == len(matched)
        # Cross-check one group against a local computation.
        out = result.table.gathered()
        key = int(out.keys[0])
        ok = orders.all_keys() == key
        ik = items.all_keys() == key
        qty = items.gathered().columns["qty"]
        expected = int(qty[ik].sum()) * int(ok.sum())
        position = np.flatnonzero(out.keys == key)[0]
        assert int(out.columns["total_qty"][position]) == expected

    def test_rekey_enables_second_join(self):
        cluster = Cluster(4)
        orders, items = self._tables(cluster)
        rng = np.random.default_rng(9)
        customers = build_table(
            cluster, "customers", np.arange(200), {"region": rng.integers(0, 5, 200)},
            seed=3,
        )
        plan = Join(
            Join(Scan(orders), Scan(items), algorithm="HJ", rekey_on="r.cust"),
            Scan(customers),
            algorithm="4TJ",
        )
        result = execute(plan, cluster)
        # Every (order, item) pair joins exactly one customer row.
        first = execute(Join(Scan(orders), Scan(items), algorithm="HJ"), cluster)
        assert result.output_rows == first.output_rows
        # Traffic accumulates across operators.
        join_bytes = [
            op.network_bytes for op in result.operators if op.operator.startswith("join")
        ]
        assert result.network_bytes == pytest.approx(sum(join_bytes))

    def test_rekey_unknown_column(self):
        cluster = Cluster(4)
        orders, items = self._tables(cluster)
        with pytest.raises(ReproError):
            execute(
                Join(Scan(orders), Scan(items), algorithm="HJ", rekey_on="nope"),
                cluster,
            )

    def test_unknown_algorithm(self):
        cluster = Cluster(4)
        orders, items = self._tables(cluster)
        with pytest.raises(ReproError):
            execute(Join(Scan(orders), Scan(items), algorithm="XJ"), cluster)

    def test_materialize_required(self):
        cluster = Cluster(4)
        orders, items = self._tables(cluster)
        with pytest.raises(ReproError):
            execute(Scan(orders), cluster, JoinSpec(materialize=False))


class TestSampledStats:
    def test_sampled_close_to_exact(self):
        cluster = Cluster(4)
        rng = np.random.default_rng(12)
        table_r = build_table(cluster, "R", rng.integers(0, 5000, 30_000), {"v": np.zeros(30_000)})
        table_s = build_table(cluster, "S", rng.integers(2500, 7500, 30_000), {"v": np.zeros(30_000)}, seed=2)
        exact = table_stats(table_r, table_s, JoinSpec())
        sampled = table_stats(table_r, table_s, JoinSpec(), sample_rate=0.25)
        assert sampled.tuples_r == pytest.approx(exact.tuples_r, rel=0.1)
        assert sampled.selectivity_r == pytest.approx(exact.selectivity_r, abs=0.08)
        assert sampled.selectivity_s == pytest.approx(exact.selectivity_s, abs=0.08)

    def test_tiny_sample_falls_back_to_exact(self):
        cluster = Cluster(2)
        table_r = build_table(cluster, "R", [1, 2, 3], {"v": [0, 0, 0]})
        table_s = build_table(cluster, "S", [2, 3, 4], {"v": [0, 0, 0]}, seed=1)
        stats = table_stats(table_r, table_s, JoinSpec(), sample_rate=1e-9)
        assert stats.tuples_r == 3


class TestRekeyAndStarPlan:
    def test_rekey_node(self):
        from repro.query import Rekey

        cluster = Cluster(4)
        rng = np.random.default_rng(20)
        orders = build_table(
            cluster, "orders", rng.integers(0, 300, 2000),
            {"cust": rng.integers(0, 50, 2000)}, seed=1,
        )
        result = execute(Rekey(Scan(orders), "cust"), cluster)
        assert result.network_bytes == 0.0
        out = result.table.gathered()
        assert out.keys.max() < 50  # keys are now customer ids
        assert "key" in result.table.payload_names  # old key demoted

    def test_rekey_unknown_column(self):
        from repro.query import Rekey

        cluster = Cluster(2)
        table = build_table(cluster, "T", [1, 2], {"v": [1, 2]})
        with pytest.raises(ReproError):
            execute(Rekey(Scan(table), "missing"), cluster)

    def test_star_plan_matches_manual_chain(self):
        from repro.query import star_plan

        cluster = Cluster(4)
        rng = np.random.default_rng(21)
        fact = build_table(
            cluster, "fact", rng.integers(0, 1000, 4000),
            {"fk_a": rng.integers(0, 100, 4000), "fk_b": rng.integers(0, 40, 4000)},
            seed=1,
        )
        dim_a = build_table(cluster, "dimA", np.arange(100), {"attr_a": np.arange(100) * 2}, seed=2)
        dim_b = build_table(cluster, "dimB", np.arange(40), {"attr_b": np.arange(40) * 3}, seed=3)
        plan = star_plan(
            Scan(fact), {"fk_a": Scan(dim_a), "fk_b": Scan(dim_b)}, algorithm="HJ"
        )
        result = execute(plan, cluster)
        # Every fact row joins exactly one row per dimension.
        assert result.output_rows == fact.total_rows

    def test_star_plan_orders_smallest_first(self):
        from repro.query import star_plan
        from repro.query.plan import Join

        cluster = Cluster(2)
        fact = build_table(
            cluster, "fact", np.arange(100),
            {"fk_big": np.zeros(100, dtype=np.int64), "fk_small": np.zeros(100, dtype=np.int64)},
        )
        big = build_table(cluster, "big", np.zeros(50, dtype=np.int64), {"x": np.zeros(50)}, seed=1)
        small = build_table(cluster, "small", np.zeros(5, dtype=np.int64), {"y": np.zeros(5)}, seed=2)
        plan = star_plan(Scan(fact), {"fk_big": Scan(big), "fk_small": Scan(small)})
        # Outermost join should involve the bigger dimension (joined last).
        assert isinstance(plan, Join)
        assert plan.right.table.name == "big"

    def test_star_plan_validation(self):
        from repro.query import star_plan

        cluster = Cluster(2)
        fact = build_table(cluster, "fact", [1], {"fk": [0]})
        dim = build_table(cluster, "dim", [0], {"x": [9]}, seed=1)
        with pytest.raises(ReproError):
            star_plan(Scan(fact), {})
        with pytest.raises(ReproError):
            star_plan(Scan(fact), {"missing_fk": Scan(dim)})
        with pytest.raises(ReproError):
            star_plan(Scan(fact), {"fk": Scan(dim)}, order="random")


class TestSemijoinFilteredQueryJoin:
    def test_filtered_join_same_output(self):
        cluster = Cluster(4)
        rng = np.random.default_rng(30)
        table_r = build_table(cluster, "R", np.arange(0, 3000), {"v": np.zeros(3000)})
        table_s = build_table(
            cluster, "S", np.arange(2700, 5700), {"w": np.zeros(3000)}, seed=1
        )
        plain = execute(Join(Scan(table_r), Scan(table_s), algorithm="HJ"), cluster)
        filtered = execute(
            Join(Scan(table_r), Scan(table_s), algorithm="HJ", semijoin_filter=True),
            cluster,
        )
        assert filtered.output_rows == plain.output_rows
        # Selective join: the filter pays for itself.
        assert filtered.network_bytes < plain.network_bytes
        join_op = [o for o in filtered.operators if o.operator.startswith("join")][0]
        assert join_op.operator == "join[BF+HJ]"
